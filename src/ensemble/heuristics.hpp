#pragma once

// Rule-based kernel selection, modelling the *class* of selector used by
// closed-source vendor libraries (cuBLAS).
//
// Vendor heuristics map problem-shape features through trained thresholds
// to a kernel from a precompiled menu.  Such rules are necessarily coarse:
// they cannot anticipate the exact quantization of every (shape, ensemble)
// pair, which is how the paper explains cuBLAS's wide utilization spread
// relative to the idealized oracle (Figures 5b/6b vs 5c/6c).  Our selector
// follows the same recipe -- fill the machine, prefer the largest tile that
// does so, split the k-dimension by a power of two when parallelism is
// scarce -- and inherits the same class of mispredictions, deterministically.

#include "core/gemm_shape.hpp"
#include "ensemble/kernel_config.hpp"
#include "gpu/gpu_spec.hpp"

namespace streamk::ensemble {

/// Deterministic rule-based kernel choice for a problem.
KernelConfig heuristic_select(const core::GemmShape& shape,
                              gpu::Precision precision,
                              const gpu::GpuSpec& gpu);

}  // namespace streamk::ensemble
