#include "ensemble/library.hpp"

#include <exception>
#include <limits>
#include <vector>

#include "ensemble/heuristics.hpp"
#include "model/grid_selector.hpp"
#include "runtime/worker_pool.hpp"
#include "tuner/search_space.hpp"
#include "util/check.hpp"

namespace streamk::ensemble {

namespace {

GemmMeasurement measure(const core::GemmShape& shape,
                        const KernelConfig& config,
                        const core::DecompositionSpec& spec,
                        gpu::Precision precision, const gpu::GpuSpec& gpu,
                        const std::string& label,
                        core::PlanCache& plan_cache) {
  const core::WorkMapping mapping(shape, config.block);
  const model::CostModel model =
      model::CostModel::calibrated(gpu, config.block, precision);
  sim::EstimateOptions options;
  options.plan_cache = &plan_cache;
  GemmMeasurement m;
  m.config = config;
  m.kind = spec.kind;
  m.estimate = sim::estimate_kernel(spec, mapping, model, gpu, options);
  m.kernel_name = label + " " + config.to_string();
  return m;
}

}  // namespace

DataParallelLibrary::DataParallelLibrary(gpu::GpuSpec gpu,
                                         gpu::Precision precision,
                                         gpu::BlockShape block)
    : KernelLibrary(std::move(gpu), precision), block_(block) {}

std::string DataParallelLibrary::name() const {
  return "cutlass-dp " + block_.to_string();
}

GemmMeasurement DataParallelLibrary::run(const core::GemmShape& shape) const {
  core::DecompositionSpec spec;
  spec.kind = core::DecompositionKind::kDataParallel;
  return measure(shape, KernelConfig{block_, 1}, spec, precision_, gpu_,
                 "dp", plan_cache_);
}

OracleLibrary::OracleLibrary(gpu::GpuSpec gpu, gpu::Precision precision)
    : KernelLibrary(std::move(gpu), precision),
      members_(paper_dp_ensemble(precision)) {}

GemmMeasurement OracleLibrary::run(const core::GemmShape& shape) const {
  core::DecompositionSpec spec;
  spec.kind = core::DecompositionKind::kDataParallel;

  // The oracle evaluates every ensemble member; the members are independent
  // (the PlanCache is thread-safe), so fan them out as pool submissions and
  // reduce the winner.  TaskHandle::get() work-steals unclaimed members onto
  // this thread, so the fan-out also completes when the pool is saturated.
  std::vector<runtime::TaskHandle<GemmMeasurement>> pending;
  pending.reserve(members_.size());
  for (const gpu::BlockShape& block : members_) {
    pending.push_back(runtime::global_pool().async([this, shape, block,
                                                    spec] {
      return measure(shape, KernelConfig{block, 1}, spec, precision_, gpu_,
                     "oracle-dp", plan_cache_);
    }));
  }

  // Drain every handle before (re)throwing: a still-queued member lambda
  // captures `this`, so bailing on the first failure would let a pool
  // worker run it against a possibly-destroyed library.
  GemmMeasurement best;
  best.estimate.seconds = std::numeric_limits<double>::infinity();
  std::exception_ptr first_error;
  for (auto& handle : pending) {
    try {
      GemmMeasurement m = handle.get();
      if (m.estimate.seconds < best.estimate.seconds) best = std::move(m);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return best;
}

HeuristicLibrary::HeuristicLibrary(gpu::GpuSpec gpu, gpu::Precision precision)
    : KernelLibrary(std::move(gpu), precision) {}

GemmMeasurement HeuristicLibrary::run(const core::GemmShape& shape) const {
  const KernelConfig config = heuristic_select(shape, precision_, gpu_);
  core::DecompositionSpec spec;
  if (config.split > 1) {
    spec.kind = core::DecompositionKind::kFixedSplit;
    spec.split = config.split;
  } else {
    spec.kind = core::DecompositionKind::kDataParallel;
  }
  return measure(shape, config, spec, precision_, gpu_, "cublas-like",
                 plan_cache_);
}

StreamKLibrary::StreamKLibrary(gpu::GpuSpec gpu, gpu::Precision precision)
    : KernelLibrary(std::move(gpu), precision),
      block_(paper_stream_k_block(precision)) {}

GemmMeasurement StreamKLibrary::run(const core::GemmShape& shape) const {
  const core::WorkMapping mapping(shape, block_);
  const model::CostModel model =
      model::CostModel::calibrated(gpu_, block_, precision_);
  const core::DecompositionSpec spec = model::plan(model, mapping, gpu_);
  GemmMeasurement m = measure(shape, KernelConfig{block_, 1}, spec,
                              precision_, gpu_, "stream-k", plan_cache_);
  m.kernel_name =
      "stream-k[" + std::string(core::kind_name(spec.kind)) + "] " +
      block_.to_string();
  return m;
}

namespace {

/// The "second kernel" blocking factor: the half tile of the deployed
/// Stream-K blocking for the precision.
gpu::BlockShape duo_small_block(gpu::Precision precision) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return {32, 64, 16};
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      return {64, 128, 32};
  }
  util::fail("unknown precision");
}

}  // namespace

StreamKDuoLibrary::StreamKDuoLibrary(gpu::GpuSpec gpu,
                                     gpu::Precision precision)
    : KernelLibrary(std::move(gpu), precision),
      large_(paper_stream_k_block(precision)),
      small_(duo_small_block(precision)) {}

GemmMeasurement StreamKDuoLibrary::run_block(const core::GemmShape& shape,
                                             gpu::BlockShape block,
                                             double* predicted_seconds) const {
  const core::WorkMapping mapping(shape, block);
  const model::CostModel model =
      model::CostModel::calibrated(gpu_, block, precision_);
  const core::DecompositionSpec spec = model::plan(model, mapping, gpu_);
  *predicted_seconds = model::closed_form_estimate(spec, model, mapping, gpu_);
  GemmMeasurement m = measure(shape, KernelConfig{block, 1}, spec, precision_,
                              gpu_, "duo", plan_cache_);
  m.kernel_name = "stream-k-duo[" + std::string(core::kind_name(spec.kind)) +
                  "] " + block.to_string();
  return m;
}

GemmMeasurement StreamKDuoLibrary::run(const core::GemmShape& shape) const {
  // Predict both kernels with the closed-form model, dispatch the winner;
  // only the selected kernel is "run" (simulated), as a real library would.
  double predicted_large = 0.0;
  double predicted_small = 0.0;
  const core::WorkMapping large_mapping(shape, large_);
  const core::WorkMapping small_mapping(shape, small_);
  const model::CostModel large_model =
      model::CostModel::calibrated(gpu_, large_, precision_);
  const model::CostModel small_model =
      model::CostModel::calibrated(gpu_, small_, precision_);
  predicted_large = model::closed_form_estimate(
      model::plan(large_model, large_mapping, gpu_), large_model,
      large_mapping, gpu_);
  predicted_small = model::closed_form_estimate(
      model::plan(small_model, small_mapping, gpu_), small_model,
      small_mapping, gpu_);

  double ignored = 0.0;
  return run_block(shape,
                   predicted_small < predicted_large ? small_ : large_,
                   &ignored);
}

EmpiricalLibrary::EmpiricalLibrary(gpu::GpuSpec gpu, gpu::Precision precision,
                                   std::size_t search_budget)
    : KernelLibrary(std::move(gpu), precision),
      search_budget_(search_budget) {}

GemmMeasurement EmpiricalLibrary::run_config(
    const core::GemmShape& shape, const tuner::TunedConfig& config) const {
  const std::int64_t slots =
      gpu_.sm_count * model::occupancy(config.block, precision_);
  GemmMeasurement m =
      measure(shape, KernelConfig{config.block, config.split},
              tuner::to_spec(config, slots), precision_, gpu_, "empirical",
              plan_cache_);
  m.kernel_name = "empirical[" + config.to_string() + "]";
  return m;
}

GemmMeasurement EmpiricalLibrary::run(const core::GemmShape& shape) const {
  tuner::ShapeKey key;
  key.shape = shape;
  key.precision = precision_;
  if (const auto record = db_.lookup(key)) {
    return run_config(shape, record->config);
  }

  // Find mode: measure the model-pruned candidate list on the simulator
  // and persist the winner.  The candidate menu strictly contains every
  // other contender's choices (all ensemble tiles as data-parallel and
  // fixed-split variants, all Stream-K grids up to machine width), so with
  // an exhaustive budget this library lower-bounds them all.
  tuner::SearchSpaceOptions space;
  space.top_k = search_budget_;
  space.worker_counts = {static_cast<std::size_t>(gpu_.sm_count)};
  const std::vector<tuner::Candidate> candidates =
      tuner::search_space(shape, precision_, gpu_, space);
  util::check(!candidates.empty(), "empirical library: empty search space");

  GemmMeasurement best;
  best.estimate.seconds = std::numeric_limits<double>::infinity();
  tuner::TunedConfig best_config;
  for (const tuner::Candidate& candidate : candidates) {
    GemmMeasurement m = run_config(shape, candidate.config);
    // Strict <: ties keep the earlier (better-predicted) candidate, the
    // same deterministic convergence rule as the CPU tuner.
    if (m.estimate.seconds < best.estimate.seconds) {
      best = std::move(m);
      best_config = candidate.config;
    }
  }

  tuner::TuningRecord record;
  record.config = best_config;
  record.seconds = best.estimate.seconds;
  record.gflops = best.estimate.seconds > 0.0
                      ? shape.flops() / best.estimate.seconds / 1e9
                      : 0.0;
  db_.update(key, record);
  return best;
}

EvaluationSuite EvaluationSuite::make(const gpu::GpuSpec& gpu,
                                      gpu::Precision precision) {
  EvaluationSuite suite;
  suite.stream_k = std::make_unique<StreamKLibrary>(gpu, precision);
  suite.data_parallel = std::make_unique<DataParallelLibrary>(
      gpu, precision, paper_stream_k_block(precision));
  suite.cublas_like = std::make_unique<HeuristicLibrary>(gpu, precision);
  suite.oracle = std::make_unique<OracleLibrary>(gpu, precision);
  return suite;
}

}  // namespace streamk::ensemble
