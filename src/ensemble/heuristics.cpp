#include "ensemble/heuristics.hpp"

#include <algorithm>

#include "core/work_mapping.hpp"
#include "model/cost_model.hpp"
#include "util/check.hpp"

namespace streamk::ensemble {

KernelConfig heuristic_select(const core::GemmShape& shape,
                              gpu::Precision precision,
                              const gpu::GpuSpec& gpu) {
  util::check(shape.valid(), "invalid GEMM shape");
  const std::vector<gpu::BlockShape> menu = paper_dp_ensemble(precision);

  // Rule 1: score each tile by pipeline efficiency x wave-quantization
  // efficiency x useful (unpadded) work fraction, and take the best
  // (largest tile wins ties).  This is the shape of a trained selector: a
  // closed-form figure of merit over precompiled variants.  It ignores
  // memory boundedness and fixup/split interactions -- the blind spots
  // that separate it from the oracle.
  const gpu::BlockShape* chosen = &menu.front();
  double best_score = -1.0;
  for (const gpu::BlockShape& block : menu) {
    const core::WorkMapping mapping(shape, block);
    const std::int64_t slots =
        gpu.sm_count * model::occupancy(block, precision);
    const std::int64_t waves = core::ceil_div(mapping.tiles(), slots);
    const double quantization =
        static_cast<double>(mapping.tiles()) /
        (static_cast<double>(waves) * static_cast<double>(slots));
    const double score = model::tile_efficiency(block, precision) *
                         quantization * mapping.useful_fraction();
    if (score >= best_score) {
      best_score = score;
      chosen = &block;
    }
  }

  KernelConfig config;
  config.block = *chosen;

  // Rule 2: when the tile count leaves the machine underfilled, split the
  // accumulation dimension by the power of two that brings the CTA count
  // closest to one wave (capped by the iteration count).
  const std::int64_t tiles = core::ceil_div(shape.m, config.block.m) *
                             core::ceil_div(shape.n, config.block.n);
  const std::int64_t slots =
      gpu.sm_count * model::occupancy(config.block, precision);
  if (tiles < slots) {
    const std::int64_t ipt = core::ceil_div(shape.k, config.block.k);
    std::int64_t best_split = 1;
    double best_fill = static_cast<double>(tiles) / static_cast<double>(slots);
    for (const std::int64_t s : heuristic_split_ladder()) {
      if (s > ipt) break;  // splits beyond the iteration count are dead CTAs
      const double fill = std::min(
          1.0, static_cast<double>(tiles * s) / static_cast<double>(slots));
      if (fill > best_fill) {
        best_fill = fill;
        best_split = s;
      }
    }
    config.split = best_split;
  }
  return config;
}

}  // namespace streamk::ensemble
