#pragma once

// Kernel libraries: the four contenders of the paper's evaluation.
//
//   * DataParallelLibrary -- the default data-parallel CUTLASS kernel of a
//     single blocking factor (comparison baseline 1).
//   * HeuristicLibrary    -- a cuBLAS-like ensemble: tile menu plus
//     fixed-split variants behind rule-based selection (baseline 2).
//   * OracleLibrary       -- the idealized oracle that always runs the best
//     data-parallel tiling for the problem at hand (baseline 3).
//   * StreamKLibrary      -- a single Stream-K kernel per precision, with
//     grid size / schedule chosen by the analytical planner (Section 5.1):
//     the paper's contribution.
//
// Every library answers run(shape) with the kernel it selected and that
// kernel's simulated performance on the library's GPU.

#include <memory>
#include <string>

#include "core/gemm_shape.hpp"
#include "core/schedule_plan.hpp"
#include "ensemble/kernel_config.hpp"
#include "gpu/gpu_spec.hpp"
#include "sim/sim_gemm.hpp"
#include "tuner/tuning_db.hpp"

namespace streamk::ensemble {

struct GemmMeasurement {
  KernelConfig config;                ///< kernel variant selected
  core::DecompositionKind kind = core::DecompositionKind::kDataParallel;
  sim::KernelEstimate estimate;       ///< simulated performance
  std::string kernel_name;
};

class KernelLibrary {
 public:
  KernelLibrary(gpu::GpuSpec gpu, gpu::Precision precision)
      : gpu_(std::move(gpu)), precision_(precision) {}
  virtual ~KernelLibrary() = default;

  KernelLibrary(const KernelLibrary&) = delete;
  KernelLibrary& operator=(const KernelLibrary&) = delete;

  virtual std::string name() const = 0;
  virtual GemmMeasurement run(const core::GemmShape& shape) const = 0;

  const gpu::GpuSpec& gpu() const { return gpu_; }
  gpu::Precision precision() const { return precision_; }

  /// Compiled-schedule cache behind run(): repeated traffic for one shape
  /// reuses the SchedulePlan instead of rematerializing segment streams.
  const core::PlanCache& plan_cache() const { return plan_cache_; }

 protected:
  gpu::GpuSpec gpu_;
  gpu::Precision precision_;
  /// Mutable: run() is logically const; memoization is not observable state.
  mutable core::PlanCache plan_cache_;
};

class DataParallelLibrary final : public KernelLibrary {
 public:
  DataParallelLibrary(gpu::GpuSpec gpu, gpu::Precision precision,
                      gpu::BlockShape block);
  std::string name() const override;
  GemmMeasurement run(const core::GemmShape& shape) const override;

 private:
  gpu::BlockShape block_;
};

class OracleLibrary final : public KernelLibrary {
 public:
  OracleLibrary(gpu::GpuSpec gpu, gpu::Precision precision);
  std::string name() const override { return "cutlass-oracle"; }
  GemmMeasurement run(const core::GemmShape& shape) const override;

 private:
  std::vector<gpu::BlockShape> members_;
};

class HeuristicLibrary final : public KernelLibrary {
 public:
  HeuristicLibrary(gpu::GpuSpec gpu, gpu::Precision precision);
  std::string name() const override { return "cublas-like"; }
  GemmMeasurement run(const core::GemmShape& shape) const override;
};

class StreamKLibrary final : public KernelLibrary {
 public:
  StreamKLibrary(gpu::GpuSpec gpu, gpu::Precision precision);
  std::string name() const override { return "stream-k"; }
  GemmMeasurement run(const core::GemmShape& shape) const override;

  gpu::BlockShape block() const { return block_; }

 private:
  gpu::BlockShape block_;
};

/// The paper's future-work proposal (Section 6, final paragraph): bundle a
/// *second* Stream-K kernel with a smaller blocking factor into a two-kernel
/// ensemble, so the small / bandwidth-bound regime -- where the single
/// largish tile "does not compete well" -- is covered too.  Selection uses
/// the same closed-form planner estimate as the grid-size model; no new
/// heuristics machinery is needed.
class StreamKDuoLibrary final : public KernelLibrary {
 public:
  StreamKDuoLibrary(gpu::GpuSpec gpu, gpu::Precision precision);
  std::string name() const override { return "stream-k-duo"; }
  GemmMeasurement run(const core::GemmShape& shape) const override;

  gpu::BlockShape large_block() const { return large_; }
  gpu::BlockShape small_block() const { return small_; }

 private:
  GemmMeasurement run_block(const core::GemmShape& shape,
                            gpu::BlockShape block,
                            double* predicted_seconds) const;

  gpu::BlockShape large_;
  gpu::BlockShape small_;
};

/// The empirically-tuned contender: an MIOpen-style find-mode library over
/// the simulator.  The first run(shape) of a key searches the tuner's
/// model-pruned candidate list (decomposition kind x ensemble tile x grid /
/// split -- a strict superset of every other contender's menu) on the
/// simulator and persists the winner in an embedded tuner::TuningDb;
/// repeats dispatch straight from the db.  db() exposes load()/save() so
/// tuning artifacts survive process restarts and compose across runs --
/// the closed measurement loop the paper's tuned-ensemble comparison
/// presumes, made explicit.
class EmpiricalLibrary final : public KernelLibrary {
 public:
  /// `search_budget` caps measured candidates per shape (0 = exhaustive).
  EmpiricalLibrary(gpu::GpuSpec gpu, gpu::Precision precision,
                   std::size_t search_budget = 16);
  std::string name() const override { return "empirical-find"; }
  GemmMeasurement run(const core::GemmShape& shape) const override;

  /// The backing database (mutable: persistence is not logical state).
  tuner::TuningDb& db() const { return db_; }
  std::size_t search_budget() const { return search_budget_; }

 private:
  GemmMeasurement run_config(const core::GemmShape& shape,
                             const tuner::TunedConfig& config) const;

  std::size_t search_budget_;
  mutable tuner::TuningDb db_;
};

/// Convenience factory for all four libraries of one precision.
struct EvaluationSuite {
  std::unique_ptr<StreamKLibrary> stream_k;
  std::unique_ptr<DataParallelLibrary> data_parallel;
  std::unique_ptr<HeuristicLibrary> cublas_like;
  std::unique_ptr<OracleLibrary> oracle;

  static EvaluationSuite make(const gpu::GpuSpec& gpu,
                              gpu::Precision precision);
};

}  // namespace streamk::ensemble
