#pragma once

// Kernel configurations and the paper's tile ensembles.
//
// Section 6 (Methodology): the idealized oracle selects among data-parallel
// CUTLASS blocking-factor specializations --
//   FP64:     {32x32x16, 32x64x16, 64x64x16, 64x128x16, 128x128x16}
//   FP16->32: {64x64x64, 64x128x32, 128x128x32, 128x256x32}
// -- open-sourced strict subsets of the corresponding cuBLAS ensembles.
// The cuBLAS-like heuristic library additionally deploys fixed-split
// variants of these tiles (Section 2 notes cuBLAS implements a variety of
// data-parallel and fixed-split variants).

#include <string>
#include <vector>

#include "gpu/block_shape.hpp"
#include "gpu/precision.hpp"

namespace streamk::ensemble {

/// A concrete kernel variant a library can launch.
struct KernelConfig {
  gpu::BlockShape block;
  std::int64_t split = 1;  ///< fixed-split factor (1 = data-parallel)

  std::string to_string() const;
};

/// The paper's data-parallel tile ensemble for a precision (oracle members).
std::vector<gpu::BlockShape> paper_dp_ensemble(gpu::Precision precision);

/// The paper's single Stream-K blocking factor for a precision
/// (64x64x16 FP64 / 128x128x32 FP16->32, Section 5.1).
gpu::BlockShape paper_stream_k_block(gpu::Precision precision);

/// Split factors the heuristic library may deploy (power-of-two ladder,
/// mirroring the discrete "algorithm" menu of cublasGemmEx).
std::vector<std::int64_t> heuristic_split_ladder();

}  // namespace streamk::ensemble
