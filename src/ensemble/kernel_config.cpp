#include "ensemble/kernel_config.hpp"

#include "util/check.hpp"

namespace streamk::ensemble {

std::string KernelConfig::to_string() const {
  std::string s = block.to_string();
  if (split > 1) s += " split" + std::to_string(split);
  return s;
}

std::vector<gpu::BlockShape> paper_dp_ensemble(gpu::Precision precision) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return {{32, 32, 16}, {32, 64, 16}, {64, 64, 16}, {64, 128, 16},
              {128, 128, 16}};
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      return {{64, 64, 64}, {64, 128, 32}, {128, 128, 32}, {128, 256, 32}};
  }
  util::fail("unknown precision");
}

gpu::BlockShape paper_stream_k_block(gpu::Precision precision) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return gpu::BlockShape::paper_fp64();
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      return gpu::BlockShape::paper_fp16();
  }
  util::fail("unknown precision");
}

std::vector<std::int64_t> heuristic_split_ladder() { return {1, 2, 4, 8, 16}; }

}  // namespace streamk::ensemble
