#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace streamk::util {

double percentile_sorted(std::span<const double> sorted, double q) {
  check(!sorted.empty(), "percentile of empty sample");
  check(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summary::of(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  double log_sum = 0.0;
  bool geomean_valid = true;
  for (const double v : sorted) {
    sum += v;
    if (v > 0.0) {
      log_sum += std::log(v);
    } else {
      geomean_valid = false;
    }
  }
  const auto n = static_cast<double>(sorted.size());
  s.mean = sum / n;
  // A geometric mean over non-positive samples is undefined; report NaN so
  // consumers render "n/a" instead of mistaking a sentinel 0.0 for a real
  // measurement.
  s.geomean = geomean_valid ? std::exp(log_sum / n)
                            : std::numeric_limits<double>::quiet_NaN();

  double sq = 0.0;
  for (const double v : sorted) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = sorted.size() > 1 ? std::sqrt(sq / (n - 1.0)) : 0.0;

  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 50.0);
  s.p10 = percentile_sorted(sorted, 10.0);
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.p90 = percentile_sorted(sorted, 90.0);
  return s;
}

Histogram Histogram::of(std::span<const double> samples, double lo, double hi,
                        std::size_t bins) {
  check(bins > 0, "histogram needs at least one bin");
  check(hi > lo, "histogram range must be nonempty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (const double v : samples) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) * scale);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts) peak = std::max(peak, c);

  std::ostringstream os;
  const double bin_width =
      (hi - lo) / static_cast<double>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double left = lo + bin_width * static_cast<double>(i);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "  [" << left << ", " << left + bin_width << ") "
       << std::string(bar, '#') << " " << counts[i] << "\n";
  }
  return os.str();
}

}  // namespace streamk::util
