#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace streamk::util {

namespace {

LogLevel parse_level(const char* s, LogLevel fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  return fallback;
}

std::atomic<int> g_level{static_cast<int>(
    parse_level(std::getenv("STREAMK_LOG"), LogLevel::kWarn))};

void stderr_sink(LogLevel level, std::string_view message) {
  // One fprintf per message so concurrent lines interleave whole, not
  // character-by-character.
  std::string line = "streamk [";
  line += log_level_name(level);
  line += "] ";
  line.append(message);
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

std::atomic<LogSink> g_sink{&stderr_sink};

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  g_sink.store(sink != nullptr ? sink : &stderr_sink,
               std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  g_sink.load(std::memory_order_relaxed)(level, message);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "unknown";
}

}  // namespace streamk::util
