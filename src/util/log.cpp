#include "util/log.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace streamk::util {

namespace {

/// Dense per-thread id, assigned in first-log order.
std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-07T12:34:56.789Z t0 " -- the prefix every sink receives.
std::string line_prefix() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ t%" PRIu64 " ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                thread_ordinal());
  return buf;
}

LogLevel parse_level(const char* s, LogLevel fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  return fallback;
}

std::atomic<int> g_level{static_cast<int>(
    parse_level(std::getenv("STREAMK_LOG"), LogLevel::kWarn))};

void stderr_sink(LogLevel level, std::string_view message) {
  // One fprintf per message so concurrent lines interleave whole, not
  // character-by-character.
  std::string line = "streamk [";
  line += log_level_name(level);
  line += "] ";
  line.append(message);
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

std::atomic<LogSink> g_sink{&stderr_sink};

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  g_sink.store(sink != nullptr ? sink : &stderr_sink,
               std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Prefix before dispatch so custom/test sinks see the same timestamped,
  // thread-tagged line the stderr default prints.
  std::string line = line_prefix();
  line.append(message);
  g_sink.load(std::memory_order_relaxed)(level, line);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "unknown";
}

}  // namespace streamk::util
