#pragma once

// Small threading helpers used by the CPU executor and tests.
//
// We deliberately keep parallelism explicit (LLNL HPC-tutorial style): the
// caller states how many workers to use, work is handed out through an
// atomic counter, and exceptions from workers are captured and rethrown on
// the calling thread instead of terminating the process.
//
// Since the runtime subsystem landed, the default backend dispatches onto
// the process-wide persistent runtime::WorkerPool: the calling thread
// claims indices itself and up to `workers - 1` idle pool workers help, so
// no call ever spawns a thread.  The legacy spawn-per-call backend is kept
// selectable for A/B measurement (bench/bench_runtime_throughput.cpp) and
// as a diagnostic escape hatch.

#include <cstddef>
#include <functional>

namespace streamk::util {

/// How parallel_for{,_descending} obtain their worker threads.
enum class ParallelBackend {
  kPool,   ///< persistent runtime::global_pool() workers (default)
  kSpawn,  ///< legacy: spawn workers-1 fresh std::threads per call
};

/// Sets the process-wide backend (atomic; affects subsequent calls).
void set_parallel_backend(ParallelBackend backend);
ParallelBackend parallel_backend();

/// Runs `body(index)` for every index in [0, count) across at most
/// `workers` threads (never more than `count` -- a 2-CTA schedule with 16
/// workers occupies 2 threads, not 16).  `workers == 1` executes inline (no
/// thread spawn, no pool dispatch).  Indices are claimed dynamically in
/// *descending* order; see cpu/executor.hpp for why descending order
/// matters to the GEMM fixup protocol.  The first exception thrown by any
/// worker is rethrown after the parallel region quiesces.
void parallel_for_descending(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t workers);

/// Ascending-order variant for order-insensitive work.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers);

/// std::thread::hardware_concurrency with a floor of 1.
std::size_t hardware_threads();

/// Default worker count for GEMM-family calls and the worker pool:
/// hardware_threads(), overridden by the STREAMK_WORKERS environment
/// variable when it holds a value >= 1.  Unset, non-numeric, or < 1 values
/// leave the hardware default in place; values above hardware_threads()
/// are honored (deliberate oversubscription stays available for testing).
/// Read per call so tests can toggle the variable without process
/// restarts.
std::size_t default_workers();

}  // namespace streamk::util
