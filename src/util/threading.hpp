#pragma once

// Small threading helpers used by the CPU executor and tests.
//
// We deliberately keep parallelism explicit (LLNL HPC-tutorial style): the
// caller states how many workers to use, work is handed out through an
// atomic counter, and exceptions from workers are captured and rethrown on
// the calling thread instead of terminating the process.

#include <cstddef>
#include <functional>

namespace streamk::util {

/// Runs `body(index)` for every index in [0, count) across `workers`
/// threads.  `workers == 1` executes inline (no thread spawn).  Indices are
/// claimed dynamically in *descending* order; see cpu/executor.hpp for why
/// descending order matters to the GEMM fixup protocol.  The first exception
/// thrown by any worker is rethrown after all workers join.
void parallel_for_descending(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t workers);

/// Ascending-order variant for order-insensitive work.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers);

/// std::thread::hardware_concurrency with a floor of 1.
std::size_t hardware_threads();

}  // namespace streamk::util
