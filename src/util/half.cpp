#include "util/half.hpp"

#include <ostream>

namespace streamk::util {

// encode()/decode() live inline in the header: the GEMM packing layer
// performs one conversion per packed element, where call overhead is
// measurable (see cpu/packing.hpp).

std::ostream& operator<<(std::ostream& os, Half h) {
  return os << static_cast<float>(h);
}

}  // namespace streamk::util
