#pragma once

// Leveled diagnostic logging for the library.
//
// Everything the library used to write raw to stderr (tuner background-find
// failures, tuning-db load problems, obs flush errors) now goes through one
// sink, so embedding applications can silence, redirect, or capture
// diagnostics instead of having a linked library spray their stderr.
//
// Levels: error < warn < info < debug.  The threshold defaults to kWarn and
// is settable via STREAMK_LOG=error|warn|info|debug in the environment or
// set_log_level() at runtime.  A message below the threshold costs one
// relaxed atomic load.
//
// Every admitted message is prefixed with an ISO-8601 UTC timestamp
// (millisecond resolution) and a dense per-thread id before sink dispatch:
//
//     2026-08-07T12:34:56.789Z t0 tuning db not found: ...
//
// so both the stderr default and custom/test sinks can correlate lines
// across threads without doing their own clock reads.  Thread ids are
// assigned in first-log order (t0, t1, ...), not OS tids: stable within a
// run and short enough to scan.
//
// The default sink writes "streamk [level] message\n" to stderr;
// set_log_sink() replaces it process-wide (pass nullptr to restore the
// default).  Sinks must be callable from any thread; the library serializes
// nothing beyond what the sink does itself.

#include <atomic>
#include <string_view>

namespace streamk::util {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Current threshold (messages above it are dropped).  Initialized from
/// STREAMK_LOG at load time; unknown values fall back to kWarn.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Replaces the process-wide sink; nullptr restores the stderr default.
using LogSink = void (*)(LogLevel level, std::string_view message);
void set_log_sink(LogSink sink);

/// Emits `message` at `level` if the threshold admits it.
void log(LogLevel level, std::string_view message);

inline void log_error(std::string_view message) {
  log(LogLevel::kError, message);
}
inline void log_warn(std::string_view message) {
  log(LogLevel::kWarn, message);
}
inline void log_info(std::string_view message) {
  log(LogLevel::kInfo, message);
}
inline void log_debug(std::string_view message) {
  log(LogLevel::kDebug, message);
}

/// "error" / "warn" / "info" / "debug".
const char* log_level_name(LogLevel level);

}  // namespace streamk::util
