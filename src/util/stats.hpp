#pragma once

// Summary statistics over sample vectors.
//
// The paper reports relative-performance distributions as
// Average / StdDev / Min / Max (Tables 1 and 2); the roofline figures need
// percentile banding per arithmetic-intensity bucket.  Everything here is
// exact (no streaming approximations) because corpus sizes are modest.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace streamk::util {

/// Full summary of a sample.  `stddev` is the sample standard deviation
/// (n - 1 denominator), matching how the paper tabulates spread.
/// `geomean` is NaN when any sample is non-positive (undefined, not zero);
/// report layers render it as "n/a" (bench::format_metric).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double geomean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;

  static Summary of(std::span<const double> samples);
};

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 100].
double percentile_sorted(std::span<const double> sorted, double q);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  static Histogram of(std::span<const double> samples, double lo, double hi,
                      std::size_t bins);

  /// Renders one `#`-bar line per bucket, for terminal reports.
  std::string render(std::size_t width = 50) const;
};

}  // namespace streamk::util
