#pragma once

// Deterministic pseudo-random number generation.
//
// The evaluation corpus (32,824 GEMM shapes, Figure 4 of the paper) must be
// reproducible bit-for-bit across runs and platforms, so we carry our own
// PCG32 generator instead of relying on implementation-defined standard
// library distributions.

#include <cmath>
#include <cstdint>

namespace streamk::util {

/// PCG-XSH-RR 64/32 (O'Neill 2014).  Small, fast, and statistically solid
/// for workload-generation purposes.
class Pcg32 {
 public:
  /// Seeds the generator.  Distinct `sequence` values select independent
  /// streams even under the same seed.
  explicit constexpr Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t sequence = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((sequence << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  constexpr std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1) with 32 bits of randomness.
  double uniform() { return next() * 0x1.0p-32; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Unbiased uniform integer in [0, bound) via rejection sampling.
  std::uint32_t uniform_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Log-uniform real in [lo, hi): the logarithm of the result is uniform.
  /// This is the sampling law of the paper's test corpus, whose problem
  /// volumes span six orders of magnitude.
  double log_uniform(double lo, double hi) {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Log-uniform integer in the inclusive range [lo, hi].
  std::int64_t log_uniform_int(std::int64_t lo, std::int64_t hi) {
    // Sample in [lo, hi+1) and floor; clamp guards the hi+1 edge case where
    // exp/log round-off could land exactly on hi+1.
    const double v = log_uniform(static_cast<double>(lo),
                                 static_cast<double>(hi) + 1.0);
    auto r = static_cast<std::int64_t>(v);
    if (r < lo) r = lo;
    if (r > hi) r = hi;
    return r;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace streamk::util
