#pragma once

// IEEE 754 binary16 ("half precision") storage type.
//
// The paper's FP16->32 GEMM consumes half-precision A/B operands and
// accumulates in single precision.  This environment has no hardware FP16,
// so we provide a software storage type with correctly rounded (round to
// nearest, ties to even) conversions in both directions.  Arithmetic is
// performed by converting to float; this matches the tensor-core semantics
// of "FP16 inputs, FP32 accumulate" that the paper evaluates.

#include <cstdint>
#include <iosfwd>

namespace streamk::util {

class Half {
 public:
  constexpr Half() = default;

  /// Converts from single precision with round-to-nearest-even.
  explicit Half(float value) : bits_(encode(value)) {}

  /// Reinterprets raw binary16 bits.
  static constexpr Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  /// Widens to single precision (exact; every binary16 value is
  /// representable in binary32).
  explicit operator float() const { return decode(bits_); }

  constexpr std::uint16_t bits() const { return bits_; }

  constexpr bool is_nan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  constexpr bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }
  constexpr bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
  constexpr bool signbit() const { return (bits_ & 0x8000u) != 0; }

  /// Bit-pattern equality (note: +0 != -0 under this comparison, and
  /// NaN == NaN when the payloads match; use float comparison for IEEE
  /// semantics).
  friend constexpr bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

  /// Largest finite binary16 value (65504).
  static constexpr Half max() { return from_bits(0x7bffu); }
  /// Smallest positive normal value (2^-14).
  static constexpr Half min_normal() { return from_bits(0x0400u); }
  /// Smallest positive subnormal value (2^-24).
  static constexpr Half min_subnormal() { return from_bits(0x0001u); }
  static constexpr Half infinity() { return from_bits(0x7c00u); }
  static constexpr Half quiet_nan() { return from_bits(0x7e00u); }

  static std::uint16_t encode(float value);
  static float decode(std::uint16_t bits);

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Half h);

}  // namespace streamk::util
