#pragma once

// IEEE 754 binary16 ("half precision") storage type.
//
// The paper's FP16->32 GEMM consumes half-precision A/B operands and
// accumulates in single precision.  This environment has no hardware FP16,
// so we provide a software storage type with correctly rounded (round to
// nearest, ties to even) conversions in both directions.  Arithmetic is
// performed by converting to float; this matches the tensor-core semantics
// of "FP16 inputs, FP32 accumulate" that the paper evaluates.

#include <bit>
#include <cstdint>
#include <iosfwd>

namespace streamk::util {

class Half {
 public:
  constexpr Half() = default;

  /// Converts from single precision with round-to-nearest-even.
  explicit Half(float value) : bits_(encode(value)) {}

  /// Reinterprets raw binary16 bits.
  static constexpr Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  /// Widens to single precision (exact; every binary16 value is
  /// representable in binary32).
  explicit operator float() const { return decode(bits_); }

  constexpr std::uint16_t bits() const { return bits_; }

  constexpr bool is_nan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  constexpr bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }
  constexpr bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
  constexpr bool signbit() const { return (bits_ & 0x8000u) != 0; }

  /// Bit-pattern equality (note: +0 != -0 under this comparison, and
  /// NaN == NaN when the payloads match; use float comparison for IEEE
  /// semantics).
  friend constexpr bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

  /// Largest finite binary16 value (65504).
  static constexpr Half max() { return from_bits(0x7bffu); }
  /// Smallest positive normal value (2^-14).
  static constexpr Half min_normal() { return from_bits(0x0400u); }
  /// Smallest positive subnormal value (2^-24).
  static constexpr Half min_subnormal() { return from_bits(0x0001u); }
  static constexpr Half infinity() { return from_bits(0x7c00u); }
  static constexpr Half quiet_nan() { return from_bits(0x7e00u); }

  // Inline on purpose: the GEMM packing layer converts Half -> float once
  // per packed element, so an out-of-line call per conversion shows up
  // directly in fp16 GFLOP/s.
  static std::uint16_t encode(float value);
  static float decode(std::uint16_t bits);

 private:
  std::uint16_t bits_ = 0;
};

inline std::uint16_t Half::encode(float value) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t mant = x & 0x007fffffu;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu);

  if (exp == 0xff) {
    // Inf stays Inf; NaN keeps a truncated payload but is forced quiet so a
    // payload that truncates to zero does not collapse into Inf.
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u | 0x0200u | (mant >> 13));
  }

  const std::int32_t e = exp - 127 + 15;  // re-bias binary32 -> binary16
  if (e >= 31) {
    // Overflow: round-to-nearest-even maps every too-large finite value to Inf.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (e <= 0) {
    // Result is subnormal (or rounds to zero).  e in [-9, 0] can still
    // produce a nonzero subnormal; below that everything rounds to +-0
    // except values at exactly half of the smallest subnormal, which round
    // to even (zero) anyway.
    if (e < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x00800000u;  // make the implicit leading bit explicit
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - e);  // in [14, 24]
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1u);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    // half_mant can carry into the exponent field (rounding up to the
    // smallest normal); the bit layout makes that arithmetic correct.
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  std::uint16_t out = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13));
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) {
    ++out;  // may carry into the exponent and correctly roll over to Inf
  }
  return out;
}

inline float Half::decode(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  std::uint32_t mant = bits & 0x03ffu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: value = mant * 2^-24.  Normalize by shifting the mantissa
      // until its leading bit reaches position 10; each shift lowers the
      // exponent by one from the subnormal base of 2^-14.
      std::uint32_t k = 0;
      while ((mant & 0x0400u) == 0) {
        mant <<= 1;
        ++k;
      }
      mant &= 0x03ffu;
      const std::uint32_t exp32 = 127 - 14 - k;
      out = sign | (exp32 << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (mant << 13);  // Inf / NaN (payload preserved)
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

std::ostream& operator<<(std::ostream& os, Half h);

}  // namespace streamk::util
