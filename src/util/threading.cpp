#include "util/threading.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/worker_pool.hpp"
#include "util/check.hpp"

namespace streamk::util {

namespace {

std::atomic<ParallelBackend> g_backend{ParallelBackend::kPool};

enum class Order { kAscending, kDescending };

/// The pre-runtime implementation: spawn `workers - 1` fresh threads per
/// call.  Retained verbatim as the kSpawn backend so the persistent pool's
/// win stays measurable (bench_runtime_throughput.cpp).
void run_spawning(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers, Order order) {
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t ticket = next.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= count) return;
      const std::size_t index =
          order == Order::kAscending ? ticket : count - 1 - ticket;
      try {
        body(index);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep draining tickets so peers blocked on this worker's output are
        // not left waiting forever; subsequent failures are swallowed.
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void run_parallel(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers, Order order) {
  check(workers >= 1, "parallel_for needs at least one worker");
  if (count == 0) return;

  // Never occupy more threads than there are indices to claim.
  workers = std::min(workers, count);

  if (workers == 1) {
    if (order == Order::kAscending) {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } else {
      for (std::size_t i = count; i-- > 0;) body(i);
    }
    return;
  }

  if (g_backend.load(std::memory_order_relaxed) == ParallelBackend::kSpawn) {
    run_spawning(count, body, workers, order);
    return;
  }

  runtime::global_pool().run_region(count, body, workers,
                                    order == Order::kAscending
                                        ? runtime::RegionOrder::kAscending
                                        : runtime::RegionOrder::kDescending);
}

}  // namespace

void set_parallel_backend(ParallelBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

ParallelBackend parallel_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void parallel_for_descending(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t workers) {
  run_parallel(count, body, workers, Order::kDescending);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  run_parallel(count, body, workers, Order::kAscending);
}

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_workers() {
  if (const char* env = std::getenv("STREAMK_WORKERS")) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(env, &end, 10);
    // strtoll reports overflow by returning the clamped LLONG_MAX/MIN with
    // errno == ERANGE -- which would pass a bare `v >= 1` check and spawn
    // an absurd worker count.  Deliberate oversubscription stays supported,
    // but capped at 4x the hardware concurrency; anything past that (or
    // overflowed, or malformed) falls back to the default.
    const long long cap = 4 * static_cast<long long>(hardware_threads());
    if (end != env && *end == '\0' && errno != ERANGE && v >= 1 && v <= cap) {
      return static_cast<std::size_t>(v);
    }
  }
  return hardware_threads();
}

}  // namespace streamk::util
