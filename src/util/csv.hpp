#pragma once

// Minimal CSV emission for benchmark series (roofline scatter data, corpus
// dumps).  Fields are quoted only when needed; numeric cells are formatted
// with enough digits to round-trip.

#include <fstream>
#include <string>
#include <vector>

namespace streamk::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row; must match the header arity.
  void row(const std::vector<std::string>& cells);

  /// Formats a double compactly but losslessly.
  static std::string cell(double v);
  static std::string cell(std::int64_t v);
  static std::string cell(std::size_t v);

  /// Quotes a field per RFC 4180 when it contains separators/quotes.
  static std::string escape(const std::string& field);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace streamk::util
