#include "util/check.hpp"

#include <sstream>

namespace streamk::util {

void fail(const std::string& message, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name()
     << "): " << message;
  throw CheckError(os.str());
}

}  // namespace streamk::util
