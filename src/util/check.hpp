#pragma once

// Precondition / invariant checking.
//
// Following the C++ Core Guidelines we avoid macros: `check` is an inline
// function that captures the call site via std::source_location and throws
// streamk::util::CheckError on violation.  Checks guard *logic* errors in
// this library (mis-sized decompositions, invalid shapes); they are cheap
// and stay enabled in release builds.

#include <source_location>
#include <stdexcept>
#include <string>

namespace streamk::util {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void fail(const std::string& message,
                       std::source_location loc = std::source_location::current());

inline void check(bool condition, const char* message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) fail(message, loc);
}

inline void check(bool condition, const std::string& message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) fail(message, loc);
}

}  // namespace streamk::util
