#include "util/csv.hpp"

#include <charconv>

#include "util/check.hpp"

namespace streamk::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  check(out_.good(), "cannot open CSV output: " + path);
  check(arity_ > 0, "CSV header must be nonempty");
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  check(cells.size() == arity_, "CSV row arity mismatch");
  write_row(cells);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double v) {
  // Shortest round-trip form: to_chars without a precision argument emits
  // the fewest digits that parse back to exactly `v`.  (A fixed precision
  // of 12 silently truncated doubles, so bench CSVs did not round-trip.)
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  check(ec == std::errc(), "double formatting failed");
  return std::string(buf, ptr);
}

std::string CsvWriter::cell(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::cell(std::size_t v) { return std::to_string(v); }

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace streamk::util
