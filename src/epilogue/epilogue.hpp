#pragma once

// Composable fused-epilogue IR: once-per-element output transforms.
//
// Every GEMM-family front end used to terminate at C = alpha*A.B + beta*C,
// forcing real workloads (MLP layers, conv+bias+ReLU, quantization
// calibration) into a second full pass over C -- exactly the memory traffic
// Stream-K's work-centric decomposition exists to avoid.  An EpilogueSpec
// is an ordered chain of EpilogueOps applied in-register to each output
// element after the alpha/beta scale and before the store, the CPU analogue
// of composable_kernel's CElementwiseOperation and MIOpen's fused
// bias+activation conv invokers.
//
// The Stream-K twist is *when* the chain may fire.  Under work-centric
// decomposition a tile's output can be assembled from partial accumulators
// by the fixup protocol (DESIGN.md section 2), and a nonlinear op applied
// to a partial sum is simply wrong: relu(x) + relu(y) != relu(x + y).  The
// once-per-element invariant is therefore enforced structurally: the chain
// runs only inside the owning CTA's store functor -- which executes at
// tile-store time for tiles the CTA produced outright, and at the
// post-fixup reconciliation point (after every peer's partials have been
// reduced) for split tiles.  Spilling CTAs store raw accumulators; no
// epilogue code can observe a partial sum.  tests/test_epilogue.cpp pins
// the invariant with per-element application counting (EpilogueProbe)
// under adversarial Stream-K splits.
//
// An EpilogueSpec separates *structure* from *bindings*:
//
//   * structure -- the op chain (kinds + scalar immediates).  Canonically
//     serialized by class_key() ("bias_col+relu", "clamp(0:6)", ...); the
//     class participates in the tuner's database key so a winner measured
//     for one epilogue class is never served to another.
//   * bindings -- non-owning spans/pointers for the data some ops consume
//     (bias vectors, the residual D matrix) or produce (per-row reduction
//     outputs).  Bindings follow GEMM-operand lifetime rules: they must
//     outlive the call (including async submit_gemm handles).
//
// compile() turns a chain into an EpiloguePlan (validated, flags and class
// key precomputed).  core::SchedulePlan memoizes compiled epilogue plans
// per class (SchedulePlan::epilogue_plan), so steady-state fused traffic
// re-derives nothing per call.  The appliers live in epilogue/apply.hpp.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace streamk::epilogue {

/// One link of the epilogue chain.  Ops execute in chain order, each
/// reading and rewriting the element value v (reductions observe v and
/// write their side output instead).
enum class OpKind : std::uint8_t {
  kBiasRow,    ///< v += bias_row[row]   (one value per output row)
  kBiasCol,    ///< v += bias_col[col]   (one value per output column)
  kReLU,       ///< v = max(v, 0)
  kGELU,       ///< tanh-approximation GELU
  kSigmoid,    ///< v = 1 / (1 + exp(-v))
  kClamp,      ///< v = min(max(v, lo), hi)
  kResidual,   ///< v += D(row, col)     (residual/skip connection)
  kRowAbsMax,  ///< row_abs_max[row] = max(row_abs_max[row], |v|); v unchanged
  kRowSum,     ///< row_sum[row] += v; v unchanged
};

struct EpilogueOp {
  OpKind kind = OpKind::kReLU;
  double lo = 0.0;  ///< clamp lower bound (kClamp only)
  double hi = 0.0;  ///< clamp upper bound (kClamp only)

  friend bool operator==(const EpilogueOp&, const EpilogueOp&) = default;

  static EpilogueOp bias_row() { return {OpKind::kBiasRow}; }
  static EpilogueOp bias_col() { return {OpKind::kBiasCol}; }
  static EpilogueOp relu() { return {OpKind::kReLU}; }
  static EpilogueOp gelu() { return {OpKind::kGELU}; }
  static EpilogueOp sigmoid() { return {OpKind::kSigmoid}; }
  static EpilogueOp clamp(double lo, double hi) {
    return {OpKind::kClamp, lo, hi};
  }
  static EpilogueOp residual() { return {OpKind::kResidual}; }
  static EpilogueOp row_abs_max() { return {OpKind::kRowAbsMax}; }
  static EpilogueOp row_sum() { return {OpKind::kRowSum}; }
};

/// Non-owning row-major matrix reference for the residual operand.  The
/// element type is tagged so the templated applier can verify it matches
/// the output matrix instead of reinterpreting bytes.
struct TensorRef {
  enum class Type : std::uint8_t { kNone, kF64, kF32 };

  Type type = Type::kNone;
  const void* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t ld = 0;  ///< row stride in elements (>= cols)

  static TensorRef of(const double* data, std::int64_t rows, std::int64_t cols,
                      std::int64_t ld = 0) {
    return {Type::kF64, data, rows, cols, ld > 0 ? ld : cols};
  }
  static TensorRef of(const float* data, std::int64_t rows, std::int64_t cols,
                      std::int64_t ld = 0) {
    return {Type::kF32, data, rows, cols, ld > 0 ? ld : cols};
  }
};

/// The user-facing request: op chain plus data bindings.  Travels inside
/// cpu::GemmOptions / cpu::ExecutorOptions by value (spans copy; the
/// referenced storage must outlive the call).
///
/// Row-indexed bindings (bias_row, row_abs_max, row_sum) are indexed by the
/// *global* output row: plain/BLAS GEMM rows for the matrix front ends,
/// the stacked row `entry * m + i` for batched GEMM, the output-pixel index
/// for convolution.  Reduction outputs are read-modify-write: callers
/// initialize them (0 is the natural identity for both |max| and sum) and
/// the epilogue merges per-tile contributions with atomic updates, so the
/// merge order across tiles is unspecified (exact for integer-valued data,
/// last-bit nondeterministic for general floats).
struct EpilogueSpec {
  std::vector<EpilogueOp> ops;  ///< applied in order after alpha/beta scale

  std::span<const double> bias_row;  ///< length >= output rows
  std::span<const double> bias_col;  ///< length >= output cols
  TensorRef residual;                ///< output-shaped D matrix
  std::span<double> row_abs_max;     ///< length >= output rows (written)
  std::span<double> row_sum;         ///< length >= output rows (written)

  bool empty() const { return ops.empty(); }
};

/// Compiled chain: validated ops, consumption flags, and the canonical
/// class key, all derived once.  Immutable and shareable across threads.
class EpiloguePlan {
 public:
  /// Compiles (and validates) `ops`; throws util::CheckError on a malformed
  /// chain (currently: clamp bounds with lo > hi).
  explicit EpiloguePlan(std::vector<EpilogueOp> ops);

  std::span<const EpilogueOp> ops() const { return ops_; }
  bool identity() const { return ops_.empty(); }

  bool needs_bias_row() const { return needs_bias_row_; }
  bool needs_bias_col() const { return needs_bias_col_; }
  bool needs_residual() const { return needs_residual_; }
  /// Any op indexed by the output row (bias_row or a reduction).
  bool has_row_indexed() const { return has_row_indexed_; }
  /// Any reduction output (row_abs_max / row_sum).
  bool has_reduction() const { return has_reduction_; }

  /// Canonical structural fingerprint: "" for the identity chain, else op
  /// tokens joined by '+', scalar immediates in shortest-round-trip form
  /// ("bias_col+gelu", "clamp(-1:1)+row_abs_max").  Comma-free by
  /// construction, so it embeds directly in the tuning database's CSV.
  const std::string& class_key() const { return class_key_; }

  /// The (optional bias_col) + (optional single pointwise op) pattern --
  /// the bias+activation shape MLP and conv layers fuse.  Recognized at
  /// compile time so the applier can run it as one tight loop with no
  /// staging buffer (the generic interpreter stages per op).
  struct BiasActPattern {
    bool bias_col = false;
    bool has_act = false;
    EpilogueOp act{OpKind::kReLU};  ///< relu/gelu/sigmoid/clamp
  };
  /// Non-null when the chain matches BiasActPattern.
  const BiasActPattern* bias_act() const {
    return is_bias_act_ ? &bias_act_ : nullptr;
  }

 private:
  std::vector<EpilogueOp> ops_;
  std::string class_key_;
  bool needs_bias_row_ = false;
  bool needs_bias_col_ = false;
  bool needs_residual_ = false;
  bool has_row_indexed_ = false;
  bool has_reduction_ = false;
  bool is_bias_act_ = false;
  BiasActPattern bias_act_;
};

using EpiloguePlanPtr = std::shared_ptr<const EpiloguePlan>;

/// Compiles a chain (shared identity plan for the empty chain, so the
/// common unfused path allocates nothing).
EpiloguePlanPtr compile(std::span<const EpilogueOp> ops);

/// The shared identity (no-op) plan.
EpiloguePlanPtr identity_plan();

/// class_key() without compiling: "" for an empty chain.
std::string class_key(std::span<const EpilogueOp> ops);

/// Inverse of class_key(): parses a canonical class string back into the
/// op chain it denotes ("" -> empty chain).  Throws util::CheckError on an
/// unrecognized token -- the tuner uses this to rebuild a measurable chain
/// from a database key.
std::vector<EpilogueOp> parse_class_key(std::string_view key);

/// Parse-and-reformat: any parseable class string to its canonical form
/// (the one class_key() computes from a caller's chain, which is what
/// runtime dispatch and the tuning database key on).  Throws
/// util::CheckError on an unparseable class.  The single definition of
/// "canonical" -- every ingestion boundary (TuningDb, tuner, CLI) calls
/// this rather than composing the parse/format pair itself.
std::string canonical_class_key(std::string_view key);

/// Validates `spec`'s bindings against `plan` for an `m` x `n` output with
/// `out_type`-typed elements; throws util::CheckError naming the missing or
/// mis-sized binding.  Front ends call this once per execution, before the
/// parallel region.
void check_bindings(const EpiloguePlan& plan, const EpilogueSpec& spec,
                    std::int64_t m, std::int64_t n, TensorRef::Type out_type);

/// The TensorRef type tag for an output element type.
template <typename Out>
constexpr TensorRef::Type tensor_type_of();
template <>
constexpr TensorRef::Type tensor_type_of<double>() {
  return TensorRef::Type::kF64;
}
template <>
constexpr TensorRef::Type tensor_type_of<float>() {
  return TensorRef::Type::kF32;
}

/// Test-only per-element application accounting (MacProbe's sibling).  When
/// armed, every epilogue application records the output elements it
/// touched; tests assert afterwards that each of the m*n elements was
/// applied *exactly once* -- the invariant that makes nonlinear epilogues
/// legal under Stream-K fixup.  Disabled it costs one relaxed atomic load
/// per applied row.
class EpilogueProbe {
 public:
  /// Arms the probe for an output of `elements` elements (counters zeroed).
  static void begin(std::int64_t elements);
  /// Disarms the probe (counters remain readable until the next begin()).
  static void end();
  static bool enabled();

  /// Records one application of each element in [first, first + count).
  static void record(std::int64_t first, std::int64_t count);

  /// Applications recorded for one element.
  static std::int64_t applications(std::int64_t element);
  /// Total applications recorded.
  static std::int64_t total();
  /// True when every element in [0, elements) was applied exactly once.
  static bool all_exactly_once();
};

}  // namespace streamk::epilogue
