#pragma once

// The one output-scaling + epilogue code path.
//
// Every execution substrate's store functor (plain GEMM, transposed BLAS
// views, batched GEMM, implicit-GEMM convolution) terminates here: apply a
// compiled EpiloguePlan to the accumulator tile in-register -- alpha/beta
// scale first (the scaling loop that used to be hand-rolled per substrate),
// then the chain ops in order -- and store the result.  Because these
// appliers run only from the tile owner's store (solo tiles at tile end,
// split tiles after fixup reduction), each output element passes through
// the chain exactly once; see epilogue/epilogue.hpp for the invariant.
//
// Per-row reductions accumulate locally across the row and merge into the
// caller's output vector with one atomic CAS-loop update per (tile, row) --
// a row of C spans every tile column, so tiles merging into the same row
// element may race.  Reduction results are exact for integer-valued data
// and last-bit order-dependent otherwise (documented on EpilogueSpec).
//
// apply_elementwise() is the *two-pass* formulation of the same chain (a
// second sweep over an already-scaled C), kept for A/B benching
// (bench/bench_epilogue.cpp) and as the reference the property tests
// compare the fused path against.

#include <atomic>
#include <cmath>
#include <cstdint>

#include "epilogue/epilogue.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/threading.hpp"

namespace streamk::epilogue {

namespace detail {

/// Lock-free read-modify-write helpers for the reduction outputs.  CAS
/// loops instead of std::atomic<double>::fetch_add so no libatomic or
/// hardware FP-atomic support is assumed.
inline void atomic_max(double* target, double value) {
  std::atomic_ref<double> ref(*target);
  double current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value,
                                    std::memory_order_relaxed)) {
  }
}

inline void atomic_add(double* target, double value) {
  if (value == 0.0) return;
  std::atomic_ref<double> ref(*target);
  double current = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(current, current + value,
                                    std::memory_order_relaxed)) {
  }
}

template <typename Acc>
inline Acc gelu(Acc v) {
  // tanh-approximation GELU (the form fused into transformer kernels).
  const Acc kSqrt2OverPi = static_cast<Acc>(0.7978845608028654);
  const Acc kCubic = static_cast<Acc>(0.044715);
  return static_cast<Acc>(0.5) * v *
         (static_cast<Acc>(1) +
          std::tanh(kSqrt2OverPi * (v + kCubic * v * v * v)));
}

template <typename Acc>
inline Acc sigmoid(Acc v) {
  return static_cast<Acc>(1) / (static_cast<Acc>(1) + std::exp(-v));
}

}  // namespace detail

namespace detail {

/// Elements staged per chunk: one cache-line-friendly stack buffer that an
/// op's loop sweeps before the next op runs.  Staging per *op* rather than
/// per *element* is what makes the chain cheap -- each case below is a
/// branch-free loop over the chunk the compiler vectorizes, instead of an
/// op-switch inside the element loop (~6x slower measured).
constexpr std::int64_t kRowChunk = 256;

/// One-loop bias+activation row: c[j] = act(a*acc[j] [+ b*c[j]] [+ bias[j]]).
/// The four branch-hoisted variants keep each loop body straight-line so it
/// vectorizes.
template <typename Acc, typename Out, typename Act>
inline void bias_act_row(Acc a, Acc b, bool read_c, const double* bias,
                         const Acc* acc, Out* c, std::int64_t en, Act act) {
  if (read_c) {
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(act(a * acc[j] + b * static_cast<Acc>(c[j]) +
                                    static_cast<Acc>(bias[j])));
      }
    } else {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(
            act(a * acc[j] + b * static_cast<Acc>(c[j])));
      }
    }
  } else {
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(act(a * acc[j] + static_cast<Acc>(bias[j])));
      }
    } else {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(act(a * acc[j]));
      }
    }
  }
}

/// The one activation-kind dispatch for the bias+activation pattern:
/// invokes `run` with the pattern's pointwise op as a callable.  Shared by
/// the row and tile fast paths so an op's scalar form exists exactly once.
template <typename Acc, typename Run>
inline void with_bias_act(const EpiloguePlan::BiasActPattern& fast,
                          Run&& run) {
  switch (fast.has_act ? fast.act.kind : OpKind::kBiasCol) {
    case OpKind::kReLU:
      run([](Acc v) { return v > Acc{} ? v : Acc{}; });
      break;
    case OpKind::kGELU:
      run([](Acc v) { return gelu(v); });
      break;
    case OpKind::kSigmoid:
      run([](Acc v) { return sigmoid(v); });
      break;
    case OpKind::kClamp: {
      const Acc lo = static_cast<Acc>(fast.act.lo);
      const Acc hi = static_cast<Acc>(fast.act.hi);
      run([lo, hi](Acc v) { return v < lo ? lo : (v > hi ? hi : v); });
      break;
    }
    default:  // bias only
      run([](Acc v) { return v; });
      break;
  }
}

}  // namespace detail

/// Applies scale + chain to one contiguous output row fragment and stores
/// it: c[j] = chain(alpha * acc[j] + beta * c[j]) for j in [0, en).
///
/// `row` / `col0` are the *global* output coordinates (they index the
/// row/column bindings and the probe); `out_cols` is the full logical
/// output width (probe element indexing).  `acc` is the accumulator
/// fragment, `c` the output fragment -- they may alias (the two-pass
/// formulation passes c for both with alpha = 1, beta = 0).
template <typename Acc, typename Out>
inline void apply_row(const EpiloguePlan& plan, const EpilogueSpec& spec,
                      double alpha, double beta, std::int64_t row,
                      std::int64_t col0, std::int64_t en,
                      std::int64_t out_cols, const Acc* acc, Out* c) {
  const Acc a = static_cast<Acc>(alpha);
  const Acc b = static_cast<Acc>(beta);
  const bool read_c = beta != 0.0;

  if (plan.identity()) {
    // Pure scaling -- the fast path every unfused GEMM takes.
    if (alpha == 1.0 && !read_c) {
      for (std::int64_t j = 0; j < en; ++j) c[j] = static_cast<Out>(acc[j]);
    } else if (!read_c) {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(a * acc[j]);
      }
    } else {
      for (std::int64_t j = 0; j < en; ++j) {
        c[j] = static_cast<Out>(a * acc[j] + b * static_cast<Acc>(c[j]));
      }
    }
    STREAMK_OBS_COUNT("epilogue.identity_rows");
    if (EpilogueProbe::enabled()) {
      EpilogueProbe::record(row * out_cols + col0, en);
    }
    return;
  }

  if (const EpiloguePlan::BiasActPattern* fast = plan.bias_act()) {
    const double* bias =
        fast->bias_col
            ? spec.bias_col.data() + static_cast<std::size_t>(col0)
            : nullptr;
    detail::with_bias_act<Acc>(*fast, [&](auto act) {
      detail::bias_act_row<Acc, Out>(a, b, read_c, bias, acc, c, en, act);
    });
    STREAMK_OBS_COUNT("epilogue.bias_act_rows");
    if (EpilogueProbe::enabled()) {
      EpilogueProbe::record(row * out_cols + col0, en);
    }
    return;
  }

  // Row-invariant values hoisted out of the chunk loop.
  const Acc bias_r = plan.needs_bias_row()
                         ? static_cast<Acc>(spec.bias_row[
                               static_cast<std::size_t>(row)])
                         : Acc{};
  const double* res64 = nullptr;
  const float* res32 = nullptr;
  if (plan.needs_residual()) {
    const std::size_t offset =
        static_cast<std::size_t>(row * spec.residual.ld + col0);
    if (spec.residual.type == TensorRef::Type::kF64) {
      res64 = static_cast<const double*>(spec.residual.data) + offset;
    } else {
      res32 = static_cast<const float*>(spec.residual.data) + offset;
    }
  }

  double local_abs_max = 0.0;
  double local_sum = 0.0;
  bool saw_abs_max = false;
  bool saw_sum = false;

  for (std::int64_t j0 = 0; j0 < en; j0 += detail::kRowChunk) {
    const std::int64_t cn = std::min(detail::kRowChunk, en - j0);
    Acc v[detail::kRowChunk];

    if (read_c) {
      for (std::int64_t j = 0; j < cn; ++j) {
        v[j] = a * acc[j0 + j] + b * static_cast<Acc>(c[j0 + j]);
      }
    } else {
      for (std::int64_t j = 0; j < cn; ++j) v[j] = a * acc[j0 + j];
    }

    for (const EpilogueOp& op : plan.ops()) {
      switch (op.kind) {
        case OpKind::kBiasRow:
          for (std::int64_t j = 0; j < cn; ++j) v[j] += bias_r;
          break;
        case OpKind::kBiasCol: {
          const double* bias =
              spec.bias_col.data() + static_cast<std::size_t>(col0 + j0);
          for (std::int64_t j = 0; j < cn; ++j) {
            v[j] += static_cast<Acc>(bias[j]);
          }
          break;
        }
        case OpKind::kReLU:
          for (std::int64_t j = 0; j < cn; ++j) {
            v[j] = v[j] > Acc{} ? v[j] : Acc{};
          }
          break;
        case OpKind::kGELU:
          for (std::int64_t j = 0; j < cn; ++j) v[j] = detail::gelu(v[j]);
          break;
        case OpKind::kSigmoid:
          for (std::int64_t j = 0; j < cn; ++j) v[j] = detail::sigmoid(v[j]);
          break;
        case OpKind::kClamp: {
          const Acc lo = static_cast<Acc>(op.lo);
          const Acc hi = static_cast<Acc>(op.hi);
          for (std::int64_t j = 0; j < cn; ++j) {
            v[j] = v[j] < lo ? lo : (v[j] > hi ? hi : v[j]);
          }
          break;
        }
        case OpKind::kResidual:
          if (res64 != nullptr) {
            for (std::int64_t j = 0; j < cn; ++j) {
              v[j] += static_cast<Acc>(res64[j0 + j]);
            }
          } else {
            for (std::int64_t j = 0; j < cn; ++j) {
              v[j] += static_cast<Acc>(res32[j0 + j]);
            }
          }
          break;
        case OpKind::kRowAbsMax:
          for (std::int64_t j = 0; j < cn; ++j) {
            const double av = std::abs(static_cast<double>(v[j]));
            if (av > local_abs_max) local_abs_max = av;
          }
          saw_abs_max = true;
          break;
        case OpKind::kRowSum:
          for (std::int64_t j = 0; j < cn; ++j) {
            local_sum += static_cast<double>(v[j]);
          }
          saw_sum = true;
          break;
      }
    }

    for (std::int64_t j = 0; j < cn; ++j) {
      c[j0 + j] = static_cast<Out>(v[j]);
    }
  }

  if (saw_abs_max) {
    detail::atomic_max(&spec.row_abs_max[static_cast<std::size_t>(row)],
                       local_abs_max);
  }
  if (saw_sum) {
    detail::atomic_add(&spec.row_sum[static_cast<std::size_t>(row)],
                       local_sum);
  }
  STREAMK_OBS_COUNT("epilogue.generic_rows");
  if (EpilogueProbe::enabled()) {
    EpilogueProbe::record(row * out_cols + col0, en);
  }
}

/// Tile form for substrates whose output rows are contiguous: applies
/// apply_row over the em x en fragment at global origin (row0, col0).
/// `acc` strides by `acc_ld`, `c` by `c_ld`.  Note `row0` indexes the
/// *bindings* while `c` already points at the tile's first output element
/// -- batched GEMM passes the stacked global row with an entry-local
/// output pointer.  The bias+activation fast pattern is dispatched once
/// per tile here (not once per row), so its per-row cost is just the loop.
template <typename Acc, typename Out>
inline void apply_tile(const EpiloguePlan& plan, const EpilogueSpec& spec,
                       double alpha, double beta, std::int64_t row0,
                       std::int64_t col0, std::int64_t em, std::int64_t en,
                       std::int64_t out_cols, const Acc* acc,
                       std::int64_t acc_ld, Out* c, std::int64_t c_ld) {
  if (const EpiloguePlan::BiasActPattern* fast = plan.bias_act()) {
    const Acc a = static_cast<Acc>(alpha);
    const Acc b = static_cast<Acc>(beta);
    const bool read_c = beta != 0.0;
    const double* bias =
        fast->bias_col
            ? spec.bias_col.data() + static_cast<std::size_t>(col0)
            : nullptr;
    detail::with_bias_act<Acc>(*fast, [&](auto act) {
      for (std::int64_t i = 0; i < em; ++i) {
        detail::bias_act_row<Acc, Out>(a, b, read_c, bias, acc + i * acc_ld,
                                       c + i * c_ld, en, act);
      }
    });
    STREAMK_OBS_COUNT_N("epilogue.bias_act_rows", em);
    if (EpilogueProbe::enabled()) {
      for (std::int64_t i = 0; i < em; ++i) {
        EpilogueProbe::record((row0 + i) * out_cols + col0, en);
      }
    }
    return;
  }
  for (std::int64_t i = 0; i < em; ++i) {
    apply_row<Acc, Out>(plan, spec, alpha, beta, row0 + i, col0, en, out_cols,
                        acc + i * acc_ld, c + i * c_ld);
  }
}

/// The two-pass formulation: sweeps the chain over an already-scaled m x n
/// output (alpha = 1, beta = 0 -- pass one performed the scaling).  Rows
/// are distributed over `workers` via util::parallel_for so the A/B
/// against the fused path compares equal thread budgets.
template <typename Out>
inline void apply_elementwise(const EpiloguePlan& plan,
                              const EpilogueSpec& spec, std::int64_t m,
                              std::int64_t n, Out* data, std::int64_t ld,
                              std::size_t workers = 1) {
  check_bindings(plan, spec, m, n, tensor_type_of<Out>());
  util::parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t i) {
        const auto row = static_cast<std::int64_t>(i);
        Out* c_row = data + row * ld;
        apply_row<Out, Out>(plan, spec, 1.0, 0.0, row, 0, n, n, c_row,
                            c_row);
      },
      workers);
}

}  // namespace streamk::epilogue
