#include "epilogue/epilogue.hpp"

#include <atomic>
#include <charconv>
#include <mutex>

#include "util/check.hpp"

namespace streamk::epilogue {

namespace {

std::string_view token_of(OpKind kind) {
  switch (kind) {
    case OpKind::kBiasRow:
      return "bias_row";
    case OpKind::kBiasCol:
      return "bias_col";
    case OpKind::kReLU:
      return "relu";
    case OpKind::kGELU:
      return "gelu";
    case OpKind::kSigmoid:
      return "sigmoid";
    case OpKind::kClamp:
      return "clamp";
    case OpKind::kResidual:
      return "residual";
    case OpKind::kRowAbsMax:
      return "row_abs_max";
    case OpKind::kRowSum:
      return "row_sum";
  }
  util::fail("unknown epilogue op kind");
}

/// Shortest-round-trip double formatting (matches the tuning db's CSV
/// cells, so class keys survive save/load byte-identically).
std::string format_scalar(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  util::check(ec == std::errc(), "epilogue: cannot format scalar");
  return std::string(buf, ptr);
}

double parse_scalar(std::string_view token) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  util::check(ec == std::errc() && ptr == token.data() + token.size(),
              "epilogue: malformed scalar '" + std::string(token) +
                  "' in class key");
  return v;
}

EpilogueOp parse_op_token(std::string_view token) {
  for (const auto kind :
       {OpKind::kBiasRow, OpKind::kBiasCol, OpKind::kReLU, OpKind::kGELU,
        OpKind::kSigmoid, OpKind::kResidual, OpKind::kRowAbsMax,
        OpKind::kRowSum}) {
    if (token == token_of(kind)) return {kind};
  }
  // clamp(lo:hi)
  constexpr std::string_view kClampPrefix = "clamp(";
  if (token.substr(0, kClampPrefix.size()) == kClampPrefix &&
      token.back() == ')') {
    const std::string_view body =
        token.substr(kClampPrefix.size(),
                     token.size() - kClampPrefix.size() - 1);
    const std::size_t colon = body.find(':');
    util::check(colon != std::string_view::npos,
                "epilogue: malformed clamp token '" + std::string(token) +
                    "'");
    return EpilogueOp::clamp(parse_scalar(body.substr(0, colon)),
                             parse_scalar(body.substr(colon + 1)));
  }
  util::fail("epilogue: unknown op token '" + std::string(token) +
             "' in class key");
}

}  // namespace

EpiloguePlan::EpiloguePlan(std::vector<EpilogueOp> ops)
    : ops_(std::move(ops)) {
  for (const EpilogueOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kBiasRow:
        needs_bias_row_ = true;
        has_row_indexed_ = true;
        break;
      case OpKind::kBiasCol:
        needs_bias_col_ = true;
        break;
      case OpKind::kClamp:
        util::check(op.lo <= op.hi,
                    "epilogue: clamp bounds out of order (lo > hi)");
        break;
      case OpKind::kResidual:
        needs_residual_ = true;
        break;
      case OpKind::kRowAbsMax:
      case OpKind::kRowSum:
        has_reduction_ = true;
        has_row_indexed_ = true;
        break;
      case OpKind::kReLU:
      case OpKind::kGELU:
      case OpKind::kSigmoid:
        break;
    }
  }
  class_key_ = epilogue::class_key(ops_);

  // Pattern-match the bias+activation shape: (optional leading bias_col)
  // then (optional one pointwise op), nothing else.
  const auto is_pointwise = [](OpKind kind) {
    return kind == OpKind::kReLU || kind == OpKind::kGELU ||
           kind == OpKind::kSigmoid || kind == OpKind::kClamp;
  };
  if (!ops_.empty() && ops_.size() <= 2) {
    std::size_t i = 0;
    BiasActPattern pattern;
    if (ops_[i].kind == OpKind::kBiasCol) {
      pattern.bias_col = true;
      ++i;
    }
    if (i < ops_.size() && is_pointwise(ops_[i].kind)) {
      pattern.has_act = true;
      pattern.act = ops_[i];
      ++i;
    }
    if (i == ops_.size() && (pattern.bias_col || pattern.has_act)) {
      is_bias_act_ = true;
      bias_act_ = pattern;
    }
  }
}

EpiloguePlanPtr compile(std::span<const EpilogueOp> ops) {
  if (ops.empty()) return identity_plan();
  return std::make_shared<const EpiloguePlan>(
      std::vector<EpilogueOp>(ops.begin(), ops.end()));
}

EpiloguePlanPtr identity_plan() {
  static const EpiloguePlanPtr plan =
      std::make_shared<const EpiloguePlan>(std::vector<EpilogueOp>{});
  return plan;
}

std::string class_key(std::span<const EpilogueOp> ops) {
  std::string key;
  for (const EpilogueOp& op : ops) {
    if (!key.empty()) key += '+';
    key += token_of(op.kind);
    if (op.kind == OpKind::kClamp) {
      key += '(';
      key += format_scalar(op.lo);
      key += ':';
      key += format_scalar(op.hi);
      key += ')';
    }
  }
  return key;
}

std::vector<EpilogueOp> parse_class_key(std::string_view key) {
  util::check(key.empty() || key.back() != '+',
              "epilogue: trailing '+' in class key '" + std::string(key) +
                  "'");
  std::vector<EpilogueOp> ops;
  std::size_t begin = 0;
  while (begin < key.size()) {
    // Split on '+' at paren depth zero only: scalar immediates inside
    // clamp(lo:hi) may themselves contain '+' (to_chars exponents like
    // "1e+30").
    std::size_t end = begin;
    int depth = 0;
    while (end < key.size() && (key[end] != '+' || depth > 0)) {
      if (key[end] == '(') ++depth;
      if (key[end] == ')') --depth;
      ++end;
    }
    util::check(end > begin, "epilogue: empty op token in class key '" +
                                 std::string(key) + "'");
    ops.push_back(parse_op_token(key.substr(begin, end - begin)));
    begin = end + 1;
  }
  return ops;
}

std::string canonical_class_key(std::string_view key) {
  if (key.empty()) return {};
  return class_key(parse_class_key(key));
}

void check_bindings(const EpiloguePlan& plan, const EpilogueSpec& spec,
                    std::int64_t m, std::int64_t n,
                    TensorRef::Type out_type) {
  if (plan.needs_bias_row()) {
    util::check(static_cast<std::int64_t>(spec.bias_row.size()) >= m,
                "epilogue: bias_row binding shorter than the output rows");
  }
  if (plan.needs_bias_col()) {
    util::check(static_cast<std::int64_t>(spec.bias_col.size()) >= n,
                "epilogue: bias_col binding shorter than the output columns");
  }
  if (plan.needs_residual()) {
    util::check(spec.residual.type != TensorRef::Type::kNone &&
                    spec.residual.data != nullptr,
                "epilogue: residual op without a bound D matrix");
    util::check(spec.residual.type == out_type,
                "epilogue: residual element type does not match the output");
    util::check(spec.residual.rows >= m && spec.residual.cols >= n &&
                    spec.residual.ld >= spec.residual.cols,
                "epilogue: residual D matrix smaller than the output");
  }
  for (const EpilogueOp& op : plan.ops()) {
    if (op.kind == OpKind::kRowAbsMax) {
      util::check(static_cast<std::int64_t>(spec.row_abs_max.size()) >= m,
                  "epilogue: row_abs_max binding shorter than the output "
                  "rows");
    }
    if (op.kind == OpKind::kRowSum) {
      util::check(static_cast<std::int64_t>(spec.row_sum.size()) >= m,
                  "epilogue: row_sum binding shorter than the output rows");
    }
  }
}

// --- EpilogueProbe ---------------------------------------------------------

namespace {

struct ProbeState {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> elements{0};
  // Fixed-capacity counter array, grown on begin(); atomics are not movable
  // so a vector cannot hold them through a resize.
  std::unique_ptr<std::atomic<std::uint32_t>[]> counts;
  std::int64_t capacity = 0;
  std::mutex begin_mutex;  ///< serializes begin()/end() (tests only)
};

ProbeState& probe_state() {
  static ProbeState* state = new ProbeState();
  return *state;
}

}  // namespace

void EpilogueProbe::begin(std::int64_t elements) {
  ProbeState& state = probe_state();
  std::lock_guard lock(state.begin_mutex);
  util::check(elements >= 0, "epilogue probe: negative element count");
  if (elements > state.capacity) {
    state.counts =
        std::make_unique<std::atomic<std::uint32_t>[]>(
            static_cast<std::size_t>(elements));
    state.capacity = elements;
  }
  for (std::int64_t i = 0; i < elements; ++i) {
    state.counts[static_cast<std::size_t>(i)].store(
        0, std::memory_order_relaxed);
  }
  state.elements.store(elements, std::memory_order_relaxed);
  state.enabled.store(true, std::memory_order_release);
}

void EpilogueProbe::end() {
  probe_state().enabled.store(false, std::memory_order_release);
}

bool EpilogueProbe::enabled() {
  return probe_state().enabled.load(std::memory_order_acquire);
}

void EpilogueProbe::record(std::int64_t first, std::int64_t count) {
  ProbeState& state = probe_state();
  const std::int64_t elements =
      state.elements.load(std::memory_order_relaxed);
  // Out-of-range applications are a test-setup mismatch (probe armed for a
  // different output); fail loudly instead of scribbling.
  util::check(first >= 0 && count >= 0 && first + count <= elements,
              "epilogue probe: application outside the armed element range");
  for (std::int64_t i = 0; i < count; ++i) {
    state.counts[static_cast<std::size_t>(first + i)].fetch_add(
        1, std::memory_order_relaxed);
  }
}

std::int64_t EpilogueProbe::applications(std::int64_t element) {
  ProbeState& state = probe_state();
  util::check(element >= 0 &&
                  element < state.elements.load(std::memory_order_relaxed),
              "epilogue probe: element outside the armed range");
  return state.counts[static_cast<std::size_t>(element)].load(
      std::memory_order_relaxed);
}

std::int64_t EpilogueProbe::total() {
  ProbeState& state = probe_state();
  const std::int64_t elements =
      state.elements.load(std::memory_order_relaxed);
  std::int64_t sum = 0;
  for (std::int64_t i = 0; i < elements; ++i) {
    sum += state.counts[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

bool EpilogueProbe::all_exactly_once() {
  ProbeState& state = probe_state();
  const std::int64_t elements =
      state.elements.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < elements; ++i) {
    if (state.counts[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed) != 1) {
      return false;
    }
  }
  return true;
}

}  // namespace streamk::epilogue
