#include "corpus/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace streamk::corpus {

double compute_bound_threshold(gpu::Precision precision) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return 150.0;
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      return 400.0;
  }
  util::fail("unknown precision");
}

Corpus Corpus::paper(std::size_t count) {
  return Corpus(sample_shapes(count, SamplerConfig{}));
}

Corpus::Corpus(std::vector<core::GemmShape> shapes)
    : shapes_(std::move(shapes)) {
  util::check(!shapes_.empty(), "empty corpus");
}

std::vector<core::GemmShape> Corpus::compute_bound(
    gpu::Precision precision) const {
  const double threshold = compute_bound_threshold(precision);
  std::vector<core::GemmShape> out;
  for (const core::GemmShape& s : shapes_) {
    if (s.arithmetic_intensity(precision) > threshold) out.push_back(s);
  }
  return out;
}

double Corpus::volume_orders_of_magnitude() const {
  double lo = shapes_.front().flops();
  double hi = lo;
  for (const core::GemmShape& s : shapes_) {
    lo = std::min(lo, s.flops());
    hi = std::max(hi, s.flops());
  }
  return std::log10(hi / lo);
}

void Corpus::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"m", "n", "k", "macs", "intensity_fp64",
                             "intensity_fp16f32"});
  for (const core::GemmShape& s : shapes_) {
    csv.row({util::CsvWriter::cell(s.m), util::CsvWriter::cell(s.n),
             util::CsvWriter::cell(s.k), util::CsvWriter::cell(s.macs()),
             util::CsvWriter::cell(
                 s.arithmetic_intensity(gpu::Precision::kFp64)),
             util::CsvWriter::cell(
                 s.arithmetic_intensity(gpu::Precision::kFp16F32))});
  }
}

}  // namespace streamk::corpus
