#pragma once

// The evaluation corpus: 32,824 GEMM problem shapes (Figure 4).
//
// Provides the paper's compute-bound filters (the arithmetic-intensity
// thresholds of 150 FLOP/byte for FP64 and 400 FLOP/byte for FP16->32 used
// in Tables 1-2 and Figure 7), summary statistics for the Figure 4 bench,
// and CSV export for external plotting.

#include <cstddef>
#include <string>
#include <vector>

#include "core/gemm_shape.hpp"
#include "corpus/sampler.hpp"
#include "gpu/precision.hpp"

namespace streamk::corpus {

/// Paper corpus size.
inline constexpr std::size_t kPaperCorpusSize = 32824;

/// Compute-bound arithmetic-intensity threshold (Section 6, final
/// paragraph): 150 ops/byte for FP64, 400 ops/byte for FP16->32.
double compute_bound_threshold(gpu::Precision precision);

class Corpus {
 public:
  /// The paper's corpus (deterministic).  `count` is overridable so tests
  /// and quick runs can use subsets with identical statistics.
  static Corpus paper(std::size_t count = kPaperCorpusSize);

  /// Custom corpus.
  Corpus(std::vector<core::GemmShape> shapes);

  const std::vector<core::GemmShape>& shapes() const { return shapes_; }
  std::size_t size() const { return shapes_.size(); }

  /// Shapes whose arithmetic intensity exceeds the compute-bound threshold.
  std::vector<core::GemmShape> compute_bound(gpu::Precision precision) const;

  /// Volume (m*n*k) spread in orders of magnitude (Figure 4 quotes six).
  double volume_orders_of_magnitude() const;

  /// Writes shape, volume and per-precision intensity columns.
  void write_csv(const std::string& path) const;

 private:
  std::vector<core::GemmShape> shapes_;
};

}  // namespace streamk::corpus
