#pragma once

// Log-uniform GEMM shape sampling (the paper's Figure 4 test domain).
//
// The corpus approximates "the enormous breadth and scope of device-wide
// GEMM problems that GPU math kernel libraries are designed to accommodate":
// m, n and k are each log-sampled at random from [128, 8192], so problem
// volumes span six orders of magnitude.  Sampling is deterministic under a
// fixed seed so every bench regenerates the identical 32,824 problems.

#include <cstdint>
#include <vector>

#include "core/gemm_shape.hpp"

namespace streamk::corpus {

struct SamplerConfig {
  std::int64_t lo = 128;
  std::int64_t hi = 8192;
  std::uint64_t seed = 0x5eed'0f'5eedULL;
  /// Round sampled extents to a multiple of this (1 = no rounding; the
  /// paper's corpus uses raw sizes, exercising ragged tiles).
  std::int64_t multiple_of = 1;
};

std::vector<core::GemmShape> sample_shapes(std::size_t count,
                                           const SamplerConfig& config = {});

}  // namespace streamk::corpus
