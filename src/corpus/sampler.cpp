#include "corpus/sampler.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace streamk::corpus {

std::vector<core::GemmShape> sample_shapes(std::size_t count,
                                           const SamplerConfig& config) {
  util::check(config.lo >= 1 && config.hi >= config.lo, "invalid size range");
  util::check(config.multiple_of >= 1, "invalid rounding multiple");

  util::Pcg32 rng(config.seed);
  std::vector<core::GemmShape> shapes;
  shapes.reserve(count);

  auto sample_extent = [&]() {
    std::int64_t v = rng.log_uniform_int(config.lo, config.hi);
    if (config.multiple_of > 1) {
      v = std::max(config.lo,
                   (v / config.multiple_of) * config.multiple_of);
    }
    return v;
  };

  for (std::size_t i = 0; i < count; ++i) {
    core::GemmShape s;
    s.m = sample_extent();
    s.n = sample_extent();
    s.k = sample_extent();
    shapes.push_back(s);
  }
  return shapes;
}

}  // namespace streamk::corpus
