#pragma once

// Explicit-state model checking of the runtime's lock-free protocols.
//
// The repo relies on two hand-rolled synchronization protocols:
//
//   * the Stream-K fixup flag protocol (cpu/workspace.hpp): a spilling CTA
//     writes its partials slot, then raises its flag with a release store;
//     the tile owner acquires each contributor's flag before reading the
//     slot and reduces in ascending peer order;
//   * the panel-cache slot protocol (cpu/panel_cache.hpp):
//     kEmpty --CAS--> kPacking --store-release--> kReady, with readers
//     load-acquiring kReady and a bounded-spin fall-back-to-private-pack
//     exit for CTAs that observe kPacking.
//
// Both were verified only dynamically (TSan over the interleavings the
// scheduler happened to produce).  This checker enumerates *every*
// interleaving of a small-scope configuration (2-4 CTAs, one tile / one
// slot -- the scope where these protocols' defects live, since neither
// protocol couples distinct tiles or slots) by explicit-state DFS over an
// abstract transition system: each atomic action of the real code is one
// transition, release/acquire pairs are modeled by splitting the data
// write from the flag publish so stale reads are reachable states, and
// blocking waits are transitions enabled only when their flag is set.
//
// Checked properties:
//   * no deadlock -- every reachable non-final state has an enabled
//     transition (PM-DEADLOCK otherwise, with the blocked-thread set);
//   * no read-before-publish -- a consumer never observes unpublished data
//     (PM-VIOLATION);
//   * no lost contribution -- the owner's store sees every contributor's
//     partials (PM-VIOLATION);
//   * no double claim -- at most one CTA inside the slot's packing
//     critical region (PM-VIOLATION).
//
// The checker itself is tested by *mutants*: seeded single-defect protocol
// variants (dropped release, skipped flag, lost contribution, double
// claim, read-before-ready, and dropped-release-without-fallback) that the
// checker must reject with the expected property violation and a concrete
// counterexample trace.  A checker that passes a mutant is broken, and
// run_model_suite() fails.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace streamk::analysis {

/// Seeded defects of the fixup flag protocol.
enum class FixupMutant {
  kNone,              ///< production protocol
  kDroppedRelease,    ///< a contributor never raises its flag
  kSkippedFlag,       ///< the owner reads partials without awaiting the flag
  kLostContribution,  ///< the owner reduces one contributor short
};

/// Seeded defects of the panel-cache slot protocol.
enum class PanelMutant {
  kNone,             ///< production protocol (CAS claim + fallback)
  kDoubleClaim,      ///< claim is a non-atomic test-then-set
  kReadBeforeReady,  ///< a consumer accepts a kPacking slot as published
  kDroppedRelease,   ///< the packer never publishes kReady AND waiters have
                     ///< no private-pack fallback (shows the fallback is
                     ///< the load-bearing half of the liveness argument)
};

std::string_view fixup_mutant_name(FixupMutant mutant);
std::string_view panel_mutant_name(PanelMutant mutant);

/// Outcome of exhaustively exploring one protocol configuration.
struct ModelResult {
  std::string protocol;  ///< e.g. "fixup(contributors=2)"
  bool ok = false;
  /// Rule id (rules::kProtocolDeadlock / kProtocolViolation) when !ok.
  std::string rule;
  /// Property violated, e.g. "read-before-publish: owner consumed
  /// contributor 1's partials before they were written".
  std::string violation;
  /// Interleaving reaching the bad state, one action per line.
  std::vector<std::string> trace;
  std::int64_t states_explored = 0;

  std::string to_text() const;
};

/// Exhaustively checks the fixup protocol with `contributors` spilling CTAs
/// (1..3) plus the owner.
ModelResult check_fixup_protocol(int contributors,
                                 FixupMutant mutant = FixupMutant::kNone);

/// Exhaustively checks the panel-cache slot protocol with `ctas` CTAs (2..4)
/// racing for one slot.
ModelResult check_panel_protocol(int ctas,
                                 PanelMutant mutant = PanelMutant::kNone);

/// The full verification suite: every production configuration must verify
/// clean, and every mutant must be rejected with its expected property
/// violation.  `ok` is the conjunction; `report` carries one finding per
/// failure (a dirty production protocol OR an undetected mutant -- the
/// latter means the checker lost its teeth).
struct ModelSuite {
  bool ok = false;
  std::vector<ModelResult> production;
  /// (mutant description, result) -- result.ok == true is a suite failure.
  std::vector<std::pair<std::string, ModelResult>> mutants;
  AnalysisReport report;
  std::int64_t total_states = 0;
};

ModelSuite run_model_suite();

}  // namespace streamk::analysis
