#include "analysis/analyze.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "analysis/wait_graph.hpp"
#include "core/schedule_plan.hpp"

namespace streamk::analysis {
namespace {

// Tri-state: -1 = follow environment / build default, else 0 / 1.
std::atomic<int> g_override{-1};

bool default_enabled() {
  if (const char* env = std::getenv("STREAMK_ANALYZE")) {
    return std::string(env) != "0" && std::string(env) != "";
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace

AnalysisError::AnalysisError(std::string rule, std::string plan,
                             const std::string& what)
    : util::CheckError(what), rule_(std::move(rule)), plan_(std::move(plan)) {}

bool analyze_on_insert_enabled() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  // The default is computed once: the env var is read at first use, not
  // per-insert.
  static const bool enabled = default_enabled();
  return enabled;
}

void set_analyze_on_insert(bool enabled) {
  g_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void check_plan(const core::SchedulePlan& plan) {
  AnalysisReport report = analyze_plan(plan);
  if (report.ok()) return;
  std::string rule;
  for (const Diagnostic& d : report.findings) {
    if (d.severity == Severity::kError) {
      rule = d.rule;
      break;
    }
  }
  throw AnalysisError(rule, report.subject,
                      "static analysis rejected " + report.subject + ": " +
                          report.to_text());
}

void maybe_check_on_insert(const core::SchedulePlan& plan) {
  if (analyze_on_insert_enabled()) check_plan(plan);
}

}  // namespace streamk::analysis
