#include "analysis/wait_graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "core/grouped.hpp"
#include "core/work_mapping.hpp"

namespace streamk::analysis {

namespace {

/// Caps per-rule finding volume so one systemic defect in a large plan
/// (say, every tile missing its owner) reports a handful of instances plus
/// a count, not megabytes of repetition.
class Emitter {
 public:
  static constexpr std::int64_t kPerRuleCap = 8;

  explicit Emitter(AnalysisReport& report) : report_(report) {}

  void add(std::string_view rule, Severity severity, std::string message) {
    std::int64_t& count = counts_[std::string(rule)];
    ++count;
    if (count <= kPerRuleCap) {
      report_.add(rule, severity, std::move(message));
    }
  }

  /// Appends one "suppressed N further findings" note per capped rule.
  void finish() {
    for (const auto& [rule, count] : counts_) {
      if (count > kPerRuleCap) {
        report_.add(rule, Severity::kError,
                    "... " + std::to_string(count - kPerRuleCap) +
                        " further " + rule + " finding(s) suppressed");
      }
    }
  }

 private:
  AnalysisReport& report_;
  std::map<std::string, std::int64_t> counts_;
};

/// Per-tile geometry access that is uniform across single-problem and
/// grouped plans (the latter have no one WorkMapping).
struct TileGeometry {
  const core::SchedulePlan& plan;
  const core::GroupedMapping* grouped;

  explicit TileGeometry(const core::SchedulePlan& p)
      : plan(p), grouped(p.group()) {}

  std::int64_t iters_per_tile(std::int64_t tile) const {
    return grouped != nullptr ? grouped->iters_per_tile(tile)
                              : plan.mapping().iters_per_tile();
  }

  /// Panel-cache keys (row, col) of `tile` in the arena's slot grid.
  std::pair<std::int64_t, std::int64_t> panel_keys(std::int64_t tile) const {
    if (grouped != nullptr) {
      const core::GroupedTileRef ref = grouped->tile_ref(tile);
      const core::GroupedProblem& prob = grouped->problem(ref.problem);
      return {prob.row_panel_offset + ref.tm, prob.col_panel_offset + ref.tn};
    }
    const core::TileCoord coord = plan.mapping().tile_coord(tile);
    return {coord.tm, coord.tn};
  }
};

std::string segment_text(const core::TileSegment& seg) {
  std::ostringstream os;
  os << "tile " << seg.tile_idx << " [" << seg.iter_begin << ","
     << seg.iter_end << ")";
  return os.str();
}

}  // namespace

std::int64_t WaitGraph::program_edges() const {
  std::int64_t count = 0;
  for (const WaitEdge& e : edges) {
    if (e.kind == EdgeKind::kProgram) ++count;
  }
  return count;
}

std::int64_t WaitGraph::fixup_edges() const {
  return static_cast<std::int64_t>(edges.size()) - program_edges();
}

std::string WaitGraph::describe_node(const core::SchedulePlan& plan,
                                     std::int64_t node) const {
  const core::TileSegment& seg =
      plan.segments()[static_cast<std::size_t>(node)];
  std::ostringstream os;
  os << "cta " << node_cta[static_cast<std::size_t>(node)] << " ("
     << segment_text(seg) << ")";
  return os.str();
}

std::vector<std::int64_t> WaitGraph::find_cycle() const {
  // Iterative DFS; a back edge to a node still on the gray path closes a
  // concrete cycle, and the gray path's suffix from that node IS the cycle
  // (every consecutive pair is an edge, and the back edge closes it).
  std::vector<std::vector<std::int64_t>> successors(
      static_cast<std::size_t>(nodes));
  for (const WaitEdge& e : edges) {
    successors[static_cast<std::size_t>(e.from)].push_back(e.to);
  }
  enum : std::int8_t { kNew = 0, kOnPath = 1, kDone = 2 };
  std::vector<std::int8_t> color(static_cast<std::size_t>(nodes), kNew);
  std::vector<std::size_t> next_succ(static_cast<std::size_t>(nodes), 0);
  std::vector<std::int64_t> path;
  for (std::int64_t root = 0; root < nodes; ++root) {
    if (color[static_cast<std::size_t>(root)] != kNew) continue;
    color[static_cast<std::size_t>(root)] = kOnPath;
    path.assign(1, root);
    while (!path.empty()) {
      const auto n = static_cast<std::size_t>(path.back());
      if (next_succ[n] < successors[n].size()) {
        const std::int64_t succ = successors[n][next_succ[n]++];
        const auto s = static_cast<std::size_t>(succ);
        if (color[s] == kNew) {
          color[s] = kOnPath;
          path.push_back(succ);
        } else if (color[s] == kOnPath) {
          const auto loop_start = std::find(path.begin(), path.end(), succ);
          return {loop_start, path.end()};
        }
      } else {
        color[n] = kDone;
        path.pop_back();
      }
    }
  }
  return {};
}

WaitGraph build_wait_graph(const core::SchedulePlan& plan) {
  WaitGraph graph;
  graph.nodes = plan.total_segments();
  graph.node_cta.assign(static_cast<std::size_t>(graph.nodes), 0);

  // Arena order is CTA-major, so a CTA's node range is contiguous; program
  // order chains consecutive nodes of one CTA.
  const core::TileSegment* arena = plan.segments().data();
  for (std::int64_t cta = 0; cta < plan.grid(); ++cta) {
    const auto segments = plan.cta_segments(cta);
    if (segments.empty()) continue;
    const std::int64_t base = segments.data() - arena;
    for (std::size_t j = 0; j < segments.size(); ++j) {
      const std::int64_t node = base + static_cast<std::int64_t>(j);
      graph.node_cta[static_cast<std::size_t>(node)] = cta;
      if (j > 0) graph.edges.push_back({node - 1, node, EdgeKind::kProgram});
    }
  }

  // Fixup edges: contributor spilling segment -> owner starting segment of
  // the same tile.  Built from one arena sweep (a tile's owner may be
  // ambiguous in malformed plans; the first starting segment stands in so
  // graph construction never throws -- the EP-OWNER rule reports the
  // ambiguity itself).
  std::vector<std::int64_t> owner_node(static_cast<std::size_t>(plan.tiles()),
                                       -1);
  for (std::int64_t node = 0; node < graph.nodes; ++node) {
    const core::TileSegment& seg = arena[node];
    if (seg.tile_idx < 0 || seg.tile_idx >= plan.tiles()) continue;
    if (seg.starts_tile() &&
        owner_node[static_cast<std::size_t>(seg.tile_idx)] == -1) {
      owner_node[static_cast<std::size_t>(seg.tile_idx)] = node;
    }
  }
  for (std::int64_t node = 0; node < graph.nodes; ++node) {
    const core::TileSegment& seg = arena[node];
    if (seg.tile_idx < 0 || seg.tile_idx >= plan.tiles()) continue;
    if (seg.starts_tile()) continue;
    const std::int64_t owner = owner_node[static_cast<std::size_t>(seg.tile_idx)];
    if (owner >= 0) graph.edges.push_back({node, owner, EdgeKind::kFixup});
  }
  return graph;
}

std::string plan_summary(const core::SchedulePlan& plan) {
  std::ostringstream os;
  os << "plan '" << plan.name() << "' kind=" << core::kind_name(plan.kind())
     << " grid=" << plan.grid() << " tiles=" << plan.tiles()
     << " segments=" << plan.total_segments();
  if (plan.group() != nullptr) {
    os << " problems=" << plan.group()->problems();
  }
  return os.str();
}

AnalysisReport analyze_plan(const core::SchedulePlan& plan) {
  AnalysisReport report;
  report.subject = plan_summary(plan);
  Emitter emit(report);
  const TileGeometry geom(plan);
  const bool grouped = plan.group() != nullptr;

  const WaitGraph graph = build_wait_graph(plan);
  report.nodes = graph.nodes;
  report.program_edges = graph.program_edges();
  report.fixup_edges = graph.fixup_edges();

  // --- WG-CYCLE: the wait graph must be a DAG ----------------------------
  const std::vector<std::int64_t> cycle = graph.find_cycle();
  if (!cycle.empty()) {
    std::ostringstream os;
    os << "wait graph cycle (" << cycle.size() << " segments): ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) os << " -> ";
      os << graph.describe_node(plan, cycle[i]);
    }
    os << " -> " << graph.describe_node(plan, cycle.front());
    emit.add(rules::kWaitCycle, Severity::kError, os.str());
  }

  // --- WG-WAIT-DIR: fixup waits must target strictly higher CTA ids ------
  for (const WaitEdge& e : graph.edges) {
    if (e.kind != EdgeKind::kFixup) continue;
    const std::int64_t contributor = graph.node_cta[static_cast<std::size_t>(e.from)];
    const std::int64_t owner = graph.node_cta[static_cast<std::size_t>(e.to)];
    if (contributor <= owner) {
      std::ostringstream os;
      os << "fixup wait against the claim order: owner "
         << graph.describe_node(plan, e.to) << " waits on contributor "
         << graph.describe_node(plan, e.from)
         << " whose id is not strictly higher; a bounded pool claiming in "
            "descending order may never execute the awaited CTA";
      emit.add(rules::kWaitDirection, Severity::kError, os.str());
    }
  }

  // --- WG-SLOT-ALIAS: one spill slot per CTA, written at most once -------
  {
    std::vector<std::int64_t> slots_seen;
    for (std::int64_t cta = 0; cta < plan.grid(); ++cta) {
      std::int64_t spills = 0;
      for (const core::TileSegment& seg : plan.cta_segments(cta)) {
        if (!seg.starts_tile()) ++spills;
      }
      const std::int64_t slot = plan.spill_slot(cta);
      if (spills > 1) {
        emit.add(rules::kSlotAlias, Severity::kError,
                 "cta " + std::to_string(cta) + " has " +
                     std::to_string(spills) +
                     " non-starting segments: its second spill would "
                     "overwrite the partials slot before the first owner "
                     "consumed it");
      }
      if (spills > 0 && slot < 0) {
        emit.add(rules::kSlotAlias, Severity::kError,
                 "cta " + std::to_string(cta) +
                     " spills but has no partials slot");
      }
      if (spills == 0 && slot >= 0) {
        emit.add(rules::kSlotAlias, Severity::kWarning,
                 "cta " + std::to_string(cta) +
                     " holds partials slot " + std::to_string(slot) +
                     " but never spills (wasted workspace)");
      }
      if (slot >= 0) slots_seen.push_back(slot);
    }
    std::sort(slots_seen.begin(), slots_seen.end());
    for (std::size_t i = 0; i < slots_seen.size(); ++i) {
      const bool duplicate = i > 0 && slots_seen[i] == slots_seen[i - 1];
      const bool out_of_range =
          slots_seen[i] < 0 || slots_seen[i] >= plan.spill_slot_count();
      if (duplicate || out_of_range) {
        emit.add(rules::kSlotAlias, Severity::kError,
                 "spill slot " + std::to_string(slots_seen[i]) +
                     (duplicate ? " assigned to two CTAs (aliased partials)"
                                : " outside the dense slot range"));
      }
    }
  }

  // --- per-tile rules: ownership, coverage, boundaries -------------------
  std::vector<std::int64_t> starters(static_cast<std::size_t>(plan.tiles()),
                                     0);
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> ranges(
      static_cast<std::size_t>(plan.tiles()));
  for (std::int64_t node = 0; node < graph.nodes; ++node) {
    const core::TileSegment& seg =
        plan.segments()[static_cast<std::size_t>(node)];
    const std::int64_t cta = graph.node_cta[static_cast<std::size_t>(node)];
    if (seg.tile_idx < 0 || seg.tile_idx >= plan.tiles()) {
      emit.add(rules::kSegmentMalformed, Severity::kError,
               "cta " + std::to_string(cta) + ": " + segment_text(seg) +
                   " names a tile outside [0, " +
                   std::to_string(plan.tiles()) + ")");
      continue;
    }
    const std::int64_t ipt = geom.iters_per_tile(seg.tile_idx);
    if (seg.iter_begin < 0 || seg.iter_begin >= seg.iter_end) {
      emit.add(rules::kSegmentMalformed, Severity::kError,
               "cta " + std::to_string(cta) + ": " + segment_text(seg) +
                   " has a malformed iteration range");
    } else if (seg.iter_end > ipt) {
      // On grouped plans an over-long range runs into the next tile --
      // which may belong to the next *problem* (different operands, a
      // different epilogue binding): the boundary-straddle class.
      const std::string_view rule =
          grouped ? rules::kBoundaryStraddle : rules::kSegmentMalformed;
      std::ostringstream os;
      os << "cta " << cta << ": " << segment_text(seg)
         << " runs past its tile depth " << ipt;
      if (grouped) {
        os << " (straddles into the next tile of problem "
           << geom.grouped->problem_of_tile(seg.tile_idx) << " or beyond "
           << "its problem boundary)";
      }
      emit.add(rule, Severity::kError, os.str());
    } else if (seg.last != (seg.iter_end == ipt)) {
      emit.add(rules::kSegmentMalformed, Severity::kError,
               "cta " + std::to_string(cta) + ": " + segment_text(seg) +
                   " has `last` inconsistent with tile depth " +
                   std::to_string(ipt));
    }
    if (seg.starts_tile()) {
      ++starters[static_cast<std::size_t>(seg.tile_idx)];
    }
    ranges[static_cast<std::size_t>(seg.tile_idx)].emplace_back(
        seg.iter_begin, std::min(seg.iter_end, ipt));
  }

  for (std::int64_t tile = 0; tile < plan.tiles(); ++tile) {
    const std::int64_t owners = starters[static_cast<std::size_t>(tile)];
    if (owners != 1) {
      std::ostringstream os;
      os << "tile " << tile << " has " << owners
         << " starting segment(s); its store -- and any fused epilogue "
            "chain -- would run "
         << owners << " time(s) instead of exactly once";
      if (grouped && owners > 1) {
        os << " (problem " << geom.grouped->problem_of_tile(tile) << ")";
      }
      emit.add(rules::kEpilogueOwner, Severity::kError, os.str());
    }

    auto& tile_ranges = ranges[static_cast<std::size_t>(tile)];
    std::sort(tile_ranges.begin(), tile_ranges.end());
    const std::int64_t ipt = geom.iters_per_tile(tile);
    std::int64_t cursor = 0;
    for (const auto& [begin, end] : tile_ranges) {
      if (begin > cursor) {
        emit.add(rules::kCoverageGap, Severity::kError,
                 "tile " + std::to_string(tile) + " iterations [" +
                     std::to_string(cursor) + "," + std::to_string(begin) +
                     ") are covered by no segment");
      } else if (begin < cursor) {
        emit.add(rules::kCoverageOverlap, Severity::kError,
                 "tile " + std::to_string(tile) + " iteration " +
                     std::to_string(begin) +
                     " is covered by more than one segment");
      }
      cursor = std::max(cursor, end);
    }
    if (cursor < ipt) {
      emit.add(rules::kCoverageGap, Severity::kError,
               "tile " + std::to_string(tile) + " iterations [" +
                   std::to_string(cursor) + "," + std::to_string(ipt) +
                   ") are covered by no segment");
    }
  }

  // --- PC-GEOMETRY: panel-cache slot grid consistency --------------------
  {
    const core::PanelCacheGeometry& pg = plan.panel_geometry();
    const std::int64_t chunk_iters = plan.pack_geometry().chunk_iters;
    if (pg.panel_kc != plan.pack_geometry().panel_kc) {
      emit.add(rules::kPanelGeometry, Severity::kError,
               "panel-cache chunk depth " + std::to_string(pg.panel_kc) +
                   " disagrees with the pack geometry's " +
                   std::to_string(plan.pack_geometry().panel_kc));
    }
    if (grouped) {
      // Problems' key ranges must tile the arena disjointly: overlapping
      // ranges would publish one problem's packed operands to another.
      std::int64_t row_cursor = 0;
      std::int64_t col_cursor = 0;
      for (std::size_t p = 0; p < geom.grouped->problems(); ++p) {
        const core::GroupedProblem& prob = geom.grouped->problem(p);
        if (prob.row_panel_offset != row_cursor ||
            prob.col_panel_offset != col_cursor) {
          emit.add(rules::kPanelGeometry, Severity::kError,
                   "problem " + std::to_string(p) +
                       " panel-key offsets overlap or leave gaps against "
                       "the preceding problems");
        }
        row_cursor = prob.row_panel_offset + prob.tiles_m;
        col_cursor = prob.col_panel_offset + prob.tiles_n;
      }
      if (pg.row_panels != row_cursor || pg.col_panels != col_cursor) {
        emit.add(rules::kPanelGeometry, Severity::kError,
                 "panel-cache slot grid (" + std::to_string(pg.row_panels) +
                     " x " + std::to_string(pg.col_panels) +
                     " panels) does not match the concatenated problem "
                     "panel spaces");
      }
    }

    // Every segment's panel keys and touched chunks must land inside the
    // slot grid, and shared-chunk statistics fall out of the same sweep.
    const bool grid_valid = pg.row_panels > 0 && pg.col_panels > 0 &&
                            pg.chunks > 0 && chunk_iters > 0;
    if (grid_valid) {
      std::vector<std::int32_t> row_touch(
          static_cast<std::size_t>(pg.row_panels * pg.chunks), 0);
      std::vector<std::int32_t> col_touch(
          static_cast<std::size_t>(pg.col_panels * pg.chunks), 0);
      for (const core::TileSegment& seg : plan.segments()) {
        if (seg.tile_idx < 0 || seg.tile_idx >= plan.tiles()) continue;
        const auto [row_key, col_key] = geom.panel_keys(seg.tile_idx);
        if (row_key < 0 || row_key >= pg.row_panels || col_key < 0 ||
            col_key >= pg.col_panels) {
          emit.add(rules::kPanelGeometry, Severity::kError,
                   segment_text(seg) + " maps to panel key (" +
                       std::to_string(row_key) + ", " +
                       std::to_string(col_key) +
                       ") outside the arena slot grid");
          continue;
        }
        // Cache-served chunks mirror run_cached_chunks' cacheability test:
        // the per-segment chunk walk starts at iter_begin, so its chunks
        // align with the absolute grid only when iter_begin itself is
        // chunk-aligned, and a chunk is served only when the segment covers
        // it in full (misaligned Stream-K fragments pack privately by
        // design).
        const std::int64_t ipt = geom.iters_per_tile(seg.tile_idx);
        if (seg.iter_begin % chunk_iters != 0) continue;
        const std::int64_t end_full = std::min(seg.iter_end, ipt);
        for (std::int64_t c = seg.iter_begin / chunk_iters;
             std::min((c + 1) * chunk_iters, ipt) <= end_full &&
             c * chunk_iters < end_full;
             ++c) {
          if (c >= pg.chunks) {
            emit.add(rules::kPanelGeometry, Severity::kError,
                     segment_text(seg) + " touches k-chunk " +
                         std::to_string(c) + " outside the arena's " +
                         std::to_string(pg.chunks) + "-chunk axis");
            break;
          }
          ++row_touch[static_cast<std::size_t>(row_key * pg.chunks + c)];
          ++col_touch[static_cast<std::size_t>(col_key * pg.chunks + c)];
        }
      }
      std::int64_t shared = 0;
      for (const std::int32_t touches : row_touch) {
        if (touches >= 2) ++shared;
      }
      for (const std::int32_t touches : col_touch) {
        if (touches >= 2) ++shared;
      }
      report.shared_panel_chunks = shared;
    }
  }

  emit.finish();
  return report;
}

}  // namespace streamk::analysis
