#pragma once

// Static wait-graph derivation and concurrency rule sweep over a compiled
// core::SchedulePlan.
//
// The runtime's deadlock-freedom argument (cpu/decomposed_runner.hpp,
// DESIGN.md section 5) is a *protocol* argument: CTAs are claimed in
// descending id order and fixup waits target higher ids only.  Nothing
// verified that a given compiled plan actually has that shape -- the
// property held by construction of the built-in decompositions and was
// spot-checked dynamically (TSan runs on the shapes the tests pick).  This
// analyzer proves it per plan, structurally, before anything runs:
//
//   nodes  = the plan's segments (arena order, CTA-major);
//   edges  = "must complete before":
//     * program order -- segment j of a CTA precedes segment j+1 (a wait
//       inside segment j blocks everything after it);
//     * fixup signal->wait -- a tile contributor's spilling segment must
//       signal before the tile owner's starting segment can finish its
//       store (these are simultaneously the spill-slot writer->reader
//       edges: the owner reads the partials slot the contributor wrote).
//
// A cycle in this graph is a schedule that deadlocks at *any* thread
// count; the analyzer reports the cycle path.  Acyclicity alone is not
// sufficient for a bounded pool, so the wait-direction rule additionally
// requires every fixup wait to target a strictly higher CTA id -- the
// invariant that guarantees the awaited CTA was already claimed when the
// descending claim order reached the waiter.
//
// Panel-cache shared-chunk relationships are derived as *statistics*, not
// edges: the kEmpty->kPacking->kReady slot protocol has a bounded-spin
// private-pack fallback, so by design it contributes no blocking edge (the
// model checker in analysis/protocol_model.hpp verifies exactly that claim
// on the protocol itself, including the mutant without the fallback).
//
// The full rule catalog lives in analysis/diagnostics.hpp and DESIGN.md
// section 12.  analyze_plan() never throws on malformed plans -- it returns
// structured findings; use analysis/analyze.hpp for the throwing
// plan-cache guard.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/schedule_plan.hpp"

namespace streamk::analysis {

enum class EdgeKind : std::uint8_t {
  kProgram,  ///< same CTA, consecutive segments
  kFixup,    ///< contributor signal -> owner wait (slot writer -> reader)
};

struct WaitEdge {
  std::int64_t from = 0;  ///< segment node that must complete first
  std::int64_t to = 0;    ///< segment node blocked on `from`
  EdgeKind kind = EdgeKind::kProgram;
};

/// The static wait graph of one plan, at segment granularity.
struct WaitGraph {
  std::int64_t nodes = 0;
  std::vector<WaitEdge> edges;
  /// CTA of each segment node (arena order).
  std::vector<std::int64_t> node_cta;

  std::int64_t program_edges() const;
  std::int64_t fixup_edges() const;

  /// "cta 3 seg 1 (tile 5 [0,4))" -- for cycle-path reporting.
  std::string describe_node(const core::SchedulePlan& plan,
                            std::int64_t node) const;

  /// Topological-sort acyclicity check.  Returns an empty vector for a DAG;
  /// otherwise the nodes of one cycle, in dependency order.
  std::vector<std::int64_t> find_cycle() const;
};

/// Derives the wait graph of `plan` (no rules applied).
WaitGraph build_wait_graph(const core::SchedulePlan& plan);

/// One-line plan identity for reports and error messages:
/// "plan 'stream-k(g=4)' kind=stream-k grid=4 tiles=9 segments=12".
std::string plan_summary(const core::SchedulePlan& plan);

/// Runs the full static rule sweep over `plan`: wait-graph acyclicity and
/// wait direction, spill-slot aliasing, single-owner epilogue application,
/// exactly-once coverage, grouped problem-boundary containment, and
/// panel-cache slot-grid consistency.  Returns all findings; never throws
/// on malformed plans.
AnalysisReport analyze_plan(const core::SchedulePlan& plan);

}  // namespace streamk::analysis
