#pragma once

// Plan-cache analysis gate.
//
// When armed, every schedule admitted to the process plan cache
// (core::PlanCache::obtain's miss path -- i.e. each distinct plan exactly
// once) is swept by the static wait-graph analyzer before any executor can
// run it; error-severity findings abort the insert with an AnalysisError
// carrying the failing rule id, the plan summary, and the full findings
// text.
//
// Arming, in precedence order:
//   1. set_analyze_on_insert() -- programmatic override (tests, tools);
//   2. STREAMK_ANALYZE=1 / STREAMK_ANALYZE=0 in the environment;
//   3. build default: on in Debug / sanitizer builds (!NDEBUG), off in
//      Release, where plan compilation may sit on a latency path.

#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace streamk::core {
class SchedulePlan;
}

namespace streamk::analysis {

/// An analyzer-rejected plan.  Inherits util::CheckError so existing
/// catch sites treat it as the logic error it is; the structured accessors
/// carry the first failing rule and the one-line plan identity.
class AnalysisError : public util::CheckError {
 public:
  AnalysisError(std::string rule, std::string plan, const std::string& what);

  /// First error-severity rule id, e.g. "WG-CYCLE".
  const std::string& rule() const { return rule_; }
  /// "plan 'stream-k(g=4)' kind=stream-k grid=4 tiles=9 segments=12".
  const std::string& plan_summary() const { return plan_; }

 private:
  std::string rule_;
  std::string plan_;
};

/// Whether plan-cache inserts are currently analyzed.
bool analyze_on_insert_enabled();

/// Programmatic override of the STREAMK_ANALYZE environment knob.
void set_analyze_on_insert(bool enabled);

/// Sweeps `plan` and throws AnalysisError on error-severity findings.
void check_plan(const core::SchedulePlan& plan);

/// The PlanCache::obtain hook: check_plan() when armed, no-op otherwise.
void maybe_check_on_insert(const core::SchedulePlan& plan);

}  // namespace streamk::analysis
