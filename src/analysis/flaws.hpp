#pragma once

// Seeded-flaw plan corpus for the static analyzer.
//
// A static checker is only as trustworthy as its ability to reject what it
// claims to reject, so every rule the wait-graph analyzer enforces has at
// least one constructively broken plan here: a schedule a buggy
// decomposition *could* emit, compiled through the real SchedulePlan
// pipeline (no mocked IR), that the analyzer must flag with the expected
// rule id.  The CLI's --selftest and tests/test_analysis.cpp sweep all of
// them; an undetected flaw fails the build the same way an undetected
// protocol mutant fails run_model_suite().
//
// Single-problem flaws are injected via a Decomposition subclass whose
// cta_work() returns hand-written segment streams; grouped flaws use the
// SchedulePlan grouped constructor overload that accepts a caller-supplied
// generator (the production generator is grouped_cta_work).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/schedule_plan.hpp"

namespace streamk::analysis {

enum class PlanFlaw {
  /// Two tile owners each wait on a spill the other produces *after* its
  /// own waiting segment: a wait-graph cycle (deadlock at any pool size).
  kWaitCycle,
  /// One CTA spills partials for two different tiles -- two writers into a
  /// single per-CTA spill slot.
  kSlotAlias,
  /// Two starting segments for one tile: the epilogue (and output store)
  /// would be applied twice to the tile's elements.
  kDoubleOwner,
  /// A tile's iteration range is only partially covered.
  kCoverageGap,
  /// Grouped: a segment's iteration range runs past its tile's
  /// iters-per-tile, straddling into the next problem's iteration space.
  kBoundaryStraddle,
  /// Grouped: a tile claimed by starting segments of two CTAs, the second
  /// arriving from a different problem's work stream.
  kGroupedDoubleOwner,
};

std::string_view flaw_name(PlanFlaw flaw);
std::optional<PlanFlaw> parse_flaw(std::string_view name);
std::vector<PlanFlaw> all_plan_flaws();

/// The rule id (analysis/diagnostics.hpp) the analyzer must raise for the
/// flaw -- other findings may accompany it, but this one is mandatory.
std::string_view expected_rule(PlanFlaw flaw);

/// Compiles the seeded-flaw schedule through the production SchedulePlan
/// pipeline.
core::SchedulePlan make_flawed_plan(PlanFlaw flaw);

}  // namespace streamk::analysis
