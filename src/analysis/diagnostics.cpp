#include "analysis/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace streamk::analysis {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_text() const {
  std::ostringstream os;
  os << "[" << rule << "] " << severity_name(severity) << ": " << message;
  return os.str();
}

bool AnalysisReport::ok() const { return error_count() == 0; }

std::int64_t AnalysisReport::error_count() const {
  std::int64_t errors = 0;
  for (const Diagnostic& d : findings) {
    if (d.severity == Severity::kError) ++errors;
  }
  return errors;
}

bool AnalysisReport::has_rule(std::string_view rule) const {
  for (const Diagnostic& d : findings) {
    if (d.rule == rule) return true;
  }
  return false;
}

void AnalysisReport::add(std::string_view rule, Severity severity,
                         std::string message) {
  findings.push_back(
      Diagnostic{std::string(rule), severity, std::move(message)});
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << subject << ": "
     << (ok() ? "clean" : std::to_string(error_count()) + " error(s)")
     << " (nodes=" << nodes << " program-edges=" << program_edges
     << " fixup-edges=" << fixup_edges
     << " shared-panel-chunks=" << shared_panel_chunks << ")";
  for (const Diagnostic& d : findings) os << "\n  " << d.to_text();
  return os.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"subject\":\"" << json_escape(subject) << "\",\"ok\":"
     << (ok() ? "true" : "false") << ",\"stats\":{\"nodes\":" << nodes
     << ",\"program_edges\":" << program_edges
     << ",\"fixup_edges\":" << fixup_edges
     << ",\"shared_panel_chunks\":" << shared_panel_chunks
     << "},\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Diagnostic& d = findings[i];
    if (i > 0) os << ",";
    os << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"message\":\""
       << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace streamk::analysis
