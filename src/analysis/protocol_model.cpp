#include "analysis/protocol_model.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace streamk::analysis {

namespace {

/// A protocol state: a small fixed vector of byte-sized cells (per-thread
/// program counters first, shared cells after).  Kept as a plain vector so
/// the DFS's visited set is a std::map with lexicographic ordering.
using State = std::vector<std::int8_t>;

/// One enabled transition: the successor state plus a human-readable
/// action label for counterexample traces.
struct Step {
  State next;
  std::string action;
};

/// Abstract transition system over interleaved threads.  Implementations
/// model each atomic action of the real protocol as one transition;
/// `steps` returns the empty vector for a blocked (or finished) thread.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual int threads() const = 0;
  virtual State initial() const = 0;
  virtual std::vector<Step> steps(const State& state, int thread) const = 0;
  virtual bool thread_done(const State& state, int thread) const = 0;
  /// Safety-property check; nullopt when the state satisfies all
  /// assertions.
  virtual std::optional<std::string> violation(const State& state) const = 0;
};

/// Exhaustive DFS over every interleaving, with a visited set and
/// parent-pointer trace reconstruction.  State spaces here are tiny (at
/// most a few tens of thousands of states at scope 4), so an explicit
/// stack plus std::map is plenty.
ModelResult explore(const Protocol& protocol, std::string name) {
  ModelResult result;
  result.protocol = std::move(name);

  struct Provenance {
    State parent;
    std::string action;
  };
  std::map<State, Provenance> visited;
  std::vector<State> stack;

  const State init = protocol.initial();
  visited.emplace(init, Provenance{});
  stack.push_back(init);

  auto trace_to = [&](const State& state) {
    std::vector<std::string> trace;
    State cursor = state;
    while (true) {
      const Provenance& prov = visited.at(cursor);
      if (prov.action.empty()) break;
      trace.push_back(prov.action);
      cursor = prov.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  while (!stack.empty()) {
    const State state = stack.back();
    stack.pop_back();
    ++result.states_explored;

    if (const auto bad = protocol.violation(state)) {
      result.ok = false;
      result.rule = std::string(rules::kProtocolViolation);
      result.violation = *bad;
      result.trace = trace_to(state);
      return result;
    }

    bool any_enabled = false;
    bool all_done = true;
    std::vector<int> blocked;
    for (int t = 0; t < protocol.threads(); ++t) {
      const bool done = protocol.thread_done(state, t);
      all_done = all_done && done;
      const std::vector<Step> successors = protocol.steps(state, t);
      if (!done && successors.empty()) blocked.push_back(t);
      for (const Step& step : successors) {
        any_enabled = true;
        if (visited.emplace(step.next, Provenance{state, step.action})
                .second) {
          stack.push_back(step.next);
        }
      }
    }

    if (!all_done && !any_enabled) {
      result.ok = false;
      result.rule = std::string(rules::kProtocolDeadlock);
      std::ostringstream os;
      os << "deadlock: thread(s)";
      for (const int t : blocked) os << " " << t;
      os << " blocked with no enabled transition anywhere";
      result.violation = os.str();
      result.trace = trace_to(state);
      return result;
    }
  }

  result.ok = true;
  return result;
}

// --------------------------------------------------------------------------
// Fixup flag protocol: thread 0 is the tile owner, threads 1..C are the
// spilling contributors.
//
// State layout: [pc_owner, pc_contrib[C], flag[C], data[C], acc, bad]
//   bad: 0 = fine, 1 = read-before-publish, 2 = lost contribution.
//
// Owner program (production): for i in 0..C-1 { wait flag[i]; read
// data[i] }; store.  Contributor i: write data[i]; release flag[i].
// --------------------------------------------------------------------------
class FixupProtocol final : public Protocol {
 public:
  FixupProtocol(int contributors, FixupMutant mutant)
      : contributors_(contributors), mutant_(mutant) {
    util::check(contributors >= 1 && contributors <= 3,
                "fixup model scope is 1..3 contributors");
  }

  int threads() const override { return 1 + contributors_; }

  State initial() const override {
    // pcs: owner + C contributors; shared: C flags, C data, acc, bad.
    return State(static_cast<std::size_t>(1 + contributors_ * 3 + 2), 0);
  }

  std::vector<Step> steps(const State& state, int thread) const override {
    std::vector<Step> out;
    if (thread == 0) {
      owner_steps(state, out);
    } else {
      contributor_steps(state, thread, out);
    }
    return out;
  }

  bool thread_done(const State& state, int thread) const override {
    if (thread == 0) return state[0] == owner_done_pc();
    return pc_contrib(state, thread) == 2;
  }

  std::optional<std::string> violation(const State& state) const override {
    const std::int8_t bad = state[bad_cell()];
    if (bad == 1) {
      return "read-before-publish: the owner consumed a partials slot "
             "whose contributor had not yet written it";
    }
    if (bad == 2) {
      return "lost contribution: the owner stored the tile having reduced " +
             std::to_string(static_cast<int>(state[acc_cell()])) + " of " +
             std::to_string(contributors_) + " contributors' partials";
    }
    return std::nullopt;
  }

 private:
  // Cell layout helpers.
  std::size_t pc_contrib_cell(int thread) const {
    return static_cast<std::size_t>(thread);  // threads are 1-based here
  }
  static std::int8_t pc_contrib(const State& s, int thread) {
    return s[static_cast<std::size_t>(thread)];
  }
  std::size_t flag_cell(int i) const {
    return static_cast<std::size_t>(1 + contributors_ + i);
  }
  std::size_t data_cell(int i) const {
    return static_cast<std::size_t>(1 + 2 * contributors_ + i);
  }
  std::size_t acc_cell() const {
    return static_cast<std::size_t>(1 + 3 * contributors_);
  }
  std::size_t bad_cell() const { return acc_cell() + 1; }

  /// Owner pcs: 2i = wait on contributor i, 2i+1 = read contributor i,
  /// 2C = store, 2C+1 = done.
  std::int8_t owner_done_pc() const {
    return static_cast<std::int8_t>(2 * contributors_ + 1);
  }

  void owner_steps(const State& state, std::vector<Step>& out) const {
    const std::int8_t pc = state[0];
    const int awaited = mutant_ == FixupMutant::kLostContribution
                            ? contributors_ - 1
                            : contributors_;
    if (pc < 2 * awaited) {
      const int i = pc / 2;
      if (pc % 2 == 0) {
        // wait flag[i] -- enabled only once the flag is raised (the
        // skipped-flag mutant barges straight through).
        if (mutant_ == FixupMutant::kSkippedFlag ||
            state[flag_cell(i)] == 1) {
          State next = state;
          next[0] = static_cast<std::int8_t>(pc + 1);
          out.push_back({std::move(next),
                         mutant_ == FixupMutant::kSkippedFlag
                             ? "owner: skip wait on contributor " +
                                   std::to_string(i + 1)
                             : "owner: acquire flag of contributor " +
                                   std::to_string(i + 1)});
        }
      } else {
        // read data[i] and reduce.
        State next = state;
        if (state[data_cell(i)] == 0) {
          next[bad_cell()] = 1;
        } else {
          next[acc_cell()] = static_cast<std::int8_t>(next[acc_cell()] + 1);
        }
        next[0] = static_cast<std::int8_t>(pc + 1);
        out.push_back({std::move(next), "owner: reduce partials of contributor " +
                                            std::to_string(i + 1)});
      }
      return;
    }
    if (pc < 2 * contributors_ && mutant_ == FixupMutant::kLostContribution) {
      // Shortened loop: skip the remaining contributors outright.
      State next = state;
      next[0] = static_cast<std::int8_t>(2 * contributors_);
      out.push_back({std::move(next), "owner: skip remaining contributors"});
      return;
    }
    if (pc == 2 * contributors_) {
      State next = state;
      if (state[acc_cell()] != contributors_) next[bad_cell()] = 2;
      next[0] = owner_done_pc();
      out.push_back({std::move(next), "owner: store tile"});
    }
  }

  void contributor_steps(const State& state, int thread,
                         std::vector<Step>& out) const {
    const int i = thread - 1;
    const std::int8_t pc = pc_contrib(state, thread);
    if (pc == 0) {
      State next = state;
      next[data_cell(i)] = 1;
      next[pc_contrib_cell(thread)] = 1;
      out.push_back({std::move(next), "contributor " + std::to_string(thread) +
                                          ": write partials"});
    } else if (pc == 1) {
      State next = state;
      // The dropped-release mutant finishes without ever raising the flag.
      if (mutant_ != FixupMutant::kDroppedRelease) next[flag_cell(i)] = 1;
      next[pc_contrib_cell(thread)] = 2;
      out.push_back({std::move(next),
                     mutant_ == FixupMutant::kDroppedRelease
                         ? "contributor " + std::to_string(thread) +
                               ": exit without signalling"
                         : "contributor " + std::to_string(thread) +
                               ": release flag"});
    }
  }

  int contributors_;
  FixupMutant mutant_;
};

// --------------------------------------------------------------------------
// Panel-cache slot protocol: N symmetric CTAs race for one (panel, chunk)
// slot.
//
// State layout: [pc[N], slot, packed]
//   pc: 0 = deciding, 1 = packing (inside the critical region), 2 =
//       publishing, 3 = done, 4 = claim-pending (double-claim mutant
//       only), 5 = done-with-stale-read.
//   slot: 0 = kEmpty, 1 = kPacking, 2 = kReady.
//
// Production decisions at pc 0: consume on kReady, CAS-claim on kEmpty
// (one atomic transition), fall back to a private pack on kPacking.  The
// double-claim mutant splits the CAS into observe + set; the
// read-before-ready mutant consumes kPacking slots; the dropped-release
// mutant skips the kReady publish AND removes the fallback.
// --------------------------------------------------------------------------
class PanelProtocol final : public Protocol {
 public:
  PanelProtocol(int ctas, PanelMutant mutant) : ctas_(ctas), mutant_(mutant) {
    util::check(ctas >= 2 && ctas <= 4, "panel model scope is 2..4 CTAs");
  }

  int threads() const override { return ctas_; }

  State initial() const override {
    return State(static_cast<std::size_t>(ctas_ + 2), 0);
  }

  std::vector<Step> steps(const State& state, int thread) const override {
    std::vector<Step> out;
    const std::int8_t pc = state[static_cast<std::size_t>(thread)];
    const std::int8_t slot = state[slot_cell()];
    const std::string who = "cta " + std::to_string(thread);
    switch (pc) {
      case 0: {  // deciding
        if (slot == 2 ||
            (mutant_ == PanelMutant::kReadBeforeReady && slot == 1)) {
          State next = state;
          next[static_cast<std::size_t>(thread)] =
              state[packed_cell()] == 1 ? 3 : 5;
          out.push_back({std::move(next), who + ": consume published panel"});
        }
        if (slot == 0) {
          if (mutant_ == PanelMutant::kDoubleClaim) {
            // Non-atomic test-then-set: observing kEmpty and writing
            // kPacking are separate transitions, so two CTAs can both
            // observe kEmpty.
            State next = state;
            next[static_cast<std::size_t>(thread)] = 4;
            out.push_back({std::move(next), who + ": observe empty slot"});
          } else {
            State next = state;
            next[slot_cell()] = 1;
            next[static_cast<std::size_t>(thread)] = 1;
            out.push_back({std::move(next), who + ": CAS-claim slot"});
          }
        }
        if (slot == 1 && mutant_ != PanelMutant::kDroppedRelease &&
            mutant_ != PanelMutant::kReadBeforeReady) {
          // Bounded spin conceded: pack privately and move on.  This
          // transition is the protocol's liveness escape hatch; the
          // dropped-release mutant removes it to show it is load-bearing.
          State next = state;
          next[static_cast<std::size_t>(thread)] = 3;
          out.push_back({std::move(next), who + ": fall back to private pack"});
        }
        break;
      }
      case 4: {  // claim-pending (double-claim mutant)
        State next = state;
        next[slot_cell()] = 1;
        next[static_cast<std::size_t>(thread)] = 1;
        out.push_back({std::move(next), who + ": set kPacking (stale test)"});
        break;
      }
      case 1: {  // packing: write the panel bytes
        State next = state;
        next[packed_cell()] = 1;
        next[static_cast<std::size_t>(thread)] = 2;
        out.push_back({std::move(next), who + ": pack panel into arena"});
        break;
      }
      case 2: {  // publish
        State next = state;
        if (mutant_ != PanelMutant::kDroppedRelease) next[slot_cell()] = 2;
        next[static_cast<std::size_t>(thread)] = 3;
        out.push_back({std::move(next),
                       mutant_ == PanelMutant::kDroppedRelease
                           ? who + ": exit without publishing kReady"
                           : who + ": publish kReady"});
        break;
      }
      default:
        break;  // done
    }
    return out;
  }

  bool thread_done(const State& state, int thread) const override {
    const std::int8_t pc = state[static_cast<std::size_t>(thread)];
    return pc == 3 || pc == 5;
  }

  std::optional<std::string> violation(const State& state) const override {
    int packers = 0;
    for (int t = 0; t < ctas_; ++t) {
      const std::int8_t pc = state[static_cast<std::size_t>(t)];
      if (pc == 1 || pc == 2) ++packers;
      if (pc == 5) {
        return "read-before-publish: cta " + std::to_string(t) +
               " consumed the slot before the packer wrote the panel";
      }
    }
    if (packers > 1) {
      return "double claim: " + std::to_string(packers) +
             " CTAs inside the slot's packing critical region";
    }
    return std::nullopt;
  }

 private:
  std::size_t slot_cell() const { return static_cast<std::size_t>(ctas_); }
  std::size_t packed_cell() const {
    return static_cast<std::size_t>(ctas_ + 1);
  }

  int ctas_;
  PanelMutant mutant_;
};

}  // namespace

std::string_view fixup_mutant_name(FixupMutant mutant) {
  switch (mutant) {
    case FixupMutant::kNone:
      return "production";
    case FixupMutant::kDroppedRelease:
      return "dropped-release";
    case FixupMutant::kSkippedFlag:
      return "skipped-flag";
    case FixupMutant::kLostContribution:
      return "lost-contribution";
  }
  return "unknown";
}

std::string_view panel_mutant_name(PanelMutant mutant) {
  switch (mutant) {
    case PanelMutant::kNone:
      return "production";
    case PanelMutant::kDoubleClaim:
      return "double-claim";
    case PanelMutant::kReadBeforeReady:
      return "read-before-ready";
    case PanelMutant::kDroppedRelease:
      return "dropped-release-no-fallback";
  }
  return "unknown";
}

std::string ModelResult::to_text() const {
  std::ostringstream os;
  os << protocol << ": "
     << (ok ? "verified" : "REJECTED [" + rule + "] " + violation) << " ("
     << states_explored << " states)";
  if (!ok && !trace.empty()) {
    os << "\n  counterexample:";
    for (const std::string& action : trace) os << "\n    " << action;
  }
  return os.str();
}

ModelResult check_fixup_protocol(int contributors, FixupMutant mutant) {
  std::ostringstream name;
  name << "fixup(contributors=" << contributors;
  if (mutant != FixupMutant::kNone) {
    name << ", mutant=" << fixup_mutant_name(mutant);
  }
  name << ")";
  return explore(FixupProtocol(contributors, mutant), name.str());
}

ModelResult check_panel_protocol(int ctas, PanelMutant mutant) {
  std::ostringstream name;
  name << "panel-cache(ctas=" << ctas;
  if (mutant != PanelMutant::kNone) {
    name << ", mutant=" << panel_mutant_name(mutant);
  }
  name << ")";
  return explore(PanelProtocol(ctas, mutant), name.str());
}

ModelSuite run_model_suite() {
  ModelSuite suite;
  suite.report.subject = "protocol model suite";
  suite.ok = true;

  for (int c = 1; c <= 3; ++c) {
    suite.production.push_back(check_fixup_protocol(c, FixupMutant::kNone));
  }
  for (int n = 2; n <= 4; ++n) {
    suite.production.push_back(check_panel_protocol(n, PanelMutant::kNone));
  }
  for (const ModelResult& result : suite.production) {
    suite.total_states += result.states_explored;
    if (!result.ok) {
      suite.ok = false;
      suite.report.add(result.rule, Severity::kError,
                       result.protocol + ": " + result.violation);
    }
  }

  // Every mutant must be rejected -- an accepted mutant means the checker
  // can no longer see the defect class it exists to catch.
  const auto expect_rejected = [&suite](ModelResult result) {
    suite.total_states += result.states_explored;
    if (result.ok) {
      suite.ok = false;
      suite.report.add(rules::kProtocolViolation, Severity::kError,
                       result.protocol +
                           ": seeded mutant NOT detected -- the checker has "
                           "lost this defect class");
    }
    suite.mutants.emplace_back(result.protocol, std::move(result));
  };
  for (const FixupMutant mutant :
       {FixupMutant::kDroppedRelease, FixupMutant::kSkippedFlag,
        FixupMutant::kLostContribution}) {
    expect_rejected(check_fixup_protocol(2, mutant));
  }
  for (const PanelMutant mutant :
       {PanelMutant::kDoubleClaim, PanelMutant::kReadBeforeReady,
        PanelMutant::kDroppedRelease}) {
    expect_rejected(check_panel_protocol(3, mutant));
  }
  return suite;
}

}  // namespace streamk::analysis
