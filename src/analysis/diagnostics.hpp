#pragma once

// Structured diagnostics for the static concurrency analyzer.
//
// Every rule the analyzer (analysis/wait_graph.hpp) or the protocol model
// checker (analysis/protocol_model.hpp) can fire is identified by a stable
// rule id from the catalog below (DESIGN.md section 12 documents each).  A
// finding carries the rule, a severity, a human-readable message, and the
// plan context it was raised against, and renders both as text (for CI
// logs) and as JSON (for tooling that ingests `streamk_analyze --json`).
//
// Severity semantics: kError findings describe plans that are unsafe to
// execute (a deadlockable wait graph, an aliased spill slot, a tile whose
// epilogue would run twice); kWarning findings describe suspicious but
// runnable structure.  AnalysisReport::ok() is "no errors" -- warnings do
// not fail a sweep.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace streamk::analysis {

/// Stable rule identifiers -- the analyzer's public contract.  CI greps for
/// these, so renames are breaking changes.
namespace rules {
/// Wait graph (segment-granular happens-before) contains a cycle: the plan
/// can deadlock regardless of thread count.  The finding carries the cycle
/// path.
inline constexpr std::string_view kWaitCycle = "WG-CYCLE";
/// A fixup wait targets a lower-or-equal CTA id.  The pool executes CTAs
/// in descending claim order with waits targeting higher ids; violating the
/// direction can deadlock a bounded pool even when the graph is acyclic.
inline constexpr std::string_view kWaitDirection = "WG-WAIT-DIR";
/// Spill-slot aliasing: a CTA with more than one non-starting segment (its
/// second spill would overwrite the slot before the first is consumed), a
/// spilling CTA without a slot, or a slot map that is not dense/injective.
inline constexpr std::string_view kSlotAlias = "WG-SLOT-ALIAS";
/// A tile with zero or multiple starting segments: the epilogue chain would
/// be applied zero or several times to that tile's output elements,
/// breaking the once-per-element invariant.
inline constexpr std::string_view kEpilogueOwner = "EP-OWNER";
/// Grouped plans only: a segment's iteration range runs past its tile's
/// depth, i.e. it straddles a tile -- and potentially a problem -- boundary.
inline constexpr std::string_view kBoundaryStraddle = "GR-STRADDLE";
/// Panel-cache slot-grid inconsistency: a segment's panel key falls outside
/// the arena's slot grid, or two problems' key ranges overlap (two problems
/// reading different operands would share one published panel).
inline constexpr std::string_view kPanelGeometry = "PC-GEOMETRY";
/// A (tile, iteration) covered by no segment.
inline constexpr std::string_view kCoverageGap = "COV-GAP";
/// A (tile, iteration) covered by more than one segment.
inline constexpr std::string_view kCoverageOverlap = "COV-OVERLAP";
/// A segment is malformed in isolation (negative/empty range, range past
/// the tile depth on single-problem plans, `last` flag inconsistent).
inline constexpr std::string_view kSegmentMalformed = "SEG-MALFORMED";
/// An epilogue class requested for the sweep failed structural validation
/// against the plan (streamk_analyze corpus mode only).
inline constexpr std::string_view kEpilogueClass = "EP-CLASS";
/// Model checker: a reachable state where some thread is blocked and no
/// thread can step.
inline constexpr std::string_view kProtocolDeadlock = "PM-DEADLOCK";
/// Model checker: a reachable assertion violation (read-before-publish,
/// lost contribution, double claim).
inline constexpr std::string_view kProtocolViolation = "PM-VIOLATION";
}  // namespace rules

enum class Severity : std::uint8_t {
  kWarning,
  kError,
};

std::string_view severity_name(Severity severity);

/// One finding: rule + severity + message, anchored to a plan context.
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;

  std::string to_text() const;
};

/// The result of analyzing one plan (or one protocol configuration).
struct AnalysisReport {
  /// Human-readable identity of what was analyzed, e.g.
  /// "stream-k(g=8) 96x96x128 fp-agnostic grid=8 tiles=9".
  std::string subject;
  std::vector<Diagnostic> findings;

  /// Wait-graph statistics (zero for protocol reports).
  std::int64_t nodes = 0;
  std::int64_t program_edges = 0;
  std::int64_t fixup_edges = 0;
  /// Cacheable (panel, k-chunk) slots touched by >= 2 segments -- the
  /// panel-cache sharing opportunities the plan exposes (informational;
  /// these are non-blocking by protocol design and carry no wait edges).
  std::int64_t shared_panel_chunks = 0;

  bool ok() const;
  std::int64_t error_count() const;
  /// Whether any finding (any severity) fired `rule`.
  bool has_rule(std::string_view rule) const;

  void add(std::string_view rule, Severity severity, std::string message);

  /// Multi-line text rendering: subject, stats, then one line per finding.
  std::string to_text() const;
  /// JSON object: {"subject": ..., "ok": ..., "stats": {...},
  /// "findings": [{"rule": ..., "severity": ..., "message": ...}, ...]}.
  std::string to_json() const;
};

/// Escapes `text` for embedding in a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace streamk::analysis
