#include "analysis/flaws.hpp"

#include <array>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "core/decomposition.hpp"
#include "core/grouped.hpp"
#include "util/check.hpp"

namespace streamk::analysis {
namespace {

// Hand-written segment streams compiled through the production pipeline.
// Shape 64x64x64 under 32x32x16 blocks: a 2x2 tile grid with 4 MAC-loop
// iterations per tile -- the smallest geometry where ownership, spilling,
// and multi-CTA waits are all expressible.
class SeededDecomposition final : public core::Decomposition {
 public:
  SeededDecomposition(std::string name, std::vector<core::CtaWork> ctas)
      : Decomposition(core::WorkMapping({64, 64, 64}, {32, 32, 16})),
        name_(std::move(name)),
        ctas_(std::move(ctas)) {}

  core::DecompositionKind kind() const override {
    return core::DecompositionKind::kStreamKBasic;
  }
  std::string name() const override { return name_; }
  std::int64_t grid_size() const override {
    return static_cast<std::int64_t>(ctas_.size());
  }
  core::CtaWork cta_work(std::int64_t cta) const override {
    return ctas_[static_cast<std::size_t>(cta)];
  }

 private:
  std::string name_;
  std::vector<core::CtaWork> ctas_;
};

core::SchedulePlan seeded_plan(PlanFlaw flaw,
                               std::vector<core::CtaWork> ctas) {
  SeededDecomposition decomposition(
      "flaw:" + std::string(flaw_name(flaw)), std::move(ctas));
  return core::SchedulePlan(decomposition);
}

// Grouped counterpart: problems 64x64x64 (tiles 0..3, ipt 4) and 32x32x32
// (tile 4, ipt 2) under the same blocking, one CTA per global tile.
core::SchedulePlan seeded_grouped_plan(std::vector<core::CtaWork> ctas) {
  const std::array<core::GemmShape, 2> shapes = {
      core::GemmShape{64, 64, 64}, core::GemmShape{32, 32, 32}};
  const core::GroupedMapping grouped(shapes, {32, 32, 16});
  core::DecompositionSpec spec;
  spec.kind = core::DecompositionKind::kDataParallel;
  spec.sm_count = static_cast<std::int64_t>(ctas.size());
  return core::SchedulePlan(
      grouped, spec, static_cast<std::int64_t>(ctas.size()),
      [&](std::int64_t cta) { return ctas[static_cast<std::size_t>(cta)]; });
}

core::CtaWork work(std::vector<core::TileSegment> segments) {
  core::CtaWork w;
  w.segments = std::move(segments);
  return w;
}

}  // namespace

std::string_view flaw_name(PlanFlaw flaw) {
  switch (flaw) {
    case PlanFlaw::kWaitCycle:
      return "wait-cycle";
    case PlanFlaw::kSlotAlias:
      return "slot-alias";
    case PlanFlaw::kDoubleOwner:
      return "double-owner";
    case PlanFlaw::kCoverageGap:
      return "coverage-gap";
    case PlanFlaw::kBoundaryStraddle:
      return "boundary-straddle";
    case PlanFlaw::kGroupedDoubleOwner:
      return "grouped-double-owner";
  }
  return "unknown";
}

std::optional<PlanFlaw> parse_flaw(std::string_view name) {
  for (PlanFlaw flaw : all_plan_flaws()) {
    if (flaw_name(flaw) == name) return flaw;
  }
  return std::nullopt;
}

std::vector<PlanFlaw> all_plan_flaws() {
  return {PlanFlaw::kWaitCycle,        PlanFlaw::kSlotAlias,
          PlanFlaw::kDoubleOwner,      PlanFlaw::kCoverageGap,
          PlanFlaw::kBoundaryStraddle, PlanFlaw::kGroupedDoubleOwner};
}

std::string_view expected_rule(PlanFlaw flaw) {
  switch (flaw) {
    case PlanFlaw::kWaitCycle:
      return rules::kWaitCycle;
    case PlanFlaw::kSlotAlias:
      return rules::kSlotAlias;
    case PlanFlaw::kDoubleOwner:
    case PlanFlaw::kGroupedDoubleOwner:
      return rules::kEpilogueOwner;
    case PlanFlaw::kCoverageGap:
      return rules::kCoverageGap;
    case PlanFlaw::kBoundaryStraddle:
      return rules::kBoundaryStraddle;
  }
  return rules::kSegmentMalformed;
}

core::SchedulePlan make_flawed_plan(PlanFlaw flaw) {
  switch (flaw) {
    case PlanFlaw::kWaitCycle:
      // CTA 0 owns tile 0 and spills tile 1 *after* its waiting segment;
      // CTA 1 is the mirror image.  Each owner's wait transitively blocks
      // the spill the other owner needs: a 4-node cycle, independent of
      // pool size.  Note each CTA spills exactly once, so the plan passes
      // the compiler's memory-safety screens and stays "runnable".
      return seeded_plan(
          flaw, {work({{0, 0, 2, false}, {1, 2, 4, true}, {2, 0, 4, true}}),
                 work({{1, 0, 2, false}, {0, 2, 4, true}, {3, 0, 4, true}})});
    case PlanFlaw::kSlotAlias:
      // CTA 1 spills partials for both tile 0 and tile 1: two writers into
      // its single per-CTA partials slot, the second clobbering the first.
      return seeded_plan(
          flaw, {work({{0, 0, 2, false},
                       {1, 0, 2, false},
                       {2, 0, 4, true},
                       {3, 0, 4, true}}),
                 work({{0, 2, 4, true}, {1, 2, 4, true}})});
    case PlanFlaw::kDoubleOwner:
      // Tile 0 started by both CTAs: the store + epilogue chain would be
      // applied twice to its output elements.
      return seeded_plan(flaw, {work({{0, 0, 4, true},
                                      {1, 0, 4, true},
                                      {2, 0, 4, true},
                                      {3, 0, 4, true}}),
                                work({{0, 0, 4, true}})});
    case PlanFlaw::kCoverageGap:
      // Tile 0's iterations [3, 4) are assigned to no CTA; its owner would
      // wait on contributors that do not exist and store a partial tile.
      return seeded_plan(
          flaw,
          {work({{0, 0, 3, false}, {1, 0, 4, true}, {2, 0, 4, true}}),
           work({{3, 0, 4, true}})});
    case PlanFlaw::kBoundaryStraddle:
      // Grouped: tile 3 is the last tile of problem 0 (4 iterations), but
      // its segment claims 6 -- running off the end of the tile into what
      // linearizes as problem 1's iteration space.
      return seeded_grouped_plan({work({{0, 0, 4, true}}),
                                  work({{1, 0, 4, true}}),
                                  work({{2, 0, 4, true}}),
                                  work({{3, 0, 6, true}}),
                                  work({{4, 0, 2, true}})});
    case PlanFlaw::kGroupedDoubleOwner:
      // Grouped: tile 4 (problem 1) is started both by its own CTA and by
      // CTA 0, whose stream otherwise lives in problem 0.
      return seeded_grouped_plan({work({{0, 0, 4, true}, {4, 0, 2, true}}),
                                  work({{1, 0, 4, true}}),
                                  work({{2, 0, 4, true}}),
                                  work({{3, 0, 4, true}}),
                                  work({{4, 0, 2, true}})});
  }
  util::check(false, "unknown plan flaw");
  return seeded_plan(flaw, {});
}

}  // namespace streamk::analysis
