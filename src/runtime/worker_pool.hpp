#pragma once

// Persistent worker-pool runtime.
//
// The paper's premise is a *fixed* pool of persistent workers absorbing any
// work distribution; the host runtime used to contradict it by spawning
// `workers - 1` fresh std::threads inside every gemm()/execute_plan() call.
// This pool is started once per process (global_pool()) and serves three
// progressively higher-level entry points:
//
//   submit(task)            -- fire-and-forget queue submission;
//   async(fn) -> TaskHandle -- future-based submission with work stealing:
//                              TaskHandle::get() runs the job inline when no
//                              pool thread has claimed it yet, so a sync
//                              wrapper blocking on its own submission can
//                              never deadlock the pool;
//   run_region(...)         -- a structured parallel-for region: the caller
//                              participates, helper tasks are enqueued for
//                              idle pool threads, and indices are claimed
//                              from a shared atomic ticket counter.
//
// run_region is what util::parallel_for{,_descending} dispatch onto, which
// makes every execution substrate (GEMM, batched, BLAS views, implicit-GEMM
// conv) pool-backed without touching their code.  Region rules:
//
//   * The calling thread always drains tickets itself, so every region owns
//     at least one executing thread even when the pool is saturated --
//     nested regions (a GEMM submitted to the pool whose inner parallel_for
//     opens a region on the same pool) therefore cannot deadlock.
//   * Helper tasks that dequeue after the region closed (all tickets
//     claimed, caller about to return) "cancel": they only ever touch the
//     heap-allocated region state they co-own, never the caller's frame.
//   * Ticket claiming supports ascending and descending index order;
//     descending is what the GEMM fixup protocol's deadlock-freedom argument
//     requires (see DESIGN.md section 3).
//   * The first exception thrown by any participant is rethrown on the
//     calling thread after the region quiesces; remaining tickets are still
//     drained so fixup waiters are not stranded.
//
// Lifecycle: shutdown() drains the queue and joins all threads; restart(n)
// brings the pool back with a new thread count.  While stopped, submit()
// and run_region() degrade to inline execution on the calling thread, so a
// shut-down pool is slow, never wrong.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"

namespace streamk::runtime {

/// Index-claiming order for run_region (descending is the fixup-protocol
/// order; see cpu/decomposed_runner.hpp).
enum class RegionOrder { kAscending, kDescending };

/// Future-like handle for a pool submission.  get() rethrows any exception
/// the job threw; if the job is still queued, get() claims and runs it on
/// the calling thread (work stealing) instead of blocking.
template <typename T>
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once a thread (pool or stealing getter) has claimed the job.
  bool started() const {
    return state_ && state_->claimed.load(std::memory_order_acquire);
  }

  /// Blocks until the job finished, running it inline when still unclaimed.
  /// Returns the job's value or rethrows its exception.  One shot: the
  /// handle is invalid afterwards.
  T get() {
    require_valid();
    run_if_unclaimed();
    auto future = std::move(state_->future);
    state_.reset();
    return future.get();
  }

  /// Blocks until the job finished without consuming the result; get() may
  /// still be called afterwards.
  void wait() {
    require_valid();
    run_if_unclaimed();
    state_->future.wait();
  }

 private:
  friend class WorkerPool;

  struct State {
    std::atomic<bool> claimed{false};
    std::packaged_task<T()> task;
    std::future<T> future;
  };

  void require_valid() const {
    if (!state_) {
      throw std::logic_error(
          "TaskHandle is invalid (default-constructed, moved-from, or "
          "already consumed by get())");
    }
  }

  void run_if_unclaimed() {
    if (!state_->claimed.exchange(true, std::memory_order_acq_rel)) {
      // Work steal: no pool thread claimed the job, so the getter runs it
      // inline on its own thread.
      STREAMK_OBS_COUNT("pool.steals");
      STREAMK_OBS_INSTANT(kPoolSteal, 0, 0);
      state_->task();
    }
  }

  std::shared_ptr<State> state_;
};

class WorkerPool {
 public:
  /// Starts `threads` persistent workers (0 = one per hardware thread).
  explicit WorkerPool(std::size_t threads = 0);

  /// Joins all workers (draining the queue first).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Drains the task queue, then stops and joins every worker.  Idempotent.
  void shutdown();

  /// shutdown() followed by starting `threads` fresh workers (0 = one per
  /// hardware thread).
  void restart(std::size_t threads = 0);

  /// Worker threads currently running (0 while shut down).
  std::size_t thread_count() const;

  /// Enqueues `task` for a worker.  While the pool is stopped the task runs
  /// inline on the calling thread.
  void submit(std::function<void()> task);

  /// Future-based submission.  The job runs on whichever thread claims it
  /// first: an idle pool worker, or the caller inside TaskHandle::get().
  template <typename Fn>
  TaskHandle<std::invoke_result_t<Fn&>> async(Fn&& fn) {
    using T = std::invoke_result_t<Fn&>;
    TaskHandle<T> handle;
    auto state = std::make_shared<typename TaskHandle<T>::State>();
    state->task = std::packaged_task<T()>(std::forward<Fn>(fn));
    state->future = state->task.get_future();
    handle.state_ = state;
    submit([state] {
      if (!state->claimed.exchange(true, std::memory_order_acq_rel)) {
        state->task();
      }
    });
    return handle;
  }

  /// Runs `body(index)` for every index in [0, count) across at most
  /// `workers` threads: the caller plus up to `workers - 1` pool helpers.
  /// Blocks until every claimed index completed; rethrows the first
  /// exception.  `workers` must be >= 1; `workers == 1` runs inline.
  void run_region(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers, RegionOrder order);

  /// Total tasks executed by pool workers since construction (telemetry for
  /// tests and benches; approximate under concurrency).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Region;

  void start_locked(std::size_t threads);
  void worker_loop();
  static void drain_region(Region& region);

  mutable std::mutex mutex_;             ///< guards queue_, threads_, stop_
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_executed_{0};
};

/// The process-wide pool: lazily started with one worker per hardware
/// thread on first use, joined during static destruction.  Tests may
/// restart() it at other widths.
WorkerPool& global_pool();

}  // namespace streamk::runtime
