#pragma once

// Asynchronous GEMM submission onto the persistent worker pool.
//
// Every front end of the library -- plain GEMM, batched GEMM, the BLAS
// transpose entry points, and implicit-GEMM convolution -- has a submit_*
// twin here that enqueues the whole operation as one pool job and returns a
// future-based GemmHandle.  Multiple independent submissions are in flight
// concurrently, each claiming CTA tickets from its own compiled plan while
// sharing the one process-wide pool; the inner parallel-for of a running
// job recruits idle pool workers as helpers (see worker_pool.hpp).
//
// The synchronous entry points (cpu::gemm, cpu::batched_gemm, cpu::dgemm,
// conv::conv_forward, ...) are preserved as submit-then-get wrappers, so
// existing callers transparently execute through the pool-backed path.
// GemmHandle::get() work-steals: when no pool worker has claimed the job
// yet, the getter runs it inline, so a sync wrapper can never deadlock --
// not even when called from inside another pool job.
//
// Lifetime: operands are captured by reference.  They must outlive the
// handle's get()/wait() -- trivially true for the sync wrappers; async
// callers keep them alive exactly as they would for a std::thread.
// Exceptions thrown by the submitted operation (shape mismatches, malformed
// schedules) are captured and rethrown from GemmHandle::get().

#include "conv/implicit_gemm.hpp"
#include "core/schedule_plan.hpp"
#include "cpu/batched.hpp"
#include "cpu/blas.hpp"
#include "cpu/gemm.hpp"
#include "cpu/grouped.hpp"
#include "runtime/worker_pool.hpp"

namespace streamk::runtime {

/// Future for an in-flight GEMM-family submission.
using GemmHandle = TaskHandle<cpu::GemmReport>;

/// Process-wide compiled-plan cache shared by every front end: repeated
/// traffic over one (shape, block, schedule, workers) key executes a
/// pointer-identical SchedulePlan instead of recompiling per call --
/// the submission-side counterpart of the workspace pooling.
core::PlanCache& plan_cache();

// --- plain GEMM (cpu/gemm.cpp) --------------------------------------------

GemmHandle submit_gemm(const cpu::Matrix<double>& a,
                       const cpu::Matrix<double>& b, cpu::Matrix<double>& c,
                       const cpu::GemmOptions& options = {});
GemmHandle submit_gemm(const cpu::Matrix<float>& a,
                       const cpu::Matrix<float>& b, cpu::Matrix<float>& c,
                       const cpu::GemmOptions& options = {});
GemmHandle submit_gemm(const cpu::Matrix<util::Half>& a,
                       const cpu::Matrix<util::Half>& b,
                       cpu::Matrix<float>& c,
                       const cpu::GemmOptions& options = {});

// --- batched GEMM (cpu/batched.cpp) ---------------------------------------

GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<double>> as,
                               std::span<const cpu::Matrix<double>> bs,
                               std::span<cpu::Matrix<double>> cs,
                               const cpu::GemmOptions& options = {});
GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<float>> as,
                               std::span<const cpu::Matrix<float>> bs,
                               std::span<cpu::Matrix<float>> cs,
                               const cpu::GemmOptions& options = {});
GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<util::Half>> as,
                               std::span<const cpu::Matrix<util::Half>> bs,
                               std::span<cpu::Matrix<float>> cs,
                               const cpu::GemmOptions& options = {});

// --- grouped (ragged-batch) GEMM (cpu/grouped.cpp) ------------------------

GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<double>> as,
    std::span<const cpu::Matrix<double>> bs, std::span<cpu::Matrix<double>> cs,
    const cpu::GemmOptions& options = {},
    std::span<const epilogue::EpilogueSpec> problem_epilogues = {});
GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<float>> as,
    std::span<const cpu::Matrix<float>> bs, std::span<cpu::Matrix<float>> cs,
    const cpu::GemmOptions& options = {},
    std::span<const epilogue::EpilogueSpec> problem_epilogues = {});
GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<util::Half>> as,
    std::span<const cpu::Matrix<util::Half>> bs,
    std::span<cpu::Matrix<float>> cs, const cpu::GemmOptions& options = {},
    std::span<const epilogue::EpilogueSpec> problem_epilogues = {});

// --- BLAS transpose entry points (cpu/blas.cpp) ---------------------------

GemmHandle submit_dgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<double>& a,
                        const cpu::Matrix<double>& b, double beta,
                        cpu::Matrix<double>& c,
                        const cpu::GemmOptions& options = {});
GemmHandle submit_sgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<float>& a,
                        const cpu::Matrix<float>& b, double beta,
                        cpu::Matrix<float>& c,
                        const cpu::GemmOptions& options = {});
GemmHandle submit_hgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<util::Half>& a,
                        const cpu::Matrix<util::Half>& b, double beta,
                        cpu::Matrix<float>& c,
                        const cpu::GemmOptions& options = {});

// --- implicit-GEMM convolution (conv/implicit_gemm.cpp) -------------------

GemmHandle submit_conv_forward(const conv::ConvShape& conv,
                               const conv::Tensor4<double>& input,
                               const conv::Tensor4<double>& filter,
                               conv::Tensor4<double>& output,
                               const cpu::GemmOptions& options = {});
GemmHandle submit_conv_forward(const conv::ConvShape& conv,
                               const conv::Tensor4<float>& input,
                               const conv::Tensor4<float>& filter,
                               conv::Tensor4<float>& output,
                               const cpu::GemmOptions& options = {});

}  // namespace streamk::runtime
