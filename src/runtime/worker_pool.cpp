#include "runtime/worker_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"
#include "util/threading.hpp"

namespace streamk::runtime {

// ---------------------------------------------------------------------------
// Region state
// ---------------------------------------------------------------------------

/// Heap-allocated, shared_ptr-owned state of one run_region call.  Helper
/// tasks co-own it, so a helper dequeued long after the region finished only
/// ever touches this struct -- never the caller's frame.  `body` is a raw
/// pointer into the caller's frame; it is dereferenced only between a
/// successful try_enter() and the matching leave(), and the caller does not
/// return before every entered helper left (active == 0 after close).
struct WorkerPool::Region {
  std::size_t count = 0;
  RegionOrder order = RegionOrder::kAscending;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next_ticket{0};
  std::atomic<bool> closed{false};
  std::atomic<int> active{0};

  std::mutex error_mutex;
  std::exception_ptr first_error;

  /// Helper-side entry gate.  Incrementing `active` *before* checking
  /// `closed` means the caller's close-then-wait sequence either observes
  /// this helper (active > 0) and waits for it, or the helper observes
  /// `closed` and backs out without touching `body`.
  bool try_enter() {
    active.fetch_add(1, std::memory_order_acq_rel);
    if (closed.load(std::memory_order_acquire)) {
      leave();
      return false;
    }
    return true;
  }

  void leave() {
    active.fetch_sub(1, std::memory_order_acq_rel);
    active.notify_all();
  }

  void record_error() {
    std::lock_guard lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  }
};

void WorkerPool::drain_region(Region& region) {
  for (;;) {
    // acq_rel, not relaxed: the caller's exit condition is its own failed
    // claim here, and reading a helper's earlier claim from this RMW chain
    // is what orders that helper's active-increment before the caller's
    // post-close active.load -- with a relaxed RMW the caller could
    // formally observe active == 0 while the helper is still inside body
    // and return early (unreproducible on x86, real on ARM).
    const std::size_t ticket =
        region.next_ticket.fetch_add(1, std::memory_order_acq_rel);
    if (ticket >= region.count) return;
    const std::size_t index = region.order == RegionOrder::kAscending
                                  ? ticket
                                  : region.count - 1 - ticket;
    try {
      (*region.body)(index);
    } catch (...) {
      region.record_error();
      // Keep draining tickets so fixup peers blocked on this index's output
      // are not left waiting forever; subsequent failures are swallowed.
    }
  }
}

// ---------------------------------------------------------------------------
// Pool lifecycle
// ---------------------------------------------------------------------------

WorkerPool::WorkerPool(std::size_t threads) {
  std::lock_guard lock(mutex_);
  start_locked(threads);
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::start_locked(std::size_t threads) {
  if (threads == 0) threads = util::default_workers();
  stopping_ = false;
  threads_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void WorkerPool::shutdown() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    joinable.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& t : joinable) t.join();
}

void WorkerPool::restart(std::size_t threads) {
  shutdown();
  std::lock_guard lock(mutex_);
  start_locked(threads);
}

std::size_t WorkerPool::thread_count() const {
  std::lock_guard lock(mutex_);
  return threads_.size();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    // Depth *after* the dequeue: how much work was left waiting when this
    // task started -- the oversubscription signal the serving roadmap needs.
    STREAMK_OBS_HISTOGRAM("pool.queue_depth", depth);
    {
      STREAMK_OBS_SPAN(kPoolTask, static_cast<std::int64_t>(depth), 0);
      task();
    }
    STREAMK_OBS_COUNT("pool.tasks");
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (!stopping_ && !threads_.empty()) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  // Stopped pool: degrade to inline execution so submissions stay correct
  // (futures resolve, regions run serially) even without workers.
  task();
}

// ---------------------------------------------------------------------------
// Structured parallel regions
// ---------------------------------------------------------------------------

void WorkerPool::run_region(std::size_t count,
                            const std::function<void(std::size_t)>& body,
                            std::size_t workers, RegionOrder order) {
  util::check(workers >= 1, "run_region needs at least one worker");
  if (count == 0) return;
  STREAMK_OBS_COUNT("pool.regions");

  // Never occupy more threads than there are indices to claim.
  if (workers > count) workers = count;

  if (workers == 1) {
    if (order == RegionOrder::kAscending) {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } else {
      for (std::size_t i = count; i-- > 0;) body(i);
    }
    return;
  }

  auto region = std::make_shared<Region>();
  region->count = count;
  region->order = order;
  region->body = &body;

  // Enqueue helpers under one lock with one wake-up: per-task notify_one
  // round trips are measurable at small-GEMM submission rates.  A helper
  // drains tickets until none remain, so there is never a reason to queue
  // more helpers than physical pool threads -- extras could only ever
  // cancel or duplicate a running drain loop.
  auto helper = [region] {
    if (!region->try_enter()) return;
    drain_region(*region);
    region->leave();
  };
  bool queued = false;
  {
    std::lock_guard lock(mutex_);
    if (!stopping_ && !threads_.empty()) {
      const std::size_t helpers = std::min(workers - 1, threads_.size());
      for (std::size_t h = 0; h < helpers; ++h) queue_.push_back(helper);
      queued = true;
    }
  }
  if (queued) cv_.notify_all();
  // Stopped pool: no helpers; the caller drains the region alone below.

  // The caller always participates, guaranteeing the region at least one
  // executing thread regardless of pool load (the nested-region progress
  // guarantee; see header).
  drain_region(*region);

  // All tickets are claimed; close the gate so still-queued helpers cancel,
  // then wait for entered helpers to finish their last index.
  region->closed.store(true, std::memory_order_release);
  int active = region->active.load(std::memory_order_acquire);
  while (active != 0) {
    region->active.wait(active, std::memory_order_acquire);
    active = region->active.load(std::memory_order_acquire);
  }

  if (region->first_error) std::rethrow_exception(region->first_error);
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

WorkerPool& global_pool() {
  static WorkerPool pool;
  return pool;
}

}  // namespace streamk::runtime
