#pragma once

// Pooled execution workspaces.
//
// Before the runtime existed, every execute_plan()-family call allocated a
// fresh FixupWorkspace (partials buffer + flag array + slot map) and every
// claimed CTA allocated a fresh accumulator tile and MacScratch fragment
// buffers.  Under persistent-pool traffic -- many small GEMMs per second --
// those allocations dominate.  Two pooling layers remove them:
//
//   * WorkspacePool<Acc>: a process-wide free list of FixupWorkspace
//     objects.  acquire() rebinds a recycled workspace to the new plan;
//     vectors keep their capacity, so steady-state traffic over one plan
//     shape performs zero heap allocation per call.  Leases return the
//     workspace on destruction (bounded list; extras are freed).
//   * local_cta_buffers<Acc>(): thread-local accumulator + fragment scratch,
//     keyed by the requested sizes.  Pool workers are persistent, so these
//     buffers live across submissions and are reused per plan shape; worker
//     threads touch only their own instance, so no locking is needed.
//
// Both layers are per accumulator type (double / float instantiation).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/workspace.hpp"

namespace streamk::runtime {

/// Pooling kill switch: when disabled, acquire() always allocates and
/// releases always free -- the pre-runtime allocate-per-call behaviour.
/// Exists for A/B measurement (bench_runtime_throughput.cpp) and as a
/// diagnostic escape hatch; defaults to enabled.
inline std::atomic<bool>& workspace_pooling_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline void set_workspace_pooling(bool enabled) {
  workspace_pooling_flag().store(enabled, std::memory_order_relaxed);
}
inline bool workspace_pooling() {
  return workspace_pooling_flag().load(std::memory_order_relaxed);
}

template <typename Acc>
class WorkspacePool {
 public:
  /// Move-only ownership of one pooled workspace for the duration of a
  /// plan execution; returns it to the pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool,
          std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() {
      if (workspace_) pool_->release(std::move(workspace_));
    }

    cpu::FixupWorkspace<Acc>& workspace() { return *workspace_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace_;
  };

  static WorkspacePool& instance() {
    // Intentionally immortal (reachable via the static pointer, so not a
    // leak): pool workers may still drain queued jobs during static
    // destruction, after a function-local static would already be gone.
    static WorkspacePool* pool = new WorkspacePool();
    return *pool;
  }

  /// A workspace bound to `plan` (flags rearmed, slot map rebuilt).  Reuses
  /// a pooled object's buffers when one is free.
  Lease acquire(const core::SchedulePlan& plan, std::int64_t tile_elements) {
    std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace;
    if (workspace_pooling()) {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        workspace = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (!workspace) workspace = std::make_unique<cpu::FixupWorkspace<Acc>>();
    workspace->bind(plan, tile_elements);
    return Lease(this, std::move(workspace));
  }

  std::size_t pooled_count() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace) {
    if (!workspace_pooling()) return;  // drop: allocate-per-call mode
    std::lock_guard lock(mutex_);
    if (free_.size() < kMaxPooled) free_.push_back(std::move(workspace));
    // else: drop -- the list bounds resident memory under burst concurrency.
  }

  /// More simultaneous in-flight plans than this allocate fresh workspaces
  /// that are freed on release instead of pooled.
  static constexpr std::size_t kMaxPooled = 16;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<cpu::FixupWorkspace<Acc>>> free_;
};

/// Per-thread CTA execution buffers: the output-tile accumulator and the
/// A/B packing/fragment scratch.
template <typename Acc>
struct CtaBuffers {
  std::vector<Acc> accum;
  cpu::MacScratch<Acc> scratch;
};

/// The calling thread's CtaBuffers, resized for (block, tile_elements) with
/// packed-panel chunks `panel_kc` deep (0 = one MAC-loop iteration).
/// Resizing is a no-op when the previous use had the same shape, which is
/// the steady state on persistent pool workers.  With pooling disabled,
/// `fallback` (a fresh per-CTA instance) is sized and returned instead --
/// the pre-runtime allocate-per-CTA behaviour.
template <typename Acc>
CtaBuffers<Acc>& local_cta_buffers(CtaBuffers<Acc>& fallback,
                                   const gpu::BlockShape& block,
                                   std::int64_t tile_elements,
                                   std::int64_t panel_kc = 0) {
  thread_local CtaBuffers<Acc> buffers;
  CtaBuffers<Acc>& chosen = workspace_pooling() ? buffers : fallback;
  chosen.accum.resize(static_cast<std::size_t>(tile_elements));
  chosen.scratch.resize(block, panel_kc);
  return chosen;
}

}  // namespace streamk::runtime
