#pragma once

// Pooled execution workspaces.
//
// Before the runtime existed, every execute_plan()-family call allocated a
// fresh FixupWorkspace (partials buffer + flag array + slot map) and every
// claimed CTA allocated a fresh accumulator tile and MacScratch fragment
// buffers.  Under persistent-pool traffic -- many small GEMMs per second --
// those allocations dominate.  Two pooling layers remove them:
//
//   * WorkspacePool<Acc>: a process-wide free list of FixupWorkspace
//     objects.  acquire() rebinds a recycled workspace to the new plan;
//     vectors keep their capacity, so steady-state traffic over one plan
//     shape performs zero heap allocation per call.  Leases return the
//     workspace on destruction (bounded list; extras are freed).
//   * local_cta_buffers<Acc>(): thread-local accumulator + fragment scratch,
//     keyed by the requested sizes.  Pool workers are persistent, so these
//     buffers live across submissions and are reused per plan shape; worker
//     threads touch only their own instance, so no locking is needed.
//
// Both layers are per accumulator type (double / float instantiation).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/executor.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/panel_cache.hpp"
#include "cpu/workspace.hpp"

namespace streamk::runtime {

/// Pooling kill switch: when disabled, acquire() always allocates and
/// releases always free -- the pre-runtime allocate-per-call behaviour.
/// Exists for A/B measurement (bench_runtime_throughput.cpp) and as a
/// diagnostic escape hatch; defaults to enabled.
inline std::atomic<bool>& workspace_pooling_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline void set_workspace_pooling(bool enabled) {
  workspace_pooling_flag().store(enabled, std::memory_order_relaxed);
}
inline bool workspace_pooling() {
  return workspace_pooling_flag().load(std::memory_order_relaxed);
}

template <typename Acc>
class WorkspacePool {
 public:
  /// Move-only ownership of one pooled workspace for the duration of a
  /// plan execution; returns it to the pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool,
          std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() {
      if (workspace_) pool_->release(std::move(workspace_));
    }

    cpu::FixupWorkspace<Acc>& workspace() { return *workspace_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace_;
  };

  static WorkspacePool& instance() {
    // Intentionally immortal (reachable via the static pointer, so not a
    // leak): pool workers may still drain queued jobs during static
    // destruction, after a function-local static would already be gone.
    static WorkspacePool* pool = new WorkspacePool();
    return *pool;
  }

  /// A workspace bound to `plan` (flags rearmed, slot map rebuilt).  Reuses
  /// a pooled object's buffers when one is free.
  Lease acquire(const core::SchedulePlan& plan, std::int64_t tile_elements) {
    std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace;
    if (workspace_pooling()) {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        workspace = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (!workspace) workspace = std::make_unique<cpu::FixupWorkspace<Acc>>();
    workspace->bind(plan, tile_elements);
    return Lease(this, std::move(workspace));
  }

  std::size_t pooled_count() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<cpu::FixupWorkspace<Acc>> workspace) {
    if (!workspace_pooling()) return;  // drop: allocate-per-call mode
    std::lock_guard lock(mutex_);
    if (free_.size() < kMaxPooled) free_.push_back(std::move(workspace));
    // else: drop -- the list bounds resident memory under burst concurrency.
  }

  /// More simultaneous in-flight plans than this allocate fresh workspaces
  /// that are freed on release instead of pooled.
  static constexpr std::size_t kMaxPooled = 16;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<cpu::FixupWorkspace<Acc>>> free_;
};

/// Process-wide free list of shared packed-panel arenas
/// (cpu/panel_cache.hpp), mirroring WorkspacePool: acquire() resolves the
/// caller's PanelCacheMode against the plan and either hands back a lease
/// whose cache() is a bound arena (recycled storage when one is free) or a
/// null lease -- callers treat a null cache as "pack privately", so every
/// resolution path degrades to the pre-cache behaviour.
template <typename Acc>
class PanelCachePool {
 public:
  class Lease {
   public:
    Lease(PanelCachePool* pool, std::unique_ptr<cpu::PanelCache<Acc>> cache)
        : pool_(pool), cache_(std::move(cache)) {}

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), cache_(std::move(other.cache_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() {
      if (cache_) pool_->release(std::move(cache_));
    }

    /// The bound arena, or nullptr when sharing is off for this call.
    cpu::PanelCache<Acc>* cache() { return cache_.get(); }

   private:
    PanelCachePool* pool_;
    std::unique_ptr<cpu::PanelCache<Acc>> cache_;
  };

  static PanelCachePool& instance() {
    // Immortal for the same reason as WorkspacePool::instance().
    static PanelCachePool* pool = new PanelCachePool();
    return *pool;
  }

  /// A cache bound to `plan`'s panel geometry (or `config` when the
  /// substrate maps panels itself -- batched entries, conv iterations), or
  /// a null lease when `mode`, the STREAMK_PANEL_CACHE kill switch, the
  /// plan's shareability, or the arena budget says private packing.
  Lease acquire(const core::SchedulePlan& plan, cpu::PanelCacheMode mode,
                const cpu::PanelCacheConfig* config = nullptr) {
    const core::PanelCacheGeometry& geo = plan.panel_geometry();
    const bool on =
        cpu::panel_cache_enabled() &&
        (mode == cpu::PanelCacheMode::kOn ||
         (mode == cpu::PanelCacheMode::kAuto && geo.shareable));
    if (!on) return Lease(this, nullptr);

    cpu::PanelCacheConfig resolved;
    if (config != nullptr) {
      resolved = *config;
    } else {
      resolved.row_panels = geo.row_panels;
      resolved.col_panels = geo.col_panels;
      resolved.chunks = geo.chunks;
      resolved.chunk_depth = geo.panel_kc;
    }

    std::unique_ptr<cpu::PanelCache<Acc>> cache;
    if (workspace_pooling()) {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        cache = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (!cache) cache = std::make_unique<cpu::PanelCache<Acc>>();
    if (!cache->bind(plan.block(), resolved)) {
      release(std::move(cache));  // over budget / degenerate: run private
      return Lease(this, nullptr);
    }
    return Lease(this, std::move(cache));
  }

  std::size_t pooled_count() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<cpu::PanelCache<Acc>> cache) {
    if (!workspace_pooling()) return;  // drop: allocate-per-call mode
    std::lock_guard lock(mutex_);
    if (free_.size() < kMaxPooled) free_.push_back(std::move(cache));
  }

  /// Arenas are the largest pooled objects; bound tighter than workspaces.
  static constexpr std::size_t kMaxPooled = 8;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<cpu::PanelCache<Acc>>> free_;
};

/// Per-thread CTA execution buffers: the output-tile accumulator and the
/// A/B packing/fragment scratch.
template <typename Acc>
struct CtaBuffers {
  std::vector<Acc> accum;
  cpu::MacScratch<Acc> scratch;
};

/// The calling thread's CtaBuffers, resized for (block, tile_elements) with
/// packed-panel chunks `panel_kc` deep (0 = one MAC-loop iteration).
/// Resizing is a no-op when the previous use had the same shape, which is
/// the steady state on persistent pool workers.  With pooling disabled,
/// `fallback` (a fresh per-CTA instance) is sized and returned instead --
/// the pre-runtime allocate-per-CTA behaviour.
template <typename Acc>
CtaBuffers<Acc>& local_cta_buffers(CtaBuffers<Acc>& fallback,
                                   const gpu::BlockShape& block,
                                   std::int64_t tile_elements,
                                   std::int64_t panel_kc = 0) {
  thread_local CtaBuffers<Acc> buffers;
  CtaBuffers<Acc>& chosen = workspace_pooling() ? buffers : fallback;
  chosen.accum.resize(static_cast<std::size_t>(tile_elements));
  chosen.scratch.resize(block, panel_kc);
  return chosen;
}

}  // namespace streamk::runtime
