#include "gpu/gpu_spec.hpp"

#include "util/check.hpp"

namespace streamk::gpu {

double GpuSpec::peak_flops(Precision p) const {
  switch (p) {
    case Precision::kFp64:
      return peak_fp64_tflops * 1e12;
    case Precision::kFp32:
      return peak_fp32_tflops * 1e12;
    case Precision::kFp16F32:
      return peak_fp16f32_tflops * 1e12;
  }
  util::fail("unknown precision");
}

double GpuSpec::per_sm_flops(Precision p) const {
  util::check(sm_count > 0, "GpuSpec without SMs");
  return peak_flops(p) / static_cast<double>(sm_count);
}

GpuSpec GpuSpec::a100_locked() {
  GpuSpec spec;
  spec.name = "NVIDIA A100 (400 W / 1005 MHz lock)";
  spec.sm_count = 108;
  // Tensor-core peaks at the locked clocks, as reported in Section 6.
  spec.peak_fp64_tflops = 13.9;
  spec.peak_fp16f32_tflops = 222.3;
  // CUDA-core FP32 rate at 1005 MHz (108 SMs x 128 FLOP/cycle); the paper
  // does not evaluate FP32, this is for completeness.
  spec.peak_fp32_tflops = 13.9;
  spec.dram_gbytes_per_s = 1555.0;      // HBM2e, A100-40GB
  spec.l2_bytes = 40ll * 1024 * 1024;   // 40 MB L2
  return spec;
}

GpuSpec GpuSpec::hypothetical4() {
  // The four-SM illustration device of Figures 1-3 and 9, with per-SM rates
  // matching the locked A100 so MAC-loop iteration costs carry over.
  GpuSpec spec = a100_locked();
  spec.name = "hypothetical 4-SM GPU";
  const double scale = 4.0 / static_cast<double>(spec.sm_count);
  spec.sm_count = 4;
  spec.peak_fp64_tflops *= scale;
  spec.peak_fp32_tflops *= scale;
  spec.peak_fp16f32_tflops *= scale;
  spec.dram_gbytes_per_s *= scale;
  spec.l2_bytes = static_cast<std::int64_t>(
      static_cast<double>(spec.l2_bytes) * scale);
  return spec;
}

}  // namespace streamk::gpu
