#include "gpu/precision.hpp"

#include "util/check.hpp"

namespace streamk::gpu {

std::size_t input_bytes(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return 8;
    case Precision::kFp32:
      return 4;
    case Precision::kFp16F32:
      return 2;
  }
  util::fail("unknown precision");
}

std::size_t output_bytes(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return 8;
    case Precision::kFp32:
    case Precision::kFp16F32:
      return 4;
  }
  util::fail("unknown precision");
}

std::size_t accumulator_bytes(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return 8;
    case Precision::kFp32:
    case Precision::kFp16F32:
      return 4;
  }
  util::fail("unknown precision");
}

std::string_view name(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return "fp64";
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp16F32:
      return "fp16->32";
  }
  util::fail("unknown precision");
}

}  // namespace streamk::gpu
