#pragma once

// Virtual GPU description.
//
// All performance experiments run against a GpuSpec: a named processor with
// a number of streaming-multiprocessor cores, per-precision peak math
// throughput, and DRAM bandwidth.  Two presets matter for the paper:
//
//   * a100_locked(): the paper's test device — an NVIDIA A100 with 108 SMs,
//     power locked at 400 W and SM clocks at 1005 MHz, establishing
//     13.9 TFLOP/s FP64 and 222.3 TFLOP/s FP16->32 tensor-core peaks.
//   * hypothetical4(): the four-SM machine used by Figures 1, 2, 3 and 9 to
//     illustrate execution schedules.

#include <cstdint>
#include <string>

#include "gpu/precision.hpp"

namespace streamk::gpu {

struct GpuSpec {
  std::string name;
  std::int64_t sm_count = 0;
  double peak_fp64_tflops = 0.0;
  double peak_fp32_tflops = 0.0;
  double peak_fp16f32_tflops = 0.0;
  double dram_gbytes_per_s = 0.0;
  std::int64_t l2_bytes = 0;

  /// Peak math throughput in FLOP/s for a precision.
  double peak_flops(Precision p) const;

  /// Peak throughput of one SM core in FLOP/s (even share of the device).
  double per_sm_flops(Precision p) const;

  /// DRAM bandwidth in bytes/s.
  double dram_bytes_per_s() const { return dram_gbytes_per_s * 1e9; }

  static GpuSpec a100_locked();
  static GpuSpec hypothetical4();
};

}  // namespace streamk::gpu
