#pragma once

// GEMM precision descriptors.
//
// The paper evaluates two precisions on the A100:
//   * FP64        — double in, double accumulate, double out.
//   * FP16->32    — half in, float accumulate, float out (mixed precision).
// We additionally support FP32 for CPU-side testing convenience.

#include <cstddef>
#include <string_view>

namespace streamk::gpu {

enum class Precision {
  kFp64,     ///< double-precision GEMM
  kFp32,     ///< single-precision GEMM (not evaluated in the paper; testing aid)
  kFp16F32,  ///< half-precision inputs with single-precision accumulation
};

/// Bytes per element of the A/B input matrices.
std::size_t input_bytes(Precision p);

/// Bytes per element of the C output matrix.
std::size_t output_bytes(Precision p);

/// Bytes per element of the *accumulator* (and therefore of a spilled
/// partial-sum tile: Stream-K partials are stored at accumulator width).
std::size_t accumulator_bytes(Precision p);

std::string_view name(Precision p);

}  // namespace streamk::gpu
