#pragma once

// CTA-wide blocking factors (BLK_M x BLK_N x BLK_K in the paper's notation).
//
// A BlockShape fixes the granularity of one MAC-loop iteration: a
// BLK_M x BLK_N x BLK_K volume of multiply-accumulates.  Stream-K's central
// idea is to quantize the GEMM into these iterations rather than into whole
// output tiles.

#include <compare>
#include <cstdint>
#include <string>

namespace streamk::gpu {

struct BlockShape {
  std::int64_t m = 0;  ///< BLK_M: output-tile rows
  std::int64_t n = 0;  ///< BLK_N: output-tile columns
  std::int64_t k = 0;  ///< BLK_K: accumulation depth of one MAC-loop iteration

  friend constexpr auto operator<=>(const BlockShape&,
                                    const BlockShape&) = default;

  /// Multiply-accumulate count of a single MAC-loop iteration.
  constexpr std::int64_t macs_per_iteration() const { return m * n * k; }

  /// Elements in one output tile (also in one spilled partial-sum buffer).
  constexpr std::int64_t tile_elements() const { return m * n; }

  constexpr bool valid() const { return m > 0 && n > 0 && k > 0; }

  std::string to_string() const {
    return std::to_string(m) + "x" + std::to_string(n) + "x" +
           std::to_string(k);
  }

  // The paper's chosen per-precision blocking factors (Section 5.1): the
  // smallest CTA-wide tile reaching 99% of A100 peak for large GEMMs.
  static constexpr BlockShape paper_fp64() { return {64, 64, 16}; }
  static constexpr BlockShape paper_fp16() { return {128, 128, 32}; }
};

}  // namespace streamk::gpu
