#include "obs/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

namespace streamk::obs {

double LoadBalanceProfile::imbalance() const {
  if (busy_sum_ns <= 0 || ctas.empty()) return 0.0;
  return static_cast<double>(makespan_ns) *
         static_cast<double>(ctas.size()) /
         static_cast<double>(busy_sum_ns);
}

double LoadBalanceProfile::wait_share() const {
  const std::int64_t total = busy_sum_ns + wait_sum_ns;
  return total <= 0 ? 0.0
                    : static_cast<double>(wait_sum_ns) /
                          static_cast<double>(total);
}

double LoadBalanceProfile::stall_share() const {
  return cycles_sum <= 0 ? 0.0
                         : static_cast<double>(stalled_sum) /
                               static_cast<double>(cycles_sum);
}

double LoadBalanceProfile::llc_miss_per_kinst() const {
  return instructions_sum <= 0
             ? 0.0
             : 1000.0 * static_cast<double>(llc_miss_sum) /
                   static_cast<double>(instructions_sum);
}

LoadBalanceProfile build_load_balance_profile(
    std::span<const TraceSpan> spans) {
  std::map<std::int64_t, CtaProfile> by_cta;
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  LoadBalanceProfile profile;

  auto add_pmu = [&profile](CtaProfile& cta, const TraceSpan& span) {
    if (!span.has_pmu) return;
    cta.cycles += span.cycles;
    cta.instructions += span.instructions;
    cta.llc_misses += span.llc_misses;
    cta.stalled_backend += span.stalled_backend;
    profile.pmu_spans += 1;
    profile.cycles_sum += span.cycles;
    profile.instructions_sum += span.instructions;
    profile.llc_miss_sum += span.llc_misses;
    profile.stalled_sum += span.stalled_backend;
  };

  for (const TraceSpan& span : spans) {
    const std::int64_t dur = span.t1_ns - span.t0_ns;
    switch (span.kind) {
      case EventKind::kMacSegment: {
        CtaProfile& cta = by_cta[span.arg0];
        cta.mac_ns += dur;
        cta.segments += 1;
        add_pmu(cta, span);
        break;
      }
      case EventKind::kEpilogueApply: {
        CtaProfile& cta = by_cta[span.arg0];
        cta.epilogue_ns += dur;
        add_pmu(cta, span);
        break;
      }
      case EventKind::kFixupWait: {
        CtaProfile& cta = by_cta[span.arg0];
        cta.wait_ns += dur;
        cta.waits += 1;
        break;
      }
      case EventKind::kFixupSignal:
        profile.fixup_signals += 1;
        continue;  // instant: no extent, no by-CTA time
      default:
        continue;
    }
    t_min = std::min(t_min, span.t0_ns);
    t_max = std::max(t_max, span.t1_ns);
  }

  profile.busy_min_ns = std::numeric_limits<std::int64_t>::max();
  for (auto& [id, cta] : by_cta) {
    cta.cta = id;
    profile.busy_sum_ns += cta.busy_ns();
    profile.wait_sum_ns += cta.wait_ns;
    profile.busy_min_ns = std::min(profile.busy_min_ns, cta.busy_ns());
    profile.busy_max_ns = std::max(profile.busy_max_ns, cta.busy_ns());
    profile.ctas.push_back(cta);
  }
  if (profile.ctas.empty()) profile.busy_min_ns = 0;
  if (t_max > t_min) profile.makespan_ns = t_max - t_min;
  return profile;
}

namespace {

std::string bar(std::int64_t value, std::int64_t max_value, int width) {
  if (max_value <= 0) return {};
  const int n = static_cast<int>(value * width / max_value);
  return std::string(static_cast<std::size_t>(std::max(n, 0)), '#');
}

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string render_load_balance_profile(const LoadBalanceProfile& profile) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  if (profile.ctas.empty()) {
    os << "no CTA-attributed spans in trace (was tracing armed during the "
          "run?)\n";
    return os.str();
  }

  os << "Stream-K load-balance profile (" << profile.ctas.size()
     << " CTAs)\n";
  os << std::setprecision(3);
  os << "  makespan          " << ms(profile.makespan_ns) << " ms\n";
  os << "  busy sum          " << ms(profile.busy_sum_ns) << " ms\n";
  os << "  busy min/max      " << ms(profile.busy_min_ns) << " / "
     << ms(profile.busy_max_ns) << " ms\n";
  os << "  imbalance         " << profile.imbalance()
     << "x  (makespan * ctas / busy sum; 1.0 = perfect)\n";
  os << "  fixup wait sum    " << ms(profile.wait_sum_ns) << " ms  ("
     << std::setprecision(1) << profile.wait_share() * 100.0
     << "% of busy+wait)\n";
  os << "  fixup signals     " << profile.fixup_signals
     << " (spilled partials)\n";
  if (profile.pmu_spans > 0) {
    os << std::setprecision(1) << "  pmu (busy spans)  "
       << profile.cycles_sum << " cycles, " << profile.instructions_sum
       << " instr, stall share " << profile.stall_share() * 100.0
       << "%, LLC miss/kinst " << std::setprecision(2)
       << profile.llc_miss_per_kinst() << "\n";
  }
  os << "\n";

  os << "  cta    busy_ms    wait_ms  segs  waits  busy\n";
  std::int64_t busy_max = 0;
  for (const CtaProfile& cta : profile.ctas) {
    busy_max = std::max(busy_max, cta.busy_ns());
  }
  for (const CtaProfile& cta : profile.ctas) {
    os << "  " << std::setw(3) << cta.cta << std::setprecision(3)
       << std::setw(11) << ms(cta.busy_ns()) << std::setw(11)
       << ms(cta.wait_ns) << std::setw(6) << cta.segments << std::setw(7)
       << cta.waits << "  " << bar(cta.busy_ns(), busy_max, 40) << "\n";
  }
  return os.str();
}

std::string load_balance_profile_json(const LoadBalanceProfile& profile) {
  std::ostringstream os;
  os << "{\"ctas\":" << profile.ctas.size()
     << ",\"makespan_ns\":" << profile.makespan_ns
     << ",\"busy_sum_ns\":" << profile.busy_sum_ns
     << ",\"busy_min_ns\":" << profile.busy_min_ns
     << ",\"busy_max_ns\":" << profile.busy_max_ns
     << ",\"wait_sum_ns\":" << profile.wait_sum_ns
     << ",\"fixup_signals\":" << profile.fixup_signals
     << ",\"imbalance\":" << profile.imbalance()
     << ",\"wait_share\":" << profile.wait_share()
     << ",\"pmu_spans\":" << profile.pmu_spans
     << ",\"cycles_sum\":" << profile.cycles_sum
     << ",\"instructions_sum\":" << profile.instructions_sum
     << ",\"llc_miss_sum\":" << profile.llc_miss_sum
     << ",\"stalled_sum\":" << profile.stalled_sum
     << ",\"stall_share\":" << profile.stall_share()
     << ",\"llc_miss_per_kinst\":" << profile.llc_miss_per_kinst()
     << ",\"per_cta\":[";
  bool first = true;
  for (const CtaProfile& cta : profile.ctas) {
    os << (first ? "" : ",") << "{\"cta\":" << cta.cta
       << ",\"mac_ns\":" << cta.mac_ns
       << ",\"epilogue_ns\":" << cta.epilogue_ns
       << ",\"wait_ns\":" << cta.wait_ns << ",\"segments\":" << cta.segments
       << ",\"waits\":" << cta.waits << ",\"cycles\":" << cta.cycles
       << ",\"instructions\":" << cta.instructions
       << ",\"llc_misses\":" << cta.llc_misses
       << ",\"stalled_backend\":" << cta.stalled_backend << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace streamk::obs
