#pragma once

// Hardware performance-counter sampling (perf_event_open wrapper).
//
// The trace layer (obs/trace.hpp) answers "where did the wall time go";
// this module answers "what was the hardware doing while it went": each
// armed span can carry deltas of four counters -- cycles, retired
// instructions, last-level-cache misses, and backend-stalled cycles --
// read as one grouped perf_event sample at span open and close.  The
// group read keeps the four values mutually consistent, and
// time_enabled/time_running scaling compensates for kernel multiplexing
// when other tools hold the PMU.
//
// Tiering (DESIGN.md §14):
//   tier 0  STREAMK_OBS=OFF            -- no instrumentation at all
//   tier 1  tracing disarmed           -- one relaxed load per span site
//   tier 2  tracing armed, PMU off     -- timestamps only (today's spans)
//   tier 3  tracing + PMU armed        -- timestamps + counter deltas
//
// Degradation is graceful and silent at the call sites: in containers and
// on locked-down kernels perf_event_open fails (ENOSYS / EACCES / EPERM /
// paranoid level), pmu_available() latches false with a reason string, and
// every read returns false so spans simply carry no counters -- byte-for-
// byte the tier-2 behaviour.  Nothing in the library requires the PMU;
// streamk_doctor reports "timing-only" diagnoses when it is absent.
//
// Arming mirrors the trace layer: STREAMK_PMU=1 in the environment arms at
// load time, STREAMK_PMU=0 force-disables even programmatic arming (the
// doctor's --no-pmu equivalent for whole processes), and
// arm_pmu()/disarm_pmu() scope it at runtime.  Counter file descriptors
// are per-thread (perf counts per-thread with inherit=0), opened lazily on
// the thread's first armed read and closed when the thread exits.

#include <cstdint>

namespace streamk::obs {

/// One grouped counter reading (or a delta of two).  A value of -1 in a
/// *reading* means that event could not be opened on this machine (e.g.
/// stalled-backend is not exposed on all cores); deltas of unavailable
/// events are 0.
struct PmuSample {
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t llc_misses = 0;
  std::int64_t stalled_backend = 0;

  PmuSample operator-(const PmuSample& rhs) const {
    auto sub = [](std::int64_t a, std::int64_t b) {
      if (a < 0 || b < 0) return std::int64_t{0};  // event unavailable
      const std::int64_t d = a - b;
      return d > 0 ? d : std::int64_t{0};
    };
    return PmuSample{sub(cycles, rhs.cycles),
                     sub(instructions, rhs.instructions),
                     sub(llc_misses, rhs.llc_misses),
                     sub(stalled_backend, rhs.stalled_backend)};
  }

  PmuSample& operator+=(const PmuSample& rhs) {
    cycles += rhs.cycles;
    instructions += rhs.instructions;
    llc_misses += rhs.llc_misses;
    stalled_backend += rhs.stalled_backend;
    return *this;
  }
};

/// Whether this process can read hardware counters at all.  The first call
/// probes by opening a counter group on the calling thread; the verdict
/// (and, on failure, pmu_unavailable_reason()) is latched process-wide.
/// STREAMK_PMU=0 latches "unavailable" without probing.
bool pmu_available();

/// Human-readable reason when pmu_available() is false ("perf_event_open:
/// Operation not permitted", "disabled by STREAMK_PMU=0", ...); empty when
/// available or not yet probed.
const char* pmu_unavailable_reason();

/// Arms per-span PMU sampling.  Returns pmu_available(): arming a machine
/// without a usable PMU is a no-op, not an error.  Idempotent.
bool arm_pmu();
void disarm_pmu();

/// The span-site fast path: one relaxed load.  True only after a
/// successful arm_pmu() (so pmu_armed() implies pmu_available()).
bool pmu_armed();

/// Reads the calling thread's counter group into `out`.  Returns false --
/// and leaves `out` untouched -- when the PMU is not armed or the thread's
/// group cannot be opened.  Values are multiplex-scaled and monotone per
/// thread, so `later - earlier` is a valid delta.
bool pmu_read(PmuSample& out);

}  // namespace streamk::obs
