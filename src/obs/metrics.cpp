#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace streamk::obs {

namespace {

/// CAS-maintained running min/max (relaxed: the exact winner of a
/// concurrent tie is immaterial for telemetry).
void atomic_min(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

struct Registry {
  std::mutex mutex;  ///< registration + snapshot; updates never take it
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  // Immortal: metric sites in pool jobs may fire during static destruction.
  static Registry* r = new Registry();
  return *r;
}

template <typename Map, typename... OtherMaps>
typename Map::mapped_type::element_type& find_or_create(
    Map& map, std::string_view name, const char* kind,
    const OtherMaps&... others) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  if (const auto it = map.find(name); it != map.end()) return *it->second;
  util::check((... && !others.contains(std::string(name))),
              std::string("metric name registered as a different kind: ") +
                  std::string(name) + " (requested " + kind + ")");
  auto metric = std::make_unique<typename Map::mapped_type::element_type>();
  auto& ref = *metric;
  map.emplace(std::string(name), std::move(metric));
  return ref;
}

std::string& env_metrics_path() {
  static std::string* path = new std::string();
  return *path;
}

/// STREAMK_METRICS=<path>: dump a snapshot at process exit.
const bool g_env_init = [] {
  if (const char* path = std::getenv("STREAMK_METRICS"); path && *path) {
    env_metrics_path() = path;
    std::atexit([] {
      try {
        write_metrics(env_metrics_path());
      } catch (const std::exception& e) {
        util::log_warn(std::string("STREAMK_METRICS not written: ") +
                       e.what());
      }
    });
  }
  return true;
}();

}  // namespace

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  const std::size_t bucket =
      v == 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(v));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // First-sample min/max initialization: claim count 0 -> 1 with seed
  // stores ordered before the increment readers race on.  A concurrent
  // first recorder simply CASes against the seed like any later sample.
  if (count_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    atomic_min(min_, v);
    atomic_max(max_, v);
    // min_ seeds at 0; a first sample > 0 must still win.
    std::int64_t expected = 0;
    if (v > 0) min_.compare_exchange_strong(expected, v,
                                            std::memory_order_relaxed);
  } else {
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
}

std::int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.counters, name, "counter", r.gauges, r.histograms);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.gauges, name, "gauge", r.counters, r.histograms);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.histograms, name, "histogram", r.counters,
                        r.gauges);
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  MetricsSnapshot snapshot;
  for (const auto& [name, c] : r.counters) {
    snapshot.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : r.gauges) {
    snapshot.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.mean = h->mean();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      const std::uint64_t upper = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
      hs.buckets.emplace_back(upper, n);
    }
    hs.p50 = histogram_percentile(hs, 50.0);
    hs.p95 = histogram_percentile(hs, 95.0);
    hs.p99 = histogram_percentile(hs, 99.0);
    snapshot.histograms.push_back(std::move(hs));
  }
  return snapshot;
}

double histogram_percentile(const HistogramSnapshot& h, double percentile) {
  if (h.count == 0) return 0.0;
  // Rank of the requested percentile, 1-based: ceil(q/100 * n), floored at
  // the first sample.
  const double exact = percentile / 100.0 * static_cast<double>(h.count);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(exact)));
  std::uint64_t seen = 0;
  for (const auto& [upper, n] : h.buckets) {
    if (seen + n < rank) {
      seen += n;
      continue;
    }
    // Linear interpolation by rank position within the containing bucket
    // [lo, upper]; bucket 0 is the exact value zero.
    const double lo =
        upper == 0 ? 0.0 : static_cast<double>(upper / 2 + 1);
    const double hi = static_cast<double>(upper);
    const double frac = n == 0 ? 0.0
                               : static_cast<double>(rank - seen) /
                                     static_cast<double>(n);
    double estimate = lo + (hi - lo) * frac;
    // The recorded extremes bound every sample, so they bound every
    // percentile; clamping recovers exactness when a bucket holds a single
    // distinct value.
    estimate = std::max(estimate, static_cast<double>(h.min));
    estimate = std::min(estimate, static_cast<double>(h.max));
    return estimate;
  }
  return static_cast<double>(h.max);
}

std::string metrics_json() {
  const MetricsSnapshot snapshot = snapshot_metrics();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "" : ",") << "\"" << name << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "" : ",") << "\"" << name << "\":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    os << (first ? "" : ",") << "\"" << h.name << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"mean\":" << h.mean << ",\"p50\":" << h.p50
       << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << ",\"buckets\":[";
    bool b_first = true;
    for (const auto& [upper, n] : h.buckets) {
      os << (b_first ? "" : ",") << "[" << upper << "," << n << "]";
      b_first = false;
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string metrics_csv() {
  const MetricsSnapshot snapshot = snapshot_metrics();
  std::ostringstream os;
  os << "kind,name,value,count,sum,min,max,mean,p50,p95,p99\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << "counter," << name << "," << value << ",,,,,,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "gauge," << name << "," << value << ",,,,,,,,\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    os << "histogram," << h.name << ",," << h.count << "," << h.sum << ","
       << h.min << "," << h.max << "," << h.mean << "," << h.p50 << ","
       << h.p95 << "," << h.p99 << "\n";
  }
  return os.str();
}

void write_metrics(const std::string& path) {
  if (path == "-" || path == "stderr") {
    std::fputs(metrics_json().c_str(), stderr);
    std::fputc('\n', stderr);
    return;
  }
  const bool csv = path.size() >= 4 && path.ends_with(".csv");
  std::ofstream file(path);
  util::check(file.good(), "cannot open metrics output file: " + path);
  file << (csv ? metrics_csv() : metrics_json());
  file.close();
  util::check(file.good(), "failed writing metrics output file: " + path);
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, g] : r.gauges) g->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
}

}  // namespace streamk::obs
