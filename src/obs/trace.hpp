#pragma once

// Lock-free runtime tracing: thread-local ring buffers of timestamped spans.
//
// Every instrumented site in the library (plan compile, panel pack,
// microkernel segment, fixup wait/signal, epilogue apply, panel-cache
// claim/fallback, pool task run/steal, tuner find) emits through the
// STREAMK_OBS_* macros in obs/obs.hpp, which land here.  Emission is
// wait-free and allocation-free in steady state: each thread owns a
// power-of-two ring of seqlock-guarded slots (single writer, any number of
// concurrent snapshot readers), created lazily on the thread's first armed
// emission and registered with a process-wide sink so flushes see every
// thread's history -- including threads that have since exited.
//
// The runtime off-path is ONE relaxed atomic load: when tracing is not
// armed, SpanGuard construction reads g_trace_armed and returns.  No clock
// read, no buffer lookup, no branch beyond the load's.  The compile-time
// kill (cmake -DSTREAMK_OBS=OFF -> STREAMK_OBS_ENABLED=0) removes even
// that: the macros expand to nothing and the instrumented code is
// byte-identical to an uninstrumented build.
//
// A ring overwrites its oldest spans when full (tracing must never block or
// grow the traced workload), so a snapshot holds the *most recent*
// `capacity` spans per thread; trace_overwritten() counts what was lost.
// Snapshots are consistent per span, not globally atomic: a slot being
// rewritten mid-read is detected by its seqlock and skipped, so a snapshot
// taken while writers are live contains only intact spans.
//
// Arming: STREAMK_TRACE=<path> in the environment arms tracing at load time
// and writes a Chrome trace-event JSON (chrome://tracing, Perfetto) of the
// whole process at exit; arm_trace()/disarm_trace() scope it
// programmatically (bench --trace, streamk_profile, tests).  reset_trace()
// starts a new epoch without touching the rings -- snapshots exclude spans
// emitted before the epoch, so "trace this region" is reset + run +
// snapshot.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace streamk::obs {

/// The event taxonomy.  One enum rather than free-form strings so a span is
/// four integers wide and emission never hashes or allocates; names and
/// Chrome categories are static tables (event_name/event_category).
enum class EventKind : std::uint32_t {
  kPlanCompile = 0,   ///< schedule compilation on a plan-cache miss
  kPack,              ///< A/B panel pack (arg0: shared slot or -1 = private)
  kMacSegment,        ///< one segment's MAC loop (arg0 cta, arg1 tile)
  kFixupWait,         ///< owner blocked on a peer flag (arg0 cta, arg1 peer)
  kFixupSignal,       ///< spill published (instant; arg0 cta, arg1 tile)
  kEpilogueApply,     ///< tile store + epilogue chain (arg0 cta, arg1 tile)
  kPanelFallback,     ///< panel-cache contention fallback (instant)
  kPoolTask,          ///< one pool task (queued job or region helper)
  kPoolSteal,         ///< TaskHandle::get() ran its own job (instant)
  kTunerFind,         ///< background find job (arg0 m, arg1 n*k)
  kGemm,              ///< one GEMM-family operation (arg0 grid, arg1 tiles)
  kBenchRegion,       ///< bench/CLI-defined measured region
  kCount,
};

/// Static display name ("mac_segment") / Chrome category ("mac") tables.
const char* event_name(EventKind kind);
const char* event_category(EventKind kind);

/// One flushed span.  `tid` is the emitting thread's dense registration id
/// (stable across the process, not the OS tid); instants have t1 == t0.
///
/// When the PMU layer is armed (obs/pmu.hpp) spans additionally carry the
/// hardware-counter deltas measured across their extent; has_pmu
/// distinguishes "zero counts" from "not sampled".
struct TraceSpan {
  EventKind kind = EventKind::kCount;
  std::uint32_t tid = 0;
  bool has_pmu = false;
  std::int64_t t0_ns = 0;  ///< steady-clock ns since the process trace origin
  std::int64_t t1_ns = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int64_t cycles = 0;           ///< valid only when has_pmu
  std::int64_t instructions = 0;
  std::int64_t llc_misses = 0;
  std::int64_t stalled_backend = 0;
};

/// Armed flag; the entire runtime off-path.  Defined in trace.cpp, read
/// inline so the disabled SpanGuard constructor is a load and a branch.
extern std::atomic<bool> g_trace_armed;

inline bool trace_armed() {
  return g_trace_armed.load(std::memory_order_relaxed);
}

/// Arms emission (idempotent).  Does not reset the epoch: a bench that
/// arms, runs, and snapshots inside one epoch sees exactly its own spans.
void arm_trace();
void disarm_trace();

/// Starts a new epoch "now": snapshots exclude spans that *started* before
/// it.  Safe while writers are emitting.
void reset_trace();

/// Nanoseconds since the process trace origin (steady clock).
std::int64_t trace_now_ns();

/// Emits a complete span / an instant event into the calling thread's ring.
/// Callers normally go through the obs.hpp macros, which check
/// trace_armed() first; calling these directly while disarmed also records
/// nothing.
void emit_span(EventKind kind, std::int64_t t0_ns, std::int64_t t1_ns,
               std::int64_t arg0, std::int64_t arg1);
void emit_instant(EventKind kind, std::int64_t arg0, std::int64_t arg1);

/// emit_span with hardware-counter deltas attached (SpanGuard calls this
/// when the PMU is armed; see obs/pmu.hpp).  The four counts land in the
/// span's pmu fields and, aggregated per category, in the
/// "pmu.<category>.*" counters of the metrics registry.
void emit_span_pmu(EventKind kind, std::int64_t t0_ns, std::int64_t t1_ns,
                   std::int64_t arg0, std::int64_t arg1, std::int64_t cycles,
                   std::int64_t instructions, std::int64_t llc_misses,
                   std::int64_t stalled_backend);

/// Ring capacity (spans per thread) for buffers created *after* the call;
/// rounded up to a power of two, floor 8.  Existing rings keep their size.
/// Default 8192 (~384 KiB per traced thread).
void set_trace_buffer_capacity(std::size_t spans);
std::size_t trace_buffer_capacity();

/// Total spans overwritten by ring wraparound since process start, over all
/// threads (monotone; not epoch-scoped).
std::uint64_t trace_overwritten();

/// Every intact span of the current epoch, all threads, sorted by start
/// time.  Callable while writers are live: mid-rewrite slots are skipped.
std::vector<TraceSpan> snapshot_trace();

/// Chrome trace-event JSON ({"traceEvents": [...]}) of `spans`, with one
/// named track per emitting thread.  Loads in chrome://tracing and
/// https://ui.perfetto.dev.
std::string chrome_trace_json(std::span<const TraceSpan> spans);

/// snapshot_trace() serialized to `path`.  Throws util::CheckError when the
/// file cannot be written.
void write_chrome_trace(const std::string& path);

}  // namespace streamk::obs
