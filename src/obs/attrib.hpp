#pragma once

// Efficiency-waterfall attribution: reconcile measured time against the
// analytical roofline and decompose the gap into causes.
//
// The paper argues quantitatively -- Stream-K wins because imbalance and
// fixup overhead shrink -- so "this shape runs at 61% of roofline" must be
// answerable with *why*.  Given a trace snapshot of R measured reps, the
// measured wall time, and a roofline prediction in the same units (see
// streamk_doctor for how model::closed_form_estimate is rescaled into
// measured seconds), build_waterfall() splits the gap
//
//   gap = measured - roofline
//
// into additive buckets, each a wall-time share averaged over the CTA
// grid (all values are per-rep seconds):
//
//   imbalance     = (makespan * C - sum busy+wait) / C   -- idle tails the
//                   quantized schedule leaves on some CTAs
//   fixup         = sum fixup-wait / C                   -- blocked in the
//                   partial-sum protocol
//   pack          = sum pack spans / C                   -- A/B panel
//                   packing (outside the MAC loop)
//   memory_stall  = stall_share * (sum busy / C)         -- the PMU's
//                   backend-stall share of busy time; 0 on timing-only runs
//   residual      = gap - (all of the above)             -- model error,
//                   overlap, and everything unattributed
//
// The residual closes the ledger by construction: buckets always sum to
// the gap exactly, and a large residual is itself a diagnosis (the model
// and the machine disagree).  Negative residuals are legal -- the model
// was optimistic, or stall cycles overlap imbalance idle time.
//
// diagnose() turns a waterfall plus run context into the ruled findings
// streamk_doctor prints.  Rule ids are stable strings (tests pin them);
// adding a rule is append-only.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace streamk::obs {

struct WaterfallInputs {
  /// Measured wall seconds of ONE rep (best-of-reps).
  double measured_seconds = 0.0;
  /// Roofline prediction in the same units (already rescaled to this
  /// machine; see streamk_doctor's calibration step).
  double roofline_seconds = 0.0;
  /// CTAs the schedule launched (used to average grid-wide span sums into
  /// wall time); <= 0 falls back to the CTAs seen in the trace.
  std::int64_t ctas = 0;
  /// Trace reps covered by `spans`: span sums are divided by this.
  int reps = 1;
  std::span<const TraceSpan> spans;
};

struct WaterfallBucket {
  std::string name;
  double seconds = 0.0;
};

struct EfficiencyWaterfall {
  double measured_seconds = 0.0;
  double roofline_seconds = 0.0;
  double gap_seconds = 0.0;

  double imbalance_seconds = 0.0;
  double fixup_seconds = 0.0;
  double pack_seconds = 0.0;
  double memory_stall_seconds = 0.0;
  double residual_seconds = 0.0;

  /// False when the run carried no PMU-annotated spans: memory_stall is
  /// then 0 and the diagnosis is timing-only.
  bool pmu_based = false;

  /// The underlying per-CTA profile (imbalance factor, wait share, PMU
  /// sums) for report rendering.
  LoadBalanceProfile profile;

  /// Buckets in report order; their seconds sum to gap_seconds exactly.
  std::vector<WaterfallBucket> buckets() const;
  double bucket_sum() const;
};

EfficiencyWaterfall build_waterfall(const WaterfallInputs& inputs);

/// Human-readable waterfall table / machine-readable JSON twin.
std::string render_waterfall(const EfficiencyWaterfall& waterfall);
std::string waterfall_json(const EfficiencyWaterfall& waterfall);

/// Stable diagnosis rule ids (doctor output contract; append-only).
namespace rules {
inline constexpr const char* kPmuUnavailable = "DR-PMU-UNAVAILABLE";
inline constexpr const char* kMemBound = "DR-MEM-BOUND";
inline constexpr const char* kImbalance = "DR-IMBALANCE";
inline constexpr const char* kOversub = "DR-OVERSUB";
inline constexpr const char* kPanelMiss = "DR-PANEL-MISS";
inline constexpr const char* kFixupHeavy = "DR-FIXUP-HEAVY";
inline constexpr const char* kModelDrift = "DR-MODEL-DRIFT";
inline constexpr const char* kClean = "DR-CLEAN";
}  // namespace rules

struct Diagnosis {
  std::string rule;    ///< one of rules::*
  std::string detail;  ///< human-readable evidence line
};

struct DoctorInputs {
  EfficiencyWaterfall waterfall;
  bool pmu_available = false;
  std::string pmu_reason;     ///< why the PMU is absent (when it is)
  std::int64_t grid = 0;      ///< launched CTAs
  std::int64_t workers = 0;   ///< pool worker threads
  std::int64_t panel_fallbacks = 0;  ///< panel_cache.fallbacks delta
};

/// Pure rule evaluation: deterministic findings in severity order,
/// DR-CLEAN alone when nothing fires.  DR-PMU-UNAVAILABLE never
/// suppresses timing-based rules -- it marks the diagnosis as
/// timing-only.
std::vector<Diagnosis> diagnose(const DoctorInputs& inputs);

}  // namespace streamk::obs
