#include "obs/pmu.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "util/log.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define STREAMK_PMU_LINUX 1
#else
#define STREAMK_PMU_LINUX 0
#endif

namespace streamk::obs {

namespace {

std::atomic<bool> g_pmu_armed{false};

// Availability latch: 0 = unprobed, 1 = available, 2 = unavailable.
std::atomic<int> g_pmu_state{0};

std::string& unavailable_reason() {
  static std::string* reason = new std::string();
  return *reason;
}

std::once_flag g_probe_once;

#if STREAMK_PMU_LINUX

/// The four events of the group, leader first.  stalled-backend is the one
/// most often missing (not exposed on many cores / VMs), so members are
/// opened individually and a failed member just stays absent.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEvents[4] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                            int group_fd, unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_event(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space attribution; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid bar in containers
  attr.inherit = 0;         // per-thread counts, never summed over children
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return perf_event_open_syscall(&attr, 0, -1, group_fd, 0);
}

/// One thread's counter group.  fd[0] is the leader; a member fd of -1
/// means that event is absent on this machine.  Slots in the group read
/// are matched back to events by PERF_FORMAT_ID.
struct ThreadGroup {
  int fd[4] = {-1, -1, -1, -1};
  std::uint64_t id[4] = {0, 0, 0, 0};
  bool open_failed = false;

  ~ThreadGroup() {
    for (int f : fd) {
      if (f >= 0) close(f);
    }
  }

  bool open() {
    fd[0] = open_event(kEvents[0], -1);
    if (fd[0] < 0) {
      open_failed = true;
      return false;
    }
    for (int i = 1; i < 4; ++i) fd[i] = open_event(kEvents[i], fd[0]);
    for (int i = 0; i < 4; ++i) {
      if (fd[i] >= 0 &&
          ioctl(fd[i], PERF_EVENT_IOC_ID, &id[i]) != 0) {
        close(fd[i]);
        fd[i] = -1;
      }
    }
    return true;
  }

  bool read_sample(PmuSample& out) {
    if (open_failed) return false;
    if (fd[0] < 0 && !open()) return false;

    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // {value, id} per member.
    std::uint64_t buf[3 + 2 * 4];
    const ssize_t n = ::read(fd[0], buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    if (n < static_cast<ssize_t>((3 + 2 * nr) * sizeof(std::uint64_t))) {
      return false;
    }
    // Multiplex scaling: when other sessions share the PMU the kernel
    // round-robins groups; scale counts to the full enabled window.
    const double scale =
        running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                    : 1.0;

    std::int64_t values[4] = {-1, -1, -1, -1};
    for (std::uint64_t s = 0; s < nr; ++s) {
      const std::uint64_t value = buf[3 + 2 * s];
      const std::uint64_t sample_id = buf[3 + 2 * s + 1];
      for (int i = 0; i < 4; ++i) {
        if (fd[i] >= 0 && id[i] == sample_id) {
          values[i] =
              static_cast<std::int64_t>(static_cast<double>(value) * scale);
          break;
        }
      }
    }
    out.cycles = values[0];
    out.instructions = values[1];
    out.llc_misses = values[2];
    out.stalled_backend = values[3];
    return values[0] >= 0;
  }
};

ThreadGroup& local_group() {
  thread_local ThreadGroup group;
  return group;
}

#endif  // STREAMK_PMU_LINUX

void probe() {
  if (const char* env = std::getenv("STREAMK_PMU");
      env && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    unavailable_reason() = "disabled by STREAMK_PMU=0";
    g_pmu_state.store(2, std::memory_order_release);
    return;
  }
#if STREAMK_PMU_LINUX
  // Probe with a throwaway cycles counter so the verdict does not depend
  // on which thread asks first.
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = PERF_COUNT_HW_CPU_CYCLES;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  const int fd = perf_event_open_syscall(&attr, 0, -1, -1, 0);
  if (fd >= 0) {
    close(fd);
    g_pmu_state.store(1, std::memory_order_release);
    return;
  }
  unavailable_reason() =
      std::string("perf_event_open: ") + std::strerror(errno);
  g_pmu_state.store(2, std::memory_order_release);
#else
  unavailable_reason() = "perf_event_open requires Linux";
  g_pmu_state.store(2, std::memory_order_release);
#endif
}

/// STREAMK_PMU=1/on: arm at load time (pairs with STREAMK_TRACE so a traced
/// run can be counter-annotated without code changes).
const bool g_env_init = [] {
  if (const char* env = std::getenv("STREAMK_PMU");
      env && (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0)) {
    if (!arm_pmu()) {
      util::log_info(std::string("STREAMK_PMU=1 but PMU unavailable: ") +
                     pmu_unavailable_reason());
    }
  }
  return true;
}();

}  // namespace

bool pmu_available() {
  std::call_once(g_probe_once, probe);
  return g_pmu_state.load(std::memory_order_acquire) == 1;
}

const char* pmu_unavailable_reason() {
  return unavailable_reason().c_str();
}

bool arm_pmu() {
  if (!pmu_available()) return false;
  g_pmu_armed.store(true, std::memory_order_relaxed);
  return true;
}

void disarm_pmu() { g_pmu_armed.store(false, std::memory_order_relaxed); }

bool pmu_armed() { return g_pmu_armed.load(std::memory_order_relaxed); }

bool pmu_read(PmuSample& out) {
  if (!pmu_armed()) return false;
#if STREAMK_PMU_LINUX
  return local_group().read_sample(out);
#else
  static_cast<void>(out);
  return false;
#endif
}

}  // namespace streamk::obs
