#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace streamk::obs {

std::atomic<bool> g_trace_armed{false};

namespace {

constexpr std::size_t kDefaultCapacity = 8192;

std::atomic<std::size_t> g_capacity{kDefaultCapacity};
std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<std::uint64_t> g_overwritten{0};

struct KindInfo {
  const char* name;
  const char* category;
};

constexpr KindInfo kKindInfo[static_cast<std::size_t>(EventKind::kCount)] = {
    {"plan_compile", "plan"},     {"pack", "pack"},
    {"mac_segment", "mac"},       {"fixup_wait", "fixup"},
    {"fixup_signal", "fixup"},    {"epilogue_apply", "epilogue"},
    {"panel_fallback", "panel_cache"}, {"pool_task", "pool"},
    {"pool_steal", "pool"},       {"tuner_find", "tuner"},
    {"gemm", "gemm"},             {"bench_region", "bench"},
};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

/// One seqlock-guarded slot.  Every field is atomic so a reader racing a
/// wraparound rewrite is a well-defined (and detected) torn read, never a
/// data race; relaxed payload accesses are ordered by the release store /
/// acquire load + fence on `seq`.
struct Slot {
  std::atomic<std::uint32_t> seq{0};  ///< odd = write in progress
  std::atomic<std::uint32_t> kind{0};
  std::atomic<std::uint32_t> flags{0};  ///< bit 0: PMU payload valid
  std::atomic<std::int64_t> t0{0};
  std::atomic<std::int64_t> t1{0};
  std::atomic<std::int64_t> a0{0};
  std::atomic<std::int64_t> a1{0};
  std::atomic<std::int64_t> cycles{0};
  std::atomic<std::int64_t> instructions{0};
  std::atomic<std::int64_t> llc_misses{0};
  std::atomic<std::int64_t> stalled{0};
};

constexpr std::uint32_t kFlagPmu = 1u;

/// One thread's ring.  Single writer (the owning thread); snapshot readers
/// validate slots through the seqlock.  Owned jointly by the thread (via
/// the thread_local pointer) and the process sink, so rings of exited
/// threads remain flushable.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity)
      : slots(std::make_unique<Slot[]>(capacity)), mask(capacity - 1) {}

  void emit(EventKind k, std::int64_t t0, std::int64_t t1, std::int64_t arg0,
            std::int64_t arg1, const std::int64_t* pmu = nullptr) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & mask];
    const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint32_t>(k), std::memory_order_relaxed);
    slot.flags.store(pmu != nullptr ? kFlagPmu : 0u,
                     std::memory_order_relaxed);
    slot.t0.store(t0, std::memory_order_relaxed);
    slot.t1.store(t1, std::memory_order_relaxed);
    slot.a0.store(arg0, std::memory_order_relaxed);
    slot.a1.store(arg1, std::memory_order_relaxed);
    if (pmu != nullptr) {
      slot.cycles.store(pmu[0], std::memory_order_relaxed);
      slot.instructions.store(pmu[1], std::memory_order_relaxed);
      slot.llc_misses.store(pmu[2], std::memory_order_relaxed);
      slot.stalled.store(pmu[3], std::memory_order_relaxed);
    }
    slot.seq.store(seq + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
    if (h >= mask + 1) g_overwritten.fetch_add(1, std::memory_order_relaxed);
  }

  std::unique_ptr<Slot[]> slots;
  const std::uint64_t mask;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

struct TraceSink {
  std::mutex mutex;  ///< guards registration only; emission never takes it
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceSink& sink() {
  // Immortal: rings are reachable from pool workers that may still emit
  // during static destruction (same rationale as runtime::plan_cache()).
  static TraceSink* s = new TraceSink();
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    auto created = std::make_shared<ThreadBuffer>(
        round_up_pow2(g_capacity.load(std::memory_order_relaxed)));
    TraceSink& s = sink();
    std::lock_guard lock(s.mutex);
    created->tid = static_cast<std::uint32_t>(s.buffers.size());
    s.buffers.push_back(created);
    buffer = std::move(created);
  }
  return *buffer;
}

std::string& env_trace_path() {
  static std::string* path = new std::string();
  return *path;
}

/// STREAMK_TRACE=<path>: arm at load time, flush the whole process's trace
/// at exit.  Runs when this translation unit's initializers do, which is
/// before main() for any binary that links an emission site.
const bool g_env_init = [] {
  if (const char* path = std::getenv("STREAMK_TRACE"); path && *path) {
    env_trace_path() = path;
    arm_trace();
    std::atexit([] {
      try {
        write_chrome_trace(env_trace_path());
      } catch (const std::exception& e) {
        util::log_warn(std::string("STREAMK_TRACE not written: ") + e.what());
      }
    });
  }
  return true;
}();

}  // namespace

const char* event_name(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kCount)
             ? kKindInfo[i].name
             : "unknown";
}

const char* event_category(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kCount)
             ? kKindInfo[i].category
             : "unknown";
}

void arm_trace() { g_trace_armed.store(true, std::memory_order_relaxed); }

void disarm_trace() { g_trace_armed.store(false, std::memory_order_relaxed); }

void reset_trace() {
  g_epoch_ns.store(trace_now_ns(), std::memory_order_relaxed);
}

std::int64_t trace_now_ns() {
  // The origin is the first call's steady_clock reading; all spans are
  // relative to it, so traces start near t = 0 regardless of uptime.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

void emit_span(EventKind kind, std::int64_t t0_ns, std::int64_t t1_ns,
               std::int64_t arg0, std::int64_t arg1) {
  if (!trace_armed()) return;
  local_buffer().emit(kind, t0_ns, t1_ns, arg0, arg1);
}

void emit_instant(EventKind kind, std::int64_t arg0, std::int64_t arg1) {
  if (!trace_armed()) return;
  const std::int64_t now = trace_now_ns();
  local_buffer().emit(kind, now, now, arg0, arg1);
}

namespace {

/// Per-category PMU aggregation: "pmu.mac.cycles" etc.  Counter references
/// are resolved once per (kind, counter) pair; updates are the usual
/// relaxed fetch_adds.
void pmu_account(EventKind kind, const std::int64_t pmu[4]) {
  struct KindCounters {
    Counter* cycles;
    Counter* instructions;
    Counter* llc_misses;
    Counter* stalled;
    Counter* spans;
  };
  static KindCounters* table = [] {
    auto* t = new KindCounters[static_cast<std::size_t>(EventKind::kCount)];
    for (std::size_t i = 0; i < static_cast<std::size_t>(EventKind::kCount);
         ++i) {
      const std::string prefix =
          std::string("pmu.") + kKindInfo[i].category + ".";
      t[i] = KindCounters{&counter(prefix + "cycles"),
                          &counter(prefix + "instructions"),
                          &counter(prefix + "llc_misses"),
                          &counter(prefix + "stalled_backend"),
                          &counter(prefix + "spans")};
    }
    return t;
  }();
  KindCounters& c = table[static_cast<std::size_t>(kind)];
  c.cycles->add(pmu[0]);
  c.instructions->add(pmu[1]);
  c.llc_misses->add(pmu[2]);
  c.stalled->add(pmu[3]);
  c.spans->add(1);
}

}  // namespace

void emit_span_pmu(EventKind kind, std::int64_t t0_ns, std::int64_t t1_ns,
                   std::int64_t arg0, std::int64_t arg1, std::int64_t cycles,
                   std::int64_t instructions, std::int64_t llc_misses,
                   std::int64_t stalled_backend) {
  if (!trace_armed()) return;
  if (kind >= EventKind::kCount) return;
  const std::int64_t pmu[4] = {cycles, instructions, llc_misses,
                               stalled_backend};
  local_buffer().emit(kind, t0_ns, t1_ns, arg0, arg1, pmu);
  pmu_account(kind, pmu);
}

void set_trace_buffer_capacity(std::size_t spans) {
  g_capacity.store(round_up_pow2(spans == 0 ? 1 : spans),
                   std::memory_order_relaxed);
}

std::size_t trace_buffer_capacity() {
  return g_capacity.load(std::memory_order_relaxed);
}

std::uint64_t trace_overwritten() {
  return g_overwritten.load(std::memory_order_relaxed);
}

std::vector<TraceSpan> snapshot_trace() {
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceSink& s = sink();
    std::lock_guard lock(s.mutex);
    buffers = s.buffers;  // snapshot the registry; rings are read lock-free
  }

  std::vector<TraceSpan> out;
  for (const auto& buffer : buffers) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = buffer->mask + 1;
    const std::uint64_t count = std::min(head, capacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      Slot& slot = buffer->slots[i & buffer->mask];
      const std::uint32_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq & 1u) continue;  // mid-rewrite
      TraceSpan span;
      span.kind = static_cast<EventKind>(
          slot.kind.load(std::memory_order_relaxed));
      span.tid = buffer->tid;
      span.has_pmu =
          (slot.flags.load(std::memory_order_relaxed) & kFlagPmu) != 0;
      span.t0_ns = slot.t0.load(std::memory_order_relaxed);
      span.t1_ns = slot.t1.load(std::memory_order_relaxed);
      span.arg0 = slot.a0.load(std::memory_order_relaxed);
      span.arg1 = slot.a1.load(std::memory_order_relaxed);
      if (span.has_pmu) {
        span.cycles = slot.cycles.load(std::memory_order_relaxed);
        span.instructions = slot.instructions.load(std::memory_order_relaxed);
        span.llc_misses = slot.llc_misses.load(std::memory_order_relaxed);
        span.stalled_backend = slot.stalled.load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
      if (span.t0_ns < epoch) continue;  // previous epoch
      if (span.kind >= EventKind::kCount) continue;  // torn beyond detection
      out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns : a.tid < b.tid;
            });
  return out;
}

std::string chrome_trace_json(std::span<const TraceSpan> spans) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Thread-name metadata rows so Perfetto labels tracks usefully.
  std::vector<std::uint32_t> tids;
  for (const TraceSpan& span : spans) tids.push_back(span.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"streamk\"}}";
  for (const std::uint32_t tid : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"thread-" << tid << "\"}}";
  }

  os.setf(std::ios::fixed);
  os.precision(3);
  for (const TraceSpan& span : spans) {
    sep();
    const double ts_us = static_cast<double>(span.t0_ns) / 1000.0;
    os << "{\"name\":\"" << event_name(span.kind) << "\",\"cat\":\""
       << event_category(span.kind) << "\",\"pid\":0,\"tid\":" << span.tid
       << ",\"ts\":" << ts_us;
    if (span.t1_ns > span.t0_ns) {
      const double dur_us =
          static_cast<double>(span.t1_ns - span.t0_ns) / 1000.0;
      os << ",\"ph\":\"X\",\"dur\":" << dur_us;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{\"a0\":" << span.arg0 << ",\"a1\":" << span.arg1;
    if (span.has_pmu) {
      os << ",\"cycles\":" << span.cycles
         << ",\"instructions\":" << span.instructions
         << ",\"llc_misses\":" << span.llc_misses
         << ",\"stalled_backend\":" << span.stalled_backend;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const std::string& path) {
  const std::vector<TraceSpan> spans = snapshot_trace();
  std::ofstream file(path);
  util::check(file.good(), "cannot open trace output file: " + path);
  file << chrome_trace_json(spans);
  file.close();
  util::check(file.good(), "failed writing trace output file: " + path);
}

}  // namespace streamk::obs
