#pragma once

// Metrics registry: named counters, gauges, and histograms.
//
// The counting side of the observability layer (obs/trace.hpp is the
// timeline side): instrumented sites bump process-wide metrics --
// plan-cache hits/misses, panel-cache packed-once vs private-fallback,
// fixup blocking waits and wakeups, worker-pool queue depth and steals,
// epilogue fast-path hits, tuner finds -- and any thread can snapshot the
// registry as JSON or CSV at any time.  STREAMK_METRICS=<path> dumps a
// snapshot at process exit (".csv" extension selects CSV, anything else
// JSON; "-" writes JSON to stderr).
//
// Cost model: updates are relaxed atomic RMWs on pre-resolved objects --
// the STREAMK_OBS_COUNT macro resolves its name to a Counter& once per
// call site (function-local static) and then pays one fetch_add per hit.
// Registration takes a mutex; updates and reads never do.  Histograms are
// power-of-two-bucketed (bucket i counts samples with bit_width i), with
// relaxed count/sum and CAS-maintained min/max, so concurrent recording is
// lock-free and snapshot-while-writing reads a consistent-enough view
// (counts monotone, sum/count may be mid-update relative to each other --
// documented, not fenced).
//
// Like the trace macros, metric sites vanish under -DSTREAMK_OBS=OFF; the
// registry itself stays linkable so programmatic users compile either way.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace streamk::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples (negative clamps to 0).
/// Bucket i holds samples whose bit width is i, i.e. values in
/// [2^(i-1), 2^i); bucket 0 holds zero.  65 buckets cover all of int64.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::int64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};  ///< valid only when count_ > 0
  std::atomic<std::int64_t> max_{0};
};

/// Registry lookups: find-or-create by name.  The returned reference is
/// stable for the process lifetime.  A name denotes exactly one metric
/// kind; asking for "x" as a counter after it was created as a gauge
/// throws util::CheckError (names are namespaced by convention:
/// "plan_cache.hit", "pool.queue_depth", ...).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;  ///< estimated percentiles (see histogram_percentile)
  double p95 = 0.0;
  double p99 = 0.0;
  /// (upper_bound, count) for each nonzero bucket, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Percentile estimate from the log2 buckets: the rank-
/// ceil(percentile/100 * count) sample's bucket, linearly interpolated by
/// rank position within it, clamped to the recorded [min, max].  The clamp
/// makes single-valued and single-bucket-edge distributions exact; mixed
/// buckets are approximate to within the bucket's width.  Returns 0 for an
/// empty histogram.
double histogram_percentile(const HistogramSnapshot& h, double percentile);

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;  ///< sorted
  std::vector<std::pair<std::string, std::int64_t>> gauges;    ///< sorted
  std::vector<HistogramSnapshot> histograms;                   ///< sorted
};

MetricsSnapshot snapshot_metrics();

/// snapshot_metrics() rendered as a JSON object / a "kind,name,..." CSV.
std::string metrics_json();
std::string metrics_csv();

/// Writes metrics_csv() when `path` ends in ".csv", metrics_json()
/// otherwise; "-" writes JSON to stderr.  Throws util::CheckError when the
/// file cannot be written.
void write_metrics(const std::string& path);

/// Zeroes every registered metric (registrations persist).  Test/bench
/// scoping: reset, run, snapshot.
void reset_metrics();

}  // namespace streamk::obs
