#include "obs/attrib.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace streamk::obs {

namespace {

constexpr double kNsToS = 1e-9;

// Rule thresholds.  Shares are of measured wall time unless noted.
constexpr double kStallShareThreshold = 0.40;   // DR-MEM-BOUND
constexpr double kImbalanceShareThreshold = 0.15;  // DR-IMBALANCE
constexpr double kImbalanceFactorThreshold = 1.20;
constexpr double kFixupShareThreshold = 0.10;   // DR-FIXUP-HEAVY
constexpr double kLlcMissPerKinstThreshold = 20.0;  // DR-PANEL-MISS
constexpr double kResidualGapShareThreshold = 0.50;  // DR-MODEL-DRIFT
constexpr double kGapShareFloor = 0.05;  // below this the run is clean

std::string pct(double fraction) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(1) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace

std::vector<WaterfallBucket> EfficiencyWaterfall::buckets() const {
  return {{"imbalance", imbalance_seconds},
          {"fixup", fixup_seconds},
          {"pack", pack_seconds},
          {"memory_stall", memory_stall_seconds},
          {"residual", residual_seconds}};
}

double EfficiencyWaterfall::bucket_sum() const {
  return imbalance_seconds + fixup_seconds + pack_seconds +
         memory_stall_seconds + residual_seconds;
}

EfficiencyWaterfall build_waterfall(const WaterfallInputs& inputs) {
  EfficiencyWaterfall w;
  w.measured_seconds = inputs.measured_seconds;
  w.roofline_seconds = inputs.roofline_seconds;
  w.gap_seconds = inputs.measured_seconds - inputs.roofline_seconds;
  w.profile = build_load_balance_profile(inputs.spans);

  const int reps = std::max(inputs.reps, 1);
  const double per_rep = kNsToS / static_cast<double>(reps);
  const double ctas = static_cast<double>(
      inputs.ctas > 0 ? inputs.ctas
                      : static_cast<std::int64_t>(w.profile.ctas.size()));

  // Pack spans are not CTA-attributed (arg0 is the shared slot); sum them
  // directly from the snapshot.
  std::int64_t pack_ns = 0;
  for (const TraceSpan& span : inputs.spans) {
    if (span.kind == EventKind::kPack) pack_ns += span.t1_ns - span.t0_ns;
  }

  if (ctas > 0) {
    const double busy_s = static_cast<double>(w.profile.busy_sum_ns) * per_rep;
    const double wait_s = static_cast<double>(w.profile.wait_sum_ns) * per_rep;
    const double makespan_s =
        static_cast<double>(w.profile.makespan_ns) * per_rep;
    // The trace makespan covers all reps back to back; per_rep already
    // divides it, approximating one rep's critical path.
    const double idle_s = std::max(makespan_s * ctas - busy_s - wait_s, 0.0);
    w.imbalance_seconds = idle_s / ctas;
    w.fixup_seconds = wait_s / ctas;
    w.pack_seconds = static_cast<double>(pack_ns) * per_rep / ctas;
    w.pmu_based = w.profile.pmu_spans > 0;
    if (w.pmu_based) {
      w.memory_stall_seconds = w.profile.stall_share() * busy_s / ctas;
    }
  }
  // The residual closes the ledger: buckets sum to the gap by construction,
  // so unmodeled effects surface as one signed line instead of silently
  // skewing the others.
  w.residual_seconds = w.gap_seconds - w.imbalance_seconds -
                       w.fixup_seconds - w.pack_seconds -
                       w.memory_stall_seconds;
  return w;
}

std::string render_waterfall(const EfficiencyWaterfall& w) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(3);
  os << "efficiency waterfall (per-rep seconds, "
     << (w.pmu_based ? "PMU-attributed" : "timing-only") << ")\n";
  os << "  measured        " << std::setw(10) << w.measured_seconds * 1e3
     << " ms\n";
  os << "  roofline        " << std::setw(10) << w.roofline_seconds * 1e3
     << " ms  ("
     << pct(w.measured_seconds > 0 ? w.roofline_seconds / w.measured_seconds
                                   : 0.0)
     << " of measured)\n";
  os << "  gap             " << std::setw(10) << w.gap_seconds * 1e3
     << " ms\n";
  for (const WaterfallBucket& bucket : w.buckets()) {
    os << "    " << std::left << std::setw(14) << bucket.name << std::right
       << std::setw(8) << bucket.seconds * 1e3 << " ms  ("
       << pct(w.gap_seconds != 0.0 ? bucket.seconds / w.gap_seconds : 0.0)
       << " of gap)\n";
  }
  os << "  bucket sum      " << std::setw(10) << w.bucket_sum() * 1e3
     << " ms\n";
  return os.str();
}

std::string waterfall_json(const EfficiencyWaterfall& w) {
  std::ostringstream os;
  os << "{\"measured_seconds\":" << w.measured_seconds
     << ",\"roofline_seconds\":" << w.roofline_seconds
     << ",\"gap_seconds\":" << w.gap_seconds << ",\"pmu_based\":"
     << (w.pmu_based ? "true" : "false") << ",\"buckets\":{";
  bool first = true;
  for (const WaterfallBucket& bucket : w.buckets()) {
    os << (first ? "" : ",") << "\"" << bucket.name
       << "\":" << bucket.seconds;
    first = false;
  }
  os << "},\"bucket_sum\":" << w.bucket_sum() << "}";
  return os.str();
}

std::vector<Diagnosis> diagnose(const DoctorInputs& inputs) {
  const EfficiencyWaterfall& w = inputs.waterfall;
  std::vector<Diagnosis> findings;

  if (!inputs.pmu_available) {
    findings.push_back(
        {rules::kPmuUnavailable,
         "hardware counters unavailable (" +
             (inputs.pmu_reason.empty() ? std::string("unknown reason")
                                        : inputs.pmu_reason) +
             "); diagnosis is timing-only"});
  }

  const double measured = w.measured_seconds;
  const double gap_share =
      measured > 0.0 ? std::max(w.gap_seconds, 0.0) / measured : 0.0;

  if (w.pmu_based && w.profile.stall_share() > kStallShareThreshold) {
    findings.push_back(
        {rules::kMemBound,
         "backend-stall share " + pct(w.profile.stall_share()) +
             " of busy cycles exceeds " + pct(kStallShareThreshold) +
             "; the MAC loop is starved on memory, not compute"});
  }

  if (measured > 0.0 &&
      w.imbalance_seconds / measured > kImbalanceShareThreshold &&
      w.profile.imbalance() > kImbalanceFactorThreshold) {
    std::ostringstream detail;
    detail.setf(std::ios::fixed);
    detail << "imbalance bucket is " << pct(w.imbalance_seconds / measured)
           << " of measured time (factor " << std::setprecision(2)
           << w.profile.imbalance()
           << "x); the schedule quantizes badly on this grid";
    findings.push_back({rules::kImbalance, detail.str()});
  }

  if (inputs.workers > 0 && inputs.grid > inputs.workers) {
    findings.push_back(
        {rules::kOversub,
         "grid " + std::to_string(inputs.grid) + " exceeds the " +
             std::to_string(inputs.workers) +
             " pool workers; CTAs time-share cores and fixup waits "
             "serialize"});
  }

  if (inputs.panel_fallbacks > 0 ||
      (w.pmu_based &&
       w.profile.llc_miss_per_kinst() > kLlcMissPerKinstThreshold)) {
    std::ostringstream detail;
    detail.setf(std::ios::fixed);
    detail << "panel reuse is failing: " << inputs.panel_fallbacks
           << " shared-cache fallbacks";
    if (w.pmu_based) {
      detail << ", " << std::setprecision(1) << w.profile.llc_miss_per_kinst()
             << " LLC misses/kinst";
    }
    findings.push_back({rules::kPanelMiss, detail.str()});
  }

  if (measured > 0.0 && w.fixup_seconds / measured > kFixupShareThreshold) {
    findings.push_back(
        {rules::kFixupHeavy,
         "fixup-wait bucket is " + pct(w.fixup_seconds / measured) +
             " of measured time; partial-sum traffic dominates "
             "(over-split schedule)"});
  }

  if (w.gap_seconds > 0.0 && gap_share > kGapShareFloor &&
      std::abs(w.residual_seconds) / w.gap_seconds >
          kResidualGapShareThreshold) {
    findings.push_back(
        {rules::kModelDrift,
         "residual bucket is " +
             pct(std::abs(w.residual_seconds) / w.gap_seconds) +
             " of the gap; the cost model and this machine disagree "
             "(recalibrate or re-fit CostParams)"});
  }

  const bool only_pmu_note =
      findings.size() == 1 && findings[0].rule == rules::kPmuUnavailable;
  if (findings.empty() || (only_pmu_note && gap_share <= kGapShareFloor)) {
    findings.push_back(
        {rules::kClean, "measured time within " + pct(kGapShareFloor) +
                            " of roofline; nothing to fix"});
  }
  return findings;
}

}  // namespace streamk::obs
