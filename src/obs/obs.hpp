#pragma once

// The instrumentation macro layer: what instrumented code actually writes.
//
//   STREAMK_OBS_SPAN(kMacSegment, cta, tile);   // RAII: scope = span
//   STREAMK_OBS_INSTANT(kFixupSignal, cta, tile);
//   STREAMK_OBS_COUNT("plan_cache.hit");        // counter += 1
//   STREAMK_OBS_COUNT_N("fixup.wakeups", n);    // counter += n
//   STREAMK_OBS_GAUGE("pool.workers", n);
//   STREAMK_OBS_HISTOGRAM("pool.queue_depth", depth);
//
// Cost model, in order of decreasing hotness tolerance:
//   - SPAN/INSTANT when tracing is disarmed: one relaxed load + branch.
//   - COUNT/GAUGE/HISTOGRAM: one relaxed RMW on a pre-resolved metric (the
//     name lookup runs once per call site via a function-local static) --
//     always on, so place them at per-tile/per-task granularity, not inside
//     the microkernel's K loop.
//   - Everything under -DSTREAMK_OBS=OFF (STREAMK_OBS_ENABLED == 0): the
//     macros expand empty and the build is byte-identical to an
//     uninstrumented one.
//
// This header is the only obs include instrumented code needs.

#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

#ifndef STREAMK_OBS_ENABLED
#define STREAMK_OBS_ENABLED 1
#endif

#if STREAMK_OBS_ENABLED

namespace streamk::obs {

/// Captures t0 on construction when tracing is armed, emits on destruction.
/// Arguments are evaluated only when armed at construction time.  When the
/// PMU layer is additionally armed (obs/pmu.hpp) the span carries the
/// hardware-counter deltas across its extent; a failed read (PMU lost
/// mid-span, fd exhaustion) degrades that span to timestamps only.
class SpanGuard {
 public:
  SpanGuard(EventKind kind, std::int64_t arg0, std::int64_t arg1)
      : armed_(trace_armed()),
        kind_(kind),
        arg0_(arg0),
        arg1_(arg1),
        t0_ns_(armed_ ? trace_now_ns() : 0) {
    if (armed_ && pmu_armed()) pmu_at_t0_ = pmu_read(pmu_t0_);
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  ~SpanGuard() {
    if (!armed_) return;
    if (pmu_at_t0_) {
      PmuSample t1;
      if (pmu_read(t1)) {
        const PmuSample d = t1 - pmu_t0_;
        emit_span_pmu(kind_, t0_ns_, trace_now_ns(), arg0_, arg1_, d.cycles,
                      d.instructions, d.llc_misses, d.stalled_backend);
        return;
      }
    }
    emit_span(kind_, t0_ns_, trace_now_ns(), arg0_, arg1_);
  }

 private:
  const bool armed_;
  const EventKind kind_;
  const std::int64_t arg0_;
  const std::int64_t arg1_;
  const std::int64_t t0_ns_;
  bool pmu_at_t0_ = false;
  PmuSample pmu_t0_;
};

}  // namespace streamk::obs

#define STREAMK_OBS_CONCAT_IMPL(a, b) a##b
#define STREAMK_OBS_CONCAT(a, b) STREAMK_OBS_CONCAT_IMPL(a, b)

#define STREAMK_OBS_SPAN(kind, arg0, arg1)                        \
  ::streamk::obs::SpanGuard STREAMK_OBS_CONCAT(streamk_obs_span_, \
                                               __LINE__)(         \
      ::streamk::obs::EventKind::kind,                            \
      static_cast<std::int64_t>(arg0), static_cast<std::int64_t>(arg1))

#define STREAMK_OBS_INSTANT(kind, arg0, arg1)                        \
  do {                                                               \
    if (::streamk::obs::trace_armed()) {                             \
      ::streamk::obs::emit_instant(::streamk::obs::EventKind::kind,  \
                                   static_cast<std::int64_t>(arg0),  \
                                   static_cast<std::int64_t>(arg1)); \
    }                                                                \
  } while (0)

#define STREAMK_OBS_COUNT(name)                                         \
  do {                                                                  \
    static ::streamk::obs::Counter& streamk_obs_metric =                \
        ::streamk::obs::counter(name);                                  \
    streamk_obs_metric.add(1);                                          \
  } while (0)

#define STREAMK_OBS_COUNT_N(name, n)                                    \
  do {                                                                  \
    static ::streamk::obs::Counter& streamk_obs_metric =                \
        ::streamk::obs::counter(name);                                  \
    streamk_obs_metric.add(static_cast<std::int64_t>(n));               \
  } while (0)

#define STREAMK_OBS_GAUGE(name, v)                                      \
  do {                                                                  \
    static ::streamk::obs::Gauge& streamk_obs_metric =                  \
        ::streamk::obs::gauge(name);                                    \
    streamk_obs_metric.set(static_cast<std::int64_t>(v));               \
  } while (0)

#define STREAMK_OBS_HISTOGRAM(name, v)                                  \
  do {                                                                  \
    static ::streamk::obs::Histogram& streamk_obs_metric =              \
        ::streamk::obs::histogram(name);                                \
    streamk_obs_metric.record(static_cast<std::int64_t>(v));            \
  } while (0)

#else  // STREAMK_OBS_ENABLED == 0

// Disabled: value arguments are void-evaluated (side-effect-free ids and
// sizes, so this folds to nothing) to keep variables that exist only for
// instrumentation from tripping -Wunused; everything else vanishes.

#define STREAMK_OBS_SPAN(kind, arg0, arg1) \
  do {                                     \
    static_cast<void>(arg0);               \
    static_cast<void>(arg1);               \
  } while (0)
#define STREAMK_OBS_INSTANT(kind, arg0, arg1) \
  do {                                        \
    static_cast<void>(arg0);                  \
    static_cast<void>(arg1);                  \
  } while (0)
#define STREAMK_OBS_COUNT(name) \
  do {                          \
  } while (0)
#define STREAMK_OBS_COUNT_N(name, n) \
  do {                               \
    static_cast<void>(n);            \
  } while (0)
#define STREAMK_OBS_GAUGE(name, v) \
  do {                             \
    static_cast<void>(v);          \
  } while (0)
#define STREAMK_OBS_HISTOGRAM(name, v) \
  do {                                 \
    static_cast<void>(v);              \
  } while (0)

#endif  // STREAMK_OBS_ENABLED
