#pragma once

// Stream-K load-balance profile, derived from a trace snapshot.
//
// The paper's scheduling argument is quantified by three numbers: how busy
// each CTA was (paper Fig. "load balance": Stream-K's iteration-granular
// split keeps these equal where data-parallel tiling staircases), the
// makespan versus the sum of work (the quanta-induced tail that Stream-K
// removes), and how much of the run CTAs spent blocked in the fixup
// protocol (the price paid for splitting tiles).  This module computes all
// three from the spans the runtime already emits:
//
//   busy(cta)  = sum of kMacSegment + kEpilogueApply spans with arg0 == cta
//   wait(cta)  = sum of kFixupWait spans with arg0 == cta
//   makespan   = max t1 - min t0 over those spans
//   imbalance  = makespan * ctas / sum busy   (1.0 = perfectly balanced)
//   wait share = sum wait / (sum busy + sum wait)
//
// The streamk_profile CLI runs a shape under tracing and prints this report;
// library users can call build_load_balance_profile() on any snapshot.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace streamk::obs {

struct CtaProfile {
  std::int64_t cta = 0;
  std::int64_t mac_ns = 0;       ///< time in kMacSegment spans
  std::int64_t epilogue_ns = 0;  ///< time in kEpilogueApply spans
  std::int64_t wait_ns = 0;      ///< time blocked in kFixupWait spans
  std::int64_t segments = 0;     ///< kMacSegment span count
  std::int64_t waits = 0;        ///< kFixupWait span count
  /// Hardware-counter sums over this CTA's PMU-annotated busy spans
  /// (kMacSegment + kEpilogueApply with has_pmu); all zero when the run was
  /// timing-only.
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t llc_misses = 0;
  std::int64_t stalled_backend = 0;

  std::int64_t busy_ns() const { return mac_ns + epilogue_ns; }
};

struct LoadBalanceProfile {
  std::vector<CtaProfile> ctas;  ///< sorted by cta id; only CTAs seen

  std::int64_t makespan_ns = 0;  ///< span of all CTA-attributed activity
  std::int64_t busy_sum_ns = 0;
  std::int64_t busy_min_ns = 0;
  std::int64_t busy_max_ns = 0;
  std::int64_t wait_sum_ns = 0;
  std::int64_t fixup_signals = 0;  ///< kFixupSignal instants (spilled tiles)

  /// Hardware-counter sums over all PMU-annotated busy spans; pmu_spans
  /// counts the annotated spans so 0 means "timing-only run", not "0
  /// cycles measured".
  std::int64_t pmu_spans = 0;
  std::int64_t cycles_sum = 0;
  std::int64_t instructions_sum = 0;
  std::int64_t llc_miss_sum = 0;
  std::int64_t stalled_sum = 0;

  /// makespan * ctas / busy_sum; 1.0 = perfect balance, 0 when no work.
  double imbalance() const;
  /// wait_sum / (busy_sum + wait_sum); 0 when no work.
  double wait_share() const;
  /// stalled_backend / cycles over PMU-annotated busy spans; 0 when
  /// timing-only.
  double stall_share() const;
  /// LLC misses per thousand retired instructions; 0 when timing-only.
  double llc_miss_per_kinst() const;
};

/// Groups CTA-attributed spans (kMacSegment, kEpilogueApply, kFixupWait,
/// kFixupSignal) by arg0.  Other kinds are ignored, so a snapshot of a full
/// bench run profiles cleanly.
LoadBalanceProfile build_load_balance_profile(std::span<const TraceSpan> spans);

/// Human-readable report: summary block plus a per-CTA table with busy/wait
/// columns and a proportional bar chart.
std::string render_load_balance_profile(const LoadBalanceProfile& profile);

/// The same numbers as a JSON object (machine-readable twin of the report).
std::string load_balance_profile_json(const LoadBalanceProfile& profile);

}  // namespace streamk::obs
