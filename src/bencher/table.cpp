#include "bencher/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace streamk::bencher {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  util::check(!headers_.empty(), "table needs headers");
}

void TextTable::row(std::vector<std::string> cells) {
  util::check(cells.size() == headers_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t j = 0; j < headers_.size(); ++j) {
    widths[j] = headers_[j].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t j = 0; j < cells.size(); ++j) {
      os << (j == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[j])) << cells[j];
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t j = 0; j < widths.size(); ++j) {
      os << (j == 0 ? "|-" : "-|-") << std::string(widths[j], '-');
    }
    os << "-|\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string fmt_ratio(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "x";
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  const double abs = std::abs(seconds);
  if (abs < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (abs < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (abs < 1.0) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds << " s";
  }
  return os.str();
}

}  // namespace streamk::bencher
