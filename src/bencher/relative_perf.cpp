#include "bencher/relative_perf.hpp"

#include "bencher/table.hpp"
#include "util/check.hpp"

namespace streamk::bencher {

CorpusEvaluation evaluate_corpus(
    const corpus::Corpus& corpus, const ensemble::EvaluationSuite& suite,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  CorpusEvaluation eval;
  const std::size_t n = corpus.size();
  eval.shapes = corpus.shapes();
  eval.intensity.reserve(n);
  eval.stream_k_seconds.reserve(n);
  eval.data_parallel_seconds.reserve(n);
  eval.cublas_like_seconds.reserve(n);
  eval.oracle_seconds.reserve(n);
  eval.stream_k_utilization.reserve(n);
  eval.data_parallel_utilization.reserve(n);
  eval.cublas_like_utilization.reserve(n);
  eval.oracle_utilization.reserve(n);

  const gpu::Precision precision = suite.stream_k->precision();
  std::size_t done = 0;
  for (const core::GemmShape& shape : corpus.shapes()) {
    eval.intensity.push_back(shape.arithmetic_intensity(precision));

    const auto sk = suite.stream_k->run(shape);
    const auto dp = suite.data_parallel->run(shape);
    const auto cb = suite.cublas_like->run(shape);
    const auto oc = suite.oracle->run(shape);

    eval.stream_k_seconds.push_back(sk.estimate.seconds);
    eval.data_parallel_seconds.push_back(dp.estimate.seconds);
    eval.cublas_like_seconds.push_back(cb.estimate.seconds);
    eval.oracle_seconds.push_back(oc.estimate.seconds);

    eval.stream_k_utilization.push_back(sk.estimate.utilization);
    eval.data_parallel_utilization.push_back(dp.estimate.utilization);
    eval.cublas_like_utilization.push_back(cb.estimate.utilization);
    eval.oracle_utilization.push_back(oc.estimate.utilization);

    ++done;
    if (progress && done % 1024 == 0) progress(done, n);
  }
  if (progress) progress(done, n);
  return eval;
}

util::Summary speedup_summary(const std::vector<double>& baseline_seconds,
                              const std::vector<double>& stream_k_seconds) {
  util::check(baseline_seconds.size() == stream_k_seconds.size(),
              "speedup vectors must align");
  std::vector<double> speedups;
  speedups.reserve(baseline_seconds.size());
  for (std::size_t i = 0; i < baseline_seconds.size(); ++i) {
    speedups.push_back(baseline_seconds[i] / stream_k_seconds[i]);
  }
  return util::Summary::of(speedups);
}

util::Summary speedup_summary_filtered(
    const std::vector<double>& baseline_seconds,
    const std::vector<double>& stream_k_seconds,
    const std::vector<double>& intensity, double threshold) {
  util::check(baseline_seconds.size() == stream_k_seconds.size() &&
                  baseline_seconds.size() == intensity.size(),
              "speedup vectors must align");
  std::vector<double> speedups;
  for (std::size_t i = 0; i < baseline_seconds.size(); ++i) {
    if (intensity[i] > threshold) {
      speedups.push_back(baseline_seconds[i] / stream_k_seconds[i]);
    }
  }
  return util::Summary::of(speedups);
}

std::string render_relative_table(const CorpusEvaluation& eval,
                                  gpu::Precision precision,
                                  const std::string& dp_label) {
  const double threshold = corpus::compute_bound_threshold(precision);

  const util::Summary vs_dp =
      speedup_summary(eval.data_parallel_seconds, eval.stream_k_seconds);
  const util::Summary vs_cublas =
      speedup_summary(eval.cublas_like_seconds, eval.stream_k_seconds);
  const util::Summary vs_cublas_cb = speedup_summary_filtered(
      eval.cublas_like_seconds, eval.stream_k_seconds, eval.intensity,
      threshold);
  const util::Summary vs_oracle =
      speedup_summary(eval.oracle_seconds, eval.stream_k_seconds);

  TextTable table({"", "vs CUTLASS " + dp_label, "vs cuBLAS-like",
                   "vs cuBLAS-like > " + fmt_num(threshold, 0) + " ops/B",
                   "vs CUTLASS oracle"});
  auto row = [&](const std::string& label, auto get) {
    table.row({label, get(vs_dp), get(vs_cublas), get(vs_cublas_cb),
               get(vs_oracle)});
  };
  row("Average", [](const util::Summary& s) { return fmt_ratio(s.mean); });
  row("StdDev", [](const util::Summary& s) { return fmt_num(s.stddev); });
  row("Min", [](const util::Summary& s) { return fmt_ratio(s.min); });
  row("Max", [](const util::Summary& s) { return fmt_ratio(s.max); });
  return table.render();
}

}  // namespace streamk::bencher
