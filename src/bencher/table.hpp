#pragma once

// Fixed-width text tables for paper-style terminal reports.

#include <string>
#include <vector>

namespace streamk::bencher {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23x" style ratio formatting (matching Tables 1-2).
std::string fmt_ratio(double v, int precision = 2);
/// "87.5%" style percentage.
std::string fmt_pct(double fraction, int precision = 1);
/// Fixed-precision number.
std::string fmt_num(double v, int precision = 2);
/// Seconds scaled to a human unit (ns/us/ms/s).
std::string fmt_seconds(double seconds);

}  // namespace streamk::bencher
