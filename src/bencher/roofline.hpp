#pragma once

// Roofline landscapes: utilization as a function of arithmetic intensity.
//
// The paper's Figures 5 and 6 plot, for each of the 32K corpus problems,
// tensor-core utilization against FLOP/byte -- one panel per library.  For
// terminal/regression use we summarize each panel into logarithmic intensity
// buckets with percentile bands: a "tight" performance response (Stream-K)
// shows a narrow p10-p90 band; the data-parallel and heuristic ensembles
// show wide ones.  Full per-problem scatter data is exported to CSV for
// external plotting.

#include <string>
#include <vector>

#include "bencher/relative_perf.hpp"
#include "util/stats.hpp"

namespace streamk::bencher {

struct IntensityBand {
  double intensity_lo = 0.0;
  double intensity_hi = 0.0;
  util::Summary utilization;  ///< over problems in this bucket
};

/// Buckets (intensity, value) pairs into log-spaced intensity bands.
std::vector<IntensityBand> banded_summary(
    const std::vector<double>& intensity, const std::vector<double>& values,
    std::size_t buckets = 12);

/// Renders a banded panel: one line per bucket with p10/median/p90 and a
/// spread column (p90 - p10), the figure's visual "tightness".
std::string render_roofline_panel(const std::string& title,
                                  const std::vector<IntensityBand>& bands);

/// Mean p90-p10 utilization spread across buckets: a scalar "consistency"
/// score (lower = tighter response).
double mean_band_spread(const std::vector<IntensityBand>& bands);

/// Writes per-problem scatter data for all four libraries.
void write_roofline_csv(const std::string& path, const CorpusEvaluation& eval);

}  // namespace streamk::bencher
