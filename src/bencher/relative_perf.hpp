#pragma once

// Corpus-wide evaluation and relative-performance distributions.
//
// Runs every library of an EvaluationSuite over a corpus and aggregates the
// speedup distributions the paper tabulates:
//
//     speedup_i = time_baseline(problem_i) / time_streamk(problem_i)
//
// reported as Average / StdDev / Min / Max over all problems, optionally
// restricted to the compute-bound sub-corpus (arithmetic intensity above the
// per-precision threshold) as in the third column of Tables 1-2.

#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "ensemble/library.hpp"
#include "util/stats.hpp"

namespace streamk::bencher {

/// Per-problem results for all four libraries, index-aligned with the
/// corpus shapes.
struct CorpusEvaluation {
  std::vector<core::GemmShape> shapes;
  std::vector<double> intensity;  ///< FLOP/byte at the suite's precision

  std::vector<double> stream_k_seconds;
  std::vector<double> data_parallel_seconds;
  std::vector<double> cublas_like_seconds;
  std::vector<double> oracle_seconds;

  std::vector<double> stream_k_utilization;
  std::vector<double> data_parallel_utilization;
  std::vector<double> cublas_like_utilization;
  std::vector<double> oracle_utilization;
};

CorpusEvaluation evaluate_corpus(
    const corpus::Corpus& corpus, const ensemble::EvaluationSuite& suite,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Speedup distribution baseline/stream-k (elementwise).
util::Summary speedup_summary(const std::vector<double>& baseline_seconds,
                              const std::vector<double>& stream_k_seconds);

/// Same, restricted to problems with intensity > threshold.
util::Summary speedup_summary_filtered(
    const std::vector<double>& baseline_seconds,
    const std::vector<double>& stream_k_seconds,
    const std::vector<double>& intensity, double threshold);

/// Renders a Table 1 / Table 2 style report (4 columns x Avg/StdDev/Min/Max).
std::string render_relative_table(const CorpusEvaluation& eval,
                                  gpu::Precision precision,
                                  const std::string& dp_label);

}  // namespace streamk::bencher
