#include "bencher/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "bencher/table.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace streamk::bencher {

std::vector<IntensityBand> banded_summary(
    const std::vector<double>& intensity, const std::vector<double>& values,
    std::size_t buckets) {
  util::check(intensity.size() == values.size(), "series must align");
  util::check(!intensity.empty(), "empty series");
  util::check(buckets >= 1, "need at least one bucket");

  double lo = intensity[0];
  double hi = intensity[0];
  for (const double x : intensity) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  hi = std::max(hi, lo * (1.0 + 1e-9));
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  const double width = (log_hi - log_lo) / static_cast<double>(buckets);

  std::vector<std::vector<double>> groups(buckets);
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    auto b = static_cast<std::ptrdiff_t>((std::log(intensity[i]) - log_lo) /
                                         width);
    b = std::clamp<std::ptrdiff_t>(b, 0,
                                   static_cast<std::ptrdiff_t>(buckets) - 1);
    groups[static_cast<std::size_t>(b)].push_back(values[i]);
  }

  std::vector<IntensityBand> bands;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (groups[b].empty()) continue;
    IntensityBand band;
    band.intensity_lo = std::exp(log_lo + width * static_cast<double>(b));
    band.intensity_hi = std::exp(log_lo + width * static_cast<double>(b + 1));
    band.utilization = util::Summary::of(groups[b]);
    bands.push_back(band);
  }
  return bands;
}

std::string render_roofline_panel(const std::string& title,
                                  const std::vector<IntensityBand>& bands) {
  std::ostringstream os;
  os << title << "\n";
  TextTable table({"ops/byte", "n", "p10 util", "median", "p90 util",
                   "spread(p90-p10)"});
  for (const IntensityBand& band : bands) {
    std::ostringstream range;
    range << fmt_num(band.intensity_lo, 0) << "-"
          << fmt_num(band.intensity_hi, 0);
    table.row({range.str(), std::to_string(band.utilization.count),
               fmt_pct(band.utilization.p10), fmt_pct(band.utilization.median),
               fmt_pct(band.utilization.p90),
               fmt_pct(band.utilization.p90 - band.utilization.p10)});
  }
  os << table.render();
  return os.str();
}

double mean_band_spread(const std::vector<IntensityBand>& bands) {
  util::check(!bands.empty(), "no bands");
  double sum = 0.0;
  for (const IntensityBand& band : bands) {
    sum += band.utilization.p90 - band.utilization.p10;
  }
  return sum / static_cast<double>(bands.size());
}

void write_roofline_csv(const std::string& path,
                        const CorpusEvaluation& eval) {
  util::CsvWriter csv(path, {"m", "n", "k", "intensity", "util_dp",
                             "util_cublas_like", "util_oracle",
                             "util_stream_k"});
  for (std::size_t i = 0; i < eval.shapes.size(); ++i) {
    csv.row({util::CsvWriter::cell(eval.shapes[i].m),
             util::CsvWriter::cell(eval.shapes[i].n),
             util::CsvWriter::cell(eval.shapes[i].k),
             util::CsvWriter::cell(eval.intensity[i]),
             util::CsvWriter::cell(eval.data_parallel_utilization[i]),
             util::CsvWriter::cell(eval.cublas_like_utilization[i]),
             util::CsvWriter::cell(eval.oracle_utilization[i]),
             util::CsvWriter::cell(eval.stream_k_utilization[i])});
  }
}

}  // namespace streamk::bencher
