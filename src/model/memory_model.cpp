#include "model/memory_model.hpp"

#include <algorithm>

#include "core/stream_k.hpp"
#include "util/check.hpp"

namespace streamk::model {

std::int64_t data_parallel_spills() { return 0; }

std::int64_t fixed_split_spills(const core::WorkMapping& mapping,
                                std::int64_t split) {
  util::check(split >= 1, "split must be >= 1");
  if (split == 1) return 0;
  const std::int64_t ips = core::ceil_div(mapping.iters_per_tile(), split);
  const std::int64_t live = core::ceil_div(mapping.iters_per_tile(), ips);
  return mapping.tiles() * (live - 1);
}

std::int64_t stream_k_spills(const core::WorkMapping& mapping,
                             std::int64_t grid) {
  // A CTA spills iff its balanced-within-one range begins mid-tile.
  std::int64_t spills = 0;
  for (std::int64_t cta = 0; cta < grid; ++cta) {
    const core::IterRange range =
        core::partition_iters(mapping.total_iters(), grid, cta,
                              core::IterPartition::kBalancedWithinOne);
    if (range.size() > 0 && range.begin % mapping.iters_per_tile() != 0) {
      ++spills;
    }
  }
  return spills;
}

std::int64_t count_spills(const core::SchedulePlan& plan) {
  return plan.total_spills();
}

std::int64_t count_spills(const core::Decomposition& decomposition) {
  return core::compile_plan(decomposition).total_spills();
}

Traffic estimate_traffic(const core::WorkMapping& mapping,
                         gpu::Precision precision, std::int64_t spills) {
  const auto e_in = static_cast<double>(gpu::input_bytes(precision));
  const auto e_out = static_cast<double>(gpu::output_bytes(precision));
  const auto e_acc = static_cast<double>(gpu::accumulator_bytes(precision));
  const gpu::BlockShape& blk = mapping.block();

  const double padded_k = static_cast<double>(mapping.iters_per_tile()) *
                          static_cast<double>(blk.k);
  const double a_panels =
      static_cast<double>(mapping.tiles_m()) * static_cast<double>(blk.m) *
      padded_k;
  const double b_panels =
      static_cast<double>(mapping.tiles_n()) * static_cast<double>(blk.n) *
      padded_k;

  // Each tile streams a full (BLK_M + BLK_N) x k panel pair; the part the
  // L2 cannot serve from inter-CTA overlap hits DRAM.  Compulsory traffic
  // is the floor.
  const double per_tile_panels =
      static_cast<double>(mapping.tiles()) *
      static_cast<double>(blk.m + blk.n) * padded_k;

  Traffic t;
  t.input_bytes = std::max((a_panels + b_panels) * e_in,
                           per_tile_panels * e_in * (1.0 - kL2HitRate));
  t.output_bytes = static_cast<double>(mapping.tiles()) *
                   static_cast<double>(blk.tile_elements()) * e_out;
  t.partials_bytes = 2.0 * static_cast<double>(spills) *
                     static_cast<double>(blk.tile_elements()) * e_acc;
  return t;
}

double memory_time(const Traffic& traffic, const gpu::GpuSpec& gpu) {
  util::check(gpu.dram_gbytes_per_s > 0.0, "GPU without DRAM bandwidth");
  return traffic.total() / gpu.dram_bytes_per_s();
}

double combine_roofline(double compute_seconds, double memory_seconds) {
  return std::max(compute_seconds, memory_seconds);
}

double utilization(double useful_flops, double seconds,
                   const gpu::GpuSpec& gpu, gpu::Precision precision) {
  util::check(seconds > 0.0, "utilization of a zero-time kernel");
  return useful_flops / seconds / gpu.peak_flops(precision);
}

}  // namespace streamk::model
