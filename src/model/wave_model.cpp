#include "model/wave_model.hpp"

#include <algorithm>

#include "core/hybrid.hpp"
#include "util/check.hpp"

namespace streamk::model {

WaveStats wave_stats(std::int64_t grid, std::int64_t sm_count,
                     std::int64_t occupancy) {
  util::check(grid >= 1, "wave stats need at least one CTA");
  util::check(sm_count >= 1 && occupancy >= 1, "invalid processor geometry");
  WaveStats stats;
  stats.grid = grid;
  stats.slots = sm_count * occupancy;
  stats.full_waves = grid / stats.slots;
  stats.tail_ctas = grid % stats.slots;
  stats.quantization_efficiency =
      static_cast<double>(grid) /
      (static_cast<double>(stats.waves()) * static_cast<double>(stats.slots));
  return stats;
}

namespace {

/// Duration of a wave whose SMs each host `resident` CTAs of `iters`
/// MAC-loop iterations (they time-share the math pipes).
double wave_duration(const CostParams& p, std::int64_t iters,
                     std::int64_t resident, double extra = 0.0) {
  return p.a + extra +
         p.c * static_cast<double>(iters) * static_cast<double>(resident);
}

}  // namespace

double data_parallel_makespan(const CostModel& model,
                              const core::WorkMapping& mapping,
                              const gpu::GpuSpec& gpu) {
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const WaveStats stats = wave_stats(mapping.tiles(), gpu.sm_count, occ);
  const std::int64_t ipt = mapping.iters_per_tile();
  const CostParams& p = model.params();

  double time = static_cast<double>(stats.full_waves) *
                wave_duration(p, ipt, occ);
  if (stats.tail_ctas > 0) {
    // The tail wave only loads ceil(tail / sm_count) CTAs onto any SM.
    const std::int64_t resident =
        std::min(occ, core::ceil_div(stats.tail_ctas, gpu.sm_count));
    time += wave_duration(p, ipt, resident);
  }
  return time;
}

double fixed_split_makespan(const CostModel& model,
                            const core::WorkMapping& mapping,
                            std::int64_t split, const gpu::GpuSpec& gpu) {
  util::check(split >= 1, "split must be >= 1");
  if (split == 1) return data_parallel_makespan(model, mapping, gpu);

  const CostParams& p = model.params();
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t ips = core::ceil_div(mapping.iters_per_tile(), split);
  // Splits that land past the iteration count are empty; only `live` CTAs
  // per tile do work (and only live - 1 spill partials).
  const std::int64_t live = core::ceil_div(mapping.iters_per_tile(), ips);
  const WaveStats stats = wave_stats(mapping.tiles() * live, gpu.sm_count, occ);

  double time = static_cast<double>(stats.full_waves) *
                wave_duration(p, ips, occ, p.b);
  if (stats.tail_ctas > 0) {
    const std::int64_t resident =
        std::min(occ, core::ceil_div(stats.tail_ctas, gpu.sm_count));
    time += wave_duration(p, ips, resident, p.b);
  }
  // Owner's serial reduction of its live-1 peers, paid once on the critical
  // path after the last contributor finishes.
  time += p.d * static_cast<double>(live - 1);
  return time;
}

double stream_k_makespan(const CostModel& model,
                         const core::WorkMapping& mapping, std::int64_t grid,
                         const gpu::GpuSpec& gpu) {
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;
  const CostParams& p = model.params();

  if (grid <= slots) {
    // Single wave: all CTAs are resident from time zero and the makespan is
    // one CTA's modelled runtime (Appendix A.1).  Residency contention only
    // arises when more than one CTA lands per SM.
    const std::int64_t resident = core::ceil_div(grid, gpu.sm_count);
    const double contention = static_cast<double>(std::min(resident, occ));
    const auto ipc =
        static_cast<double>(CostModel::iters_per_cta(mapping, grid));
    const auto peers =
        static_cast<double>(CostModel::fixup_peers(mapping, grid));
    return p.a + p.b * (peers > 1.0 ? 1.0 : 0.0) + p.c * ipc * contention +
           p.d * (peers - 1.0);
  }

  // Oversubscribed Stream-K grids execute in waves like any other grid.
  // (Fall through below.)
  const WaveStats stats = wave_stats(grid, gpu.sm_count, occ);
  const auto ipc = static_cast<double>(CostModel::iters_per_cta(mapping, grid));
  const auto peers =
      static_cast<double>(CostModel::fixup_peers(mapping, grid));
  return static_cast<double>(stats.waves()) *
             (p.a + p.c * ipc * static_cast<double>(occ) +
              p.b * (peers > 1.0 ? 1.0 : 0.0)) +
         p.d * (peers - 1.0);
}

double hybrid_makespan(const CostModel& model,
                       const core::WorkMapping& mapping,
                       core::DecompositionKind kind, const gpu::GpuSpec& gpu) {
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;

  core::HybridLayout layout;
  switch (kind) {
    case core::DecompositionKind::kHybridOneTile:
      layout = core::HybridLayout::one_tile(mapping, slots);
      break;
    case core::DecompositionKind::kHybridTwoTile:
      layout = core::HybridLayout::two_tile(mapping, slots);
      break;
    default:
      util::fail("hybrid_makespan requires a hybrid kind");
  }

  if (layout.full_waves == 0) {
    // No full data-parallel wave: the hybrid degenerates to basic Stream-K
    // over the whole iteration domain (owners may reduce many peers, which
    // the Appendix formula below would understate).
    return stream_k_makespan(model, mapping, slots, gpu);
  }

  const CostParams& p = model.params();
  const std::int64_t ipt = mapping.iters_per_tile();
  // CTAs co-residing on an SM time-share its pipes for the whole schedule.
  const std::int64_t resident = std::min<std::int64_t>(
      occ, core::ceil_div(std::min<std::int64_t>(slots, mapping.tiles()),
                          gpu.sm_count));
  const auto contention = static_cast<double>(std::max<std::int64_t>(1, resident));

  const std::int64_t max_sk_share =
      layout.sk_tiles == 0 ? 0
                           : core::ceil_div(layout.sk_tiles * ipt, slots);
  double time = p.a + p.c * contention *
                          static_cast<double>(max_sk_share +
                                              layout.full_waves * ipt);
  if (layout.sk_tiles > 0) {
    // One spill and (for the two-tile schedule) one peer reduction on the
    // critical path; the skew between producers and consumers hides the
    // synchronization itself.
    const std::int64_t peers = std::max<std::int64_t>(
        1, core::ceil_div(ipt, std::max<std::int64_t>(1, max_sk_share)));
    time += p.b + p.d * static_cast<double>(
                            kind == core::DecompositionKind::kHybridTwoTile
                                ? 1
                                : std::max<std::int64_t>(1, peers - 1));
  }
  return time;
}

}  // namespace streamk::model
