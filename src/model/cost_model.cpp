#include "model/cost_model.hpp"

#include "util/check.hpp"

namespace streamk::model {

double tile_efficiency(gpu::BlockShape block, gpu::Precision precision) {
  // Efficiency ladder anchored at the paper's statement that the chosen
  // blocking factors (64x64x16 FP64, 128x128x32 FP16->32) are the smallest
  // reaching 99% of peak.  Larger tiles gain a little; each halving of the
  // accumulator footprint costs pipeline efficiency (fewer instructions per
  // MAC-loop iteration to cover load latency, higher ratio of memory ops).
  const std::int64_t elements = block.tile_elements();
  std::int64_t reference = 0;
  switch (precision) {
    case gpu::Precision::kFp64:
      reference = gpu::BlockShape::paper_fp64().tile_elements();  // 64x64
      break;
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      reference = gpu::BlockShape::paper_fp16().tile_elements();  // 128x128
      break;
  }
  if (elements >= 2 * reference) return 1.0;
  if (elements >= reference) return 0.99;
  if (elements * 2 >= reference) return 0.93;
  if (elements * 4 >= reference) return 0.84;
  if (elements * 8 >= reference) return 0.74;
  return 0.64;
}

std::int64_t occupancy(gpu::BlockShape block, gpu::Precision precision) {
  // Residency is limited by the accumulator (register) footprint of a CTA:
  // BLK_M x BLK_N values at accumulator width.  The A100 register file is
  // 256 KB per SM; the paper-size tiles occupy enough of it (plus shared-
  // memory staging) that only one CTA fits.
  const std::int64_t accum_bytes =
      block.tile_elements() *
      static_cast<std::int64_t>(gpu::accumulator_bytes(precision));
  if (accum_bytes >= 32 * 1024) return 1;  // both paper tiles land here
  if (accum_bytes >= 16 * 1024) return 2;
  if (accum_bytes >= 8 * 1024) return 3;
  return 4;
}

CostModel CostModel::calibrated(const gpu::GpuSpec& gpu, gpu::BlockShape block,
                                gpu::Precision precision) {
  util::check(block.valid(), "invalid block shape");
  const double iter_flops =
      2.0 * static_cast<double>(block.macs_per_iteration());
  const double rate = gpu.per_sm_flops(precision) *
                      tile_efficiency(block, precision);
  CostParams p;
  p.c = iter_flops / rate;

  // {a, b, d} relative to c, fit offline against the response surface the
  // paper reports for the A100 (Section 5.1: constants are determined
  // empirically once per architecture and compiled in).  FP64's fixup is
  // relatively costlier: its MAC-loop iteration is small (64x64x16), so the
  // serial read-and-add of a 32 KB partial tile is worth ~4 iterations,
  // which is what bounds the paper's FP64 strong-scaling peak near 5.6x.
  // The FP16 iteration is 16x larger, making the (64 KB) fixup worth only a
  // fraction of an iteration, consistent with the 14.7x FP16 peak.
  switch (precision) {
    case gpu::Precision::kFp64:
      p.a = 2.0 * p.c;
      p.b = 2.0 * p.c;
      p.d = 4.0 * p.c;
      break;
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      p.a = 4.0 * p.c;
      p.b = 0.5 * p.c;
      p.d = 0.3 * p.c;
      break;
  }
  return CostModel(p, block, precision);
}

CostModel CostModel::paper_fig8(const gpu::GpuSpec& gpu, gpu::BlockShape block,
                                gpu::Precision precision) {
  CostModel m = calibrated(gpu, block, precision);
  // The conservative constants of the Figure 8 illustration: spilling a
  // partial tile costs ~9 MAC-loop iterations and each serial fixup ~8.
  m.params_.a = 2.0 * m.params_.c;
  m.params_.b = 9.0 * m.params_.c;
  m.params_.d = 8.0 * m.params_.c;
  return m;
}

std::int64_t CostModel::iters_per_cta(const core::WorkMapping& mapping,
                                      std::int64_t grid) {
  util::check(grid >= 1, "grid must be >= 1");
  return core::ceil_div(mapping.total_iters(), grid);
}

std::int64_t CostModel::fixup_peers(const core::WorkMapping& mapping,
                                    std::int64_t grid) {
  return core::ceil_div(mapping.iters_per_tile(), iters_per_cta(mapping, grid));
}

double CostModel::stream_k_cta_time(const core::WorkMapping& mapping,
                                    std::int64_t grid) const {
  const auto ipc = static_cast<double>(iters_per_cta(mapping, grid));
  const auto peers = static_cast<double>(fixup_peers(mapping, grid));
  return params_.a + params_.b * (peers > 1.0 ? 1.0 : 0.0) + params_.c * ipc +
         params_.d * (peers - 1.0);
}

double CostModel::data_parallel_cta_time(
    const core::WorkMapping& mapping) const {
  return params_.a +
         params_.c * static_cast<double>(mapping.iters_per_tile());
}

}  // namespace streamk::model
