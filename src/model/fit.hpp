#pragma once

// Empirical fitting of the Appendix A.1 workload constants.
//
// "Parameters to the model are trivially chosen with empirical measurements
// and need only be done once per target architecture."  (Section 5.1)
//
// Given measured (grid size, runtime) samples of basic Stream-K executions
// on one problem shape, the CTA time model is linear in {a, b, c, d} with
// regressors
//
//     x(g) = [ 1,  FixupPeers(g) > 1,  ItersPerCta(g),  FixupPeers(g) - 1 ]
//
// so ordinary least squares via the normal equations recovers the
// constants.  Regressor columns with no variance across the sample set
// (e.g. every sample has peers == 1, leaving b and d unobservable) are
// dropped and their constants reported as zero rather than producing a
// singular solve.

#include <span>
#include <vector>

#include "core/work_mapping.hpp"
#include "model/cost_model.hpp"

namespace streamk::model {

struct FitSample {
  std::int64_t grid = 0;
  double seconds = 0.0;
};

/// Solves A x = y for a dense square system with partial-pivoting Gaussian
/// elimination.  `a` is row-major n x n.  Throws on singular systems.
void solve_dense(std::vector<double>& a, std::vector<double>& y,
                 std::size_t n);

/// Least-squares fit of the cost constants from Stream-K timings of a single
/// problem shape at multiple grid sizes.  Requires at least as many samples
/// as observable parameters.  Negative fitted constants are clamped to zero
/// (they are physical costs).
CostParams fit_cost_params(const core::WorkMapping& mapping,
                           std::span<const FitSample> samples);

}  // namespace streamk::model
