#include "model/grid_selector.hpp"

#include <algorithm>
#include <limits>

#include "core/hybrid.hpp"
#include "model/memory_model.hpp"
#include "model/wave_model.hpp"
#include "util/check.hpp"

namespace streamk::model {

GridChoice select_grid(const CostModel& model,
                       const core::WorkMapping& mapping,
                       const gpu::GpuSpec& gpu) {
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;
  const std::int64_t max_grid =
      std::min<std::int64_t>(slots, mapping.total_iters());

  GridChoice best{1, model.stream_k_cta_time(mapping, 1)};
  for (std::int64_t g = 2; g <= max_grid; ++g) {
    const double t = model.stream_k_cta_time(mapping, g);
    if (t < best.predicted_seconds) best = {g, t};
  }
  return best;
}

namespace {

std::int64_t hybrid_spill_count(const core::WorkMapping& mapping,
                                core::DecompositionKind kind,
                                std::int64_t slots) {
  const core::HybridLayout layout =
      kind == core::DecompositionKind::kHybridOneTile
          ? core::HybridLayout::one_tile(mapping, slots)
          : core::HybridLayout::two_tile(mapping, slots);
  if (layout.sk_tiles == 0) return 0;
  const std::int64_t sk_iters = layout.sk_tiles * mapping.iters_per_tile();
  std::int64_t spills = 0;
  for (std::int64_t cta = 0; cta < slots; ++cta) {
    const core::IterRange range = core::partition_iters(
        sk_iters, slots, cta, core::IterPartition::kBalancedWithinOne);
    if (range.size() > 0 && range.begin % mapping.iters_per_tile() != 0) {
      ++spills;
    }
  }
  return spills;
}

}  // namespace

double closed_form_estimate(const core::DecompositionSpec& spec,
                            const CostModel& model,
                            const core::WorkMapping& mapping,
                            const gpu::GpuSpec& gpu) {
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;

  double compute = 0.0;
  std::int64_t spills = 0;
  switch (spec.kind) {
    case core::DecompositionKind::kDataParallel:
      compute = data_parallel_makespan(model, mapping, gpu);
      spills = data_parallel_spills();
      break;
    case core::DecompositionKind::kFixedSplit:
      compute = fixed_split_makespan(model, mapping, spec.split, gpu);
      spills = fixed_split_spills(mapping, spec.split);
      break;
    case core::DecompositionKind::kStreamKBasic: {
      const std::int64_t g = spec.grid > 0 ? spec.grid : slots;
      compute = stream_k_makespan(model, mapping, g, gpu);
      spills = stream_k_spills(mapping, g);
      break;
    }
    case core::DecompositionKind::kHybridOneTile:
    case core::DecompositionKind::kHybridTwoTile:
      compute = hybrid_makespan(model, mapping, spec.kind, gpu);
      spills = hybrid_spill_count(mapping, spec.kind, slots);
      break;
  }

  const Traffic traffic =
      estimate_traffic(mapping, model.precision(), spills);
  return combine_roofline(compute, memory_time(traffic, gpu));
}

core::DecompositionSpec plan(const CostModel& model,
                             const core::WorkMapping& mapping,
                             const gpu::GpuSpec& gpu) {
  util::check(gpu.sm_count >= 1, "GPU without SMs");
  const std::int64_t occ = occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;
  const std::int64_t tiles = mapping.tiles();

  // Candidate 1: plain data-parallel waves (the g = t regime).
  core::DecompositionSpec dp;
  dp.kind = core::DecompositionKind::kDataParallel;
  dp.sm_count = slots;
  core::DecompositionSpec best = dp;
  double best_seconds = closed_form_estimate(dp, model, mapping, gpu);

  // Candidate 2: two-tile hybrid (preferred schedule once a full wave of
  // tiles exists; degenerates to basic Stream-K below that).
  if (tiles % slots != 0) {
    core::DecompositionSpec hybrid;
    hybrid.kind = core::DecompositionKind::kHybridTwoTile;
    hybrid.sm_count = slots;
    const double seconds = closed_form_estimate(hybrid, model, mapping, gpu);
    if (seconds < best_seconds) {
      best = hybrid;
      best_seconds = seconds;
    }
  }

  // Candidate 3: basic Stream-K at the best roofline-aware grid size
  // (the strong-scaling regime, g in [1, slots]).
  if (tiles < 2 * slots) {
    const std::int64_t max_grid =
        std::min<std::int64_t>(slots, mapping.total_iters());
    core::DecompositionSpec sk;
    sk.kind = core::DecompositionKind::kStreamKBasic;
    sk.sm_count = slots;
    double sk_best = std::numeric_limits<double>::infinity();
    std::int64_t sk_grid = 1;
    for (std::int64_t g = 1; g <= max_grid; ++g) {
      sk.grid = g;
      const double seconds = closed_form_estimate(sk, model, mapping, gpu);
      if (seconds < sk_best) {
        sk_best = seconds;
        sk_grid = g;
      }
    }
    if (sk_best < best_seconds) {
      sk.grid = sk_grid;
      best = sk;
      best_seconds = sk_best;
    }
  }

  return best;
}

}  // namespace streamk::model
