#pragma once

// Closed-form execution model for wave-structured (tile-centric) schedules.
//
// A grid of uniform-duration CTAs dispatched over `slots = p * occupancy`
// concurrent residency slots executes in ceil(grid / slots) waves; the last
// wave may be partially full.  Quantization efficiency -- the paper's
// central antagonist -- is the ratio of useful CTA-slots to issued
// CTA-slots:
//
//     eff = grid / (waves * slots)
//
// e.g. nine 128x128 tiles on a four-SM GPU -> 3 waves, 75% ceiling
// (Figure 1a); eighteen half-tiles -> 5 waves, 90% (Figure 1b).
//
// These closed forms are exact for uniform CTA durations (proved by
// induction on waves; validated against the discrete-event simulator in
// tests/test_sim_vs_model.cpp).

#include <cstdint>

#include "core/decomposition.hpp"
#include "gpu/gpu_spec.hpp"
#include "model/cost_model.hpp"

namespace streamk::model {

struct WaveStats {
  std::int64_t grid = 0;
  std::int64_t slots = 0;       ///< concurrent CTA residency (p * occupancy)
  std::int64_t full_waves = 0;  ///< waves with every slot occupied
  std::int64_t tail_ctas = 0;   ///< CTAs in the final partial wave (0 if none)
  double quantization_efficiency = 1.0;

  std::int64_t waves() const { return full_waves + (tail_ctas > 0 ? 1 : 0); }
};

WaveStats wave_stats(std::int64_t grid, std::int64_t sm_count,
                     std::int64_t occupancy);

/// Makespan of the data-parallel decomposition (Algorithm 2): waves of
/// full-tile CTAs.  When multiple CTAs co-reside on an SM they share its
/// math pipes, so a wave of occupancy o runs at o times the single-CTA
/// iteration cost; the tail wave only pays for the residency it uses.
double data_parallel_makespan(const CostModel& model,
                              const core::WorkMapping& mapping,
                              const gpu::GpuSpec& gpu);

/// Makespan of the fixed-split decomposition (Algorithm 4) with splitting
/// factor s: t*s CTAs of ceil(ipt/s) iterations each, plus the spill cost
/// for contributors and the owner's serial reduction of its s-1 peers.
/// Approximate for s > 1 (fixup waits can extend the critical path);
/// validated against the simulator within tolerance in tests.
double fixed_split_makespan(const CostModel& model,
                            const core::WorkMapping& mapping, std::int64_t split,
                            const gpu::GpuSpec& gpu);

/// Makespan of basic Stream-K at grid g <= slots: every CTA starts at time
/// zero, so the makespan is the Appendix A.1 CTA time itself.
double stream_k_makespan(const CostModel& model,
                         const core::WorkMapping& mapping, std::int64_t grid,
                         const gpu::GpuSpec& gpu);

/// Makespan of a hybrid schedule (Section 5.2): the longest CTA carries the
/// largest Stream-K share plus its full data-parallel waves; fixup waits are
/// hidden by the temporal skew between spilling and accumulating CTAs
/// (negligible for the two-tile hybrid, the property the paper designs for).
double hybrid_makespan(const CostModel& model,
                       const core::WorkMapping& mapping,
                       core::DecompositionKind kind, const gpu::GpuSpec& gpu);

}  // namespace streamk::model
