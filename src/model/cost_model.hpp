#pragma once

// The paper's analytical CTA runtime model (Appendix A.1).
//
//   time_CTA(g) = a + b*[FixupPeers(g) > 1]
//                   + c*ItersPerCta(g)
//                   + d*(FixupPeers(g) - 1)
//
//   ItersPerCta(g) = ceil(total_iters / g)
//   FixupPeers(g)  = ceil(iters_per_tile / ItersPerCta(g))
//
// The four workload constants are unique to a (blocking factors, data type,
// microarchitecture) combination:
//   a -- one-time fixed costs per CTA (launch latency, compulsory misses,
//        output-tile store),
//   b -- conditional cost of spilling temporary partial sums,
//   c -- instruction + stall cost of one MAC-loop iteration,
//   d -- cost of reading and serially accumulating one peer's partials.
//
// Two parameterizations ship with the library:
//   * calibrated() -- `c` derived from the per-SM math peak and a per-tile
//     efficiency factor; {a, b, d} fit (once, offline -- exactly as
//     Section 5.1 prescribes) so the model's performance response matches
//     the response surface published in the paper (Tables 1-2 extremes).
//   * paper_fig8() -- the conservative constants implied by the Figure 8
//     illustration (b = 9c, d = 8c), under which the three Figure 8 case
//     studies yield g_best = 108, 64 and 8.

#include <cstdint>

#include "core/work_mapping.hpp"
#include "gpu/block_shape.hpp"
#include "gpu/gpu_spec.hpp"
#include "gpu/precision.hpp"

namespace streamk::model {

struct CostParams {
  double a = 0.0;  ///< seconds: fixed per-CTA cost
  double b = 0.0;  ///< seconds: partial-sum spill cost (conditional)
  double c = 0.0;  ///< seconds: one MAC-loop iteration
  double d = 0.0;  ///< seconds: read + accumulate one peer's partials
};

/// Fraction of an SM's peak math rate achieved by a blocking factor's MAC
/// loop.  The paper's chosen tiles are the smallest reaching 99% of peak;
/// smaller tiles pipeline less effectively (Section 3.2 lists why).
double tile_efficiency(gpu::BlockShape block, gpu::Precision precision);

/// CTAs of this blocking factor concurrently resident per SM (bounded by
/// accumulator/scratchpad footprint).  Finer tiles quantize better partly
/// because more of them co-schedule.
std::int64_t occupancy(gpu::BlockShape block, gpu::Precision precision);

class CostModel {
 public:
  CostModel(CostParams params, gpu::BlockShape block, gpu::Precision precision)
      : params_(params), block_(block), precision_(precision) {}

  static CostModel calibrated(const gpu::GpuSpec& gpu, gpu::BlockShape block,
                              gpu::Precision precision);
  static CostModel paper_fig8(const gpu::GpuSpec& gpu, gpu::BlockShape block,
                              gpu::Precision precision);

  const CostParams& params() const { return params_; }
  gpu::BlockShape block() const { return block_; }
  gpu::Precision precision() const { return precision_; }

  /// Appendix A.1: ceil(total_iters / g).
  static std::int64_t iters_per_cta(const core::WorkMapping& mapping,
                                    std::int64_t grid);

  /// Appendix A.1: ceil(iters_per_tile / iters_per_cta).
  static std::int64_t fixup_peers(const core::WorkMapping& mapping,
                                  std::int64_t grid);

  /// The paper's Stream-K CTA runtime at grid size g (compute only; combine
  /// with the memory model for a full estimate).
  double stream_k_cta_time(const core::WorkMapping& mapping,
                           std::int64_t grid) const;

  /// Cost of a plain data-parallel CTA (one full tile).
  double data_parallel_cta_time(const core::WorkMapping& mapping) const;

 private:
  CostParams params_;
  gpu::BlockShape block_;
  gpu::Precision precision_;
};

}  // namespace streamk::model
