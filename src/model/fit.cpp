#include "model/fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace streamk::model {

void solve_dense(std::vector<double>& a, std::vector<double>& y,
                 std::size_t n) {
  util::check(a.size() == n * n && y.size() == n, "solve_dense size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    util::check(std::abs(a[pivot * n + col]) > 1e-30,
                "singular system in solve_dense");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[pivot * n + j]);
      }
      std::swap(y[col], y[pivot]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[row * n + j] -= f * a[col * n + j];
      }
      y[row] -= f * y[col];
    }
  }
  // Back substitution.
  for (std::size_t row = n; row-- > 0;) {
    double sum = y[row];
    for (std::size_t j = row + 1; j < n; ++j) {
      sum -= a[row * n + j] * y[j];
    }
    y[row] = sum / a[row * n + row];
  }
}

CostParams fit_cost_params(const core::WorkMapping& mapping,
                           std::span<const FitSample> samples) {
  util::check(samples.size() >= 2, "need at least two fit samples");

  // Regressor rows for every sample.
  std::vector<std::array<double, 4>> rows;
  std::vector<double> targets;
  rows.reserve(samples.size());
  for (const FitSample& s : samples) {
    const auto ipc =
        static_cast<double>(CostModel::iters_per_cta(mapping, s.grid));
    const auto peers =
        static_cast<double>(CostModel::fixup_peers(mapping, s.grid));
    rows.push_back({1.0, peers > 1.0 ? 1.0 : 0.0, ipc, peers - 1.0});
    targets.push_back(s.seconds);
  }

  // Columns with no variance are unobservable; drop them (constant column 0
  // is always kept as the intercept `a`).
  std::array<bool, 4> active{true, false, false, false};
  for (std::size_t j = 1; j < 4; ++j) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i][j] != rows[0][j]) {
        active[j] = true;
        break;
      }
    }
  }
  auto try_fit = [&](const std::vector<std::size_t>& cols,
                     std::array<double, 4>& beta) {
    const std::size_t n = cols.size();
    util::check(samples.size() >= n, "underdetermined cost-parameter fit");
    // Normal equations (X^T X) beta = X^T y.
    std::vector<double> xtx(n * n, 0.0);
    std::vector<double> xty(n, 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t p = 0; p < n; ++p) {
        xty[p] += rows[i][cols[p]] * targets[i];
        for (std::size_t q = 0; q < n; ++q) {
          xtx[p * n + q] += rows[i][cols[p]] * rows[i][cols[q]];
        }
      }
    }
    solve_dense(xtx, xty, n);
    beta = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t p = 0; p < n; ++p) {
      beta[cols[p]] = std::max(0.0, xty[p]);  // physical costs >= 0
    }
  };

  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < 4; ++j) {
    if (active[j]) cols.push_back(j);
  }

  // The b-indicator and d-peer columns are collinear when every split
  // sample has exactly two fixup peers (indicator == peers - 1); drop b,
  // then d, if the normal equations come out singular -- the combined cost
  // lands on the surviving regressor, which is the best the data supports.
  std::array<double, 4> beta{0.0, 0.0, 0.0, 0.0};
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      try_fit(cols, beta);
      return CostParams{beta[0], beta[1], beta[2], beta[3]};
    } catch (const util::CheckError&) {
      std::size_t drop = 4;
      if (std::find(cols.begin(), cols.end(), 1u) != cols.end()) {
        drop = 1;  // b first
      } else if (std::find(cols.begin(), cols.end(), 3u) != cols.end()) {
        drop = 3;  // then d
      } else {
        throw;
      }
      cols.erase(std::remove(cols.begin(), cols.end(), drop), cols.end());
    }
  }
  try_fit(cols, beta);
  return CostParams{beta[0], beta[1], beta[2], beta[3]};
}

}  // namespace streamk::model
