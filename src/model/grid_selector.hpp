#pragma once

// Grid-size selection and decomposition planning (Section 5.1 / Appendix A.1).
//
// Before launch, Stream-K chooses a grid size likely to perform best on the
// problem at hand by minimizing the modelled CTA runtime over candidate
// grids.  Depending on the shape, the optimum is maximal parallelism
// (g = p), no splitting at all (g = t), or somewhere in between -- the three
// regimes of Figure 8.  Ties break toward the *smallest* grid (less
// splitting for the same modelled time, e.g. Figure 8b's dip at g = 64).
//
// plan() wraps the selector into the deployment policy the paper evaluates:
// a single kernel per precision that runs the "two-tile Stream-K +
// data-parallel" hybrid when at least one full wave of tiles exists, plain
// data-parallel waves on perfect quantization, and basic Stream-K with the
// model-chosen grid in the strong-scaling regime.

#include <cstdint>

#include "core/decomposition.hpp"
#include "gpu/gpu_spec.hpp"
#include "model/cost_model.hpp"

namespace streamk::model {

struct GridChoice {
  std::int64_t grid = 0;
  double predicted_seconds = 0.0;
};

/// argmin over g in [1, sm_count * occupancy] of the Appendix A.1 CTA time;
/// ties prefer the smallest g.  This is the paper's pure compute-side model
/// (the Figure 8 curves).
GridChoice select_grid(const CostModel& model,
                       const core::WorkMapping& mapping,
                       const gpu::GpuSpec& gpu);

/// Closed-form delivered-time estimate for a candidate launch: compute
/// makespan (wave model) combined with the DRAM roofline including
/// partial-sum traffic.  The memory side is what stops the planner from
/// over-splitting small problems, whose fixup traffic is pure overhead --
/// the "cost of reading, writing, and accumulating partial sums" the
/// Section 5.1 model minimizes.
double closed_form_estimate(const core::DecompositionSpec& spec,
                            const CostModel& model,
                            const core::WorkMapping& mapping,
                            const gpu::GpuSpec& gpu);

/// Full launch plan for a problem: evaluates data-parallel, the two-tile
/// hybrid, and basic Stream-K at the best modelled grid, and returns the
/// cheapest (ties prefer less splitting).
core::DecompositionSpec plan(const CostModel& model,
                             const core::WorkMapping& mapping,
                             const gpu::GpuSpec& gpu);

}  // namespace streamk::model
