#pragma once

// DRAM traffic and roofline model.
//
// Compute-centric cost models alone cannot reproduce the low-intensity half
// of the paper's roofline figures (5-7): small-k problems are bound by
// memory bandwidth, not math.  We model per-kernel DRAM traffic as
//
//   input    = max(padded compulsory traffic, the residue of per-tile panel
//              refetches that escapes the L2).  Every output tile streams a
//              (BLK_M + BLK_N) x k panel pair; the L2 captures most -- but
//              not all -- of the inter-CTA overlap, so finer blocking
//              factors carry a real bandwidth penalty (one of the two
//              drawbacks of small tiles listed in Section 3.2),
//   output   = every output tile stored once at full block granularity,
//   partials = each spilled partial tile written once and read once at
//              accumulator width (this is the O(g)-bounded overhead
//              Stream-K trades for its load balance).
//
// The delivered time of a kernel is max(compute makespan, traffic / BW):
// the classic roofline combination.  Utilization is measured against the
// problem's *useful* FLOPs, so padding waste on ragged shapes shows up as
// lost utilization exactly as it does on real hardware.

#include <cstdint>

#include "core/decomposition.hpp"
#include "core/schedule_plan.hpp"
#include "core/work_mapping.hpp"
#include "gpu/gpu_spec.hpp"
#include "gpu/precision.hpp"

namespace streamk::model {

struct Traffic {
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  double partials_bytes = 0.0;

  double total() const { return input_bytes + output_bytes + partials_bytes; }
};

/// Fraction of per-tile input-panel refetches served by the L2 instead of
/// DRAM (A100's 40 MB L2 captures most inter-CTA overlap within a wave).
inline constexpr double kL2HitRate = 0.85;

/// Number of partial-sum spills (non-tile-starting CTA segments) for each
/// decomposition, in closed form (O(grid) worst case for Stream-K grids,
/// O(1) for tile-centric schedules).
std::int64_t data_parallel_spills();
std::int64_t fixed_split_spills(const core::WorkMapping& mapping,
                                std::int64_t split);
std::int64_t stream_k_spills(const core::WorkMapping& mapping,
                             std::int64_t grid);
/// Exact spill count for an arbitrary schedule, from its compiled plan's
/// precomputed total (O(1)).
std::int64_t count_spills(const core::SchedulePlan& plan);

/// Convenience overload: compiles `decomposition` first (prefer the plan
/// overload when a plan already exists).
std::int64_t count_spills(const core::Decomposition& decomposition);

Traffic estimate_traffic(const core::WorkMapping& mapping,
                         gpu::Precision precision, std::int64_t spills);

/// traffic / DRAM bandwidth.
double memory_time(const Traffic& traffic, const gpu::GpuSpec& gpu);

/// Roofline combination of a compute makespan with the bandwidth bound.
double combine_roofline(double compute_seconds, double memory_seconds);

/// Delivered fraction of peak math throughput for a kernel that took
/// `seconds` on a problem with `useful_flops`.
double utilization(double useful_flops, double seconds,
                   const gpu::GpuSpec& gpu, gpu::Precision precision);

}  // namespace streamk::model
