#pragma once

// Tuned runtime dispatch: the bridge between the tuning database and the
// GEMM front ends.
//
// Every submit_gemm-family entry point with Schedule::kAuto and no forced
// blocking factor consults tuned_dispatch() before falling back to the
// analytical planner:
//
//   hit  -> the measured-best TunedConfig; the front end compiles it through
//           the process-wide plan_cache(), so a repeat shape costs one db
//           hash probe plus one plan-cache hit (both sub-microsecond).
//   miss -> nullopt; the caller proceeds with the heuristic/planner default.
//           In FindMode::kBackground the miss additionally enqueues a
//           background tuning job for the shape on the persistent worker
//           pool (MIOpen-style find mode): the *current* call is served at
//           heuristic quality immediately, and once the job lands its
//           winner in the db, subsequent repeats of the shape dispatch
//           tuned.  In-flight shapes are deduplicated, so a burst of
//           misses for one shape tunes it exactly once.
//
// The global database seeds itself from the STREAMK_TUNING_DB environment
// variable (a path produced by `streamk_tune` or TuningDb::save) on first
// use; a missing or unreadable file logs one warning and leaves the db
// empty rather than failing dispatch.

#include <optional>
#include <span>

#include "core/gemm_shape.hpp"
#include "epilogue/epilogue.hpp"
#include "gpu/precision.hpp"
#include "tuner/tuner.hpp"
#include "tuner/tuning_db.hpp"

namespace streamk::tuner {

enum class FindMode {
  kOff,         ///< misses fall through to the heuristic default (default)
  kBackground,  ///< misses enqueue a deduplicated pool tuning job
};

/// Sets / reads the process-wide find mode (atomic).
void set_find_mode(FindMode mode);
FindMode find_mode();

/// Tuning budget used by background find jobs (process-wide; take effect
/// for jobs enqueued after the call).
void set_find_options(const TuneOptions& options);
TuneOptions find_options();

/// The process-wide tuning database consulted by dispatch.  Immortal (like
/// runtime::plan_cache()) so pool workers draining during static
/// destruction can still touch it.  First use loads STREAMK_TUNING_DB when
/// the variable is set.
TuningDb& global_tuning_db();

/// Whether a dispatch miss may schedule a background find job for the
/// key.  Front ends whose db key is an *approximation* of their real work
/// mapping (batched GEMM keyed on the stacked shape, convolution keyed on
/// the implicit-GEMM shape) consult only: auto-tuning the key would
/// measure a plain GEMM and then pin that winner on a differently-mapped
/// problem while reporting it as measured.  Explicitly tuning such keys
/// with streamk_tune remains available as a deliberate choice.
enum class DispatchFind { kAllowed, kLookupOnly };

/// Dispatch consultation; see the file comment for hit/miss semantics.
/// `epilogue_class` is the canonical epilogue fingerprint of the request
/// (epilogue::class_key; "" for unfused) -- part of the database key, so a
/// fused shape tunes and dispatches independently of its unfused twin, and
/// a background find job for a fused key measures the fused path (with
/// synthetic bindings; see tuner.hpp).  `group` is the grouped-GEMM shape
/// multiset digest (group_digest; 0 for plain GEMMs) -- grouped/batched
/// front ends pass it with `shape` set to the aggregate group_key_shape,
/// and a non-zero digest never enqueues a background find (the job would
/// measure a plain GEMM of the aggregate shape, not the grouped schedule).
/// While the global db is empty and find mode is off, this is a single
/// relaxed atomic load -- no shared-lock traffic on untuned processes.
std::optional<TunedConfig> tuned_dispatch(
    const core::GemmShape& shape, gpu::Precision precision,
    const std::string& epilogue_class = {},
    DispatchFind find = DispatchFind::kAllowed, std::uint64_t group = 0);

/// Front-end form: takes the caller's op chain directly and fingerprints
/// it only *after* the empty-db fast path, so an untuned process never
/// pays the class-key string construction per call.  (Against a populated
/// db a fused call still builds the key once -- one small string ahead of
/// the GEMM it dispatches, accepted rather than threading cached keys
/// through every front end.)
std::optional<TunedConfig> tuned_dispatch(
    const core::GemmShape& shape, gpu::Precision precision,
    std::span<const epilogue::EpilogueOp> epilogue_ops,
    DispatchFind find = DispatchFind::kAllowed, std::uint64_t group = 0);

/// Number of background find jobs currently queued or running.
std::size_t find_jobs_in_flight();

/// Blocks until every background find job completed (tests, and CLI exit
/// paths that want the db fully populated before saving).
void wait_for_find_jobs();

}  // namespace streamk::tuner
