#include "tuner/search_space.hpp"

#include <algorithm>
#include <numeric>

#include "cpu/gemm.hpp"
#include "ensemble/kernel_config.hpp"
#include "model/cost_model.hpp"
#include "model/grid_selector.hpp"
#include "util/check.hpp"
#include "util/threading.hpp"

namespace streamk::tuner {

namespace {

void push_unique(std::vector<gpu::BlockShape>& menu, gpu::BlockShape block) {
  if (std::find(menu.begin(), menu.end(), block) == menu.end()) {
    menu.push_back(block);
  }
}

/// Stream-K grid candidates: a power-of-two ladder through [1, slots], the
/// machine width itself, the worker count, and the Section 5.1 model's own
/// argmin -- all capped by the iteration count (a grid beyond it is dead
/// CTAs) and deduplicated ascending.
std::vector<std::int64_t> grid_ladder(const model::CostModel& model,
                                      const core::WorkMapping& mapping,
                                      const gpu::GpuSpec& device,
                                      std::int64_t slots,
                                      std::int64_t workers) {
  const std::int64_t max_grid =
      std::min<std::int64_t>(slots, mapping.total_iters());
  std::vector<std::int64_t> grids;
  for (std::int64_t g = 1; g <= max_grid; g *= 2) grids.push_back(g);
  grids.push_back(max_grid);
  if (workers >= 1 && workers <= max_grid) grids.push_back(workers);
  grids.push_back(
      std::min<std::int64_t>(model::select_grid(model, mapping, device).grid,
                             max_grid));
  std::sort(grids.begin(), grids.end());
  grids.erase(std::unique(grids.begin(), grids.end()), grids.end());
  return grids;
}

}  // namespace

std::vector<gpu::BlockShape> tuning_block_menu(gpu::Precision precision) {
  std::vector<gpu::BlockShape> menu = ensemble::paper_dp_ensemble(precision);
  push_unique(menu, ensemble::paper_stream_k_block(precision));
  push_unique(menu, cpu::default_cpu_block(precision));
  return menu;
}

std::vector<std::size_t> normalize_worker_counts(
    std::vector<std::size_t> counts) {
  counts.erase(std::remove(counts.begin(), counts.end(), std::size_t{0}),
               counts.end());
  if (counts.empty()) counts = {util::default_workers()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<Candidate> enumerate_candidates(const core::GemmShape& shape,
                                            gpu::Precision precision,
                                            const gpu::GpuSpec& device,
                                            const SearchSpaceOptions& options) {
  util::check(shape.valid(), "tuner: invalid GEMM shape");
  util::check(device.sm_count >= 1, "tuner: device without cores");

  const std::vector<std::size_t> worker_counts =
      normalize_worker_counts(options.worker_counts);

  std::vector<Candidate> candidates;
  for (const std::size_t workers : worker_counts) {
    for (const gpu::BlockShape block : tuning_block_menu(precision)) {
      const core::WorkMapping mapping(shape, block);
      const model::CostModel model =
          model::CostModel::calibrated(device, block, precision);
      const std::int64_t slots =
          device.sm_count * model::occupancy(block, precision);
      const auto push = [&](core::DecompositionSpec spec, TunedConfig config) {
        spec.sm_count = slots;
        config.block = block;
        config.workers = workers;
        const double predicted =
            model::closed_form_estimate(spec, model, mapping, device);
        if (mapping.tiles() < 2) {
          // Single-tile mapping: the panel cache cannot share anything, so
          // there is nothing to measure -- leave the no-verdict default.
          candidates.push_back({config, predicted});
          return;
        }
        // Measured pair: the shared panel cache on (what kAuto resolves to
        // for a multi-tile mapping) and forced off.  The off twin carries a
        // mild model penalty so it ranks just behind its base -- it gets
        // measured when the base survives pruning, but a wave of twins
        // never crowds distinct schedules out of the top_k budget.
        config.panel_cache = 1;
        candidates.push_back({config, predicted});
        config.panel_cache = 0;
        candidates.push_back({config, predicted * 1.05});
      };

      // Data-parallel: always feasible.
      {
        TunedConfig config;
        config.kind = core::DecompositionKind::kDataParallel;
        core::DecompositionSpec spec;
        spec.kind = config.kind;
        push(spec, config);
      }

      // Fixed-split ladder, bounded by the per-tile iteration count
      // (a larger split only manufactures empty CTAs).
      for (const std::int64_t split : ensemble::heuristic_split_ladder()) {
        if (split < 2) continue;
        if (split > mapping.iters_per_tile()) break;
        TunedConfig config;
        config.kind = core::DecompositionKind::kFixedSplit;
        config.split = split;
        core::DecompositionSpec spec;
        spec.kind = config.kind;
        spec.split = split;
        push(spec, config);
      }

      // Stream-K grids.
      for (const std::int64_t grid :
           grid_ladder(model, mapping, device, slots,
                       static_cast<std::int64_t>(workers))) {
        TunedConfig config;
        config.kind = core::DecompositionKind::kStreamKBasic;
        config.grid = grid;
        core::DecompositionSpec spec;
        spec.kind = config.kind;
        spec.grid = grid;
        push(spec, config);
      }

      // Hybrids (quantization repair; only distinct from data-parallel when
      // the tile count leaves a ragged final wave).
      if (options.include_hybrids && mapping.tiles() % slots != 0) {
        for (const auto kind : {core::DecompositionKind::kHybridTwoTile,
                                core::DecompositionKind::kHybridOneTile}) {
          TunedConfig config;
          config.kind = kind;
          core::DecompositionSpec spec;
          spec.kind = kind;
          push(spec, config);
        }
      }
    }
  }
  return candidates;
}

std::vector<Candidate> rank_candidates(std::vector<Candidate> candidates,
                                       std::size_t top_k) {
  // Rank by model prediction with the input index as tie-break, so the
  // measured list is identical across processes and platforms.
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&candidates](std::size_t a, std::size_t b) {
                     return candidates[a].predicted_seconds <
                            candidates[b].predicted_seconds;
                   });
  const std::size_t keep =
      top_k == 0 ? candidates.size() : std::min(top_k, candidates.size());
  std::vector<Candidate> pruned;
  pruned.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) pruned.push_back(candidates[order[i]]);
  return pruned;
}

std::vector<Candidate> search_space(const core::GemmShape& shape,
                                    gpu::Precision precision,
                                    const gpu::GpuSpec& device,
                                    const SearchSpaceOptions& options) {
  return rank_candidates(
      enumerate_candidates(shape, precision, device, options), options.top_k);
}

}  // namespace streamk::tuner
