#pragma once

// Empirical measurement of search-space candidates on the real executor.
//
// This is the "Find mode" of the subsystem (MIOpen's term): for a problem
// shape, run the model-pruned candidate list through the actual pool-backed
// GEMM path, time each candidate best-of-reps, and record the winner in a
// TuningDb.  Measurements execute through the exact production code path --
// cpu::gemm() and friends submitting onto the persistent
// runtime::WorkerPool with pooled workspaces and the process-wide plan
// cache -- so a tuned config's measured advantage is the advantage dispatch
// will actually observe.
//
// Determinism: candidates are measured in the search_space() order
// (model-ranked with a fixed tie-break), operands are filled from a fixed
// PRNG seed, and ties on measured seconds keep the earlier (better-
// predicted) candidate, so re-tuning an unchanged host converges to the
// same winner modulo genuine timing noise.

#include <span>
#include <vector>

#include "core/gemm_shape.hpp"
#include "cpu/gemm.hpp"
#include "gpu/precision.hpp"
#include "tuner/search_space.hpp"
#include "tuner/tuning_db.hpp"

namespace streamk::tuner {

struct TuneOptions {
  SearchSpaceOptions space;
  int repetitions = 3;  ///< best-of timing repetitions per candidate
  /// Epilogue class to tune for ("" = unfused).  Any parseable class
  /// string is accepted and canonicalized (parse + reformat) before it
  /// becomes a db key, so records always match what runtime dispatch
  /// computes from the caller's chain.  Candidates are measured with the
  /// chain fused -- rebuilt via epilogue::parse_class_key and bound to
  /// synthetic operands (zero bias/residual, scratch reduction outputs) of
  /// the right extents, so the winner reflects the store-side cost the
  /// fused dispatch pays.
  std::string epilogue_class;
};

struct MeasuredCandidate {
  TunedConfig config;
  double predicted_seconds = 0.0;  ///< model rank that admitted it
  double seconds = 0.0;            ///< best-of-reps measured
  double gflops = 0.0;
};

struct TuneReport {
  ShapeKey key;
  TuningRecord best;
  std::vector<MeasuredCandidate> measured;  ///< in measurement order
};

/// Builds the GemmOptions that make the GEMM front ends execute exactly
/// `config` (explicit schedule, block, grid/split, workers).
cpu::GemmOptions tuned_options(const TunedConfig& config);

/// Best-of-`repetitions` execution time of one concrete configuration
/// through the production gemm() path, operands filled from a fixed PRNG
/// seed.  A non-empty `epilogue_class` fuses the chain (with synthetic
/// bindings) into every measured call.  The single definition of
/// measurement methodology -- the tuner, the streamk_tune A/B, and
/// bench_tuner all time through this.
double measure_config(const core::GemmShape& shape, gpu::Precision precision,
                      const cpu::GemmOptions& options, int repetitions,
                      const std::string& epilogue_class = {});

/// One tuned-vs-heuristic A/B point, shared by streamk_tune and
/// bench_tuner so the two reports measure identically.  The heuristic side
/// is Schedule::kAuto -- callers must ensure the global tuning db cannot
/// serve it (or the comparison degenerates to tuned-vs-tuned).  Both sides
/// fuse `epilogue_class` when non-empty.
struct AbResult {
  double heuristic_seconds = 0.0;
  double tuned_seconds = 0.0;
  double speedup = 0.0;  ///< 0 when either side measured non-positive --
                         ///< callers must exclude such points from geomeans
};
AbResult ab_measure(const core::GemmShape& shape, gpu::Precision precision,
                    const TunedConfig& config, int repetitions,
                    const std::string& epilogue_class = {});

/// Measures the budgeted search space for one shape and returns the winner
/// plus the full measurement trace.  FP32 operands are used for kFp32,
/// doubles for kFp64, Half inputs for kFp16F32 -- the same substrates the
/// runtime serves.
TuneReport tune_shape(const core::GemmShape& shape, gpu::Precision precision,
                      const TuneOptions& options = {});

/// Tunes every shape of `shapes` (skipping keys `db` already holds) and
/// records winners into `db`.  Returns the number of shapes newly tuned.
std::size_t tune_corpus(std::span<const core::GemmShape> shapes,
                        gpu::Precision precision, TuningDb& db,
                        const TuneOptions& options = {});

/// Grouped (ragged-batch) variant of tune_shape: candidates are enumerated
/// against the group's iteration-dominant problem (mirroring the runtime's
/// grouped kAuto policy) but *measured* through cpu::grouped_gemm over the
/// whole group, so the winner reflects the one-queue schedule the record
/// will dispatch.  Candidates runtime dispatch would reject for this group
/// (cpu::tuned_dispatch_feasible against the group's smallest k) are
/// skipped.  The report's key is the grouped key: aggregate shape +
/// shape-multiset digest (tuner/tuning_db.hpp).  A non-empty epilogue
/// class is measured with one shared synthetic spec sized for the widest
/// problem; residual-bearing classes are rejected for multi-problem groups
/// (the library's shared-spec rule).
TuneReport tune_group(std::span<const core::GemmShape> shapes,
                      gpu::Precision precision,
                      const TuneOptions& options = {});

/// Grouped tuned-vs-heuristic A/B: both sides run cpu::grouped_gemm over
/// the group (heuristic = Schedule::kAuto; callers must keep the global
/// tuning db out of the heuristic side's reach).
AbResult ab_measure_group(std::span<const core::GemmShape> shapes,
                          gpu::Precision precision, const TunedConfig& config,
                          int repetitions,
                          const std::string& epilogue_class = {});

}  // namespace streamk::tuner
