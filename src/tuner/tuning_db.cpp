#include "tuner/tuning_db.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "epilogue/epilogue.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace streamk::tuner {

namespace {

constexpr std::string_view kFormatTag = "# streamk-tuning-db v";
constexpr std::string_view kHeader =
    "m,n,k,precision,epilogue,group,kind,block_m,block_n,block_k,grid,split,"
    "workers,panel_cache,seconds,gflops";
/// v3 layout: no group column (records migrate to the plain digest 0).
constexpr std::string_view kHeaderV3 =
    "m,n,k,precision,epilogue,kind,block_m,block_n,block_k,grid,split,"
    "workers,panel_cache,seconds,gflops";
/// v2 layout: no panel_cache column either (records migrate to the `auto`
/// verdict).
constexpr std::string_view kHeaderV2 =
    "m,n,k,precision,epilogue,kind,block_m,block_n,block_k,grid,split,"
    "workers,seconds,gflops";
/// v1 layout: no epilogue column either (records additionally migrate to
/// the unfused class).
constexpr std::string_view kLegacyHeader =
    "m,n,k,precision,kind,block_m,block_n,block_k,grid,split,workers,"
    "seconds,gflops";

std::string_view panel_cache_token(int verdict) {
  if (verdict == 0) return "off";
  if (verdict == 1) return "on";
  return "auto";
}

int parse_panel_cache(std::string_view token) {
  if (token == "auto" || token == "-1") return -1;
  if (token == "off" || token == "0") return 0;
  if (token == "on" || token == "1") return 1;
  util::fail("tuning db: unknown panel_cache token '" + std::string(token) +
             "'");
}

std::string_view precision_token(gpu::Precision p) { return gpu::name(p); }

gpu::Precision parse_precision(std::string_view token) {
  for (const auto p : {gpu::Precision::kFp64, gpu::Precision::kFp32,
                       gpu::Precision::kFp16F32}) {
    if (token == gpu::name(p)) return p;
  }
  util::fail("tuning db: unknown precision token '" + std::string(token) +
             "'");
}

core::DecompositionKind parse_kind(std::string_view token) {
  for (const auto k :
       {core::DecompositionKind::kDataParallel,
        core::DecompositionKind::kFixedSplit,
        core::DecompositionKind::kStreamKBasic,
        core::DecompositionKind::kHybridOneTile,
        core::DecompositionKind::kHybridTwoTile}) {
    if (token == core::kind_name(k)) return k;
  }
  util::fail("tuning db: unknown decomposition kind '" + std::string(token) +
             "'");
}

std::int64_t parse_int(std::string_view token, const char* what) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  util::check(ec == std::errc() && ptr == token.data() + token.size(),
              std::string("tuning db: malformed ") + what + " field '" +
                  std::string(token) + "'");
  return v;
}

std::uint64_t parse_uint64(std::string_view token, const char* what) {
  // The group digest uses the full 64-bit range, so it cannot round-trip
  // through parse_int's signed parser.
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  util::check(ec == std::errc() && ptr == token.data() + token.size(),
              std::string("tuning db: malformed ") + what + " field '" +
                  std::string(token) + "'");
  return v;
}

double parse_double(std::string_view token, const char* what) {
  // std::from_chars<double> is the matching parser for CsvWriter::cell's
  // shortest-round-trip to_chars output.
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  util::check(ec == std::errc() && ptr == token.data() + token.size(),
              std::string("tuning db: malformed ") + what + " field '" +
                  std::string(token) + "'");
  return v;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = line.find(',', begin);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(begin));
      return fields;
    }
    fields.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

/// Total order over keys for deterministic save()/snapshot() output.
bool key_less(const ShapeKey& a, const ShapeKey& b) {
  if (a.shape != b.shape) return a.shape < b.shape;
  if (a.precision != b.precision) {
    return static_cast<int>(a.precision) < static_cast<int>(b.precision);
  }
  if (a.epilogue != b.epilogue) return a.epilogue < b.epilogue;
  return a.group < b.group;
}

}  // namespace

std::string TunedConfig::to_string() const {
  std::ostringstream os;
  os << core::kind_name(kind) << " " << block.to_string();
  if (kind == core::DecompositionKind::kStreamKBasic) os << " g=" << grid;
  if (kind == core::DecompositionKind::kFixedSplit) os << " s=" << split;
  if (workers > 0) os << " w=" << workers;
  if (panel_cache != -1) os << " pc=" << panel_cache_token(panel_cache);
  return os.str();
}

core::DecompositionSpec to_spec(const TunedConfig& config,
                                std::int64_t sm_count) {
  core::DecompositionSpec spec;
  spec.kind = config.kind;
  spec.sm_count = sm_count;
  if (config.kind == core::DecompositionKind::kStreamKBasic) {
    spec.grid = config.grid;
  }
  if (config.kind == core::DecompositionKind::kFixedSplit) {
    spec.split = config.split;
  }
  return spec;
}

std::size_t ShapeKeyHash::operator()(const ShapeKey& key) const {
  // FNV-1a over the identifying integers plus the epilogue-class bytes.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(key.shape.m));
  mix(static_cast<std::uint64_t>(key.shape.n));
  mix(static_cast<std::uint64_t>(key.shape.k));
  mix(static_cast<std::uint64_t>(key.precision));
  for (const char c : key.epilogue) {
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  mix(key.group);
  return static_cast<std::size_t>(h);
}

std::uint64_t group_digest(std::span<const core::GemmShape> shapes) {
  // FNV-1a over the sorted shape triples plus the count: order-insensitive
  // (a group is a multiset of problems; operand order does not change the
  // schedule's balance) and stable across processes.
  std::vector<core::GemmShape> sorted(shapes.begin(), shapes.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(sorted.size()));
  for (const core::GemmShape& s : sorted) {
    mix(static_cast<std::uint64_t>(s.m));
    mix(static_cast<std::uint64_t>(s.n));
    mix(static_cast<std::uint64_t>(s.k));
  }
  return h == 0 ? 1 : h;  // 0 is reserved for plain (non-grouped) keys
}

core::GemmShape group_key_shape(std::span<const core::GemmShape> shapes) {
  core::GemmShape sum;
  for (const core::GemmShape& s : shapes) {
    sum.m += s.m;
    sum.n += s.n;
    sum.k += s.k;
  }
  return sum;
}

std::optional<TuningRecord> TuningDb::lookup(const ShapeKey& key) const {
  std::shared_lock lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool TuningDb::update(const ShapeKey& key, const TuningRecord& record) {
  // Canonicalize the epilogue class at insertion (and reject garbage):
  // lookup keys built by runtime dispatch are class_key() output, so a
  // stored non-canonical key would be unreachable -- and would silently
  // change identity across a save/load round trip (load canonicalizes).
  ShapeKey canonical = key;
  canonical.epilogue = epilogue::canonical_class_key(key.epilogue);
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = records_.try_emplace(canonical, record);
  if (inserted) {
    approx_size_.store(records_.size(), std::memory_order_relaxed);
    return true;
  }
  if (record.seconds < it->second.seconds) {
    it->second = record;
    return true;
  }
  return false;
}

std::size_t TuningDb::merge(const TuningDb& other) {
  // Copy under the source lock, insert under ours (never hold both).
  const auto entries = other.snapshot();
  std::size_t updated = 0;
  for (const auto& [key, record] : entries) {
    if (update(key, record)) ++updated;
  }
  return updated;
}

std::size_t TuningDb::load(const std::string& path) {
  std::ifstream in(path);
  util::check(in.good(), "tuning db: cannot open '" + path + "'");

  std::string line;
  util::check(static_cast<bool>(std::getline(in, line)),
              "tuning db: empty file '" + path + "'");
  util::check(line.rfind(kFormatTag, 0) == 0,
              "tuning db: '" + path + "' has no version tag");
  const std::int64_t version =
      parse_int(std::string_view(line).substr(kFormatTag.size()), "version");
  util::check(version >= kLegacyFormatVersion && version <= kFormatVersion,
              "tuning db: '" + path + "' is format version " +
                  std::to_string(version) + "; this build reads versions " +
                  std::to_string(kLegacyFormatVersion) + " through " +
                  std::to_string(kFormatVersion));
  const bool has_epilogue = version >= kFormatVersionV2;
  const bool has_group = version >= kFormatVersion;
  const bool has_panel_cache = version >= kFormatVersionV3;
  const std::string_view want_header =
      has_group ? kHeader
                : (has_panel_cache ? kHeaderV3
                                   : (has_epilogue ? kHeaderV2 : kLegacyHeader));
  util::check(static_cast<bool>(std::getline(in, line)) &&
                  line == want_header,
              "tuning db: '" + path + "' has an unexpected header row");

  // Older rows lack the epilogue (v1), group (v1-v3), and panel_cache
  // (v1/v2) columns; every other column is shared, so one cursor-driven
  // parser serves all four layouts, with absent columns keeping their
  // migration defaults (unfused class, plain digest 0, `auto` verdict).
  const std::size_t want_fields = 13 + (has_epilogue ? 1 : 0) +
                                  (has_group ? 1 : 0) +
                                  (has_panel_cache ? 1 : 0);
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    util::check(fields.size() == want_fields,
                "tuning db: row with " + std::to_string(fields.size()) +
                    " fields (want " + std::to_string(want_fields) +
                    ") in '" + path + "'");
    std::size_t idx = 0;
    ShapeKey key;
    key.shape = {parse_int(fields[idx], "m"), parse_int(fields[idx + 1], "n"),
                 parse_int(fields[idx + 2], "k")};
    idx += 3;
    key.precision = parse_precision(fields[idx++]);
    if (has_epilogue) {
      // Canonicalize (and reject rows whose epilogue column this build
      // cannot interpret).
      key.epilogue = epilogue::canonical_class_key(fields[idx++]);
    }
    if (has_group) {
      key.group = parse_uint64(fields[idx++], "group");
    }
    TuningRecord record;
    record.config.kind = parse_kind(fields[idx++]);
    record.config.block = {parse_int(fields[idx], "block_m"),
                           parse_int(fields[idx + 1], "block_n"),
                           parse_int(fields[idx + 2], "block_k")};
    idx += 3;
    record.config.grid = parse_int(fields[idx++], "grid");
    record.config.split = parse_int(fields[idx++], "split");
    record.config.workers =
        static_cast<std::size_t>(parse_int(fields[idx++], "workers"));
    if (has_panel_cache) {
      record.config.panel_cache = parse_panel_cache(fields[idx++]);
    }
    record.seconds = parse_double(fields[idx], "seconds");
    record.gflops = parse_double(fields[idx + 1], "gflops");
    util::check(key.shape.valid() && record.config.block.valid(),
                "tuning db: row with invalid shape or block in '" + path +
                    "'");
    update(key, record);
    ++parsed;
  }
  return parsed;
}

void TuningDb::save(const std::string& path) const {
  const auto entries = snapshot();
  // Unique temp name: concurrent savers sharing one target must not share
  // a temp file, or one saver's writes land in the other's renamed
  // snapshot (the rename itself is the only shared step, and it is
  // atomic).
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));
  bool wrote = false;
  {
    std::ofstream out(tmp);
    if (out.good()) {
      out << kFormatTag << kFormatVersion << '\n' << kHeader << '\n';
      for (const auto& [key, record] : entries) {
        out << key.shape.m << ',' << key.shape.n << ',' << key.shape.k << ','
            << precision_token(key.precision) << ',' << key.epilogue << ','
            << key.group << ',' << core::kind_name(record.config.kind) << ','
            << record.config.block.m << ',' << record.config.block.n << ','
            << record.config.block.k << ',' << record.config.grid << ','
            << record.config.split << ',' << record.config.workers << ','
            << panel_cache_token(record.config.panel_cache) << ','
            << util::CsvWriter::cell(record.seconds) << ','
            << util::CsvWriter::cell(record.gflops) << '\n';
      }
      wrote = out.good();
    }
  }
  // Never leave an orphaned temp behind: each save generates a fresh
  // unique name, so failures would otherwise accumulate files forever.
  if (!wrote) {
    std::remove(tmp.c_str());
    util::fail("tuning db: cannot write '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    util::fail("tuning db: cannot rename '" + tmp + "' over '" + path + "'");
  }
}

std::size_t TuningDb::merge_save(const std::string& path) {
  // Advisory exclusive lock on a sidecar file (never on `path` itself:
  // save()'s rename replaces the inode, which would silently drop the
  // lock).  RAII so a malformed on-disk db cannot leak the lock.
  struct FileLock {
    int fd;
    explicit FileLock(const std::string& lock_path)
        : fd(::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644)) {
      util::check(fd >= 0, "tuning db: cannot open lock '" + lock_path + "'");
      if (::flock(fd, LOCK_EX) != 0) {
        ::close(fd);
        util::fail("tuning db: cannot lock '" + lock_path + "'");
      }
    }
    ~FileLock() {
      ::flock(fd, LOCK_UN);
      ::close(fd);
    }
  } lock(path + ".lock");

  std::size_t loaded = 0;
  if (std::ifstream(path).good()) loaded = load(path);
  save(path);
  return loaded;
}

std::vector<std::pair<ShapeKey, TuningRecord>> TuningDb::snapshot() const {
  std::vector<std::pair<ShapeKey, TuningRecord>> entries;
  {
    std::shared_lock lock(mutex_);
    entries.assign(records_.begin(), records_.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return key_less(a.first, b.first); });
  return entries;
}

std::size_t TuningDb::size() const {
  std::shared_lock lock(mutex_);
  return records_.size();
}

void TuningDb::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  approx_size_.store(0, std::memory_order_relaxed);
}

std::uint64_t TuningDb::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t TuningDb::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

}  // namespace streamk::tuner
