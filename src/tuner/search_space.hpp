#pragma once

// Candidate enumeration for the empirical tuner.
//
// The search space is the cross product the repo's contenders draw from:
// decomposition kind (all five), blocking factors from the ensemble menu
// (paper_dp_ensemble + the deployed Stream-K tile + the CPU default),
// Stream-K grid sizes (a power-of-two ladder around the machine width plus
// the Section 5.1 model's own choice), fixed-split factors from the
// heuristic ladder, and optional worker counts.  Exhaustively measuring
// that product per shape would dwarf the GEMMs being tuned, so -- like
// composable_kernel's pruning of its instance tables -- candidates are
// ranked by the Section 5.1 closed-form cost model
// (model::closed_form_estimate) and only the budgeted top-K survive to be
// measured on the real executor.  Every multi-tile candidate is emitted as
// an on/off pair over the shared packed-panel cache (the off twin at a
// mild model penalty), so the measured winner carries an empirical
// panel-cache verdict rather than trusting the kAuto heuristic.
//
// Enumeration is fully deterministic: candidates are emitted in a fixed
// nesting order and ranked with a total tie-break (predicted seconds, then
// enumeration index), so two processes tuning the same shape measure the
// same candidate list in the same order.

#include <cstddef>
#include <vector>

#include "core/gemm_shape.hpp"
#include "gpu/gpu_spec.hpp"
#include "gpu/precision.hpp"
#include "tuner/tuning_db.hpp"

namespace streamk::tuner {

struct SearchSpaceOptions {
  /// Measurement budget: candidates surviving the model pruning.
  /// 0 keeps every feasible candidate (exhaustive search).
  std::size_t top_k = 12;
  /// Worker counts to consider; empty = {util::default_workers()}.
  std::vector<std::size_t> worker_counts;
  /// Include the two hybrid schedules (they matter on ragged waves).
  bool include_hybrids = true;
};

struct Candidate {
  TunedConfig config;
  double predicted_seconds = 0.0;  ///< Section 5.1 closed-form estimate
};

/// Every feasible candidate for (shape, precision) on `device`, in
/// deterministic enumeration order, each annotated with its model
/// prediction.  Feasibility mirrors the planner's own constraints:
/// Stream-K grids lie in [1, slots] and never exceed the iteration count,
/// splits never exceed the per-tile iteration count, and every block comes
/// from the menu.
std::vector<Candidate> enumerate_candidates(
    const core::GemmShape& shape, gpu::Precision precision,
    const gpu::GpuSpec& device, const SearchSpaceOptions& options = {});

/// The budgeted measurement list: enumerate_candidates() pruned to the
/// top_k smallest model predictions (stable: ties keep enumeration order).
std::vector<Candidate> search_space(const core::GemmShape& shape,
                                    gpu::Precision precision,
                                    const gpu::GpuSpec& device,
                                    const SearchSpaceOptions& options = {});

/// The ranking step alone: `candidates` sorted by prediction (stable, so
/// ties keep input order) and truncated to top_k (0 = keep all).  Exposed
/// for callers that assemble candidate lists from several enumerations
/// (the CPU tuner ranks a union across worker counts, each enumerated
/// against its own host proxy).
std::vector<Candidate> rank_candidates(std::vector<Candidate> candidates,
                                       std::size_t top_k);

/// The blocking-factor menu the tuner draws from for a precision: the
/// paper's data-parallel ensemble, the deployed Stream-K tile, and the CPU
/// default block, deduplicated, in deterministic order.
std::vector<gpu::BlockShape> tuning_block_menu(gpu::Precision precision);

/// The one normalization policy for requested worker counts (used by both
/// enumeration and the tuner's per-width fan-out): drop zeros, default to
/// {util::default_workers()} when empty, sort, dedupe.
std::vector<std::size_t> normalize_worker_counts(
    std::vector<std::size_t> counts);

}  // namespace streamk::tuner
