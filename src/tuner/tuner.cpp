#include "tuner/tuner.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace streamk::tuner {

namespace {

cpu::Schedule schedule_for(core::DecompositionKind kind) {
  switch (kind) {
    case core::DecompositionKind::kDataParallel:
      return cpu::Schedule::kDataParallel;
    case core::DecompositionKind::kFixedSplit:
      return cpu::Schedule::kFixedSplit;
    case core::DecompositionKind::kStreamKBasic:
      return cpu::Schedule::kStreamK;
    case core::DecompositionKind::kHybridOneTile:
      return cpu::Schedule::kHybridOneTile;
    case core::DecompositionKind::kHybridTwoTile:
      return cpu::Schedule::kHybridTwoTile;
  }
  util::fail("unknown decomposition kind");
}

/// GemmReport::seconds covers plan execution only (compilation is cached),
/// which is exactly the steady-state cost dispatch cares about.  One
/// operand set serves the whole options list -- per-candidate reallocation
/// would be a real fraction of tune time on the CPU-sized shapes the
/// tuner targets.
template <typename In, typename Out>
std::vector<double> measure_options_typed(
    const core::GemmShape& shape, std::span<const cpu::GemmOptions> list,
    int repetitions) {
  cpu::Matrix<In> a(shape.m, shape.k);
  cpu::Matrix<In> b(shape.k, shape.n);
  cpu::Matrix<Out> c(shape.m, shape.n);
  util::Pcg32 rng(0x70e4db);
  cpu::fill_random(a, rng);
  cpu::fill_random(b, rng);
  std::vector<double> seconds;
  seconds.reserve(list.size());
  for (const cpu::GemmOptions& options : list) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
      best = std::min(best, cpu::gemm(a, b, c, options).seconds);
    }
    seconds.push_back(best);
  }
  return seconds;
}

std::vector<double> measure_options(const core::GemmShape& shape,
                                    gpu::Precision precision,
                                    std::span<const cpu::GemmOptions> list,
                                    int repetitions) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return measure_options_typed<double, double>(shape, list, repetitions);
    case gpu::Precision::kFp32:
      return measure_options_typed<float, float>(shape, list, repetitions);
    case gpu::Precision::kFp16F32:
      return measure_options_typed<util::Half, float>(shape, list,
                                                      repetitions);
  }
  util::fail("unknown precision");
}

}  // namespace

cpu::GemmOptions tuned_options(const TunedConfig& config) {
  cpu::GemmOptions options;
  options.schedule = schedule_for(config.kind);
  options.block = config.block;
  options.grid = config.grid;
  options.split = config.split;
  options.workers = config.workers;
  return options;
}

double measure_config(const core::GemmShape& shape, gpu::Precision precision,
                      const cpu::GemmOptions& options, int repetitions) {
  return measure_options(shape, precision, {&options, 1}, repetitions)
      .front();
}

AbResult ab_measure(const core::GemmShape& shape, gpu::Precision precision,
                    const TunedConfig& config, int repetitions) {
  AbResult result;
  result.heuristic_seconds =
      measure_config(shape, precision, cpu::GemmOptions{}, repetitions);
  result.tuned_seconds =
      measure_config(shape, precision, tuned_options(config), repetitions);
  result.speedup =
      result.heuristic_seconds > 0.0 && result.tuned_seconds > 0.0
          ? result.heuristic_seconds / result.tuned_seconds
          : 0.0;
  return result;
}

TuneReport tune_shape(const core::GemmShape& shape, gpu::Precision precision,
                      const TuneOptions& options) {
  // Enumerate each requested worker count against a host proxy of *that*
  // width -- the model's slots/grid thresholds must describe the machine
  // the candidate will actually run on -- then rank the union under one
  // budget.
  std::vector<Candidate> all;
  for (const std::size_t workers :
       normalize_worker_counts(options.space.worker_counts)) {
    SearchSpaceOptions per_width = options.space;
    per_width.worker_counts = {workers};
    const std::vector<Candidate> enumerated = enumerate_candidates(
        shape, precision, cpu::host_proxy_spec(workers), per_width);
    all.insert(all.end(), enumerated.begin(), enumerated.end());
  }
  const std::vector<Candidate> candidates =
      rank_candidates(std::move(all), options.space.top_k);
  util::check(!candidates.empty(), "tuner: empty search space");

  std::vector<cpu::GemmOptions> option_list;
  option_list.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    option_list.push_back(tuned_options(candidate.config));
  }
  const std::vector<double> timings =
      measure_options(shape, precision, option_list, options.repetitions);

  TuneReport report;
  report.key = {shape, precision};
  report.best.seconds = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    MeasuredCandidate measured;
    measured.config = candidates[i].config;
    measured.predicted_seconds = candidates[i].predicted_seconds;
    measured.seconds = timings[i];
    measured.gflops =
        timings[i] > 0.0 ? shape.flops() / timings[i] / 1e9 : 0.0;
    report.measured.push_back(measured);
    // Strict < keeps the earlier (better-predicted) candidate on ties.
    if (measured.seconds < report.best.seconds) {
      report.best.config = measured.config;
      report.best.seconds = measured.seconds;
      report.best.gflops = measured.gflops;
    }
  }
  return report;
}

std::size_t tune_corpus(std::span<const core::GemmShape> shapes,
                        gpu::Precision precision, TuningDb& db,
                        const TuneOptions& options) {
  std::size_t tuned = 0;
  for (const core::GemmShape& shape : shapes) {
    const ShapeKey key{shape, precision};
    if (db.lookup(key)) continue;
    const TuneReport report = tune_shape(shape, precision, options);
    db.update(key, report.best);
    ++tuned;
  }
  return tuned;
}

}  // namespace streamk::tuner
