#include "tuner/tuner.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "cpu/grouped.hpp"
#include "epilogue/epilogue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace streamk::tuner {

namespace {

cpu::Schedule schedule_for(core::DecompositionKind kind) {
  switch (kind) {
    case core::DecompositionKind::kDataParallel:
      return cpu::Schedule::kDataParallel;
    case core::DecompositionKind::kFixedSplit:
      return cpu::Schedule::kFixedSplit;
    case core::DecompositionKind::kStreamKBasic:
      return cpu::Schedule::kStreamK;
    case core::DecompositionKind::kHybridOneTile:
      return cpu::Schedule::kHybridOneTile;
    case core::DecompositionKind::kHybridTwoTile:
      return cpu::Schedule::kHybridTwoTile;
  }
  util::fail("unknown decomposition kind");
}

/// Synthetic epilogue bindings for measuring a fused class without a
/// caller's real operands: zero bias vectors / residual, scratch reduction
/// outputs, all sized for the shape.  The chain's *cost* (extra loads,
/// transcendental math, atomic merges) is identical to what real bindings
/// would pay, which is what the winner selection needs.
template <typename Out>
struct SyntheticEpilogue {
  std::vector<epilogue::EpilogueOp> ops;
  std::vector<double> bias_row;
  std::vector<double> bias_col;
  std::vector<double> row_abs_max;
  std::vector<double> row_sum;
  cpu::Matrix<Out> residual;

  SyntheticEpilogue(const core::GemmShape& shape,
                    const std::string& epilogue_class)
      : ops(epilogue::parse_class_key(epilogue_class)) {
    const epilogue::EpiloguePlanPtr plan = epilogue::compile(ops);
    if (plan->needs_bias_row()) {
      bias_row.assign(static_cast<std::size_t>(shape.m), 0.0);
    }
    if (plan->needs_bias_col()) {
      bias_col.assign(static_cast<std::size_t>(shape.n), 0.0);
    }
    if (plan->has_reduction()) {
      row_abs_max.assign(static_cast<std::size_t>(shape.m), 0.0);
      row_sum.assign(static_cast<std::size_t>(shape.m), 0.0);
    }
    if (plan->needs_residual()) {
      residual = cpu::Matrix<Out>(shape.m, shape.n);
    }
  }

  epilogue::EpilogueSpec spec() {
    epilogue::EpilogueSpec s;
    s.ops = ops;
    s.bias_row = bias_row;
    s.bias_col = bias_col;
    s.row_abs_max = row_abs_max;
    s.row_sum = row_sum;
    if (residual.rows() > 0) {
      s.residual = epilogue::TensorRef::of(residual.data().data(),
                                           residual.rows(), residual.cols());
    }
    return s;
  }
};

/// GemmReport::seconds covers plan execution only (compilation is cached),
/// which is exactly the steady-state cost dispatch cares about.  One
/// operand set serves the whole options list -- per-candidate reallocation
/// would be a real fraction of tune time on the CPU-sized shapes the
/// tuner targets.
template <typename In, typename Out>
std::vector<double> measure_options_typed(
    const core::GemmShape& shape, std::span<const cpu::GemmOptions> list,
    int repetitions, const std::string& epilogue_class) {
  cpu::Matrix<In> a(shape.m, shape.k);
  cpu::Matrix<In> b(shape.k, shape.n);
  cpu::Matrix<Out> c(shape.m, shape.n);
  util::Pcg32 rng(0x70e4db);
  cpu::fill_random(a, rng);
  cpu::fill_random(b, rng);
  std::optional<SyntheticEpilogue<Out>> synthetic;
  if (!epilogue_class.empty()) synthetic.emplace(shape, epilogue_class);
  std::vector<double> seconds;
  seconds.reserve(list.size());
  for (cpu::GemmOptions options : list) {
    if (synthetic) options.epilogue = synthetic->spec();
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
      best = std::min(best, cpu::gemm(a, b, c, options).seconds);
    }
    seconds.push_back(best);
  }
  return seconds;
}

/// Grouped analogue of measure_options_typed: one operand set for the
/// whole group, every candidate timed through cpu::grouped_gemm (whose
/// GemmReport::seconds likewise covers plan execution only).  A fused
/// class is bound as one shared synthetic spec sized for the widest
/// problem, the same shared-spec shape runtime callers use.
template <typename In, typename Acc, typename Out>
std::vector<double> measure_group_options_typed(
    std::span<const core::GemmShape> shapes,
    std::span<const cpu::GemmOptions> list, int repetitions,
    const std::string& epilogue_class) {
  std::vector<cpu::Matrix<In>> as;
  std::vector<cpu::Matrix<In>> bs;
  std::vector<cpu::Matrix<Out>> cs;
  util::Pcg32 rng(0x70e4db);
  core::GemmShape widest{0, 0, 0};
  for (const core::GemmShape& shape : shapes) {
    as.emplace_back(shape.m, shape.k);
    bs.emplace_back(shape.k, shape.n);
    cs.emplace_back(shape.m, shape.n);
    cpu::fill_random(as.back(), rng);
    cpu::fill_random(bs.back(), rng);
    widest.m = std::max(widest.m, shape.m);
    widest.n = std::max(widest.n, shape.n);
    widest.k = std::max(widest.k, shape.k);
  }
  std::optional<SyntheticEpilogue<Out>> synthetic;
  if (!epilogue_class.empty()) synthetic.emplace(widest, epilogue_class);
  std::vector<double> seconds;
  seconds.reserve(list.size());
  for (cpu::GemmOptions options : list) {
    if (synthetic) options.epilogue = synthetic->spec();
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
      best = std::min(
          best, cpu::grouped_gemm<In, Acc, Out>(as, bs, cs, options).seconds);
    }
    seconds.push_back(best);
  }
  return seconds;
}

std::vector<double> measure_group_options(
    std::span<const core::GemmShape> shapes, gpu::Precision precision,
    std::span<const cpu::GemmOptions> list, int repetitions,
    const std::string& epilogue_class = {}) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return measure_group_options_typed<double, double, double>(
          shapes, list, repetitions, epilogue_class);
    case gpu::Precision::kFp32:
      return measure_group_options_typed<float, float, float>(
          shapes, list, repetitions, epilogue_class);
    case gpu::Precision::kFp16F32:
      return measure_group_options_typed<util::Half, float, float>(
          shapes, list, repetitions, epilogue_class);
  }
  util::fail("unknown precision");
}

std::vector<double> measure_options(const core::GemmShape& shape,
                                    gpu::Precision precision,
                                    std::span<const cpu::GemmOptions> list,
                                    int repetitions,
                                    const std::string& epilogue_class = {}) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return measure_options_typed<double, double>(shape, list, repetitions,
                                                   epilogue_class);
    case gpu::Precision::kFp32:
      return measure_options_typed<float, float>(shape, list, repetitions,
                                                 epilogue_class);
    case gpu::Precision::kFp16F32:
      return measure_options_typed<util::Half, float>(shape, list,
                                                      repetitions,
                                                      epilogue_class);
  }
  util::fail("unknown precision");
}

}  // namespace

cpu::GemmOptions tuned_options(const TunedConfig& config) {
  cpu::GemmOptions options;
  options.schedule = schedule_for(config.kind);
  options.block = config.block;
  options.grid = config.grid;
  options.split = config.split;
  options.workers = config.workers;
  // A measured verdict pins the shared-panel-cache knob; -1 (no verdict,
  // e.g. a record loaded from a pre-v3 db) leaves the kAuto default.
  if (config.panel_cache == 0) {
    options.panel_cache = cpu::PanelCacheMode::kOff;
  } else if (config.panel_cache == 1) {
    options.panel_cache = cpu::PanelCacheMode::kOn;
  }
  return options;
}

double measure_config(const core::GemmShape& shape, gpu::Precision precision,
                      const cpu::GemmOptions& options, int repetitions,
                      const std::string& epilogue_class) {
  return measure_options(shape, precision, {&options, 1}, repetitions,
                         epilogue_class)
      .front();
}

AbResult ab_measure(const core::GemmShape& shape, gpu::Precision precision,
                    const TunedConfig& config, int repetitions,
                    const std::string& epilogue_class) {
  AbResult result;
  result.heuristic_seconds = measure_config(
      shape, precision, cpu::GemmOptions{}, repetitions, epilogue_class);
  result.tuned_seconds = measure_config(
      shape, precision, tuned_options(config), repetitions, epilogue_class);
  result.speedup =
      result.heuristic_seconds > 0.0 && result.tuned_seconds > 0.0
          ? result.heuristic_seconds / result.tuned_seconds
          : 0.0;
  return result;
}

TuneReport tune_shape(const core::GemmShape& shape, gpu::Precision precision,
                      const TuneOptions& options) {
  const std::string epilogue_class =
      epilogue::canonical_class_key(options.epilogue_class);
  // Enumerate each requested worker count against a host proxy of *that*
  // width -- the model's slots/grid thresholds must describe the machine
  // the candidate will actually run on -- then rank the union under one
  // budget.
  std::vector<Candidate> all;
  for (const std::size_t workers :
       normalize_worker_counts(options.space.worker_counts)) {
    SearchSpaceOptions per_width = options.space;
    per_width.worker_counts = {workers};
    const std::vector<Candidate> enumerated = enumerate_candidates(
        shape, precision, cpu::host_proxy_spec(workers), per_width);
    all.insert(all.end(), enumerated.begin(), enumerated.end());
  }
  const std::vector<Candidate> candidates =
      rank_candidates(std::move(all), options.space.top_k);
  util::check(!candidates.empty(), "tuner: empty search space");

  std::vector<cpu::GemmOptions> option_list;
  option_list.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    option_list.push_back(tuned_options(candidate.config));
  }
  const std::vector<double> timings =
      measure_options(shape, precision, option_list, options.repetitions,
                      epilogue_class);

  TuneReport report;
  report.key = {shape, precision, epilogue_class};
  report.best.seconds = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    MeasuredCandidate measured;
    measured.config = candidates[i].config;
    measured.predicted_seconds = candidates[i].predicted_seconds;
    measured.seconds = timings[i];
    measured.gflops =
        timings[i] > 0.0 ? shape.flops() / timings[i] / 1e9 : 0.0;
    report.measured.push_back(measured);
    // Strict < keeps the earlier (better-predicted) candidate on ties.
    if (measured.seconds < report.best.seconds) {
      report.best.config = measured.config;
      report.best.seconds = measured.seconds;
      report.best.gflops = measured.gflops;
    }
  }
  return report;
}

TuneReport tune_group(std::span<const core::GemmShape> shapes,
                      gpu::Precision precision, const TuneOptions& options) {
  util::check(!shapes.empty(), "tune_group: empty group");
  const std::string epilogue_class =
      epilogue::canonical_class_key(options.epilogue_class);

  // Enumerate against the FLOP-dominant problem: the group's cost is
  // concentrated there, and runtime grouped dispatch resolves kAuto the
  // same way, so the candidate list brackets the schedules the group will
  // actually choose between.
  std::size_t dominant = 0;
  for (std::size_t p = 1; p < shapes.size(); ++p) {
    if (shapes[p].flops() > shapes[dominant].flops()) dominant = p;
  }
  std::int64_t min_k = shapes[0].k;
  double total_flops = 0.0;
  for (const core::GemmShape& shape : shapes) {
    min_k = std::min(min_k, shape.k);
    total_flops += shape.flops();
  }

  std::vector<Candidate> all;
  for (const std::size_t workers :
       normalize_worker_counts(options.space.worker_counts)) {
    SearchSpaceOptions per_width = options.space;
    per_width.worker_counts = {workers};
    const std::vector<Candidate> enumerated = enumerate_candidates(
        shapes[dominant], precision, cpu::host_proxy_spec(workers),
        per_width);
    all.insert(all.end(), enumerated.begin(), enumerated.end());
  }
  std::vector<Candidate> candidates =
      rank_candidates(std::move(all), options.space.top_k);
  // Drop candidates runtime dispatch would refuse for this group (e.g. a
  // fixed-split factor above the shallowest problem's iteration count) --
  // recording such a winner would produce a key that always falls back.
  std::erase_if(candidates, [&](const Candidate& candidate) {
    return !cpu::tuned_dispatch_feasible(tuned_options(candidate.config),
                                         precision, min_k);
  });
  util::check(!candidates.empty(), "tuner: empty grouped search space");

  std::vector<cpu::GemmOptions> option_list;
  option_list.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    option_list.push_back(tuned_options(candidate.config));
  }
  const std::vector<double> timings = measure_group_options(
      shapes, precision, option_list, options.repetitions, epilogue_class);

  TuneReport report;
  report.key = {group_key_shape(shapes), precision, epilogue_class,
                group_digest(shapes)};
  report.best.seconds = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    MeasuredCandidate measured;
    measured.config = candidates[i].config;
    measured.predicted_seconds = candidates[i].predicted_seconds;
    measured.seconds = timings[i];
    measured.gflops = timings[i] > 0.0 ? total_flops / timings[i] / 1e9 : 0.0;
    report.measured.push_back(measured);
    if (measured.seconds < report.best.seconds) {
      report.best.config = measured.config;
      report.best.seconds = measured.seconds;
      report.best.gflops = measured.gflops;
    }
  }
  return report;
}

AbResult ab_measure_group(std::span<const core::GemmShape> shapes,
                          gpu::Precision precision, const TunedConfig& config,
                          int repetitions,
                          const std::string& epilogue_class) {
  AbResult result;
  const cpu::GemmOptions heuristic;
  result.heuristic_seconds =
      measure_group_options(shapes, precision, {&heuristic, 1}, repetitions,
                            epilogue_class)
          .front();
  const cpu::GemmOptions tuned = tuned_options(config);
  result.tuned_seconds =
      measure_group_options(shapes, precision, {&tuned, 1}, repetitions,
                            epilogue_class)
          .front();
  result.speedup =
      result.heuristic_seconds > 0.0 && result.tuned_seconds > 0.0
          ? result.heuristic_seconds / result.tuned_seconds
          : 0.0;
  return result;
}

std::size_t tune_corpus(std::span<const core::GemmShape> shapes,
                        gpu::Precision precision, TuningDb& db,
                        const TuneOptions& options) {
  const std::string epilogue_class =
      epilogue::canonical_class_key(options.epilogue_class);
  std::size_t tuned = 0;
  for (const core::GemmShape& shape : shapes) {
    const ShapeKey key{shape, precision, epilogue_class};
    if (db.lookup(key)) continue;
    const TuneReport report = tune_shape(shape, precision, options);
    db.update(key, report.best);
    ++tuned;
  }
  return tuned;
}

}  // namespace streamk::tuner
