#pragma once

// Persistent tuning database: shape -> measured-best kernel configuration.
//
// The paper's evaluation pits one analytically-planned Stream-K kernel
// against *tuned* ensembles; production GEMM stacks (MIOpen's PerfDb,
// composable_kernel's offline-searched instance tables) settle the same
// question empirically by persisting per-shape winners across runs.  A
// TuningDb is our equivalent: a thread-safe map from (GEMM shape,
// precision) to the TunedConfig that measured fastest, with versioned
// on-disk persistence so tuning survives process restarts and tuning
// artifacts from different hosts/CI runs compose.
//
// Merge semantics: every insertion path (update(), merge(), load()) keeps
// the record with the *smaller measured seconds* per key, so combining
// databases in any order converges to the element-wise best.  save()
// writes a uniquely named temp file and renames it, so readers never
// observe a torn snapshot; merge_save() additionally serializes concurrent
// contributors behind an advisory file lock so no writer's records are
// lost to the load/save window.
//
// Caveat: "smaller seconds wins" presumes one time base.  Records measured
// on different hosts (or by the simulator-backed EmpiricalLibrary, whose
// seconds are A100 estimates) are not commensurable; keep one database per
// measurement domain.  As a belt-and-braces guard, runtime dispatch caps a
// record's worker count at the consuming host's util::default_workers()
// (see cpu::apply_tuned_dispatch), so a foreign db can mis-rank schedules
// but cannot oversubscribe the machine.
//
// On-disk format (version tagged, CSV payload):
//
//   # streamk-tuning-db v4
//   m,n,k,precision,epilogue,group,kind,block_m,block_n,block_k,grid,split,workers,panel_cache,seconds,gflops
//   4096,4096,128,fp64,bias_col+relu,0,stream-k,48,48,16,8,1,0,on,0.0123,273.5
//
// The `epilogue` column is the canonical epilogue class key
// (epilogue::class_key; empty for an unfused GEMM): a fused epilogue
// changes a schedule's store cost, so winners are only valid within their
// epilogue class.  The `group` column (v4) is the grouped-GEMM shape-
// multiset digest (group_digest; 0 for a plain GEMM): a grouped schedule
// balances a different tile space than the plain GEMM of the same
// aggregate shape, so their winners must never be served to each other.
// The `panel_cache` column (v3) records the measured verdict on the shared
// packed-panel cache (cpu/panel_cache.hpp) as one of `auto` / `on` /
// `off`.  Loaders reject files whose version tag they do not understand
// instead of guessing at column meanings -- except the three legacy
// layouts, which migrate on load: v1 (pre-epilogue) assigns every record
// the unfused class, v1/v2 (pre-panel-cache) the `auto` panel-cache
// verdict, and v1-v3 (pre-group) the plain digest 0.

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/decomposition.hpp"
#include "core/gemm_shape.hpp"
#include "gpu/block_shape.hpp"
#include "gpu/precision.hpp"

namespace streamk::tuner {

/// A complete dispatch decision: everything the runtime needs to turn a
/// GEMM request into a concrete compiled plan without consulting the
/// heuristics or the analytical planner.
struct TunedConfig {
  core::DecompositionKind kind = core::DecompositionKind::kDataParallel;
  gpu::BlockShape block;
  std::int64_t grid = 0;    ///< Stream-K grid (kStreamKBasic; 0 = workers)
  std::int64_t split = 1;   ///< fixed-split factor (kFixedSplit)
  std::size_t workers = 0;  ///< worker count (0 = util::default_workers())
  /// Measured shared-panel-cache verdict: -1 = no verdict (dispatch keeps
  /// kAuto), 0 = forced off, 1 = forced on.  An int rather than the
  /// executor enum so the db layer stays decoupled from cpu headers.
  int panel_cache = -1;

  friend bool operator==(const TunedConfig&, const TunedConfig&) = default;

  std::string to_string() const;
};

/// Resolves a TunedConfig into the DecompositionSpec it denotes for a
/// machine exposing `sm_count` concurrency slots.
core::DecompositionSpec to_spec(const TunedConfig& config,
                                std::int64_t sm_count);

/// Database key: the problem identity a measurement generalizes over --
/// shape, precision, and the epilogue *class* (the canonical op-chain
/// fingerprint from epilogue::class_key; "" for unfused).  A fused chain
/// changes the store-side cost every candidate pays, so a winner measured
/// for one class must never be served to another.
struct ShapeKey {
  core::GemmShape shape;
  gpu::Precision precision = gpu::Precision::kFp64;
  std::string epilogue;
  /// Grouped-GEMM shape-multiset digest (group_digest); 0 for plain GEMMs.
  /// Grouped keys set `shape` to the aggregate group_key_shape so the
  /// tuner's search space and reports stay meaningful, but the digest is
  /// what keeps a grouped winner from being served to the plain GEMM of
  /// the same aggregate shape (and vice versa).
  std::uint64_t group = 0;

  friend bool operator==(const ShapeKey&, const ShapeKey&) = default;
};

/// Order-insensitive digest of a grouped GEMM's shape multiset: the shapes
/// are sorted, then hashed.  Never returns 0 (the plain-GEMM sentinel).
/// Deterministic across processes, so CLI-tuned grouped records match
/// runtime dispatch keys.
std::uint64_t group_digest(std::span<const core::GemmShape> shapes);

/// The aggregate shape a grouped key files under: element-wise sums of the
/// group's m/n/k.  Purely cosmetic-plus-search-space identity -- the
/// digest carries the real key -- but deterministic and order-insensitive
/// to match group_digest.
core::GemmShape group_key_shape(std::span<const core::GemmShape> shapes);

struct ShapeKeyHash {
  std::size_t operator()(const ShapeKey& key) const;
};

/// One measured winner.
struct TuningRecord {
  TunedConfig config;
  double seconds = 0.0;  ///< best-of-reps measured execution time
  double gflops = 0.0;   ///< useful GFLOP/s at that time

  friend bool operator==(const TuningRecord&, const TuningRecord&) = default;
};

class TuningDb {
 public:
  /// Version tag written as the first line of every saved file.  v4 added
  /// the grouped-GEMM digest column, v3 the panel_cache verdict column,
  /// v2 the epilogue-class key column; all older layouts are still
  /// loadable (v1 records migrate to the unfused class, v1/v2 records to
  /// the `auto` panel-cache verdict, v1-v3 records to the plain digest 0).
  static constexpr int kFormatVersion = 4;
  static constexpr int kFormatVersionV3 = 3;
  static constexpr int kFormatVersionV2 = 2;
  static constexpr int kLegacyFormatVersion = 1;

  TuningDb() = default;

  // Movable would race with the internal mutex; the db is a shared sink.
  TuningDb(const TuningDb&) = delete;
  TuningDb& operator=(const TuningDb&) = delete;

  /// The stored record for `key`, if any.  Lookup is the runtime dispatch
  /// hot path: one hash probe under a *shared* lock (concurrent submitters
  /// do not serialize against each other), no allocation.
  std::optional<TuningRecord> lookup(const ShapeKey& key) const;

  /// Keep-faster insertion: stores `record` unless an existing record for
  /// `key` has smaller-or-equal seconds.  Returns true when stored.  The
  /// key's epilogue class is canonicalized (parse + reformat; throws
  /// util::CheckError on an unparseable class) so stored keys always match
  /// what runtime dispatch computes from a caller's chain.
  bool update(const ShapeKey& key, const TuningRecord& record);

  /// Keep-faster union with `other`; returns the number of keys updated.
  std::size_t merge(const TuningDb& other);

  /// Parses a saved database and merges it (keep-faster).  Returns the
  /// number of records parsed.  Throws util::CheckError on a missing file,
  /// unrecognized version tag, or malformed row.  v1 files (no epilogue
  /// column) load with every record assigned the unfused class.
  std::size_t load(const std::string& path);

  /// Writes a consistent snapshot: temp file in the same directory, then
  /// std::rename over `path`, so concurrent readers see either the old or
  /// the new complete file.  Rows are sorted (deterministic artifacts).
  /// Last-writer-wins at file granularity -- concurrent *writers* should
  /// use merge_save().
  void save(const std::string& path) const;

  /// The serialized cross-process "contribute" operation: holds an
  /// exclusive advisory lock on `path + ".lock"` while merging whatever is
  /// currently on disk into this db and saving the union, so concurrent
  /// contributors never lose each other's records (plain load-then-save
  /// has a read-modify-write window).  Returns the records read from disk.
  std::size_t merge_save(const std::string& path);

  /// Deterministically ordered copy of the contents (sorted by key).
  std::vector<std::pair<ShapeKey, TuningRecord>> snapshot() const;

  std::size_t size() const;
  void clear();

  /// Lock-free emptiness probe (relaxed atomic maintained by the write
  /// paths).  Lets dispatch skip the shared-lock probe entirely while no
  /// tuning data exists -- the common case for untuned processes.
  bool empty_fast() const {
    return approx_size_.load(std::memory_order_relaxed) == 0;
  }

  /// Dispatch telemetry: lookup() outcomes since construction.
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  /// Readers (lookup) take shared ownership, writers exclusive.
  mutable std::shared_mutex mutex_;
  std::unordered_map<ShapeKey, TuningRecord, ShapeKeyHash> records_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::size_t> approx_size_{0};
};

}  // namespace streamk::tuner
