#include "tuner/dispatch.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <unordered_set>

#include "obs/obs.hpp"
#include "runtime/worker_pool.hpp"
#include "util/log.hpp"

namespace streamk::tuner {

namespace {

std::atomic<FindMode> g_find_mode{FindMode::kOff};

/// Background-find bookkeeping.  Immortal for the same reason as the
/// global db: a queued find job may still be draining during static
/// destruction.
struct FindState {
  std::mutex mutex;
  std::condition_variable idle;
  std::unordered_set<ShapeKey, ShapeKeyHash> in_flight;
  /// Keys whose find job threw: never re-enqueued (a repeat would fail the
  /// same way and each miss would otherwise spawn a fresh doomed job).
  std::unordered_set<ShapeKey, ShapeKeyHash> failed;
  TuneOptions options;
};

FindState& find_state() {
  static FindState* state = new FindState();
  return *state;
}

void run_find_job(const ShapeKey& key, TuneOptions options) {
  bool succeeded = false;
  try {
    STREAMK_OBS_SPAN(kTunerFind, key.shape.m, key.shape.n * key.shape.k);
    options.epilogue_class = key.epilogue;
    const TuneReport report = tune_shape(key.shape, key.precision, options);
    global_tuning_db().update(key, report.best);
    succeeded = true;
  } catch (const std::exception& e) {
    // A failed find job must not unwind into the pool's worker loop; the
    // shape simply stays heuristic-dispatched.
    util::log_warn("background find for " + key.shape.to_string() +
                   " failed: " + e.what());
  } catch (...) {
    util::log_warn("background find for " + key.shape.to_string() +
                   " failed");
  }
  if (succeeded) {
    STREAMK_OBS_COUNT("tuner.finds");
  } else {
    STREAMK_OBS_COUNT("tuner.find_failures");
  }
  FindState& state = find_state();
  std::lock_guard lock(state.mutex);
  state.in_flight.erase(key);
  if (!succeeded) state.failed.insert(key);
  state.idle.notify_all();
}

void enqueue_find(const ShapeKey& key) {
  FindState& state = find_state();
  TuneOptions options;
  {
    std::lock_guard lock(state.mutex);
    if (state.failed.contains(key)) return;           // permanently doomed
    if (!state.in_flight.insert(key).second) return;  // already pending
    // Snapshot at enqueue time: set_find_options is documented to affect
    // jobs enqueued after the call, not ones already queued.
    options = state.options;
  }
  runtime::global_pool().submit(
      [key, options] { run_find_job(key, options); });
}

}  // namespace

void set_find_mode(FindMode mode) {
  g_find_mode.store(mode, std::memory_order_relaxed);
}

FindMode find_mode() { return g_find_mode.load(std::memory_order_relaxed); }

void set_find_options(const TuneOptions& options) {
  std::lock_guard lock(find_state().mutex);
  find_state().options = options;
}

TuneOptions find_options() {
  std::lock_guard lock(find_state().mutex);
  return find_state().options;
}

TuningDb& global_tuning_db() {
  // Immortal (reachable via the static pointer, so not a leak); see
  // runtime::plan_cache() for the static-destruction rationale.
  static TuningDb* db = [] {
    auto* created = new TuningDb();
    if (const char* path = std::getenv("STREAMK_TUNING_DB")) {
      try {
        created->load(path);
      } catch (const std::exception& e) {
        util::log_warn(std::string("STREAMK_TUNING_DB not loaded: ") +
                       e.what());
      }
    }
    return created;
  }();
  return *db;
}

std::optional<TunedConfig> tuned_dispatch(const core::GemmShape& shape,
                                          gpu::Precision precision,
                                          const std::string& epilogue_class,
                                          DispatchFind find,
                                          std::uint64_t group) {
  // A grouped key never background-finds: tune_shape would measure a plain
  // GEMM of the aggregate shape, not the grouped schedule the key denotes.
  const bool may_find = group == 0 && find == DispatchFind::kAllowed &&
                        find_mode() == FindMode::kBackground;
  // Fast path: nothing to hit and nothing to schedule -- stay off the
  // shared lock entirely (the common case for untuned processes).
  if (!may_find && global_tuning_db().empty_fast()) return std::nullopt;

  const ShapeKey key{shape, precision, epilogue_class, group};
  if (const auto record = global_tuning_db().lookup(key)) {
    return record->config;
  }
  if (may_find) enqueue_find(key);
  return std::nullopt;
}

std::optional<TunedConfig> tuned_dispatch(
    const core::GemmShape& shape, gpu::Precision precision,
    std::span<const epilogue::EpilogueOp> epilogue_ops, DispatchFind find,
    std::uint64_t group) {
  const bool may_find = group == 0 && find == DispatchFind::kAllowed &&
                        find_mode() == FindMode::kBackground;
  // Bail before fingerprinting the chain: the common untuned process pays
  // one relaxed atomic load here, never a string build.
  if (!may_find && global_tuning_db().empty_fast()) return std::nullopt;
  return tuned_dispatch(shape, precision, epilogue::class_key(epilogue_ops),
                        find, group);
}

std::size_t find_jobs_in_flight() {
  FindState& state = find_state();
  std::lock_guard lock(state.mutex);
  return state.in_flight.size();
}

void wait_for_find_jobs() {
  FindState& state = find_state();
  std::unique_lock lock(state.mutex);
  state.idle.wait(lock, [&state] { return state.in_flight.empty(); });
}

}  // namespace streamk::tuner
