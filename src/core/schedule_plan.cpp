#include "core/schedule_plan.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "analysis/analyze.hpp"
#include "core/tile_order.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace streamk::core {

namespace {

/// Cache-aware issue-window size for `mapping`: the largest power-of-two
/// count of consecutively issued tiles whose average distinct-panel
/// footprint (one panel_kc-deep chunk per touched panel, element-counted
/// with panel_touch_cost) still fits PanelCacheGeometry's shared-cache
/// budget.  Windows are monotone -- doubling the window can only merge
/// panel touches -- so the first over-budget width ends the sweep.
std::int64_t choose_tile_window(const WorkMapping& mapping,
                                std::int64_t panel_kc) {
  const std::int64_t tiles = mapping.tiles();
  if (tiles <= 1 || panel_kc <= 0) return 1;
  const gpu::BlockShape blk = mapping.block();
  const std::int64_t panel_elems = std::max(blk.m, blk.n) * panel_kc;
  if (panel_elems <= 0) return 1;

  std::int64_t best = 1;
  for (std::int64_t w = 2; w <= tiles; w *= 2) {
    const std::int64_t cost = windowed_panel_cost(
        mapping.tile_order(), mapping.tiles_m(), mapping.tiles_n(), w);
    const std::int64_t windows = ceil_div(tiles, w);
    const std::int64_t footprint = (cost / windows) * panel_elems;
    if (footprint > PanelCacheGeometry::kWindowElementBudget) break;
    best = w;
  }
  return best;
}

}  // namespace

/// Keyed on the op chain itself -- the compiled plan depends only on
/// structure, never on bindings.  A linear scan over the few distinct
/// chains ever attached to one schedule beats hashing: the steady-state
/// probe is a shared-lock acquire plus a short vector compare, with no
/// string construction or allocation.
struct SchedulePlan::EpilogueMemo {
  /// Memoization stops beyond this many distinct chains: a caller varying
  /// op immediates per request (e.g. a dynamic clamp bound) would other-
  /// wise grow an immortal plan's memo and its linear probe without bound.
  /// Past the cap such chains just recompile per call, which is cheap.
  static constexpr std::size_t kMaxEntries = 64;

  std::shared_mutex mutex;
  std::vector<std::pair<std::vector<epilogue::EpilogueOp>,
                        epilogue::EpiloguePlanPtr>>
      entries;

  epilogue::EpiloguePlanPtr find(std::span<const epilogue::EpilogueOp> ops) {
    for (const auto& [chain, plan] : entries) {
      if (chain.size() == ops.size() &&
          std::equal(chain.begin(), chain.end(), ops.begin())) {
        return plan;
      }
    }
    return nullptr;
  }
};

SchedulePlan::SchedulePlan(const Decomposition& decomposition)
    : kind_(decomposition.kind()),
      name_(decomposition.name()),
      mapping_(decomposition.mapping()),
      block_(decomposition.mapping().block()),
      grid_(decomposition.grid_size()),
      tiles_(decomposition.mapping().tiles()),
      epilogue_memo_(std::make_shared<EpilogueMemo>()) {
  ingest_ctas([&](std::int64_t cta) { return decomposition.cta_work(cta); });
  finalize_pack_chunking();

  // Shared panel-cache slot grid: one slot per (panel, k-chunk) at the pack
  // chunking above, chunks anchored at absolute k = 0.  Sharing is worth
  // arming only when at least two tiles can reuse a panel.
  panel_geometry_.row_panels = mapping_.tiles_m();
  panel_geometry_.col_panels = mapping_.tiles_n();
  panel_geometry_.panel_kc = pack_geometry_.panel_kc;
  panel_geometry_.chunks =
      ceil_div(mapping_.iters_per_tile(), pack_geometry_.chunk_iters);
  panel_geometry_.shareable = tiles_ >= 2;
  panel_geometry_.tile_window =
      choose_tile_window(mapping_, pack_geometry_.panel_kc);

  build_contributor_index();
}

SchedulePlan::SchedulePlan(const GroupedMapping& grouped,
                           const DecompositionSpec& spec)
    : SchedulePlan(grouped, spec, grouped_grid_size(grouped, spec),
                   [&](std::int64_t cta) {
                     return grouped_cta_work(grouped, spec, cta);
                   }) {}

SchedulePlan::SchedulePlan(const GroupedMapping& grouped,
                           const DecompositionSpec& spec, std::int64_t grid,
                           const std::function<CtaWork(std::int64_t)>& work_of)
    : kind_(spec.kind),
      name_(grouped_plan_name(grouped, spec)),
      // Placeholder quantization of problem 0 so the member stays default-
      // constructible-free; mapping() refuses to hand it out.
      mapping_(grouped.problem(0).shape, grouped.block()),
      block_(grouped.block()),
      grid_(grid),
      tiles_(grouped.tiles()),
      grouped_(std::make_shared<const GroupedMapping>(grouped)),
      epilogue_memo_(std::make_shared<EpilogueMemo>()) {
  ingest_ctas(work_of);
  finalize_pack_chunking();

  // Group-wide panel-key space: problem p's A row-panel r lives at key
  // row_panel_offset(p) + r (and B column-panels likewise), so panels of
  // different problems -- which read different operand matrices -- never
  // share a cache slot.  The chunk axis is sized for the deepest problem;
  // shallower problems simply leave their tail chunk slots unused.
  panel_geometry_.row_panels = grouped.row_panels();
  panel_geometry_.col_panels = grouped.col_panels();
  panel_geometry_.panel_kc = pack_geometry_.panel_kc;
  std::int64_t chunks = 1;
  bool shareable = false;
  for (std::size_t p = 0; p < grouped.problems(); ++p) {
    const GroupedProblem& prob = grouped.problem(p);
    chunks = std::max(
        chunks, ceil_div(prob.iters_per_tile, pack_geometry_.chunk_iters));
    shareable = shareable || prob.tiles >= 2;
  }
  panel_geometry_.chunks = chunks;
  panel_geometry_.shareable = shareable;
  // Consecutive global tiles may belong to different problems, so the
  // cache-aware window model (which assumes one tile grid) does not apply.
  panel_geometry_.tile_window = 1;

  build_contributor_index();
}

void SchedulePlan::ingest_ctas(
    const std::function<CtaWork(std::int64_t)>& work_of) {
  util::check(grid_ >= 1, "empty grid");

  tile_owner_.assign(static_cast<std::size_t>(tiles_), -1);
  spill_slot_of_cta_.assign(static_cast<std::size_t>(grid_), -1);
  contributor_offsets_.assign(static_cast<std::size_t>(tiles_) + 1, 0);
  // contributor_offsets_[t + 1] holds tile t's raw count until
  // build_contributor_index() prefix-sums it.
  std::vector<std::int64_t>& contributor_count = contributor_offsets_;

  cta_offsets_.reserve(static_cast<std::size_t>(grid_) + 1);
  cta_offsets_.push_back(0);
  for (std::int64_t cta = 0; cta < grid_; ++cta) {
    const CtaWork work = work_of(cta);
    for (const TileSegment& seg : work.segments) {
      // The one structural property compilation itself relies on for memory
      // safety; everything else is validate_plan()'s job.
      util::check(seg.tile_idx >= 0 && seg.tile_idx < tiles_,
                  "segment tile out of range");
      const auto tile = static_cast<std::size_t>(seg.tile_idx);
      if (seg.starts_tile()) {
        if (tile_owner_[tile] == -1) {
          tile_owner_[tile] = cta;
        } else {
          duplicate_owner_ = true;
        }
      } else {
        ++contributor_count[tile + 1];
        ++total_spills_;
        if (spill_slot_of_cta_[static_cast<std::size_t>(cta)] == -1) {
          spill_slot_of_cta_[static_cast<std::size_t>(cta)] = spill_slots_++;
        } else {
          double_spill_ = true;
        }
      }
      total_iters_ += seg.iters();
      pack_geometry_.max_segment_iters =
          std::max(pack_geometry_.max_segment_iters, seg.iters());
      segments_.push_back(seg);
    }
    if (!work.segments.empty()) ++nonempty_ctas_;
    cta_offsets_.push_back(static_cast<std::int64_t>(segments_.size()));
  }
}

void SchedulePlan::finalize_pack_chunking() {
  // Packed-panel chunking for the CPU microkernel path: as many MAC-loop
  // iterations per chunk as fit the target depth, never more than the
  // longest segment actually carries.
  const std::int64_t blk_k = block_.k;
  std::int64_t chunk_iters =
      std::max<std::int64_t>(1, PackedPanelGeometry::kTargetPanelDepth / blk_k);
  if (pack_geometry_.max_segment_iters > 0) {
    chunk_iters = std::min(chunk_iters, pack_geometry_.max_segment_iters);
  }
  pack_geometry_.chunk_iters = chunk_iters;
  pack_geometry_.panel_kc = chunk_iters * blk_k;
}

void SchedulePlan::build_contributor_index() {
  // ingest_ctas left tile t's contributor count at offsets[t + 1];
  // prefix-sum in place.
  for (std::int64_t tile = 0; tile < tiles_; ++tile) {
    const auto t = static_cast<std::size_t>(tile);
    const std::int64_t count = contributor_offsets_[t + 1];
    contributor_offsets_[t + 1] += contributor_offsets_[t];
    if (count > 0) ++split_tiles_;
    max_peers_ = std::max(max_peers_, 1 + count);
    if (tile_owner_[t] == -1) missing_owner_ = true;
  }

  // Second sweep over the arena fills the pool; CTA-major order makes each
  // tile's contributors ascending by construction.
  contributor_pool_.resize(static_cast<std::size_t>(
      contributor_offsets_[static_cast<std::size_t>(tiles_)]));
  std::vector<std::int64_t> cursor(contributor_offsets_.begin(),
                                   contributor_offsets_.end() - 1);
  for (std::int64_t cta = 0; cta < grid_; ++cta) {
    for (const TileSegment& seg : cta_segments(cta)) {
      if (!seg.starts_tile()) {
        const auto tile = static_cast<std::size_t>(seg.tile_idx);
        contributor_pool_[static_cast<std::size_t>(cursor[tile]++)] = cta;
      }
    }
  }
}

const WorkMapping& SchedulePlan::mapping() const {
  util::check(grouped_ == nullptr,
              "grouped plan has no single-problem WorkMapping (use group())");
  return mapping_;
}

std::span<const TileSegment> SchedulePlan::cta_segments(
    std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_, "CTA index out of range");
  const auto begin = static_cast<std::size_t>(
      cta_offsets_[static_cast<std::size_t>(cta)]);
  const auto end = static_cast<std::size_t>(
      cta_offsets_[static_cast<std::size_t>(cta) + 1]);
  return std::span<const TileSegment>(segments_.data() + begin, end - begin);
}

std::int64_t SchedulePlan::tile_owner(std::int64_t tile) const {
  util::check(tile >= 0 && tile < tiles(), "tile index out of range");
  return tile_owner_[static_cast<std::size_t>(tile)];
}

std::span<const std::int64_t> SchedulePlan::tile_contributors(
    std::int64_t tile) const {
  util::check(tile >= 0 && tile < tiles(), "tile index out of range");
  const auto begin = static_cast<std::size_t>(
      contributor_offsets_[static_cast<std::size_t>(tile)]);
  const auto end = static_cast<std::size_t>(
      contributor_offsets_[static_cast<std::size_t>(tile) + 1]);
  return std::span<const std::int64_t>(contributor_pool_.data() + begin,
                                       end - begin);
}

std::int64_t SchedulePlan::spill_slot(std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_, "CTA index out of range");
  return spill_slot_of_cta_[static_cast<std::size_t>(cta)];
}

void SchedulePlan::check_runnable() const {
  util::check(!missing_owner_, "tile has no owning CTA");
  util::check(!duplicate_owner_, "tile has two owning CTAs");
  util::check(!double_spill_, "CTA spills twice");
}

epilogue::EpiloguePlanPtr SchedulePlan::epilogue_plan(
    const epilogue::EpilogueSpec& spec) const {
  if (spec.empty()) return epilogue::identity_plan();
  {
    std::shared_lock lock(epilogue_memo_->mutex);
    if (auto plan = epilogue_memo_->find(spec.ops)) return plan;
    // At cap there is nothing to insert: recompile without serializing
    // concurrent submitters on the exclusive lock.
    if (epilogue_memo_->entries.size() >= EpilogueMemo::kMaxEntries) {
      lock.unlock();
      return epilogue::compile(spec.ops);
    }
  }
  std::unique_lock lock(epilogue_memo_->mutex);
  if (auto plan = epilogue_memo_->find(spec.ops)) return plan;
  epilogue::EpiloguePlanPtr compiled = epilogue::compile(spec.ops);
  if (epilogue_memo_->entries.size() < EpilogueMemo::kMaxEntries) {
    epilogue_memo_->entries.emplace_back(
        std::vector<epilogue::EpilogueOp>(spec.ops.begin(), spec.ops.end()),
        compiled);
  }
  return compiled;
}

SchedulePlan compile_plan(const Decomposition& decomposition) {
  return SchedulePlan(decomposition);
}

PlanKey make_plan_key(const WorkMapping& mapping, const DecompositionSpec& spec,
                      std::int64_t device_sms) {
  PlanKey key;
  key.shape = mapping.shape();
  key.block = mapping.block();
  key.order = mapping.tile_order();
  key.kind = spec.kind;
  key.split = spec.split;
  key.sm_count = spec.sm_count;
  key.device_sms = device_sms;
  // make_decomposition resolves a non-positive Stream-K grid to the SM
  // count; normalize here so both spellings share a cache entry.
  key.grid = spec.kind == DecompositionKind::kStreamKBasic && spec.grid <= 0
                 ? spec.sm_count
                 : spec.grid;
  return key;
}

PlanKey make_plan_key(const WorkMapping& mapping, const DecompositionSpec& spec,
                      const gpu::GpuSpec& gpu) {
  return make_plan_key(mapping, spec, gpu.sm_count);
}

PlanKey make_grouped_plan_key(const GroupedMapping& grouped,
                              const DecompositionSpec& spec,
                              std::int64_t device_sms) {
  PlanKey key;
  // shape stays the zero GemmShape: the group vector is the shape identity,
  // and the zero shape is invalid as a plain key so the two never alias.
  key.block = grouped.block();
  key.order = TileOrder::kRowMajor;
  key.kind = spec.kind;
  key.split = spec.split;
  key.sm_count = spec.sm_count;
  key.device_sms = device_sms;
  key.grid = spec.kind == DecompositionKind::kStreamKBasic && spec.grid <= 0
                 ? spec.sm_count
                 : spec.grid;
  key.group = grouped.shapes();
  return key;
}

std::size_t PlanKeyHash::operator()(const PlanKey& key) const {
  std::size_t seed = 0;
  auto mix = [&seed](std::uint64_t v) {
    // splitmix64-style avalanche, boost::hash_combine composition.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    seed ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
  };
  mix(static_cast<std::uint64_t>(key.shape.m));
  mix(static_cast<std::uint64_t>(key.shape.n));
  mix(static_cast<std::uint64_t>(key.shape.k));
  mix(static_cast<std::uint64_t>(key.block.m));
  mix(static_cast<std::uint64_t>(key.block.n));
  mix(static_cast<std::uint64_t>(key.block.k));
  mix(static_cast<std::uint64_t>(key.order));
  mix(static_cast<std::uint64_t>(key.kind));
  mix(static_cast<std::uint64_t>(key.grid));
  mix(static_cast<std::uint64_t>(key.split));
  mix(static_cast<std::uint64_t>(key.sm_count));
  mix(static_cast<std::uint64_t>(key.device_sms));
  mix(static_cast<std::uint64_t>(key.group.size()));
  for (const GemmShape& shape : key.group) {
    mix(static_cast<std::uint64_t>(shape.m));
    mix(static_cast<std::uint64_t>(shape.n));
    mix(static_cast<std::uint64_t>(shape.k));
  }
  return seed;
}

PlanCache::PlanCache(std::size_t max_plans)
    : max_plans_(max_plans) {
  util::check(max_plans_ >= 1, "PlanCache needs capacity for one plan");
}

PlanCache::PlanPtr PlanCache::hit_or_null(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    STREAMK_OBS_COUNT("plan_cache.misses");
    return nullptr;
  }
  ++hits_;
  STREAMK_OBS_COUNT("plan_cache.hits");
  return it->second;
}

PlanCache::PlanPtr PlanCache::insert_or_adopt(const PlanKey& key,
                                              PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = plans_.emplace(key, std::move(plan));
  PlanPtr result = it->second;
  if (inserted) {
    ++misses_;
    insertion_order_.push_back(key);
    // FIFO eviction; the freshly inserted key sits at the back, so it is
    // never the one evicted (capacity >= 1).
    while (plans_.size() > max_plans_) {
      plans_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      ++evictions_;
      STREAMK_OBS_COUNT("plan_cache.evictions");
    }
  } else {
    ++hits_;  // lost a compile race; adopt the winner for pointer identity
  }
  return result;
}

PlanCache::PlanPtr PlanCache::obtain(const PlanKey& key,
                                     const WorkMapping& mapping,
                                     const DecompositionSpec& spec) {
  if (PlanPtr hit = hit_or_null(key)) return hit;

  STREAMK_OBS_SPAN(kPlanCompile, key.shape.m * key.shape.n, key.shape.k);
  // Compile outside the lock: schedule compilation is the expensive part,
  // and concurrent misses of *different* keys must not serialize.
  const auto decomposition = make_decomposition(spec, mapping);
  auto plan = std::make_shared<const SchedulePlan>(*decomposition);
  // Static concurrency sweep of every distinct plan before anything can run
  // it (no-op unless armed; see analysis/analyze.hpp).
  analysis::maybe_check_on_insert(*plan);
  return insert_or_adopt(key, std::move(plan));
}

PlanCache::PlanPtr PlanCache::obtain(const PlanKey& key,
                                     const GroupedMapping& grouped,
                                     const DecompositionSpec& spec) {
  if (PlanPtr hit = hit_or_null(key)) return hit;
  STREAMK_OBS_SPAN(kPlanCompile, key.shape.m * key.shape.n, key.shape.k);
  auto plan = std::make_shared<const SchedulePlan>(grouped, spec);
  analysis::maybe_check_on_insert(*plan);
  return insert_or_adopt(key, std::move(plan));
}

PlanCache::PlanPtr PlanCache::lookup(const PlanKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(key);
  return it != plans_.end() ? it->second : nullptr;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  insertion_order_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace streamk::core
