#pragma once

// Structural validation of a decomposition.
//
// Invariants checked (violations throw util::CheckError):
//   1. Every (tile, MAC-loop iteration) pair is covered by exactly one
//      segment of exactly one CTA -- the exactly-once property that makes
//      the fixup reduction produce the mathematically complete sum.
//   2. Segment ranges are well-formed and within the tile's iteration count,
//      and the `last` flag is consistent with the mapping.
//   3. Every tile has exactly one owner (a segment with iter_begin == 0) and
//      exactly one closer (a segment with iter_end == iters_per_tile).
//   4. No CTA touches the same tile twice, and each CTA has at most one
//      non-starting segment -- the single-partials-slot invariant that lets
//      both Algorithm 5 and our executor index spill storage by CTA id.
//
// Used by tests (property sweeps over shapes x decompositions) and available
// to callers who construct custom schedules.

#include "core/decomposition.hpp"

namespace streamk::core {

class SchedulePlan;

/// Full structural report of a decomposition, for diagnostics.
struct CoverageReport {
  std::int64_t grid = 0;
  std::int64_t nonempty_ctas = 0;
  std::int64_t total_segments = 0;
  std::int64_t covered_iters = 0;
  std::int64_t min_cta_iters = 0;
  std::int64_t max_cta_iters = 0;
};

/// Validates all invariants above over a compiled plan; returns the report
/// on success.
CoverageReport validate_plan(const SchedulePlan& plan);

/// Convenience overload: compiles `decomposition` and validates the plan.
CoverageReport validate_decomposition(const Decomposition& decomposition);

}  // namespace streamk::core
