#pragma once

// Multi-problem (grouped / ragged-batch) work mapping.
//
// cpu/batched.hpp dissolves the batch boundary for *uniform* batches by
// stacking identical tile grids along a padded virtual m axis.  Grouped GEMM
// removes the remaining assumption: every problem brings its own (m, n, k)
// -- hence its own tile count AND its own iterations-per-tile -- and the
// per-problem linearized iteration spaces are concatenated into one global
// domain:
//
//     global tile  = problem.tile_offset + (tm * tiles_n(p) + tn)
//     global iter  = problem.iter_offset + local_tile * ipt(p) + local_k
//
// Any decomposition over that domain balances across problem boundaries the
// same way Stream-K balances across tile boundaries: a CTA's contiguous
// iteration range may open on the tail of one problem's tile and close on
// the head of the next problem's, and the ordinary fixup protocol (spill /
// signal / owner-reduce) handles the seam because segments never span tiles.
// Nothing downstream of segment generation -- SchedulePlan compilation,
// fixup indexing, spill accounting, the fused-epilogue once-per-element
// invariant -- knows groups exist.
//
// The uniform-iters WorkMapping arithmetic (iter / ipt) does not survive
// mixed shapes, so GroupedMapping carries per-problem prefix sums and
// resolves tiles/iterations by binary search over them.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/decomposition.hpp"
#include "core/stream_k.hpp"

namespace streamk::core {

/// One problem of a grouped GEMM: its quantization plus the prefix offsets
/// placing it in the concatenated tile / iteration / panel-key spaces.
struct GroupedProblem {
  GemmShape shape;
  std::int64_t tiles_m = 0;
  std::int64_t tiles_n = 0;
  std::int64_t tiles = 0;
  std::int64_t iters_per_tile = 0;
  std::int64_t tile_offset = 0;       ///< first global tile index
  std::int64_t iter_offset = 0;       ///< first global iteration
  std::int64_t row_panel_offset = 0;  ///< first A row-panel cache key
  std::int64_t col_panel_offset = 0;  ///< first B column-panel cache key
};

/// A global tile resolved to its owning problem and problem-local block
/// coordinates.
struct GroupedTileRef {
  std::size_t problem = 0;
  std::int64_t tm = 0;
  std::int64_t tn = 0;
};

class GroupedMapping {
 public:
  /// Quantizes every shape with one shared blocking factor and concatenates
  /// the per-problem spaces in span order.  Shapes may be ragged against the
  /// block and may set k == 0 (a pure beta/epilogue update still owns one
  /// zero-extent iteration per tile so every schedule covers its store).
  GroupedMapping(std::span<const GemmShape> shapes, gpu::BlockShape block);

  const gpu::BlockShape& block() const { return block_; }
  std::size_t problems() const { return problems_.size(); }
  const GroupedProblem& problem(std::size_t p) const { return problems_[p]; }

  std::int64_t tiles() const { return tiles_; }
  std::int64_t total_iters() const { return total_iters_; }
  /// Concatenated panel-key space extents (problem-qualified, since two
  /// problems' panels at equal local coordinates read different operands).
  std::int64_t row_panels() const { return row_panels_; }
  std::int64_t col_panels() const { return col_panels_; }
  std::int64_t max_iters_per_tile() const { return max_iters_per_tile_; }
  std::int64_t min_iters_per_tile() const { return min_iters_per_tile_; }

  std::size_t problem_of_tile(std::int64_t tile) const;
  std::size_t problem_of_iter(std::int64_t iter) const;
  GroupedTileRef tile_ref(std::int64_t tile) const;
  std::int64_t iters_per_tile(std::int64_t tile) const;
  std::int64_t tile_iter_begin(std::int64_t tile) const;

  /// Segments covering the global iteration range (the non-uniform-ipt
  /// analogue of core::append_segments): one segment per touched tile,
  /// clipped to the range, flags per the fixup contract.
  void append_segments(IterRange range, std::vector<TileSegment>& out) const;

  /// The shapes in group order (the plan-cache key component).
  std::vector<GemmShape> shapes() const;

  double flops() const;

 private:
  gpu::BlockShape block_;
  std::vector<GroupedProblem> problems_;
  std::int64_t tiles_ = 0;
  std::int64_t total_iters_ = 0;
  std::int64_t row_panels_ = 0;
  std::int64_t col_panels_ = 0;
  std::int64_t max_iters_per_tile_ = 0;
  std::int64_t min_iters_per_tile_ = 0;
};

/// CTAs the spec launches over the grouped domain, mirroring
/// make_decomposition's resolution rules (Stream-K grid defaults to
/// sm_count; hybrids require it).
std::int64_t grouped_grid_size(const GroupedMapping& grouped,
                               const DecompositionSpec& spec);

/// The ordered segment stream of one CTA: the five decomposition kinds
/// generalized to non-uniform iters-per-tile.  Data-parallel issues one
/// whole tile per CTA; fixed-split splits each tile by its *own* iteration
/// count; Stream-K and the hybrids partition the concatenated iteration
/// space, so heavy problems naturally receive more CTAs.
CtaWork grouped_cta_work(const GroupedMapping& grouped,
                         const DecompositionSpec& spec, std::int64_t cta);

/// Human-readable schedule name, e.g. "grouped[32]:stream-k(g=8)".
std::string grouped_plan_name(const GroupedMapping& grouped,
                              const DecompositionSpec& spec);

}  // namespace streamk::core
