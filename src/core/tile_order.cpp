#include "core/tile_order.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <mutex>

#include "util/check.hpp"

namespace streamk::core {

std::string_view order_name(TileOrder order) {
  switch (order) {
    case TileOrder::kRowMajor:
      return "row-major";
    case TileOrder::kMortonZ:
      return "morton-z";
  }
  util::fail("unknown tile order");
}

namespace {

/// Extracts the even bit positions of x into the low 16 bits (inverse of
/// Morton bit interleaving).
std::uint32_t compact_bits(std::uint32_t x) {
  x &= 0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0f0f0f0fu;
  x = (x | (x >> 4)) & 0x00ff00ffu;
  x = (x | (x >> 8)) & 0x0000ffffu;
  return x;
}

}  // namespace

TileOrdering::TileOrdering(TileOrder order, std::int64_t tiles_m,
                           std::int64_t tiles_n)
    : order_(order), tiles_m_(tiles_m), tiles_n_(tiles_n) {
  util::check(tiles_m >= 1 && tiles_n >= 1, "empty tile grid");
  if (order_ != TileOrder::kMortonZ) return;

  const std::int64_t tiles = tiles_m * tiles_n;
  util::check(tiles <= (1ll << 31), "tile grid too large for Morton order");
  auto forward = std::make_shared<std::vector<std::int32_t>>();
  auto inverse = std::make_shared<std::vector<std::int32_t>>(
      static_cast<std::size_t>(tiles), -1);
  forward->reserve(static_cast<std::size_t>(tiles));

  const auto side = std::bit_ceil(
      static_cast<std::uint64_t>(std::max(tiles_m, tiles_n)));
  const std::uint64_t codes = side * side;
  for (std::uint64_t code = 0; code < codes; ++code) {
    // Even bits -> column (n), odd bits -> row (m): consecutive codes sweep
    // 2x2 tile quads first, matching the classic Z-curve.
    const auto tn = static_cast<std::int64_t>(
        compact_bits(static_cast<std::uint32_t>(code)));
    const auto tm = static_cast<std::int64_t>(
        compact_bits(static_cast<std::uint32_t>(code >> 1)));
    if (tm >= tiles_m || tn >= tiles_n) continue;
    const std::int64_t row_major = tm * tiles_n + tn;
    (*inverse)[static_cast<std::size_t>(row_major)] =
        static_cast<std::int32_t>(forward->size());
    forward->push_back(static_cast<std::int32_t>(row_major));
  }
  util::check(static_cast<std::int64_t>(forward->size()) == tiles,
              "Morton enumeration incomplete");
  forward_ = std::move(forward);
  inverse_ = std::move(inverse);
}

std::pair<std::int64_t, std::int64_t> TileOrdering::coord(
    std::int64_t linear) const {
  util::check(linear >= 0 && linear < tiles_m_ * tiles_n_,
              "tile id out of range");
  std::int64_t row_major = linear;
  if (order_ == TileOrder::kMortonZ) {
    row_major = (*forward_)[static_cast<std::size_t>(linear)];
  }
  return {row_major / tiles_n_, row_major % tiles_n_};
}

std::int64_t TileOrdering::linear(std::int64_t tm, std::int64_t tn) const {
  util::check(tm >= 0 && tm < tiles_m_ && tn >= 0 && tn < tiles_n_,
              "tile coordinates out of range");
  const std::int64_t row_major = tm * tiles_n_ + tn;
  if (order_ == TileOrder::kMortonZ) {
    return (*inverse_)[static_cast<std::size_t>(row_major)];
  }
  return row_major;
}

std::int64_t panel_touch_cost(const TileOrdering& ordering,
                              std::int64_t tiles_m, std::int64_t tiles_n,
                              std::int64_t window) {
  util::check(window >= 1, "window must be >= 1");
  const std::int64_t tiles = tiles_m * tiles_n;
  std::vector<char> row_seen(static_cast<std::size_t>(tiles_m), 0);
  std::vector<char> col_seen(static_cast<std::size_t>(tiles_n), 0);

  std::int64_t cost = 0;
  for (std::int64_t begin = 0; begin < tiles; begin += window) {
    std::fill(row_seen.begin(), row_seen.end(), 0);
    std::fill(col_seen.begin(), col_seen.end(), 0);
    const std::int64_t end = std::min(tiles, begin + window);
    for (std::int64_t i = begin; i < end; ++i) {
      const auto [tm, tn] = ordering.coord(i);
      if (!row_seen[static_cast<std::size_t>(tm)]) {
        row_seen[static_cast<std::size_t>(tm)] = 1;
        ++cost;
      }
      if (!col_seen[static_cast<std::size_t>(tn)]) {
        col_seen[static_cast<std::size_t>(tn)] = 1;
        ++cost;
      }
    }
  }
  return cost;
}

std::int64_t windowed_panel_cost(TileOrder order, std::int64_t tiles_m,
                                 std::int64_t tiles_n, std::int64_t window) {
  util::check(window >= 1, "window must be >= 1");
  // Bounded memo: distinct (order, grid, window) tuples a process touches
  // come from its plan population, but a corpus sweep over unbounded shapes
  // must not grow this map without limit -- past the cap, compute uncached.
  static constexpr std::size_t kMaxEntries = 1 << 14;
  using Key = std::array<std::int64_t, 4>;
  static std::mutex mutex;
  static std::map<Key, std::int64_t> memo;

  const Key key{static_cast<std::int64_t>(order), tiles_m, tiles_n, window};
  {
    std::lock_guard lock(mutex);
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;
  }
  // Compute outside the lock: the Morton permutation build and the O(tiles)
  // sweep are the expensive part, and concurrent misses of different keys
  // must not serialize.  A lost race just recomputes the same pure value.
  const TileOrdering ordering(order, tiles_m, tiles_n);
  const std::int64_t cost =
      panel_touch_cost(ordering, tiles_m, tiles_n, window);
  std::lock_guard lock(mutex);
  if (memo.size() < kMaxEntries) memo.emplace(key, cost);
  return cost;
}

}  // namespace streamk::core
