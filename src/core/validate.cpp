#include "core/validate.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/schedule_plan.hpp"
#include "util/check.hpp"

namespace streamk::core {

CoverageReport validate_plan(const SchedulePlan& plan) {
  // Grouped plans have no uniform iters-per-tile; resolve per tile through
  // the group's prefix sums.  Single-problem plans keep the flat constant.
  const GroupedMapping* group = plan.group();
  const std::int64_t flat_ipt =
      group ? 0 : plan.mapping().iters_per_tile();
  const auto ipt_of = [&](std::int64_t tile) {
    return group ? group->iters_per_tile(tile) : flat_ipt;
  };
  const std::int64_t tiles = plan.tiles();
  const std::int64_t total_iters =
      group ? group->total_iters() : plan.mapping().total_iters();

  // Segments grouped per tile as (begin, end) local ranges.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> per_tile(
      static_cast<std::size_t>(tiles));
  std::vector<int> owners(static_cast<std::size_t>(tiles), 0);
  std::vector<int> closers(static_cast<std::size_t>(tiles), 0);

  CoverageReport report;
  report.grid = plan.grid();
  util::check(report.grid >= 1, "empty grid");
  report.min_cta_iters = std::numeric_limits<std::int64_t>::max();

  for (std::int64_t cta = 0; cta < report.grid; ++cta) {
    std::vector<std::int64_t> tiles_seen;
    std::int64_t non_starting = 0;
    std::int64_t cta_iters = 0;

    for (const TileSegment& seg : plan.cta_segments(cta)) {
      util::check(seg.tile_idx >= 0 && seg.tile_idx < tiles,
                  "segment tile out of range");
      const std::int64_t ipt = ipt_of(seg.tile_idx);
      util::check(seg.iter_begin >= 0 && seg.iter_begin < seg.iter_end &&
                      seg.iter_end <= ipt,
                  "segment iteration range malformed");
      util::check(seg.last == (seg.iter_end == ipt),
                  "segment `last` flag inconsistent with mapping");

      tiles_seen.push_back(seg.tile_idx);
      if (!seg.starts_tile()) ++non_starting;
      if (seg.starts_tile()) ++owners[static_cast<std::size_t>(seg.tile_idx)];
      if (seg.ends_tile()) ++closers[static_cast<std::size_t>(seg.tile_idx)];
      per_tile[static_cast<std::size_t>(seg.tile_idx)].emplace_back(
          seg.iter_begin, seg.iter_end);
      cta_iters += seg.iters();
      ++report.total_segments;
    }

    std::sort(tiles_seen.begin(), tiles_seen.end());
    util::check(std::adjacent_find(tiles_seen.begin(), tiles_seen.end()) ==
                    tiles_seen.end(),
                "CTA touches a tile twice");
    util::check(non_starting <= 1,
                "CTA needs more than one partials slot");

    if (!plan.cta_empty(cta)) {
      ++report.nonempty_ctas;
      report.min_cta_iters = std::min(report.min_cta_iters, cta_iters);
      report.max_cta_iters = std::max(report.max_cta_iters, cta_iters);
    }
    report.covered_iters += cta_iters;
  }
  if (report.nonempty_ctas == 0) report.min_cta_iters = 0;

  util::check(report.covered_iters == total_iters,
              "covered iteration count != total iterations");

  for (std::int64_t tile = 0; tile < tiles; ++tile) {
    util::check(owners[static_cast<std::size_t>(tile)] == 1,
                "tile must have exactly one owner");
    util::check(closers[static_cast<std::size_t>(tile)] == 1,
                "tile must have exactly one closing segment");

    auto& ranges = per_tile[static_cast<std::size_t>(tile)];
    std::sort(ranges.begin(), ranges.end());
    std::int64_t cursor = 0;
    for (const auto& [begin, end] : ranges) {
      util::check(begin == cursor, "gap or overlap in tile coverage");
      cursor = end;
    }
    util::check(cursor == ipt_of(tile), "tile coverage incomplete");
  }

  return report;
}

CoverageReport validate_decomposition(const Decomposition& decomposition) {
  return validate_plan(compile_plan(decomposition));
}

}  // namespace streamk::core
