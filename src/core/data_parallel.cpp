#include "core/data_parallel.hpp"

#include "util/check.hpp"

namespace streamk::core {

DataParallel::DataParallel(WorkMapping mapping) : Decomposition(mapping) {}

CtaWork DataParallel::cta_work(std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_size(), "CTA index out of range");
  CtaWork work;
  work.segments.push_back(TileSegment{
      .tile_idx = cta,
      .iter_begin = 0,
      .iter_end = mapping_.iters_per_tile(),
      .last = true,
  });
  return work;
}

}  // namespace streamk::core
