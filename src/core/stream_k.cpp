#include "core/stream_k.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace streamk::core {

IterRange partition_iters(std::int64_t total_iters, std::int64_t grid,
                          std::int64_t cta, IterPartition strategy) {
  util::check(grid >= 1, "grid must be >= 1");
  util::check(cta >= 0 && cta < grid, "CTA index out of range");

  if (strategy == IterPartition::kCeilUniform) {
    const std::int64_t per_cta = ceil_div(total_iters, grid);
    const std::int64_t begin = std::min(total_iters, cta * per_cta);
    const std::int64_t end = std::min(total_iters, begin + per_cta);
    return {begin, end};
  }

  // Balanced within one: the first `rem` CTAs take base+1 iterations.
  const std::int64_t base = total_iters / grid;
  const std::int64_t rem = total_iters % grid;
  const std::int64_t begin = cta * base + std::min(cta, rem);
  const std::int64_t end = begin + base + (cta < rem ? 1 : 0);
  return {begin, end};
}

void append_segments(const WorkMapping& mapping, IterRange range,
                     std::vector<TileSegment>& out) {
  const std::int64_t ipt = mapping.iters_per_tile();
  std::int64_t iter = range.begin;
  while (iter < range.end) {
    const std::int64_t tile = iter / ipt;
    const std::int64_t tile_begin = tile * ipt;
    const std::int64_t tile_end = tile_begin + ipt;
    const std::int64_t seg_end = std::min(range.end, tile_end);
    out.push_back(TileSegment{
        .tile_idx = tile,
        .iter_begin = iter - tile_begin,
        .iter_end = seg_end - tile_begin,
        .last = seg_end == tile_end,
    });
    iter = seg_end;
  }
}

StreamKBasic::StreamKBasic(WorkMapping mapping, std::int64_t grid,
                           IterPartition strategy)
    : Decomposition(mapping), grid_(grid), strategy_(strategy) {
  util::check(grid >= 1, "stream-k grid must be >= 1");
}

CtaWork StreamKBasic::cta_work(std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_, "CTA index out of range");
  CtaWork work;
  append_segments(mapping_,
                  partition_iters(mapping_.total_iters(), grid_, cta, strategy_),
                  work.segments);
  return work;
}

}  // namespace streamk::core
