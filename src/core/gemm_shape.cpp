#include "core/gemm_shape.hpp"

namespace streamk::core {

double GemmShape::min_bytes(gpu::Precision p) const {
  const auto in = static_cast<double>(gpu::input_bytes(p));
  const auto out = static_cast<double>(gpu::output_bytes(p));
  const auto md = static_cast<double>(m);
  const auto nd = static_cast<double>(n);
  const auto kd = static_cast<double>(k);
  return (md * kd + kd * nd) * in + md * nd * out;
}

double GemmShape::arithmetic_intensity(gpu::Precision p) const {
  return flops() / min_bytes(p);
}

std::string GemmShape::to_string() const {
  return std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k);
}

}  // namespace streamk::core
