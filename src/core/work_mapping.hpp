#pragma once

// Quantization of a GEMM into output tiles and MAC-loop iterations.
//
// Given a problem shape and CTA blocking factors, the computation comprises
//   tiles       = ceil(m/BLK_M) * ceil(n/BLK_N)      output tiles,
//   iters/tile  = ceil(k/BLK_K)                      MAC-loop iterations each,
//   total_iters = tiles * iters/tile                 aggregate iterations.
//
// Stream-K linearizes this iteration space contiguously in m -> n -> k order
// (tile row-major, k innermost within a tile): global iteration index
//   iter = tile_idx * iters_per_tile + local_k_iter,
//   tile_idx = tile_m * tiles_n + tile_n.
//
// Every decomposition, the simulator, and the CPU executor share this
// mapping, which is what lets one kernel structure express data-parallel,
// fixed-split, and Stream-K schedules (Section 4 of the paper).

#include <cstdint>

#include "core/gemm_shape.hpp"
#include "core/tile_order.hpp"
#include "gpu/block_shape.hpp"

namespace streamk::core {

/// Coordinates of an output tile in units of blocks.
struct TileCoord {
  std::int64_t tm = 0;
  std::int64_t tn = 0;

  friend constexpr auto operator<=>(const TileCoord&, const TileCoord&) = default;
};

class WorkMapping {
 public:
  /// `order` selects the traversal of the output-tile grid (Section 7's
  /// Morton-order future work); it permutes tile_coord() only and cannot
  /// affect coverage or fixup correctness.
  WorkMapping(GemmShape shape, gpu::BlockShape block,
              TileOrder order = TileOrder::kRowMajor);

  const GemmShape& shape() const { return shape_; }
  const gpu::BlockShape& block() const { return block_; }

  std::int64_t tiles_m() const { return tiles_m_; }
  std::int64_t tiles_n() const { return tiles_n_; }
  std::int64_t tiles() const { return tiles_; }
  std::int64_t iters_per_tile() const { return iters_per_tile_; }
  std::int64_t total_iters() const { return total_iters_; }

  /// Output tile containing global iteration `iter`.
  std::int64_t tile_of_iter(std::int64_t iter) const {
    return iter / iters_per_tile_;
  }

  /// First global iteration of tile `tile_idx`.
  std::int64_t tile_iter_begin(std::int64_t tile_idx) const {
    return tile_idx * iters_per_tile_;
  }

  /// Block coordinates of a linear tile index under the mapping's tile
  /// order (row-major by default: n fastest).
  TileCoord tile_coord(std::int64_t tile_idx) const;

  /// Inverse of tile_coord.
  std::int64_t tile_index(TileCoord coord) const;

  TileOrder tile_order() const { return ordering_.order(); }
  const TileOrdering& ordering() const { return ordering_; }

  /// Extent of the valid (unpadded) region of a tile along m / n / k.  Edge
  /// tiles of ragged problems cover less than a full block; the residue
  /// matters for correctness on the CPU path and for wasted-compute
  /// accounting in the performance model.
  std::int64_t tile_extent_m(std::int64_t tm) const;
  std::int64_t tile_extent_n(std::int64_t tn) const;
  std::int64_t iter_extent_k(std::int64_t local_iter) const;

  /// MACs the hardware actually performs (padded): every tile costs a full
  /// block volume per iteration regardless of residue.
  std::int64_t padded_macs() const {
    return total_iters_ * block_.macs_per_iteration();
  }

  /// Fraction of padded work that is useful (1.0 when the shape divides the
  /// blocking factors exactly).
  double useful_fraction() const {
    return static_cast<double>(shape_.macs()) /
           static_cast<double>(padded_macs());
  }

 private:
  GemmShape shape_;
  gpu::BlockShape block_;
  std::int64_t tiles_m_;
  std::int64_t tiles_n_;
  std::int64_t tiles_;
  std::int64_t iters_per_tile_;
  std::int64_t total_iters_;
  TileOrdering ordering_;
};

/// ceil(a / b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace streamk::core
