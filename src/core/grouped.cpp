#include "core/grouped.hpp"

#include <algorithm>

#include "core/hybrid.hpp"
#include "util/check.hpp"

namespace streamk::core {

GroupedMapping::GroupedMapping(std::span<const GemmShape> shapes,
                               gpu::BlockShape block)
    : block_(block) {
  util::check(!shapes.empty(), "grouped GEMM needs at least one problem");
  util::check(block.valid(), "invalid block shape");
  problems_.reserve(shapes.size());
  for (const GemmShape& shape : shapes) {
    util::check(shape.valid(), "invalid GEMM shape in group");
    GroupedProblem p;
    p.shape = shape;
    p.tiles_m = ceil_div(shape.m, block.m);
    p.tiles_n = ceil_div(shape.n, block.n);
    p.tiles = p.tiles_m * p.tiles_n;
    // k == 0 still owns one zero-extent iteration per tile, so every
    // schedule kind visits the tile exactly once and its beta/epilogue
    // store fires (matching WorkMapping's quantization).
    p.iters_per_tile = std::max<std::int64_t>(1, ceil_div(shape.k, block.k));
    p.tile_offset = tiles_;
    p.iter_offset = total_iters_;
    p.row_panel_offset = row_panels_;
    p.col_panel_offset = col_panels_;
    tiles_ += p.tiles;
    total_iters_ += p.tiles * p.iters_per_tile;
    row_panels_ += p.tiles_m;
    col_panels_ += p.tiles_n;
    max_iters_per_tile_ = std::max(max_iters_per_tile_, p.iters_per_tile);
    min_iters_per_tile_ = min_iters_per_tile_ == 0
                              ? p.iters_per_tile
                              : std::min(min_iters_per_tile_, p.iters_per_tile);
    problems_.push_back(p);
  }
}

std::size_t GroupedMapping::problem_of_tile(std::int64_t tile) const {
  util::check(tile >= 0 && tile < tiles_, "grouped tile index out of range");
  // Last problem whose tile_offset <= tile.
  std::size_t lo = 0, hi = problems_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (problems_[mid].tile_offset <= tile) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::size_t GroupedMapping::problem_of_iter(std::int64_t iter) const {
  util::check(iter >= 0 && iter < total_iters_,
              "grouped iteration index out of range");
  std::size_t lo = 0, hi = problems_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (problems_[mid].iter_offset <= iter) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

GroupedTileRef GroupedMapping::tile_ref(std::int64_t tile) const {
  const std::size_t p = problem_of_tile(tile);
  const GroupedProblem& prob = problems_[p];
  const std::int64_t local = tile - prob.tile_offset;
  return GroupedTileRef{p, local / prob.tiles_n, local % prob.tiles_n};
}

std::int64_t GroupedMapping::iters_per_tile(std::int64_t tile) const {
  return problems_[problem_of_tile(tile)].iters_per_tile;
}

std::int64_t GroupedMapping::tile_iter_begin(std::int64_t tile) const {
  const GroupedProblem& prob = problems_[problem_of_tile(tile)];
  return prob.iter_offset + (tile - prob.tile_offset) * prob.iters_per_tile;
}

void GroupedMapping::append_segments(IterRange range,
                                     std::vector<TileSegment>& out) const {
  if (range.begin >= range.end) return;
  const GroupedProblem* prob = &problems_[problem_of_iter(range.begin)];
  std::int64_t tile = prob->tile_offset +
                      (range.begin - prob->iter_offset) / prob->iters_per_tile;
  std::int64_t iter = range.begin;
  while (iter < range.end) {
    // Advancing one tile at a time crosses problem boundaries in step.
    if (tile >= prob->tile_offset + prob->tiles) {
      prob = &problems_[problem_of_tile(tile)];
    }
    const std::int64_t tile_begin =
        prob->iter_offset + (tile - prob->tile_offset) * prob->iters_per_tile;
    const std::int64_t tile_end = tile_begin + prob->iters_per_tile;
    const std::int64_t seg_end = std::min(range.end, tile_end);
    out.push_back(TileSegment{
        .tile_idx = tile,
        .iter_begin = iter - tile_begin,
        .iter_end = seg_end - tile_begin,
        .last = seg_end == tile_end,
    });
    iter = seg_end;
    if (iter >= tile_end) ++tile;
  }
}

std::vector<GemmShape> GroupedMapping::shapes() const {
  std::vector<GemmShape> out;
  out.reserve(problems_.size());
  for (const GroupedProblem& p : problems_) out.push_back(p.shape);
  return out;
}

double GroupedMapping::flops() const {
  double sum = 0.0;
  for (const GroupedProblem& p : problems_) sum += p.shape.flops();
  return sum;
}

std::int64_t grouped_grid_size(const GroupedMapping& grouped,
                               const DecompositionSpec& spec) {
  switch (spec.kind) {
    case DecompositionKind::kDataParallel:
      return grouped.tiles();
    case DecompositionKind::kFixedSplit:
      util::check(spec.split >= 1, "fixed-split factor must be >= 1");
      return grouped.tiles() * spec.split;
    case DecompositionKind::kStreamKBasic: {
      const std::int64_t g = spec.grid > 0 ? spec.grid : spec.sm_count;
      util::check(g > 0, "stream-k needs a grid size or SM count");
      return g;
    }
    case DecompositionKind::kHybridOneTile:
    case DecompositionKind::kHybridTwoTile:
      util::check(spec.sm_count > 0, "hybrid needs the SM count");
      return spec.sm_count;
  }
  util::fail("unknown decomposition kind");
}

namespace {

/// Whole-tile segment for DP waves / DP-scheduled tiles.
TileSegment full_tile(const GroupedMapping& grouped, std::int64_t tile) {
  return TileSegment{
      .tile_idx = tile,
      .iter_begin = 0,
      .iter_end = grouped.iters_per_tile(tile),
      .last = true,
  };
}

/// Iteration index one past tile `end_tile - 1` (end_tile may be tiles()).
std::int64_t iter_end_of_tiles(const GroupedMapping& grouped,
                               std::int64_t end_tile) {
  return end_tile >= grouped.tiles() ? grouped.total_iters()
                                     : grouped.tile_iter_begin(end_tile);
}

}  // namespace

CtaWork grouped_cta_work(const GroupedMapping& grouped,
                         const DecompositionSpec& spec, std::int64_t cta) {
  const std::int64_t grid = grouped_grid_size(grouped, spec);
  util::check(cta >= 0 && cta < grid, "CTA index out of range");
  CtaWork work;

  switch (spec.kind) {
    case DecompositionKind::kDataParallel: {
      work.segments.push_back(full_tile(grouped, cta));
      return work;
    }
    case DecompositionKind::kFixedSplit: {
      // Each tile splits by its *own* iteration count; light problems'
      // tails over-split into empty CTAs, exactly like FixedSplit on an
      // over-split uniform mapping.
      const std::int64_t tile = cta / spec.split;
      const std::int64_t y = cta % spec.split;
      const std::int64_t ipt = grouped.iters_per_tile(tile);
      const std::int64_t iters_per_split = ceil_div(ipt, spec.split);
      const std::int64_t begin = y * iters_per_split;
      const std::int64_t end = std::min(ipt, begin + iters_per_split);
      if (begin >= end) return work;
      work.segments.push_back(TileSegment{
          .tile_idx = tile,
          .iter_begin = begin,
          .iter_end = end,
          .last = end == ipt,
      });
      return work;
    }
    case DecompositionKind::kStreamKBasic: {
      grouped.append_segments(
          partition_iters(grouped.total_iters(), grid, cta,
                          IterPartition::kBalancedWithinOne),
          work.segments);
      return work;
    }
    case DecompositionKind::kHybridOneTile:
    case DecompositionKind::kHybridTwoTile: {
      // The hybrid layouts quantize in whole tiles, so the tile-count
      // overloads apply unchanged; the Stream-K region's share per CTA is
      // balanced in *iterations* of its (mixed-depth) tile range.
      const HybridLayout layout =
          spec.kind == DecompositionKind::kHybridOneTile
              ? HybridLayout::one_tile(grouped.tiles(), spec.sm_count)
              : HybridLayout::two_tile(grouped.tiles(), spec.sm_count);
      const std::int64_t sk_base = layout.sk_first ? 0 : layout.dp_tiles;
      const std::int64_t dp_base = layout.sk_first ? layout.sk_tiles : 0;

      auto append_sk = [&] {
        if (layout.sk_tiles == 0) return;
        const std::int64_t sk_iter_base = grouped.tile_iter_begin(sk_base);
        const std::int64_t sk_iters =
            iter_end_of_tiles(grouped, sk_base + layout.sk_tiles) -
            sk_iter_base;
        IterRange range = partition_iters(sk_iters, layout.sm_count, cta,
                                          IterPartition::kBalancedWithinOne);
        range.begin += sk_iter_base;
        range.end += sk_iter_base;
        grouped.append_segments(range, work.segments);
      };

      auto append_dp = [&] {
        for (std::int64_t wave = 0; wave < layout.full_waves; ++wave) {
          work.segments.push_back(full_tile(
              grouped, dp_base + wave * layout.sm_count + cta));
        }
      };

      if (layout.sk_first) {
        append_sk();
        append_dp();
      } else {
        append_dp();
        append_sk();
      }
      return work;
    }
  }
  util::fail("unknown decomposition kind");
}

std::string grouped_plan_name(const GroupedMapping& grouped,
                              const DecompositionSpec& spec) {
  std::string name =
      "grouped[" + std::to_string(grouped.problems()) + "]:";
  switch (spec.kind) {
    case DecompositionKind::kDataParallel:
      return name + "data-parallel";
    case DecompositionKind::kFixedSplit:
      return name + "fixed-split(s=" + std::to_string(spec.split) + ")";
    case DecompositionKind::kStreamKBasic:
      return name + "stream-k(g=" +
             std::to_string(grouped_grid_size(grouped, spec)) + ")";
    case DecompositionKind::kHybridOneTile:
      return name + "hybrid-dp+1sk(p=" + std::to_string(spec.sm_count) + ")";
    case DecompositionKind::kHybridTwoTile:
      return name + "hybrid-2sk+dp(p=" + std::to_string(spec.sm_count) + ")";
  }
  util::fail("unknown decomposition kind");
}

}  // namespace streamk::core
