#pragma once

// Problem geometry for C = A * B (alpha = 1, beta = 0 in the paper's
// evaluation; the CPU path also supports general alpha/beta).
//
// An m x n x k GEMM consumes an m x k matrix A and a k x n matrix B,
// performs m*n*k multiply-accumulates, and produces an m x n matrix C.

#include <cstdint>
#include <string>

#include "gpu/precision.hpp"

namespace streamk::core {

struct GemmShape {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;

  friend constexpr auto operator<=>(const GemmShape&, const GemmShape&) = default;

  /// k == 0 is a valid degenerate problem: no MAC work, but the beta scale
  /// and epilogue store still apply to every output element.
  constexpr bool valid() const { return m > 0 && n > 0 && k >= 0; }

  /// Multiply-accumulate count (one MAC = one multiply + one add = 2 FLOPs).
  constexpr std::int64_t macs() const { return m * n * k; }
  constexpr double flops() const { return 2.0 * static_cast<double>(macs()); }

  /// Minimum (compulsory) DRAM traffic: read A and B once, write C once.
  double min_bytes(gpu::Precision p) const;

  /// Arithmetic intensity in FLOP per byte of compulsory traffic.  This is
  /// the x-axis of the paper's roofline figures (Figures 5-7).
  double arithmetic_intensity(gpu::Precision p) const;

  std::string to_string() const;
};

}  // namespace streamk::core
