#pragma once

// Fixup relationships between CTAs sharing an output tile.
//
// For any decomposition, each output tile is produced by one *owner* CTA
// (the one that performed the tile's k = 0 MAC-loop iteration) plus zero or
// more *contributors* that spill partial sums.  This table is precomputed by
// both the CPU executor (to size the partials workspace and know which flags
// to await) and the simulator (to model fixup costs and wait dependencies).
//
// Stream-K's key property is visible here: the number of split tiles, and
// therefore communication and temporary storage, is bounded by the grid size
// g (O(p)), not by the problem size.

#include <cstdint>
#include <vector>

#include "core/decomposition.hpp"

namespace streamk::core {

class SchedulePlan;

struct TileFixup {
  std::int64_t owner = -1;  ///< CTA writing the output tile
  /// CTAs spilling partials for this tile, ascending id, owner excluded.
  std::vector<std::int64_t> contributors;

  /// CTAs covering the tile (owner + contributors).
  std::int64_t peer_count() const {
    return 1 + static_cast<std::int64_t>(contributors.size());
  }
};

class FixupTable {
 public:
  /// Materializes the fixup table from a compiled plan's contributor index.
  explicit FixupTable(const SchedulePlan& plan);

  /// Convenience overload: compiles `decomposition` first.
  explicit FixupTable(const Decomposition& decomposition);

  const TileFixup& tile(std::int64_t tile_idx) const;
  std::int64_t tiles() const { return static_cast<std::int64_t>(table_.size()); }

  /// Tiles covered by more than one CTA ("splitting seams").
  std::int64_t split_tiles() const { return split_tiles_; }

  /// Largest peer count over all tiles.
  std::int64_t max_peers() const { return max_peers_; }

  /// Total partial-sum buffers spilled (== total contributor segments).
  std::int64_t total_partials() const { return total_partials_; }

 private:
  std::vector<TileFixup> table_;
  std::int64_t split_tiles_ = 0;
  std::int64_t max_peers_ = 1;
  std::int64_t total_partials_ = 0;
};

}  // namespace streamk::core
