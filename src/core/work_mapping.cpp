#include "core/work_mapping.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace streamk::core {

namespace {

std::int64_t checked_tiles_m(GemmShape shape, gpu::BlockShape block) {
  util::check(shape.valid(), "invalid GEMM shape");
  util::check(block.valid(), "invalid block shape");
  return ceil_div(shape.m, block.m);
}

}  // namespace

WorkMapping::WorkMapping(GemmShape shape, gpu::BlockShape block,
                         TileOrder order)
    : shape_(shape),
      block_(block),
      tiles_m_(checked_tiles_m(shape, block)),
      tiles_n_(ceil_div(shape.n, block.n)),
      tiles_(tiles_m_ * tiles_n_),
      // k == 0 still owns one zero-extent iteration per tile so every
      // schedule kind visits the tile exactly once and the beta/epilogue
      // store fires; iter_extent_k reports 0 for it, so no MACs run.
      iters_per_tile_(std::max<std::int64_t>(1, ceil_div(shape.k, block.k))),
      total_iters_(tiles_ * iters_per_tile_),
      ordering_(order, tiles_m_, tiles_n_) {}

TileCoord WorkMapping::tile_coord(std::int64_t tile_idx) const {
  util::check(tile_idx >= 0 && tile_idx < tiles_, "tile index out of range");
  const auto [tm, tn] = ordering_.coord(tile_idx);
  return {tm, tn};
}

std::int64_t WorkMapping::tile_index(TileCoord coord) const {
  return ordering_.linear(coord.tm, coord.tn);
}

std::int64_t WorkMapping::tile_extent_m(std::int64_t tm) const {
  util::check(tm >= 0 && tm < tiles_m_, "tile row out of range");
  return std::min(block_.m, shape_.m - tm * block_.m);
}

std::int64_t WorkMapping::tile_extent_n(std::int64_t tn) const {
  util::check(tn >= 0 && tn < tiles_n_, "tile column out of range");
  return std::min(block_.n, shape_.n - tn * block_.n);
}

std::int64_t WorkMapping::iter_extent_k(std::int64_t local_iter) const {
  util::check(local_iter >= 0 && local_iter < iters_per_tile_,
              "k iteration out of range");
  return std::min(block_.k, shape_.k - local_iter * block_.k);
}

}  // namespace streamk::core
