#pragma once

// Tile-access orderings (paper Section 7, future work: "cache-aware,
// tile-access patterns such as Morton Order, an avenue for optimization").
//
// Decompositions and the fixup protocol operate on *linear* tile ids, so
// the traversal order of the output-tile grid is a free parameter: changing
// it cannot affect coverage or correctness (the validation invariants are
// order-independent), but it changes which A row-panels and B column-panels
// a wave of consecutive CTAs touches -- and therefore L2 locality.
//
//   * kRowMajor -- the default n-fastest ordering of Algorithm 3.
//   * kMortonZ  -- Z-order curve over the tile grid: consecutive ids stay
//     spatially clustered, so a window of w tiles touches O(sqrt(w)) row
//     panels + O(sqrt(w)) column panels instead of O(w) of one kind.
//
// Non-power-of-two grids are handled by enumerating the Z-curve of the
// enclosing power-of-two square and skipping out-of-range coordinates (a
// precomputed permutation, O(tiles) space, shared across copies).

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace streamk::core {

enum class TileOrder {
  kRowMajor,
  kMortonZ,
};

std::string_view order_name(TileOrder order);

/// Bijection between linear tile ids and grid coordinates under an order.
class TileOrdering {
 public:
  TileOrdering(TileOrder order, std::int64_t tiles_m, std::int64_t tiles_n);

  TileOrder order() const { return order_; }

  /// Grid coordinates (tm, tn) of linear tile id `linear`.
  std::pair<std::int64_t, std::int64_t> coord(std::int64_t linear) const;

  /// Inverse of coord().
  std::int64_t linear(std::int64_t tm, std::int64_t tn) const;

 private:
  TileOrder order_;
  std::int64_t tiles_m_;
  std::int64_t tiles_n_;
  /// Morton only: forward[linear] = row-major index, inverse[row-major] =
  /// linear.  Shared so copying a WorkMapping stays cheap.
  std::shared_ptr<const std::vector<std::int32_t>> forward_;
  std::shared_ptr<const std::vector<std::int32_t>> inverse_;
};

/// Locality figure of merit: partitions the linear tile sequence into
/// consecutive windows of `window` tiles (one wave of CTAs) and sums the
/// number of distinct A row-panels plus distinct B column-panels each
/// window touches.  Lower is better: it is proportional to the input
/// working set a wave asks of the L2.
std::int64_t panel_touch_cost(const TileOrdering& ordering,
                              std::int64_t tiles_m, std::int64_t tiles_n,
                              std::int64_t window);

/// Memoized panel_touch_cost for plan-compile-time use.  Plan compilation
/// sweeps candidate windows over one grid, and the planner / plan cache
/// recompile many schedules over the same (order, grid) -- so results are
/// cached process-wide (mutex-guarded, bounded map).  The cost itself is a
/// pure function of the four arguments; the Morton permutation a direct
/// panel_touch_cost call would rebuild per sweep step is paid at most once
/// per cached entry.
std::int64_t windowed_panel_cost(TileOrder order, std::int64_t tiles_m,
                                 std::int64_t tiles_n, std::int64_t window);

}  // namespace streamk::core
