#pragma once

// Work-decomposition interface.
//
// A Decomposition assigns the GEMM's MAC-loop iteration space to a grid of
// CTAs.  Each CTA receives an ordered stream of TileSegments; a segment is a
// contiguous run of MAC-loop iterations within one output tile.  Consumers
// do not walk these streams directly: core::compile_plan() compiles the
// whole decomposition once into a core::SchedulePlan, and the CPU executor
// (cpu/executor.hpp), the GPU simulator (sim/simulator.hpp), validation,
// and the fixup index all read that one flat IR -- so a schedule is
// specified exactly once and is guaranteed identical between functional
// execution and performance simulation (see DESIGN.md).
//
// Fixup protocol implied by segment flags (Section 4, Algorithm 5):
//   * A segment with starts_tile() && ends_tile() produces the whole tile:
//     no communication.
//   * A segment that does not start its tile stores its accumulators to the
//     CTA's partials slot and signals the CTA's flag.
//   * A segment that starts but does not end its tile owns the tile: it
//     waits for every other contributing CTA's flag, reduces their partials
//     into its accumulators, and writes the output tile.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/work_mapping.hpp"

namespace streamk::core {

struct TileSegment {
  std::int64_t tile_idx = 0;
  /// Local MAC-loop iteration range within the tile, [iter_begin, iter_end)
  /// with 0 <= iter_begin < iter_end <= iters_per_tile.
  std::int64_t iter_begin = 0;
  std::int64_t iter_end = 0;
  /// True when iter_end == iters_per_tile (cached to keep segments
  /// self-describing without a WorkMapping at hand).
  bool last = false;

  constexpr bool starts_tile() const { return iter_begin == 0; }
  constexpr bool ends_tile() const { return last; }
  constexpr std::int64_t iters() const { return iter_end - iter_begin; }
};

/// The ordered work of one CTA.
struct CtaWork {
  std::vector<TileSegment> segments;

  std::int64_t total_iters() const {
    std::int64_t sum = 0;
    for (const auto& s : segments) sum += s.iters();
    return sum;
  }
  bool empty() const { return segments.empty(); }
};

enum class DecompositionKind {
  kDataParallel,
  kFixedSplit,
  kStreamKBasic,
  kHybridOneTile,  ///< "data-parallel + one-tile Stream-K" (Section 5.2)
  kHybridTwoTile,  ///< "two-tile Stream-K + data-parallel" (Section 5.2)
};

std::string_view kind_name(DecompositionKind kind);

class Decomposition {
 public:
  virtual ~Decomposition() = default;

  Decomposition(const Decomposition&) = delete;
  Decomposition& operator=(const Decomposition&) = delete;

  virtual DecompositionKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Number of CTAs launched.  CTAs may carry no work (empty CtaWork) when
  /// the problem is smaller than the grid.
  virtual std::int64_t grid_size() const = 0;

  /// The ordered segment stream of CTA `cta` in [0, grid_size()).
  virtual CtaWork cta_work(std::int64_t cta) const = 0;

  const WorkMapping& mapping() const { return mapping_; }

 protected:
  explicit Decomposition(WorkMapping mapping) : mapping_(mapping) {}

  WorkMapping mapping_;
};

/// Parameters for constructing any decomposition (used by benches and the
/// kernel-library layer).
struct DecompositionSpec {
  DecompositionKind kind = DecompositionKind::kDataParallel;
  /// Stream-K grid size (kStreamKBasic); <= 0 means "number of SMs".
  std::int64_t grid = 0;
  /// Fixed-split factor (kFixedSplit).
  std::int64_t split = 1;
  /// Processor width, used by hybrids and as the default Stream-K grid.
  std::int64_t sm_count = 0;
};

std::unique_ptr<Decomposition> make_decomposition(const DecompositionSpec& spec,
                                                  const WorkMapping& mapping);

}  // namespace streamk::core
