#include "core/hybrid.hpp"

#include "core/data_parallel.hpp"
#include "core/fixed_split.hpp"
#include "util/check.hpp"

namespace streamk::core {

HybridLayout HybridLayout::one_tile(const WorkMapping& mapping,
                                    std::int64_t p) {
  return one_tile(mapping.tiles(), p);
}

HybridLayout HybridLayout::two_tile(const WorkMapping& mapping,
                                    std::int64_t p) {
  return two_tile(mapping.tiles(), p);
}

HybridLayout HybridLayout::one_tile(std::int64_t t, std::int64_t p) {
  util::check(p >= 1, "hybrid needs at least one SM");
  HybridLayout layout;
  layout.sm_count = p;
  layout.full_waves = t / p;
  layout.sk_tiles = t % p;
  layout.dp_tiles = layout.full_waves * p;
  layout.sk_first = false;  // "DP + one-tile SK": waves run first
  return layout;
}

HybridLayout HybridLayout::two_tile(std::int64_t t, std::int64_t p) {
  util::check(p >= 1, "hybrid needs at least one SM");
  const std::int64_t w = t / p;
  const std::int64_t rem = t % p;
  HybridLayout layout;
  layout.sm_count = p;
  layout.sk_first = true;  // "two-tile SK + DP": Stream-K region runs first
  if (rem == 0) {
    // Perfect quantization: pure data-parallel waves.
    layout.full_waves = w;
    layout.sk_tiles = 0;
    layout.sk_first = false;
  } else if (w >= 1) {
    // Trade one full wave for a [1, 2)-tile Stream-K share per CTA.
    layout.full_waves = w - 1;
    layout.sk_tiles = rem + p;
  } else {
    // Fewer tiles than SMs: everything is Stream-K.
    layout.full_waves = 0;
    layout.sk_tiles = t;
  }
  layout.dp_tiles = layout.full_waves * p;
  return layout;
}

Hybrid::Hybrid(WorkMapping mapping, DecompositionKind kind,
               std::int64_t sm_count, IterPartition strategy)
    : Decomposition(mapping), kind_(kind), strategy_(strategy) {
  switch (kind) {
    case DecompositionKind::kHybridOneTile:
      layout_ = HybridLayout::one_tile(mapping_, sm_count);
      break;
    case DecompositionKind::kHybridTwoTile:
      layout_ = HybridLayout::two_tile(mapping_, sm_count);
      break;
    default:
      util::fail("Hybrid requires a hybrid decomposition kind");
  }
}

std::string Hybrid::name() const {
  const std::string p = "(p=" + std::to_string(layout_.sm_count) + ")";
  return kind_ == DecompositionKind::kHybridOneTile ? "hybrid-dp+1sk" + p
                                                    : "hybrid-2sk+dp" + p;
}

std::int64_t Hybrid::grid_size() const { return layout_.sm_count; }

CtaWork Hybrid::cta_work(std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_size(), "CTA index out of range");
  CtaWork work;

  const std::int64_t ipt = mapping_.iters_per_tile();
  const std::int64_t sk_base_tile = layout_.sk_first ? 0 : layout_.dp_tiles;
  const std::int64_t dp_base_tile = layout_.sk_first ? layout_.sk_tiles : 0;

  auto append_sk = [&] {
    if (layout_.sk_tiles == 0) return;
    IterRange range = partition_iters(layout_.sk_tiles * ipt,
                                      layout_.sm_count, cta, strategy_);
    const std::int64_t offset = sk_base_tile * ipt;
    range.begin += offset;
    range.end += offset;
    append_segments(mapping_, range, work.segments);
  };

  auto append_dp = [&] {
    for (std::int64_t wave = 0; wave < layout_.full_waves; ++wave) {
      const std::int64_t tile = dp_base_tile + wave * layout_.sm_count + cta;
      work.segments.push_back(TileSegment{
          .tile_idx = tile,
          .iter_begin = 0,
          .iter_end = ipt,
          .last = true,
      });
    }
  };

  if (layout_.sk_first) {
    append_sk();
    append_dp();
  } else {
    append_dp();
    append_sk();
  }
  return work;
}

std::string_view kind_name(DecompositionKind kind) {
  switch (kind) {
    case DecompositionKind::kDataParallel:
      return "data-parallel";
    case DecompositionKind::kFixedSplit:
      return "fixed-split";
    case DecompositionKind::kStreamKBasic:
      return "stream-k";
    case DecompositionKind::kHybridOneTile:
      return "hybrid-dp+1sk";
    case DecompositionKind::kHybridTwoTile:
      return "hybrid-2sk+dp";
  }
  util::fail("unknown decomposition kind");
}

std::unique_ptr<Decomposition> make_decomposition(const DecompositionSpec& spec,
                                                  const WorkMapping& mapping) {
  switch (spec.kind) {
    case DecompositionKind::kDataParallel:
      return std::make_unique<DataParallel>(mapping);
    case DecompositionKind::kFixedSplit:
      return std::make_unique<FixedSplit>(mapping, spec.split);
    case DecompositionKind::kStreamKBasic: {
      const std::int64_t g = spec.grid > 0 ? spec.grid : spec.sm_count;
      util::check(g > 0, "stream-k needs a grid size or SM count");
      return std::make_unique<StreamKBasic>(mapping, g);
    }
    case DecompositionKind::kHybridOneTile:
    case DecompositionKind::kHybridTwoTile:
      util::check(spec.sm_count > 0, "hybrid needs the SM count");
      return std::make_unique<Hybrid>(mapping, spec.kind, spec.sm_count);
  }
  util::fail("unknown decomposition kind");
}

}  // namespace streamk::core
