#pragma once

// Basic Stream-K decomposition (Algorithm 5 of the paper).
//
// A constant-sized grid of g CTAs evenly partitions the aggregate MAC-loop
// iteration space; each CTA's contiguous iteration range maps into the
// m -> n -> k linearization, crossing output-tile boundaries as it may.
// A CTA whose range does not start at a tile boundary stores partial sums
// for that leading tile; the CTA that performed the tile's k = 0 iteration
// owns the tile, reducing peers' partials before the final store.
//
// Generalization (Section 4): with g == tiles Stream-K behaves identically
// to data-parallel; with g == s * tiles (and iterations divisible) it
// matches fixed-split with factor s.  The hybrids in core/hybrid.hpp exploit
// this by mixing both regimes inside one grid.
//
// Two partition strategies are provided:
//   * kBalancedWithinOne (default; what "an even share (within one)" means):
//     q = total / g, r = total % g; the first r CTAs take q+1 iterations.
//     No CTA is idle unless total < g.
//   * kCeilUniform (the literal Algorithm 5 pseudocode):
//     every CTA takes ceil(total/g) iterations and trailing CTAs absorb the
//     shortfall, possibly receiving none.  Kept for the partitioning
//     ablation bench.

#include "core/decomposition.hpp"

namespace streamk::core {

enum class IterPartition {
  kBalancedWithinOne,
  kCeilUniform,
};

/// Iteration range [begin, end) of CTA `cta` under a partition strategy.
struct IterRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  constexpr std::int64_t size() const { return end - begin; }
};

IterRange partition_iters(std::int64_t total_iters, std::int64_t grid,
                          std::int64_t cta, IterPartition strategy);

/// Splits a global iteration range into per-tile segments (shared by
/// StreamKBasic and the hybrid schedules).
void append_segments(const WorkMapping& mapping, IterRange range,
                     std::vector<TileSegment>& out);

class StreamKBasic final : public Decomposition {
 public:
  StreamKBasic(WorkMapping mapping, std::int64_t grid,
               IterPartition strategy = IterPartition::kBalancedWithinOne);

  DecompositionKind kind() const override {
    return DecompositionKind::kStreamKBasic;
  }
  std::string name() const override {
    return "stream-k(g=" + std::to_string(grid_) + ")";
  }
  std::int64_t grid_size() const override { return grid_; }
  CtaWork cta_work(std::int64_t cta) const override;

  IterPartition strategy() const { return strategy_; }

 private:
  std::int64_t grid_;
  IterPartition strategy_;
};

}  // namespace streamk::core
