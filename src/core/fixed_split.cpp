#include "core/fixed_split.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace streamk::core {

FixedSplit::FixedSplit(WorkMapping mapping, std::int64_t split)
    : Decomposition(mapping), split_(split) {
  util::check(split >= 1, "fixed-split factor must be >= 1");
  iters_per_split_ = ceil_div(mapping_.iters_per_tile(), split_);
}

CtaWork FixedSplit::cta_work(std::int64_t cta) const {
  util::check(cta >= 0 && cta < grid_size(), "CTA index out of range");
  const std::int64_t tile = cta / split_;
  const std::int64_t y = cta % split_;

  const std::int64_t begin = y * iters_per_split_;
  const std::int64_t end =
      std::min(mapping_.iters_per_tile(), begin + iters_per_split_);

  CtaWork work;
  if (begin >= end) return work;  // over-split: this CTA has nothing to do
  work.segments.push_back(TileSegment{
      .tile_idx = tile,
      .iter_begin = begin,
      .iter_end = end,
      .last = end == mapping_.iters_per_tile(),
  });
  return work;
}

}  // namespace streamk::core
