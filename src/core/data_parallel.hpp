#pragma once

// Classic data-parallel decomposition (Algorithm 2 of the paper).
//
// One CTA per output tile; tile production dispatches across idle SMs in
// waves.  Utilization is bounded by the quantization of the tile count onto
// the processor width: a 384x384x128 GEMM blocked 128x128 yields nine tiles,
// which on a four-SM machine executes as two full waves plus a partial wave
// of one -- a 75% utilization ceiling (Figure 1a).

#include "core/decomposition.hpp"

namespace streamk::core {

class DataParallel final : public Decomposition {
 public:
  explicit DataParallel(WorkMapping mapping);

  DecompositionKind kind() const override {
    return DecompositionKind::kDataParallel;
  }
  std::string name() const override { return "data-parallel"; }
  std::int64_t grid_size() const override { return mapping_.tiles(); }
  CtaWork cta_work(std::int64_t cta) const override;
};

}  // namespace streamk::core
