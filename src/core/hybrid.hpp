#pragma once

// Hybrid Stream-K schedules (Section 5.2 of the paper).
//
// Basic Stream-K balances perfectly but skews tile processing in k: when the
// tile count t is not a multiple of the grid size g, CTAs start their first
// MAC-loop iterations at different k-offsets, which can defeat inter-CTA
// cache reuse for the duration of the GEMM.  The hybrids confine Stream-K's
// iteration balancing to a small tile-aligned region and produce the
// remaining tiles in full, temporally aligned data-parallel waves.
//
// With t output tiles on p SMs and w = floor(t/p) full waves:
//
//   * HybridOneTile -- "data-parallel + one-tile Stream-K" (Figure 3b):
//     w full DP waves over tiles [0, w*p); the remainder region of t mod p
//     tiles is covered Stream-K style, each CTA receiving less than one
//     tile's worth of iterations.  Weak latency hiding when >= 3 CTAs share
//     a tile; kept mainly as the ablation baseline.
//
//   * HybridTwoTile -- "two-tile Stream-K + data-parallel" (Figure 3c, the
//     schedule shipped in the paper's evaluation kernels): one fewer full DP
//     wave; the Stream-K region spans (t mod p) + p tiles, so every CTA gets
//     between one and two tiles' worth of iterations, each accumulating CTA
//     receives partials from exactly one peer, and the Stream-K phase runs
//     *first* so partials are long finished before their consumers need
//     them.
//
// Both degenerate to pure data-parallel waves when t mod p == 0, and to
// basic Stream-K when t < p (no full wave exists).

#include "core/decomposition.hpp"
#include "core/stream_k.hpp"

namespace streamk::core {

/// Common geometry of a hybrid schedule.
struct HybridLayout {
  std::int64_t sm_count = 0;   ///< p
  std::int64_t full_waves = 0; ///< DP waves actually scheduled
  std::int64_t sk_tiles = 0;   ///< tiles covered by the Stream-K region
  std::int64_t dp_tiles = 0;   ///< tiles covered by DP waves
  bool sk_first = false;       ///< Stream-K region runs before the DP waves

  static HybridLayout one_tile(const WorkMapping& mapping, std::int64_t p);
  static HybridLayout two_tile(const WorkMapping& mapping, std::int64_t p);

  /// The layouts depend only on the tile count, so grouped (mixed-shape)
  /// tile spaces use the same quantization math.
  static HybridLayout one_tile(std::int64_t tiles, std::int64_t p);
  static HybridLayout two_tile(std::int64_t tiles, std::int64_t p);
};

class Hybrid final : public Decomposition {
 public:
  Hybrid(WorkMapping mapping, DecompositionKind kind, std::int64_t sm_count,
         IterPartition strategy = IterPartition::kBalancedWithinOne);

  DecompositionKind kind() const override { return kind_; }
  std::string name() const override;
  std::int64_t grid_size() const override;
  CtaWork cta_work(std::int64_t cta) const override;

  const HybridLayout& layout() const { return layout_; }

 private:
  DecompositionKind kind_;
  HybridLayout layout_;
  IterPartition strategy_;
};

}  // namespace streamk::core
