#pragma once

// SchedulePlan: one decomposition, compiled once, consumed everywhere.
//
// A Decomposition describes a schedule *procedurally*: cta_work(cta)
// materializes a fresh std::vector<TileSegment> on every call.  Before this
// IR existed, each consumer (executor, workspace sizing, fixup table,
// simulator, validator, spill counting) re-derived the same streams -- per
// CTA, per consumer -- and discovered tile contributor sets by scanning all
// CTAs' streams again.  A SchedulePlan is the flat, arena-backed compilation
// of the whole schedule:
//
//   * one contiguous TileSegment array in CTA-major order, with per-CTA
//     offset spans (no per-CTA allocation, no virtual calls in hot loops);
//   * a per-tile contributor index: the owner CTA (performed the tile's
//     k = 0 iteration) plus the spilling peers in ascending id order --
//     the fixup relationships of Algorithm 5, precomputed;
//   * per-CTA spill-slot assignment (the partials-buffer layout shared by
//     the CPU fixup workspace and the paper's O(p) storage bound);
//   * totals: covered iterations, spills, split tiles, max peers, and
//     nonempty CTAs, so reporting layers stop re-walking the schedule.
//
// Compilation is one pass over cta_work() -- the only place that still
// calls it -- and is deliberately lenient: malformed schedules (gaps,
// overlapping owners, double spills) compile to a plan that
// core::validate_plan() then rejects with a precise diagnostic.  Only
// memory-unsafe input (a segment naming a tile outside the mapping) throws
// at compile time.
//
// PlanCache memoizes compiled plans behind a mutex, keyed on the problem
// shape, blocking factors, tile order, decomposition spec, and device width.
// Cache hits return pointer-identical std::shared_ptr<const SchedulePlan>
// values, so heavy run(shape) traffic in the ensemble/library layer pays
// for schedule compilation once per distinct key.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/decomposition.hpp"
#include "core/grouped.hpp"
#include "epilogue/epilogue.hpp"
#include "gpu/gpu_spec.hpp"

namespace streamk::core {

/// Packed-panel geometry for the CPU microkernel path (cpu/packing.hpp):
/// a segment's operands are packed and consumed in k-chunks of `panel_kc`
/// accumulator elements (`chunk_iters` MAC-loop iterations, capped at
/// kTargetPanelDepth so a chunk's A/B panels stay cache resident).
/// Recorded per plan at compile time so per-CTA scratch sizing is a no-op
/// vector resize in steady state.
struct PackedPanelGeometry {
  /// Upper bound on chunk depth in accumulator elements; chosen so one
  /// A panel plus one B panel of the default block shapes fit well inside
  /// a per-core L2.
  static constexpr std::int64_t kTargetPanelDepth = 256;

  std::int64_t max_segment_iters = 0;  ///< longest segment of the schedule
  std::int64_t chunk_iters = 1;        ///< MAC-loop iterations per chunk
  std::int64_t panel_kc = 0;           ///< chunk_iters * BLK_K
};

/// Shared packed-panel cache geometry (cpu/panel_cache.hpp): the slot grid
/// of the per-GEMM arena that lets the first CTA needing an (A row-panel,
/// k-chunk) or (B column-panel, k-chunk) pack it once for everyone.  The
/// chunk grid is anchored at absolute k = 0 with the pack_geometry() depth,
/// which coincides with the per-CTA chunk walk exactly for segments whose
/// start is panel_kc-aligned -- misaligned chunks simply bypass the cache,
/// so the FP summation trees (and bitwise results) never change.
///
/// `tile_window` is the cache-aware issue-window size: consecutive linear
/// tile ids are claimed in descending order, so a window of w concurrently
/// running CTAs touches the panel working set panel_touch_cost() models.
/// The plan picks the largest power-of-two window whose average per-window
/// panel footprint still fits the shared-cache budget, so tiles that share
/// panels run while those panels are resident (and, with the cache, while
/// their READY slots are hot).
struct PanelCacheGeometry {
  /// Per-window packed-panel footprint budget, in *elements* (plans are
  /// dtype-agnostic; sized for 8-byte accumulators this is ~4 MiB, a
  /// conservative slice of a desktop L3).
  static constexpr std::int64_t kWindowElementBudget = 512 * 1024;

  std::int64_t row_panels = 0;   ///< A row-panel count (tiles_m)
  std::int64_t col_panels = 0;   ///< B column-panel count (tiles_n)
  std::int64_t chunks = 0;       ///< k-chunks per panel at pack panel_kc
  std::int64_t panel_kc = 0;     ///< == pack_geometry().panel_kc
  std::int64_t tile_window = 1;  ///< cache-aware consecutive-issue window
  /// Sharing can pay only when at least two tiles exist (otherwise every
  /// panel has exactly one consumer and the arena is pure overhead).
  bool shareable = false;
};

class SchedulePlan {
 public:
  /// Compiles `decomposition` (prefer compile_plan() for call sites).
  explicit SchedulePlan(const Decomposition& decomposition);

  /// Compiles `spec` over a grouped (multi-problem) tile space.  The
  /// resulting plan is structurally identical to a single-problem one --
  /// same arena, fixup index, spill slots -- the tiles just have
  /// non-uniform iteration depths; mapping() is unavailable, group() holds
  /// the per-problem geometry instead.
  SchedulePlan(const GroupedMapping& grouped, const DecompositionSpec& spec);

  /// Grouped compilation with a caller-supplied segment generator and grid
  /// -- the injection point for the static analyzer's seeded-flaw plans
  /// (analysis/flaws.hpp) and for negative tests that need structurally
  /// broken grouped schedules.  Production callers use the
  /// (grouped, spec) constructor, whose generator is grouped_cta_work().
  SchedulePlan(const GroupedMapping& grouped, const DecompositionSpec& spec,
               std::int64_t grid,
               const std::function<CtaWork(std::int64_t)>& work_of);

  DecompositionKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  /// Single-problem quantization; fails loudly for grouped plans (whose
  /// tiles have no one WorkMapping) -- consult group() there.
  const WorkMapping& mapping() const;
  /// Per-problem geometry of a grouped plan, nullptr for single-problem
  /// plans.
  const GroupedMapping* group() const { return grouped_.get(); }
  /// Blocking factors (valid for both plan flavors).
  const gpu::BlockShape& block() const { return block_; }
  std::int64_t grid() const { return grid_; }
  std::int64_t tiles() const { return tiles_; }

  /// The ordered segment stream of CTA `cta`, as a view into the arena.
  std::span<const TileSegment> cta_segments(std::int64_t cta) const;
  bool cta_empty(std::int64_t cta) const { return cta_segments(cta).empty(); }

  /// Every segment of the schedule, CTA-major.
  std::span<const TileSegment> segments() const { return segments_; }

  /// CTA owning `tile` (performed its k = 0 iteration); -1 only for
  /// malformed schedules, which validate_plan() rejects.
  std::int64_t tile_owner(std::int64_t tile) const;

  /// CTAs spilling partials for `tile`, ascending id, owner excluded.
  std::span<const std::int64_t> tile_contributors(std::int64_t tile) const;

  /// CTAs covering `tile` (owner + contributors).
  std::int64_t tile_peer_count(std::int64_t tile) const {
    return 1 + static_cast<std::int64_t>(tile_contributors(tile).size());
  }

  /// Partials-slot index of `cta`, or -1 when the CTA never spills.  Slots
  /// are dense in [0, spill_slot_count()) and assigned in ascending CTA id.
  std::int64_t spill_slot(std::int64_t cta) const;
  std::int64_t spill_slot_count() const { return spill_slots_; }

  std::int64_t total_segments() const {
    return static_cast<std::int64_t>(segments_.size());
  }
  /// MAC-loop iterations covered by all segments (== mapping().total_iters()
  /// for any valid schedule).
  std::int64_t total_iters() const { return total_iters_; }
  /// Non-starting segments == partial tiles written to temporary storage.
  std::int64_t total_spills() const { return total_spills_; }
  /// Tiles covered by more than one CTA ("splitting seams").
  std::int64_t split_tiles() const { return split_tiles_; }
  /// Largest peer count over all tiles.
  std::int64_t max_peers() const { return max_peers_; }
  std::int64_t nonempty_ctas() const { return nonempty_ctas_; }

  /// Packed-panel chunking the CPU microkernel path uses for this plan.
  const PackedPanelGeometry& pack_geometry() const { return pack_geometry_; }

  /// Shared panel-cache slot geometry and cache-aware tile window.
  const PanelCacheGeometry& panel_geometry() const { return panel_geometry_; }

  /// Dispatch waves on a device exposing `slots` residency slots.
  std::int64_t waves(std::int64_t slots) const {
    return slots > 0 ? ceil_div(grid_, slots) : 0;
  }

  /// False when compilation observed a structurally unrunnable schedule:
  /// a tile without an owner, a tile with two owners, or a CTA with two
  /// non-starting segments.  validate_plan() gives the precise diagnostic.
  bool runnable() const {
    return !missing_owner_ && !duplicate_owner_ && !double_spill_;
  }

  /// Throws CheckError unless runnable().  Execution substrates call this
  /// before touching partials slots, restoring the fail-fast behaviour the
  /// pre-plan FixupTable / FixupWorkspace constructors provided.
  void check_runnable() const;

  /// The compiled epilogue attached to this plan for `spec`'s op chain:
  /// compiles + validates on first use and memoizes per epilogue class
  /// (thread-safe; copies of the plan share one memo).  A steady-state
  /// fused call pays a shared-lock acquire plus a short op-chain compare
  /// -- no allocation, no recompile.  The chain's data bindings are
  /// deliberately *not*
  /// captured -- plans are shared across calls, bindings are per call.
  epilogue::EpiloguePlanPtr epilogue_plan(
      const epilogue::EpilogueSpec& spec) const;

 private:
  /// One pass over `work_of` for every CTA in [0, grid_): fills the arena,
  /// owner/spill tracking, and totals (the shared compilation core of both
  /// constructors).
  void ingest_ctas(const std::function<CtaWork(std::int64_t)>& work_of);
  /// Packed-panel chunk depth from the observed longest segment.
  void finalize_pack_chunking();
  /// Prefix-sums contributor counts and fills the contributor pool.
  void build_contributor_index();

  DecompositionKind kind_;
  std::string name_;
  WorkMapping mapping_;
  gpu::BlockShape block_;
  std::int64_t grid_;
  std::int64_t tiles_ = 0;
  /// Set only for grouped plans (shared so plan copies stay cheap).
  std::shared_ptr<const GroupedMapping> grouped_;

  std::vector<TileSegment> segments_;       ///< CTA-major arena
  std::vector<std::int64_t> cta_offsets_;   ///< grid + 1 offsets into arena

  std::vector<std::int64_t> tile_owner_;          ///< tiles
  std::vector<std::int64_t> contributor_pool_;    ///< flat, ascending per tile
  std::vector<std::int64_t> contributor_offsets_; ///< tiles + 1 offsets

  std::vector<std::int64_t> spill_slot_of_cta_;   ///< grid, -1 = no slot
  std::int64_t spill_slots_ = 0;

  PackedPanelGeometry pack_geometry_;
  PanelCacheGeometry panel_geometry_;

  std::int64_t total_iters_ = 0;
  std::int64_t total_spills_ = 0;
  std::int64_t split_tiles_ = 0;
  std::int64_t max_peers_ = 1;
  std::int64_t nonempty_ctas_ = 0;

  bool missing_owner_ = false;
  bool duplicate_owner_ = false;
  bool double_spill_ = false;

  /// Per-class memo behind epilogue_plan(); held by shared_ptr so the plan
  /// stays movable/copyable (a mutex member would pin it) and copies share
  /// the compiled chains.
  struct EpilogueMemo;
  std::shared_ptr<EpilogueMemo> epilogue_memo_;
};

/// Compiles the entire decomposition into a SchedulePlan (one cta_work()
/// sweep; O(total segments) time and space).
SchedulePlan compile_plan(const Decomposition& decomposition);

/// Cache key: everything a compiled plan depends on.  `device_sms` carries
/// the GpuSpec discriminator so the same logical GEMM planned for two
/// devices of different width never aliases.
struct PlanKey {
  GemmShape shape;
  gpu::BlockShape block;
  TileOrder order = TileOrder::kRowMajor;
  DecompositionKind kind = DecompositionKind::kDataParallel;
  std::int64_t grid = 0;
  std::int64_t split = 1;
  std::int64_t sm_count = 0;
  std::int64_t device_sms = 0;
  /// Grouped plans: the shape sequence in group order (shape itself is the
  /// zero GemmShape then, so grouped keys never alias single-problem ones).
  std::vector<GemmShape> group;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// Builds the key for (mapping, spec) with the Stream-K default grid
/// resolved, so specs that construct identical schedules share one entry.
PlanKey make_plan_key(const WorkMapping& mapping, const DecompositionSpec& spec,
                      std::int64_t device_sms = 0);
PlanKey make_plan_key(const WorkMapping& mapping, const DecompositionSpec& spec,
                      const gpu::GpuSpec& gpu);

/// Key for a grouped plan: same normalization, keyed on the ordered shape
/// sequence plus the shared block.
PlanKey make_grouped_plan_key(const GroupedMapping& grouped,
                              const DecompositionSpec& spec,
                              std::int64_t device_sms = 0);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const;
};

/// Thread-safe memoization of compiled plans for the ensemble/library layer.
/// Hits return pointer-identical plans; misses compile outside the lock and
/// insert-or-adopt, so concurrent first lookups of one key also converge on
/// a single plan object.  Capacity is bounded (FIFO eviction) so corpus
/// sweeps over unbounded shape populations cannot grow memory without
/// limit; outstanding shared_ptrs keep evicted plans alive for holders.
class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const SchedulePlan>;

  /// `max_plans` bounds the resident plan count (must be >= 1).
  explicit PlanCache(std::size_t max_plans = 4096);

  /// The plan for `key`, compiling make_decomposition(spec, mapping) on miss.
  PlanPtr obtain(const PlanKey& key, const WorkMapping& mapping,
                 const DecompositionSpec& spec);

  /// Grouped flavor: compiles SchedulePlan(grouped, spec) on miss.
  PlanPtr obtain(const PlanKey& key, const GroupedMapping& grouped,
                 const DecompositionSpec& spec);

  /// The cached plan for `key`, or nullptr (never compiles).
  PlanPtr lookup(const PlanKey& key) const;

  std::size_t size() const;
  std::size_t capacity() const { return max_plans_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  void clear();

 private:
  /// Hit path of obtain(): counts and returns the cached plan, or nullptr.
  PlanPtr hit_or_null(const PlanKey& key);
  /// Miss path: insert `plan` or adopt a concurrent winner (FIFO eviction).
  PlanPtr insert_or_adopt(const PlanKey& key, PlanPtr plan);

  std::size_t max_plans_;
  mutable std::mutex mutex_;
  std::unordered_map<PlanKey, PlanPtr, PlanKeyHash> plans_;
  /// Insertion order for FIFO eviction.
  std::deque<PlanKey> insertion_order_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace streamk::core
