#pragma once

// Fixed-split decomposition (Algorithm 4 of the paper).
//
// Each output tile is produced cooperatively by `s` CTAs that split the
// tile's MAC-loop iteration range uniformly (ceil division).  Split CTAs
// with y != 0 store partial sums and signal; the y == 0 CTA reduces them and
// writes the tile.  With s == 1 this degenerates exactly to data-parallel.
//
// CTA ids linearize tile-major: cta = tile * s + y, so consecutive ids for
// one tile are adjacent, and descending-id execution orders producers before
// the reducing y == 0 CTA.

#include "core/decomposition.hpp"

namespace streamk::core {

class FixedSplit final : public Decomposition {
 public:
  FixedSplit(WorkMapping mapping, std::int64_t split);

  DecompositionKind kind() const override {
    return DecompositionKind::kFixedSplit;
  }
  std::string name() const override {
    return "fixed-split(s=" + std::to_string(split_) + ")";
  }
  std::int64_t grid_size() const override { return mapping_.tiles() * split_; }
  CtaWork cta_work(std::int64_t cta) const override;

  std::int64_t split() const { return split_; }
  std::int64_t iters_per_split() const { return iters_per_split_; }

 private:
  std::int64_t split_;
  std::int64_t iters_per_split_;
};

}  // namespace streamk::core
