#include "core/peers.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace streamk::core {

FixupTable::FixupTable(const Decomposition& decomposition) {
  table_.resize(static_cast<std::size_t>(decomposition.mapping().tiles()));

  const std::int64_t grid = decomposition.grid_size();
  for (std::int64_t cta = 0; cta < grid; ++cta) {
    const CtaWork work = decomposition.cta_work(cta);
    for (const TileSegment& segment : work.segments) {
      TileFixup& fixup = table_[static_cast<std::size_t>(segment.tile_idx)];
      if (segment.starts_tile()) {
        util::check(fixup.owner == -1, "tile has two owning CTAs");
        fixup.owner = cta;
      } else {
        fixup.contributors.push_back(cta);
      }
    }
  }

  for (TileFixup& fixup : table_) {
    util::check(fixup.owner != -1, "tile has no owning CTA");
    std::sort(fixup.contributors.begin(), fixup.contributors.end());
    if (!fixup.contributors.empty()) {
      ++split_tiles_;
      total_partials_ +=
          static_cast<std::int64_t>(fixup.contributors.size());
    }
    max_peers_ = std::max(max_peers_, fixup.peer_count());
  }
}

const TileFixup& FixupTable::tile(std::int64_t tile_idx) const {
  util::check(tile_idx >= 0 &&
                  tile_idx < static_cast<std::int64_t>(table_.size()),
              "tile index out of range");
  return table_[static_cast<std::size_t>(tile_idx)];
}

}  // namespace streamk::core
