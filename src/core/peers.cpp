#include "core/peers.hpp"

#include <algorithm>

#include "core/schedule_plan.hpp"
#include "util/check.hpp"

namespace streamk::core {

FixupTable::FixupTable(const SchedulePlan& plan) {
  plan.check_runnable();
  const std::int64_t tiles = plan.tiles();
  table_.resize(static_cast<std::size_t>(tiles));
  for (std::int64_t tile = 0; tile < tiles; ++tile) {
    TileFixup& fixup = table_[static_cast<std::size_t>(tile)];
    fixup.owner = plan.tile_owner(tile);
    util::check(fixup.owner != -1, "tile has no owning CTA");
    const std::span<const std::int64_t> contributors =
        plan.tile_contributors(tile);
    fixup.contributors.assign(contributors.begin(), contributors.end());
    if (!fixup.contributors.empty()) {
      ++split_tiles_;
      total_partials_ +=
          static_cast<std::int64_t>(fixup.contributors.size());
    }
    max_peers_ = std::max(max_peers_, fixup.peer_count());
  }
}

FixupTable::FixupTable(const Decomposition& decomposition)
    : FixupTable(compile_plan(decomposition)) {}

const TileFixup& FixupTable::tile(std::int64_t tile_idx) const {
  util::check(tile_idx >= 0 &&
                  tile_idx < static_cast<std::int64_t>(table_.size()),
              "tile index out of range");
  return table_[static_cast<std::size_t>(tile_idx)];
}

}  // namespace streamk::core
