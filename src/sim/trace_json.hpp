#pragma once

// Chrome-trace export of simulated execution timelines.
//
// Writes a Timeline in the Trace Event Format understood by
// chrome://tracing and https://ui.perfetto.dev: one track per SM, one
// complete ("X") event per CTA phase, with CTA id / tile / phase kind in
// args.  Gives the paper's schedule figures an interactive counterpart.

#include <string>

#include "sim/trace.hpp"

namespace streamk::sim {

/// Serializes the timeline as a Trace Event Format JSON array.
std::string to_chrome_trace(const Timeline& timeline);

/// Writes to_chrome_trace() output to `path`.
void write_chrome_trace(const std::string& path, const Timeline& timeline);

}  // namespace streamk::sim
