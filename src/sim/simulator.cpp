#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>
#include <span>
#include <vector>

#include "core/schedule_plan.hpp"
#include "core/validate.hpp"
#include "util/check.hpp"

namespace streamk::sim {

namespace {

enum class Phase { kMacPending, kPostMac };

struct CtaState {
  std::span<const core::TileSegment> segments;
  std::size_t seg = 0;
  Phase phase = Phase::kMacPending;
  std::size_t next_contributor = 0;
  double clock = 0.0;
  std::int64_t slot = -1;
  bool setup_done = false;
  bool dispatched = false;
  bool done = false;
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::int64_t cta = -1;
  bool free_slot = false;  // false: run/resume the CTA

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

class Engine {
 public:
  Engine(const core::SchedulePlan& plan, const model::CostModel& model,
         const gpu::GpuSpec& gpu, const SimOptions& options)
      : plan_(plan),
        params_(model.params()),
        gpu_(gpu),
        options_(options),
        grid_(plan.grid()) {
    const std::int64_t occ =
        options.occupancy_override > 0
            ? options.occupancy_override
            : model::occupancy(model.block(), model.precision());
    slots_ = gpu.sm_count * occ;
    // Co-resident CTAs time-share an SM's math pipes for the duration of the
    // schedule (constant-contention approximation, matching wave_model).
    const std::int64_t resident = core::ceil_div(
        std::min<std::int64_t>(grid_, slots_), gpu.sm_count);
    contention_ = static_cast<double>(std::max<std::int64_t>(1, resident));

    states_.resize(static_cast<std::size_t>(grid_));
    for (std::int64_t cta = 0; cta < grid_; ++cta) {
      states_[static_cast<std::size_t>(cta)].segments = plan.cta_segments(cta);
    }
    signal_time_.assign(static_cast<std::size_t>(grid_), 0.0);
    signaled_.assign(static_cast<std::size_t>(grid_), false);
    waiters_.resize(static_cast<std::size_t>(grid_));
    for (std::int64_t slot = slots_; slot-- > 0;) free_slots_.push_back(slot);
  }

  SimResult run() {
    dispatch_pending(0.0);
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      if (ev.free_slot) {
        free_slots_.push_back(state(ev.cta).slot);
        dispatch_pending(ev.time);
      } else {
        advance(ev.cta);
      }
    }

    for (const CtaState& s : states_) {
      util::check(s.done, "simulation stalled: cyclic wait (invalid schedule)");
    }

    SimResult result;
    result.makespan = makespan_;
    result.busy_time = busy_;
    result.wait_time = wait_;
    result.spills = spills_;
    result.grid = grid_;
    result.slots = slots_;
    result.occupancy_efficiency =
        makespan_ > 0.0
            ? busy_ / (makespan_ * static_cast<double>(slots_))
            : 1.0;
    if (options_.record_trace) {
      timeline_.makespan = makespan_;
      timeline_.sm_count = gpu_.sm_count;
      result.timeline = std::move(timeline_);
    }
    return result;
  }

 private:
  CtaState& state(std::int64_t cta) {
    return states_[static_cast<std::size_t>(cta)];
  }

  void push_event(double time, std::int64_t cta, bool free_slot) {
    events_.push(Event{time, seq_++, cta, free_slot});
  }

  void dispatch_pending(double now) {
    while (!free_slots_.empty() && next_cta_ < grid_) {
      CtaState& s = state(next_cta_);
      s.slot = free_slots_.back();
      free_slots_.pop_back();
      s.clock = now;
      s.dispatched = true;
      push_event(now, next_cta_, /*free_slot=*/false);
      ++next_cta_;
    }
  }

  void record(std::int64_t cta, std::int64_t tile, PhaseKind kind,
              double begin, double end) {
    if (end <= begin) return;
    if (kind == PhaseKind::kWait) {
      wait_ += end - begin;
    } else {
      busy_ += end - begin;
    }
    if (options_.record_trace) {
      const std::int64_t sm = state(cta).slot % gpu_.sm_count;
      timeline_.events.push_back(PhaseEvent{cta, sm, tile, kind, begin, end});
    }
  }

  void signal(std::int64_t cta, double time) {
    signal_time_[static_cast<std::size_t>(cta)] = time;
    signaled_[static_cast<std::size_t>(cta)] = true;
    auto& waiters = waiters_[static_cast<std::size_t>(cta)];
    for (const std::int64_t waiter : waiters) {
      push_event(time, waiter, /*free_slot=*/false);
    }
    waiters.clear();
  }

  /// Runs CTA `cta` from its stored position until it blocks or completes.
  void advance(std::int64_t cta) {
    CtaState& s = state(cta);
    util::check(!s.done, "event for completed CTA");

    if (!s.setup_done) {
      record(cta, -1, PhaseKind::kSetup, s.clock, s.clock + params_.a);
      s.clock += params_.a;
      s.setup_done = true;
    }

    while (s.seg < s.segments.size()) {
      const core::TileSegment& seg = s.segments[s.seg];

      if (s.phase == Phase::kMacPending) {
        const double duration =
            params_.c * static_cast<double>(seg.iters()) * contention_;
        record(cta, seg.tile_idx, PhaseKind::kMac, s.clock, s.clock + duration);
        s.clock += duration;
        s.phase = Phase::kPostMac;
      }

      if (!seg.starts_tile()) {
        // Store partials to temporary global storage and raise the flag.
        record(cta, seg.tile_idx, PhaseKind::kSpill, s.clock,
               s.clock + params_.b);
        s.clock += params_.b;
        ++spills_;
        signal(cta, s.clock);
      } else if (!seg.ends_tile()) {
        // This CTA owns the tile: serially await and reduce each
        // contributing peer in ascending id order (Algorithm 5).
        const std::span<const std::int64_t> contributors =
            plan_.tile_contributors(seg.tile_idx);
        while (s.next_contributor < contributors.size()) {
          const std::int64_t peer = contributors[s.next_contributor];
          if (!signaled_[static_cast<std::size_t>(peer)]) {
            waiters_[static_cast<std::size_t>(peer)].push_back(cta);
            return;  // blocked; resumed by signal()
          }
          const double sig = signal_time_[static_cast<std::size_t>(peer)];
          if (sig > s.clock) {
            record(cta, seg.tile_idx, PhaseKind::kWait, s.clock, sig);
            s.clock = sig;
          }
          record(cta, seg.tile_idx, PhaseKind::kReduce, s.clock,
                 s.clock + params_.d);
          s.clock += params_.d;
          ++s.next_contributor;
        }
        s.next_contributor = 0;
      }
      // Owning-and-closing segments store the tile directly; the store cost
      // is part of the per-CTA fixed cost `a` (Appendix A.1).

      s.phase = Phase::kMacPending;
      ++s.seg;
    }

    s.done = true;
    makespan_ = std::max(makespan_, s.clock);
    push_event(s.clock, cta, /*free_slot=*/true);
  }

  const core::SchedulePlan& plan_;
  model::CostParams params_;
  const gpu::GpuSpec& gpu_;
  SimOptions options_;

  std::int64_t grid_;
  std::int64_t slots_ = 0;
  double contention_ = 1.0;

  std::vector<CtaState> states_;
  std::vector<double> signal_time_;
  std::vector<bool> signaled_;
  std::vector<std::vector<std::int64_t>> waiters_;
  std::vector<std::int64_t> free_slots_;
  std::int64_t next_cta_ = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;

  double makespan_ = 0.0;
  double busy_ = 0.0;
  double wait_ = 0.0;
  std::int64_t spills_ = 0;
  Timeline timeline_;
};

}  // namespace

SimResult simulate(const core::SchedulePlan& plan,
                   const model::CostModel& model, const gpu::GpuSpec& gpu,
                   const SimOptions& options) {
  util::check(gpu.sm_count >= 1, "GPU without SMs");
  plan.check_runnable();
  Engine engine(plan, model, gpu, options);
  return engine.run();
}

SimResult simulate(const core::Decomposition& decomposition,
                   const model::CostModel& model, const gpu::GpuSpec& gpu,
                   const SimOptions& options) {
  const core::SchedulePlan plan = core::compile_plan(decomposition);
  return simulate(plan, model, gpu, options);
}

}  // namespace streamk::sim
