#include "sim/schedule_render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace streamk::sim {

char cta_glyph(std::int64_t cta) {
  static constexpr char kGlyphs[] =
      "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  return kGlyphs[static_cast<std::size_t>(cta % 62)];
}

namespace {

char phase_glyph(const PhaseEvent& event) {
  switch (event.kind) {
    case PhaseKind::kSetup:
      return '=';
    case PhaseKind::kMac:
      return cta_glyph(event.cta);
    case PhaseKind::kSpill:
      return 's';
    case PhaseKind::kWait:
      return '-';
    case PhaseKind::kReduce:
      return 'r';
  }
  return '?';
}

}  // namespace

std::string render_schedule(const Timeline& timeline,
                            const RenderOptions& options) {
  util::check(timeline.sm_count > 0, "timeline without SMs");
  util::check(options.width >= 8, "render width too small");

  const double span = timeline.makespan > 0.0 ? timeline.makespan : 1.0;
  const auto width = options.width;
  std::vector<std::string> rows(static_cast<std::size_t>(timeline.sm_count),
                                std::string(width, '.'));

  // Paint in event order; later events win ties on shared cells, which only
  // happen at phase boundaries.
  for (const PhaseEvent& event : timeline.events) {
    const auto row = static_cast<std::size_t>(event.sm);
    auto lo = static_cast<std::size_t>(event.begin / span *
                                       static_cast<double>(width));
    auto hi = static_cast<std::size_t>(event.end / span *
                                       static_cast<double>(width));
    lo = std::min(lo, width - 1);
    hi = std::min(std::max(hi, lo + 1), width);
    const char glyph = phase_glyph(event);
    for (std::size_t i = lo; i < hi; ++i) rows[row][i] = glyph;
  }

  std::ostringstream os;
  for (std::int64_t sm = 0; sm < timeline.sm_count; ++sm) {
    os << "SM" << sm << " |" << rows[static_cast<std::size_t>(sm)] << "|\n";
  }
  const double busy = timeline.busy_time();
  const double ceiling =
      busy / (span * static_cast<double>(timeline.sm_count));
  os << "makespan: " << timeline.makespan
     << " s, occupancy efficiency: " << ceiling * 100.0 << "%\n";
  if (options.show_legend) {
    os << "legend: 0-9A-Za-z MAC by CTA id, '=' setup, 's' spill, "
          "'-' wait, 'r' reduce, '.' idle\n";
  }
  return os.str();
}

}  // namespace streamk::sim
