#include "sim/trace.hpp"

#include "util/check.hpp"

namespace streamk::sim {

std::string_view phase_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kSetup:
      return "setup";
    case PhaseKind::kMac:
      return "mac";
    case PhaseKind::kSpill:
      return "spill";
    case PhaseKind::kWait:
      return "wait";
    case PhaseKind::kReduce:
      return "reduce";
  }
  util::fail("unknown phase kind");
}

double Timeline::busy_time() const {
  double sum = 0.0;
  for (const PhaseEvent& e : events) {
    if (e.kind != PhaseKind::kWait) sum += e.duration();
  }
  return sum;
}

double Timeline::wait_time() const {
  double sum = 0.0;
  for (const PhaseEvent& e : events) {
    if (e.kind == PhaseKind::kWait) sum += e.duration();
  }
  return sum;
}

double Timeline::sm_busy(std::int64_t sm) const {
  double sum = 0.0;
  for (const PhaseEvent& e : events) {
    if (e.sm == sm && e.kind != PhaseKind::kWait) sum += e.duration();
  }
  return sum;
}

}  // namespace streamk::sim
