#pragma once

// Execution timelines produced by the discrete-event simulator.
//
// A Timeline is a list of per-CTA phase intervals tagged with the SM that
// hosted them.  The schedule renderer turns timelines into the per-SM Gantt
// charts of Figures 1-3 and 9; tests use them to assert conservation
// properties (busy time == modelled work) and wait behaviour.

#include <cstdint>
#include <string_view>
#include <vector>

namespace streamk::sim {

enum class PhaseKind {
  kSetup,        ///< per-CTA fixed cost `a`
  kMac,          ///< MAC-loop iterations of one segment
  kSpill,        ///< store partials + signal (`b`)
  kWait,         ///< blocked on a peer's flag
  kReduce,       ///< read + accumulate peers' partials (`d` per peer)
};

std::string_view phase_name(PhaseKind kind);

struct PhaseEvent {
  std::int64_t cta = -1;
  std::int64_t sm = -1;
  std::int64_t tile = -1;  ///< -1 for phases not tied to a tile
  PhaseKind kind = PhaseKind::kSetup;
  double begin = 0.0;
  double end = 0.0;

  double duration() const { return end - begin; }
};

struct Timeline {
  std::vector<PhaseEvent> events;
  double makespan = 0.0;
  std::int64_t sm_count = 0;

  /// Sum of per-SM busy time (all phases except waits).
  double busy_time() const;
  /// Total time CTAs spent blocked on flags.
  double wait_time() const;
  /// Busy time of one SM.
  double sm_busy(std::int64_t sm) const;
};

}  // namespace streamk::sim
