#pragma once

// Discrete-event simulation of a decomposition on a virtual GPU.
//
// Model (matching the paper's execution semantics):
//   * The device exposes `slots = sm_count * occupancy` CTA residency slots.
//     CTAs dispatch in ascending id order as slots free ("waves").
//   * A resident CTA executes its segment stream sequentially:
//       setup `a` once; per segment `c * iters` of MAC work (scaled by the
//       number of co-resident CTAs per SM, which time-share the pipes);
//       then either a spill (`b`, followed by a flag signal) for a
//       non-starting segment, or -- for an owning, non-closing segment --
//       a blocking wait on every contributing peer's flag followed by a
//       serial `d`-per-peer reduction.
//   * A waiting CTA keeps occupying its slot (GPUs cannot preempt CTAs).
//
// Deadlock freedom: a CTA signals its (single) spill before it can ever
// wait, waits only target CTAs that spill, and validate_decomposition
// guarantees one spill slot per CTA -- so progress follows by induction on
// CTA id (see DESIGN.md).  The simulator still detects and reports cyclic
// stalls defensively.
//
// Complexity: O(total segments + g log g); exact for any decomposition, and
// the closed forms in model/wave_model.hpp are validated against it.  The
// engine consumes a compiled core::SchedulePlan -- the same IR the CPU
// executor runs -- so setup is O(segments) array views, not per-CTA stream
// materialization.

#include <cstdint>

#include "core/decomposition.hpp"
#include "core/schedule_plan.hpp"
#include "gpu/gpu_spec.hpp"
#include "model/cost_model.hpp"
#include "sim/trace.hpp"

namespace streamk::sim {

struct SimOptions {
  /// Record a full phase-event timeline (Gantt rendering, tests).
  bool record_trace = false;
  /// Override the residency computed from the cost model's blocking factor
  /// (0 = use model::occupancy()).  The paper's hypothetical-GPU figures
  /// assume one CTA per SM.
  std::int64_t occupancy_override = 0;
};

struct SimResult {
  double makespan = 0.0;
  double busy_time = 0.0;       ///< all CTAs' non-wait execution time
  double wait_time = 0.0;       ///< total flag-wait time
  std::int64_t spills = 0;      ///< partial tiles written to temporary storage
  std::int64_t grid = 0;
  std::int64_t slots = 0;
  /// busy_time / (makespan * slots): the utilization ceiling imposed by the
  /// schedule (Figure 1's 75% / 90% / ~100% numbers).
  double occupancy_efficiency = 0.0;
  Timeline timeline;  ///< populated when record_trace
};

SimResult simulate(const core::SchedulePlan& plan,
                   const model::CostModel& model, const gpu::GpuSpec& gpu,
                   const SimOptions& options = {});

/// Convenience overload: compiles `decomposition` and simulates the plan.
SimResult simulate(const core::Decomposition& decomposition,
                   const model::CostModel& model, const gpu::GpuSpec& gpu,
                   const SimOptions& options = {});

}  // namespace streamk::sim
