#pragma once

// End-to-end kernel performance estimation.
//
// Combines (1) a compute makespan -- from the discrete-event simulator for
// modest grids, or the validated closed forms for very large ones -- with
// (2) the DRAM roofline of model/memory_model.hpp, yielding the delivered
// runtime, throughput, and utilization of one kernel launch on a virtual
// GPU.  This is the measurement primitive behind every corpus experiment
// (Tables 1-2, Figures 5-7).

#include <cstdint>

#include "core/decomposition.hpp"
#include "gpu/gpu_spec.hpp"
#include "model/cost_model.hpp"
#include "sim/simulator.hpp"

namespace streamk::core {
class PlanCache;
}  // namespace streamk::core

namespace streamk::sim {

struct KernelEstimate {
  core::DecompositionKind kind = core::DecompositionKind::kDataParallel;
  std::int64_t grid = 0;
  std::int64_t spills = 0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double seconds = 0.0;       ///< max(compute, memory): delivered runtime
  double utilization = 0.0;   ///< useful FLOPs / (seconds * peak)
  double tflops = 0.0;        ///< delivered useful TFLOP/s
  bool used_des = false;      ///< event simulation vs closed form
};

struct EstimateOptions {
  /// Schedules whose segment count exceeds this use the closed-form models
  /// (validated against the simulator in tests/test_sim_vs_model.cpp).
  std::int64_t des_segment_limit = 4096;
  bool force_des = false;
  bool force_closed_form = false;
  /// When set, event-simulated schedules are compiled through this cache so
  /// repeated estimates of one (shape, spec, GPU) reuse the SchedulePlan.
  core::PlanCache* plan_cache = nullptr;
};

KernelEstimate estimate_kernel(const core::DecompositionSpec& spec,
                               const core::WorkMapping& mapping,
                               const model::CostModel& model,
                               const gpu::GpuSpec& gpu,
                               const EstimateOptions& options = {});

}  // namespace streamk::sim
