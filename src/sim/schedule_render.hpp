#pragma once

// ASCII Gantt rendering of simulated execution schedules.
//
// Reproduces the visual content of the paper's Figures 1-3 and 9: one row
// per SM, time flowing left to right, each cell showing which CTA occupied
// the SM and what it was doing:
//
//     glyph 0-9A-Z...  MAC work of CTA (id mod 62)
//     '='              per-CTA setup
//     's'              partial-sum spill
//     '-'              flag wait
//     'r'              fixup reduction
//     '.'              idle SM
//
// A summary footer reports the makespan and the schedule's occupancy
// efficiency (the utilization ceilings the paper quotes: 75% for Figure 1a,
// 90% for 1b/2a, ~100% for 2b).

#include <string>

#include "sim/trace.hpp"

namespace streamk::sim {

struct RenderOptions {
  std::size_t width = 96;  ///< characters of timeline per SM row
  bool show_legend = true;
};

std::string render_schedule(const Timeline& timeline,
                            const RenderOptions& options = {});

/// Glyph used for a CTA's MAC phases.
char cta_glyph(std::int64_t cta);

}  // namespace streamk::sim
