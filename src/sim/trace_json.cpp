#include "sim/trace_json.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace streamk::sim {

std::string to_chrome_trace(const Timeline& timeline) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (std::int64_t sm = 0; sm < timeline.sm_count; ++sm) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << sm
       << ",\"args\":{\"name\":\"SM " << sm << "\"}}";
  }
  for (const PhaseEvent& e : timeline.events) {
    os << ",{\"name\":\"" << phase_name(e.kind);
    if (e.tile >= 0) os << " tile " << e.tile;
    // Timestamps in microseconds, as the format expects.
    os << "\",\"ph\":\"X\",\"ts\":" << e.begin * 1e6
       << ",\"dur\":" << e.duration() * 1e6 << ",\"pid\":0,\"tid\":" << e.sm
       << ",\"args\":{\"cta\":" << e.cta << ",\"kind\":\""
       << phase_name(e.kind) << "\"}}";
  }
  os << "]";
  return os.str();
}

void write_chrome_trace(const std::string& path, const Timeline& timeline) {
  std::ofstream out(path);
  util::check(out.good(), "cannot open trace output: " + path);
  out << to_chrome_trace(timeline);
}

}  // namespace streamk::sim
