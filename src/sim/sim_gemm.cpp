#include "sim/sim_gemm.hpp"

#include <algorithm>

#include "core/hybrid.hpp"
#include "core/schedule_plan.hpp"
#include "core/stream_k.hpp"
#include "model/memory_model.hpp"
#include "model/wave_model.hpp"
#include "util/check.hpp"

namespace streamk::sim {

namespace {

/// Spill count of a hybrid schedule's Stream-K region, in closed form.
std::int64_t hybrid_spills(const core::WorkMapping& mapping,
                           core::DecompositionKind kind, std::int64_t slots) {
  const core::HybridLayout layout =
      kind == core::DecompositionKind::kHybridOneTile
          ? core::HybridLayout::one_tile(mapping, slots)
          : core::HybridLayout::two_tile(mapping, slots);
  if (layout.sk_tiles == 0) return 0;
  const std::int64_t sk_iters = layout.sk_tiles * mapping.iters_per_tile();
  std::int64_t spills = 0;
  for (std::int64_t cta = 0; cta < slots; ++cta) {
    const core::IterRange range = core::partition_iters(
        sk_iters, slots, cta, core::IterPartition::kBalancedWithinOne);
    if (range.size() > 0 && range.begin % mapping.iters_per_tile() != 0) {
      ++spills;
    }
  }
  return spills;
}

/// Upper bound on segment count, used to route between the event simulator
/// and the closed forms.
std::int64_t segment_bound(const core::DecompositionSpec& spec,
                           const core::WorkMapping& mapping,
                           std::int64_t slots) {
  switch (spec.kind) {
    case core::DecompositionKind::kDataParallel:
      return mapping.tiles();
    case core::DecompositionKind::kFixedSplit:
      return mapping.tiles() * spec.split;
    case core::DecompositionKind::kStreamKBasic: {
      const std::int64_t g = spec.grid > 0 ? spec.grid : slots;
      return mapping.tiles() + 2 * g;
    }
    case core::DecompositionKind::kHybridOneTile:
    case core::DecompositionKind::kHybridTwoTile:
      return mapping.tiles() + 2 * slots;
  }
  util::fail("unknown decomposition kind");
}

double closed_form_makespan(const core::DecompositionSpec& spec,
                            const core::WorkMapping& mapping,
                            const model::CostModel& model,
                            const gpu::GpuSpec& gpu, std::int64_t slots) {
  switch (spec.kind) {
    case core::DecompositionKind::kDataParallel:
      return model::data_parallel_makespan(model, mapping, gpu);
    case core::DecompositionKind::kFixedSplit:
      return model::fixed_split_makespan(model, mapping, spec.split, gpu);
    case core::DecompositionKind::kStreamKBasic:
      return model::stream_k_makespan(
          model, mapping, spec.grid > 0 ? spec.grid : slots, gpu);
    case core::DecompositionKind::kHybridOneTile:
    case core::DecompositionKind::kHybridTwoTile:
      return model::hybrid_makespan(model, mapping, spec.kind, gpu);
  }
  util::fail("unknown decomposition kind");
}

std::int64_t closed_form_spills(const core::DecompositionSpec& spec,
                                const core::WorkMapping& mapping,
                                std::int64_t slots) {
  switch (spec.kind) {
    case core::DecompositionKind::kDataParallel:
      return model::data_parallel_spills();
    case core::DecompositionKind::kFixedSplit:
      return model::fixed_split_spills(mapping, spec.split);
    case core::DecompositionKind::kStreamKBasic:
      return model::stream_k_spills(mapping,
                                    spec.grid > 0 ? spec.grid : slots);
    case core::DecompositionKind::kHybridOneTile:
    case core::DecompositionKind::kHybridTwoTile:
      return hybrid_spills(mapping, spec.kind, slots);
  }
  util::fail("unknown decomposition kind");
}

std::int64_t grid_of(const core::DecompositionSpec& spec,
                     const core::WorkMapping& mapping, std::int64_t slots) {
  switch (spec.kind) {
    case core::DecompositionKind::kDataParallel:
      return mapping.tiles();
    case core::DecompositionKind::kFixedSplit:
      return mapping.tiles() * spec.split;
    case core::DecompositionKind::kStreamKBasic:
      return spec.grid > 0 ? spec.grid : slots;
    case core::DecompositionKind::kHybridOneTile:
    case core::DecompositionKind::kHybridTwoTile:
      return slots;
  }
  util::fail("unknown decomposition kind");
}

}  // namespace

KernelEstimate estimate_kernel(const core::DecompositionSpec& spec,
                               const core::WorkMapping& mapping,
                               const model::CostModel& model,
                               const gpu::GpuSpec& gpu,
                               const EstimateOptions& options) {
  util::check(!(options.force_des && options.force_closed_form),
              "cannot force both estimation paths");
  const std::int64_t occ =
      model::occupancy(model.block(), model.precision());
  const std::int64_t slots = gpu.sm_count * occ;

  // Normalize the spec so hybrids and default grids see the slot count.
  core::DecompositionSpec normalized = spec;
  normalized.sm_count = slots;
  if (normalized.kind == core::DecompositionKind::kStreamKBasic &&
      normalized.grid <= 0) {
    normalized.grid = slots;
  }

  KernelEstimate est;
  est.kind = normalized.kind;
  est.grid = grid_of(normalized, mapping, slots);

  const bool use_des =
      options.force_des ||
      (!options.force_closed_form &&
       segment_bound(normalized, mapping, slots) <= options.des_segment_limit);

  if (use_des) {
    SimResult sim;
    if (options.plan_cache) {
      const core::PlanKey key = core::make_plan_key(mapping, normalized, gpu);
      const auto plan = options.plan_cache->obtain(key, mapping, normalized);
      sim = simulate(*plan, model, gpu, SimOptions{});
    } else {
      const auto decomposition = core::make_decomposition(normalized, mapping);
      sim = simulate(core::compile_plan(*decomposition), model, gpu,
                     SimOptions{});
    }
    est.compute_seconds = sim.makespan;
    est.spills = sim.spills;
    est.used_des = true;
  } else {
    est.compute_seconds =
        closed_form_makespan(normalized, mapping, model, gpu, slots);
    est.spills = closed_form_spills(normalized, mapping, slots);
    est.used_des = false;
  }

  const model::Traffic traffic =
      model::estimate_traffic(mapping, model.precision(), est.spills);
  est.memory_seconds = model::memory_time(traffic, gpu);
  est.seconds =
      model::combine_roofline(est.compute_seconds, est.memory_seconds);
  est.utilization = model::utilization(mapping.shape().flops(), est.seconds,
                                       gpu, model.precision());
  est.tflops = mapping.shape().flops() / est.seconds / 1e12;
  return est;
}

}  // namespace streamk::sim
