#include "conv/implicit_gemm.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/decomposed_runner.hpp"
#include "cpu/mac_loop.hpp"
#include "epilogue/apply.hpp"
#include "runtime/gemm_runtime.hpp"
#include "util/threading.hpp"

namespace streamk::conv {

template <typename In, typename Acc, typename Out>
void direct_conv(const ConvShape& conv, const Tensor4<In>& input,
                 const Tensor4<In>& filter, Tensor4<Out>& output) {
  util::check(conv.valid(), "invalid convolution shape");
  for (std::int64_t n = 0; n < conv.batch; ++n) {
    for (std::int64_t p = 0; p < conv.out_h(); ++p) {
      for (std::int64_t q = 0; q < conv.out_w(); ++q) {
        for (std::int64_t k = 0; k < conv.out_channels; ++k) {
          Acc sum{};
          for (std::int64_t r = 0; r < conv.filter_h; ++r) {
            const std::int64_t h = p * conv.stride - conv.pad + r;
            if (h < 0 || h >= conv.height) continue;
            for (std::int64_t s = 0; s < conv.filter_w; ++s) {
              const std::int64_t w = q * conv.stride - conv.pad + s;
              if (w < 0 || w >= conv.width) continue;
              for (std::int64_t c = 0; c < conv.in_channels; ++c) {
                sum += static_cast<Acc>(input.at(n, h, w, c)) *
                       static_cast<Acc>(filter.at(k, r, s, c));
              }
            }
          }
          output.at(n, p, q, k) = static_cast<Out>(sum);
        }
      }
    }
  }
}

namespace {

/// Stages the implicit A-fragment's valid em x ek region: rows are output
/// pixels, columns are (r, s, c) reduction offsets; out-of-image taps are
/// zero (padding).  The padding rows/columns of the block are left alone --
/// the subsequent pack reads only the valid region.
template <typename In, typename Acc>
void gather_input_fragment(const ConvShape& conv, const Tensor4<In>& input,
                           std::int64_t mm, std::int64_t em, std::int64_t kk,
                           std::int64_t ek, const gpu::BlockShape& blk,
                           std::vector<Acc>& frag) {
  for (std::int64_t i = 0; i < em; ++i) {
    Acc* dst = frag.data() + static_cast<std::size_t>(i * blk.k);
    const OutputPixel px = output_pixel(conv, mm + i);
    for (std::int64_t l = 0; l < ek; ++l) {
      const FilterOffset off = filter_offset(conv, kk + l);
      const std::int64_t h = px.p * conv.stride - conv.pad + off.r;
      const std::int64_t w = px.q * conv.stride - conv.pad + off.s;
      if (h < 0 || h >= conv.height || w < 0 || w >= conv.width) {
        dst[l] = Acc{};
      } else {
        dst[l] = static_cast<Acc>(
            input.inner_ptr(px.n, h, w)[off.c]);
      }
    }
  }
}

/// Stages the B-fragment's valid ek x en region from the KRSC filter bank
/// viewed as (RSC x K).
template <typename In, typename Acc>
void gather_filter_fragment(const ConvShape& conv, const Tensor4<In>& filter,
                            std::int64_t nn, std::int64_t en, std::int64_t kk,
                            std::int64_t ek, const gpu::BlockShape& blk,
                            std::vector<Acc>& frag) {
  for (std::int64_t l = 0; l < ek; ++l) {
    Acc* dst = frag.data() + static_cast<std::size_t>(l * blk.n);
    const FilterOffset off = filter_offset(conv, kk + l);
    for (std::int64_t j = 0; j < en; ++j) {
      dst[j] = static_cast<Acc>(filter.at(nn + j, off.r, off.s, off.c));
    }
  }
}

}  // namespace

template <typename In, typename Acc, typename Out>
void execute_conv_plan(const core::SchedulePlan& plan, const ConvShape& conv,
                       const Tensor4<In>& input, const Tensor4<In>& filter,
                       Tensor4<Out>& output,
                       const cpu::ExecutorOptions& options) {
  util::check(conv.valid(), "invalid convolution shape");
  const core::WorkMapping& mapping = plan.mapping();
  util::check(mapping.shape() == conv.gemm_shape(),
              "decomposition does not match the conv's implicit GEMM");
  util::check(input.dim0() == conv.batch && input.dim1() == conv.height &&
                  input.dim2() == conv.width &&
                  input.dim3() == conv.in_channels,
              "input tensor extents mismatch");
  util::check(filter.dim0() == conv.out_channels &&
                  filter.dim1() == conv.filter_h &&
                  filter.dim2() == conv.filter_w &&
                  filter.dim3() == conv.in_channels,
              "filter tensor extents mismatch");
  util::check(output.dim0() == conv.batch && output.dim1() == conv.out_h() &&
                  output.dim2() == conv.out_w() &&
                  output.dim3() == conv.out_channels,
              "output tensor extents mismatch");

  const gpu::BlockShape& blk = mapping.block();

  // Fused bias + activation, MIOpen-style: bias_col is the per-output-
  // channel bias (the implicit GEMM's n axis is out_channels) and any
  // pointwise op may follow.  Row-indexed ops and the residual add are
  // rejected -- the implicit A operand's rows are gathered output pixels,
  // which no user-held matrix addresses row-major.
  const epilogue::EpiloguePlanPtr eplan = plan.epilogue_plan(options.epilogue);
  util::check(!eplan->has_row_indexed() && !eplan->needs_residual(),
              "convolution supports only per-channel bias (bias_col) and "
              "pointwise epilogue ops");
  epilogue::check_bindings(*eplan, options.epilogue, mapping.shape().m,
                           mapping.shape().n,
                           epilogue::tensor_type_of<Out>());

  // Panel-cache grid for the implicit operands: chunks are single MAC-loop
  // iterations (the gather works per iteration, so chunk_depth is BLK_K).
  // A cache hit here skips both the pack *and* the per-element gather --
  // the most expensive staging of any substrate.
  core::PanelCacheGeometry conv_geo = plan.panel_geometry();
  cpu::PanelCacheConfig cache_config;
  cache_config.row_panels = conv_geo.row_panels;
  cache_config.col_panels = conv_geo.col_panels;
  cache_config.chunks = mapping.iters_per_tile();
  cache_config.chunk_depth = blk.k;

  cpu::run_decomposed<Acc>(
      plan, blk.tile_elements(),
      [&](const core::TileSegment& seg, std::span<Acc> accum,
          cpu::MacScratch<Acc>& scratch, cpu::PanelCache<Acc>* cache) {
        const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
        const std::int64_t mm = coord.tm * blk.m;
        const std::int64_t nn = coord.tn * blk.n;
        const std::int64_t em = mapping.tile_extent_m(coord.tm);
        const std::int64_t en = mapping.tile_extent_n(coord.tn);

        // The implicit operands need per-element address math, so each
        // iteration is gathered into row-major staging first (the expensive
        // pass) and then repacked into microkernel panels -- both passes
        // touch only the valid em x ek / ek x en region.  The iteration
        // grid is absolute in k, so every iteration aligns with the shared
        // arena's chunk grid; a published panel spares later tiles the
        // gather and the pack alike.
        scratch.ensure_frags(blk);
        for (std::int64_t iter = seg.iter_begin; iter < seg.iter_end; ++iter) {
          const std::int64_t kk = iter * blk.k;
          const std::int64_t ek = mapping.iter_extent_k(iter);
          const Acc* pa = nullptr;
          const Acc* pb = nullptr;
          const bool cacheable =
              cache != nullptr && cache->chunk_depth() == blk.k;
          const auto pack_input = [&](Acc* dst) {
            gather_input_fragment<In, Acc>(conv, input, mm, em, kk, ek, blk,
                                           scratch.frag_a);
            cpu::pack_a_panels<Acc>(
                em, ek,
                [&](std::int64_t i, std::int64_t l) {
                  return scratch
                      .frag_a[static_cast<std::size_t>(i * blk.k + l)];
                },
                dst);
          };
          const auto pack_filter = [&](Acc* dst) {
            gather_filter_fragment<In, Acc>(conv, filter, nn, en, kk, ek, blk,
                                            scratch.frag_b);
            cpu::pack_b_panels<Acc>(
                ek, en,
                [&](std::int64_t l, std::int64_t j) {
                  return scratch
                      .frag_b[static_cast<std::size_t>(l * blk.n + j)];
                },
                dst);
          };
          if (cacheable) {
            pa = cache->acquire_a(coord.tm, iter, em, ek, pack_input);
            pb = cache->acquire_b(coord.tn, iter, en, ek, pack_filter);
          }
          if (pa == nullptr) {
            pack_input(scratch.packs.a.data());
            cpu::PackProbe::add_private(
                cpu::round_up(em, cpu::MicroTile<Acc>::kMr) * ek *
                static_cast<std::int64_t>(sizeof(Acc)));
            pa = scratch.packs.a.data();
          }
          if (pb == nullptr) {
            pack_filter(scratch.packs.b.data());
            cpu::PackProbe::add_private(
                cpu::round_up(en, cpu::MicroTile<Acc>::kNr) * ek *
                static_cast<std::int64_t>(sizeof(Acc)));
            pb = scratch.packs.b.data();
          }
          cpu::run_packed_mac(pa, pb, em, en, ek, accum.data(), blk.n);
        }
      },
      [&](std::int64_t tile_idx, std::span<const Acc> accum) {
        // Epilogue: scale + fused chain, scattered to NHWC output pixels
        // (each pixel's channel run is contiguous, so a tile row maps to
        // one apply_row call).
        const core::TileCoord coord = mapping.tile_coord(tile_idx);
        const std::int64_t mm = coord.tm * blk.m;
        const std::int64_t nn = coord.tn * blk.n;
        const std::int64_t em = mapping.tile_extent_m(coord.tm);
        const std::int64_t en = mapping.tile_extent_n(coord.tn);
        for (std::int64_t i = 0; i < em; ++i) {
          const OutputPixel px = output_pixel(conv, mm + i);
          const Acc* acc_row =
              accum.data() + static_cast<std::size_t>(i * blk.n);
          Out* out_row = &output.at(px.n, px.p, px.q, nn);
          epilogue::apply_row<Acc, Out>(*eplan, options.epilogue,
                                        options.alpha, options.beta, mm + i,
                                        nn, en, mapping.shape().n, acc_row,
                                        out_row);
        }
      },
      options, &cache_config);
}

template <typename In, typename Acc, typename Out>
void execute_conv(const core::Decomposition& decomposition,
                  const ConvShape& conv, const Tensor4<In>& input,
                  const Tensor4<In>& filter, Tensor4<Out>& output,
                  const cpu::ExecutorOptions& options) {
  const core::SchedulePlan plan = core::compile_plan(decomposition);
  execute_conv_plan<In, Acc, Out>(plan, conv, input, filter, output, options);
}

namespace {

template <typename In, typename Acc, typename Out>
cpu::GemmReport conv_forward_blocking(const ConvShape& conv,
                                      const Tensor4<In>& input,
                                      const Tensor4<In>& filter,
                                      Tensor4<Out>& output,
                                      const cpu::GemmOptions& caller_options) {
  util::check(conv.valid(), "invalid convolution shape");
  gpu::Precision precision = gpu::Precision::kFp64;
  if constexpr (std::is_same_v<In, float>) precision = gpu::Precision::kFp32;

  // Tuning-db key: the implicit-GEMM shape the convolution lowers to.
  // Lookup only: a background find job would measure a dense GEMM of this
  // shape, not the gather-heavy convolution it stands in for.
  const cpu::GemmOptions options =
      cpu::apply_tuned_dispatch(conv.gemm_shape(), precision, caller_options,
                                /*allow_background_find=*/false);
  const gpu::BlockShape block = options.block.valid()
                                    ? options.block
                                    : cpu::default_cpu_block(precision);
  const core::WorkMapping mapping(conv.gemm_shape(), block);
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();
  const core::DecompositionSpec spec =
      cpu::resolve_schedule(options, mapping, precision, workers);
  const core::PlanCache::PlanPtr plan = runtime::plan_cache().obtain(
      core::make_plan_key(mapping, spec), mapping, spec);

  cpu::ExecutorOptions exec;
  exec.workers = workers;
  exec.alpha = options.alpha;
  exec.beta = options.beta;
  exec.epilogue = options.epilogue;
  exec.panel_cache = options.panel_cache;

  const auto start = std::chrono::steady_clock::now();
  execute_conv_plan<In, Acc, Out>(*plan, conv, input, filter, output, exec);
  const auto stop = std::chrono::steady_clock::now();

  cpu::GemmReport report;
  report.spec = spec;
  report.schedule_name = plan->name();
  report.grid = plan->grid();
  report.tiles = mapping.tiles();
  report.spills = plan->total_spills();
  report.seconds = std::chrono::duration<double>(stop - start).count();
  report.gflops =
      report.seconds > 0.0 ? conv.flops() / report.seconds / 1e9 : 0.0;
  return report;
}

}  // namespace

// Sync front end: one pool job per convolution (submit-then-get; see
// runtime/gemm_runtime.hpp for the work-stealing guarantee).
template <typename In, typename Acc, typename Out>
cpu::GemmReport conv_forward(const ConvShape& conv, const Tensor4<In>& input,
                             const Tensor4<In>& filter, Tensor4<Out>& output,
                             const cpu::GemmOptions& options) {
  return runtime::global_pool()
      .async([&conv, &input, &filter, &output, options] {
        return conv_forward_blocking<In, Acc, Out>(conv, input, filter,
                                                   output, options);
      })
      .get();
}

template void direct_conv<double, double, double>(const ConvShape&,
                                                  const Tensor4<double>&,
                                                  const Tensor4<double>&,
                                                  Tensor4<double>&);
template void direct_conv<float, float, float>(const ConvShape&,
                                               const Tensor4<float>&,
                                               const Tensor4<float>&,
                                               Tensor4<float>&);

template void execute_conv_plan<double, double, double>(
    const core::SchedulePlan&, const ConvShape&, const Tensor4<double>&,
    const Tensor4<double>&, Tensor4<double>&, const cpu::ExecutorOptions&);
template void execute_conv_plan<float, float, float>(
    const core::SchedulePlan&, const ConvShape&, const Tensor4<float>&,
    const Tensor4<float>&, Tensor4<float>&, const cpu::ExecutorOptions&);

template void execute_conv<double, double, double>(
    const core::Decomposition&, const ConvShape&, const Tensor4<double>&,
    const Tensor4<double>&, Tensor4<double>&, const cpu::ExecutorOptions&);
template void execute_conv<float, float, float>(
    const core::Decomposition&, const ConvShape&, const Tensor4<float>&,
    const Tensor4<float>&, Tensor4<float>&, const cpu::ExecutorOptions&);

template cpu::GemmReport conv_forward<double, double, double>(
    const ConvShape&, const Tensor4<double>&, const Tensor4<double>&,
    Tensor4<double>&, const cpu::GemmOptions&);
template cpu::GemmReport conv_forward<float, float, float>(
    const ConvShape&, const Tensor4<float>&, const Tensor4<float>&,
    Tensor4<float>&, const cpu::GemmOptions&);

}  // namespace streamk::conv

namespace streamk::runtime {

GemmHandle submit_conv_forward(const conv::ConvShape& conv,
                               const conv::Tensor4<double>& input,
                               const conv::Tensor4<double>& filter,
                               conv::Tensor4<double>& output,
                               const cpu::GemmOptions& options) {
  return global_pool().async([&conv, &input, &filter, &output, options] {
    return conv::conv_forward_blocking<double, double, double>(
        conv, input, filter, output, options);
  });
}

GemmHandle submit_conv_forward(const conv::ConvShape& conv,
                               const conv::Tensor4<float>& input,
                               const conv::Tensor4<float>& filter,
                               conv::Tensor4<float>& output,
                               const cpu::GemmOptions& options) {
  return global_pool().async([&conv, &input, &filter, &output, options] {
    return conv::conv_forward_blocking<float, float, float>(
        conv, input, filter, output, options);
  });
}

}  // namespace streamk::runtime
