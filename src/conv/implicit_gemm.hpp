#pragma once

// Implicit-GEMM forward convolution over any work decomposition.
//
// The A operand of the equivalent GEMM is never materialized: the MacLoop
// gathers input patches (with zero padding) directly from the NHWC
// activation tensor while B-fragments come from the KRSC filter bank viewed
// as a (RSC x K) matrix.  Everything above the fragment loaders -- tile
// segments, spills, flags, fixup reduction -- is byte-for-byte the GEMM
// machinery, demonstrating the paper's Section 7 claim that Stream-K
// generalizes to GEMM-like workloads with the same quantization problems.
//
// direct_conv() is the independently-written reference the implicit-GEMM
// path is verified against.

#include "conv/conv_shape.hpp"
#include "conv/tensor.hpp"
#include "core/decomposition.hpp"
#include "cpu/gemm.hpp"

namespace streamk::core {
class SchedulePlan;
}  // namespace streamk::core

namespace streamk::conv {

/// Reference: direct 7-loop convolution (NHWC in, KRSC filter, NHWC out).
template <typename In, typename Acc, typename Out>
void direct_conv(const ConvShape& conv, const Tensor4<In>& input,
                 const Tensor4<In>& filter, Tensor4<Out>& output);

/// Executes a compiled plan (built over the conv's implicit-GEMM mapping)
/// against real tensors.
template <typename In, typename Acc, typename Out>
void execute_conv_plan(const core::SchedulePlan& plan, const ConvShape& conv,
                       const Tensor4<In>& input, const Tensor4<In>& filter,
                       Tensor4<Out>& output,
                       const cpu::ExecutorOptions& options = {});

/// Convenience overload: compiles `decomposition` and executes the plan.
template <typename In, typename Acc, typename Out>
void execute_conv(const core::Decomposition& decomposition,
                  const ConvShape& conv, const Tensor4<In>& input,
                  const Tensor4<In>& filter, Tensor4<Out>& output,
                  const cpu::ExecutorOptions& options = {});

/// Front end: schedule selected per cpu::GemmOptions (kAuto plans over the
/// implicit-GEMM tile space).
template <typename In, typename Acc, typename Out>
cpu::GemmReport conv_forward(const ConvShape& conv, const Tensor4<In>& input,
                             const Tensor4<In>& filter, Tensor4<Out>& output,
                             const cpu::GemmOptions& options = {});

extern template void direct_conv<double, double, double>(
    const ConvShape&, const Tensor4<double>&, const Tensor4<double>&,
    Tensor4<double>&);
extern template void direct_conv<float, float, float>(
    const ConvShape&, const Tensor4<float>&, const Tensor4<float>&,
    Tensor4<float>&);

extern template void execute_conv_plan<double, double, double>(
    const core::SchedulePlan&, const ConvShape&, const Tensor4<double>&,
    const Tensor4<double>&, Tensor4<double>&, const cpu::ExecutorOptions&);
extern template void execute_conv_plan<float, float, float>(
    const core::SchedulePlan&, const ConvShape&, const Tensor4<float>&,
    const Tensor4<float>&, Tensor4<float>&, const cpu::ExecutorOptions&);

extern template void execute_conv<double, double, double>(
    const core::Decomposition&, const ConvShape&, const Tensor4<double>&,
    const Tensor4<double>&, Tensor4<double>&, const cpu::ExecutorOptions&);
extern template void execute_conv<float, float, float>(
    const core::Decomposition&, const ConvShape&, const Tensor4<float>&,
    const Tensor4<float>&, Tensor4<float>&, const cpu::ExecutorOptions&);

extern template cpu::GemmReport conv_forward<double, double, double>(
    const ConvShape&, const Tensor4<double>&, const Tensor4<double>&,
    Tensor4<double>&, const cpu::GemmOptions&);
extern template cpu::GemmReport conv_forward<float, float, float>(
    const ConvShape&, const Tensor4<float>&, const Tensor4<float>&,
    Tensor4<float>&, const cpu::GemmOptions&);

}  // namespace streamk::conv
