#pragma once

// Convolution geometry and its implicit-GEMM equivalence.
//
// The paper's introduction names convolution as a headline GEMM-like
// workload: "image recognition and computer vision models rely on
// convolution, which can be implemented directly as the product of filter
// and image datasets."  Forward convolution of an NHWC input tensor with a
// KRSC filter bank maps to a GEMM ("implicit GEMM"):
//
//     C[npq, k] = sum_{c,r,s} In[n, p*stride - pad + r,
//                                q*stride - pad + s, c] * F[k, r, s, c]
//
//     GEMM m = N * P * Q      (output pixels)
//          n = K              (output channels)
//          k = R * S * C      (filter volume)
//
// so every decomposition in this library -- including Stream-K and the
// hybrids -- schedules convolutions unchanged.  Batch-1 inference layers
// with few output pixels and deep filter volumes are exactly the
// strong-scaling regime where work-centric decomposition wins.

#include <cstdint>
#include <string>

#include "core/gemm_shape.hpp"

namespace streamk::conv {

struct ConvShape {
  std::int64_t batch = 1;        ///< N
  std::int64_t height = 0;       ///< H (input)
  std::int64_t width = 0;        ///< W (input)
  std::int64_t in_channels = 0;  ///< C
  std::int64_t out_channels = 0; ///< K
  std::int64_t filter_h = 1;     ///< R
  std::int64_t filter_w = 1;     ///< S
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  bool valid() const;

  /// Output spatial extents.
  std::int64_t out_h() const {
    return (height + 2 * pad - filter_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad - filter_w) / stride + 1;
  }

  /// The equivalent implicit-GEMM problem.
  core::GemmShape gemm_shape() const {
    return {batch * out_h() * out_w(), out_channels,
            filter_h * filter_w * in_channels};
  }

  double flops() const { return gemm_shape().flops(); }
  std::string to_string() const;
};

/// Decodes an implicit-GEMM row index m into output-pixel coordinates.
struct OutputPixel {
  std::int64_t n = 0;
  std::int64_t p = 0;
  std::int64_t q = 0;
};
OutputPixel output_pixel(const ConvShape& conv, std::int64_t m);

/// Decodes an implicit-GEMM reduction index k into filter coordinates
/// (r, s, c) with c fastest (matching NHWC input contiguity).
struct FilterOffset {
  std::int64_t r = 0;
  std::int64_t s = 0;
  std::int64_t c = 0;
};
FilterOffset filter_offset(const ConvShape& conv, std::int64_t k);

}  // namespace streamk::conv
