#include "conv/conv_shape.hpp"

#include <sstream>

#include "util/check.hpp"

namespace streamk::conv {

bool ConvShape::valid() const {
  return batch >= 1 && height >= 1 && width >= 1 && in_channels >= 1 &&
         out_channels >= 1 && filter_h >= 1 && filter_w >= 1 && stride >= 1 &&
         pad >= 0 && height + 2 * pad >= filter_h &&
         width + 2 * pad >= filter_w;
}

std::string ConvShape::to_string() const {
  std::ostringstream os;
  os << "N" << batch << " " << height << "x" << width << "x" << in_channels
     << " -> K" << out_channels << " " << filter_h << "x" << filter_w
     << " s" << stride << " p" << pad;
  return os.str();
}

OutputPixel output_pixel(const ConvShape& conv, std::int64_t m) {
  util::check(m >= 0 && m < conv.batch * conv.out_h() * conv.out_w(),
              "output pixel index out of range");
  const std::int64_t pixels = conv.out_h() * conv.out_w();
  OutputPixel px;
  px.n = m / pixels;
  const std::int64_t rem = m % pixels;
  px.p = rem / conv.out_w();
  px.q = rem % conv.out_w();
  return px;
}

FilterOffset filter_offset(const ConvShape& conv, std::int64_t k) {
  util::check(k >= 0 && k < conv.filter_h * conv.filter_w * conv.in_channels,
              "filter offset index out of range");
  FilterOffset off;
  off.c = k % conv.in_channels;
  const std::int64_t rs = k / conv.in_channels;
  off.s = rs % conv.filter_w;
  off.r = rs / conv.filter_w;
  return off;
}

}  // namespace streamk::conv
