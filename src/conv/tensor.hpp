#pragma once

// Minimal dense 4-D tensor for the convolution substrate.
//
// Input activations are NHWC (channel fastest: the layout implicit-GEMM
// gathers contiguously); filters are KRSC.

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace streamk::conv {

template <typename T>
class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(std::int64_t d0, std::int64_t d1, std::int64_t d2, std::int64_t d3)
      : d0_(d0), d1_(d1), d2_(d2), d3_(d3),
        data_(static_cast<std::size_t>(d0 * d1 * d2 * d3)) {
    util::check(d0 >= 1 && d1 >= 1 && d2 >= 1 && d3 >= 1,
                "tensor extents must be positive");
  }

  std::int64_t dim0() const { return d0_; }
  std::int64_t dim1() const { return d1_; }
  std::int64_t dim2() const { return d2_; }
  std::int64_t dim3() const { return d3_; }

  T& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[index(i, j, k, l)];
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k,
              std::int64_t l) const {
    return data_[index(i, j, k, l)];
  }

  /// Unchecked pointer to the innermost run at (i, j, k, 0).
  const T* inner_ptr(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_.data() +
           static_cast<std::size_t>(((i * d1_ + j) * d2_ + k) * d3_);
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

 private:
  std::size_t index(std::int64_t i, std::int64_t j, std::int64_t k,
                    std::int64_t l) const {
    util::check(i >= 0 && i < d0_ && j >= 0 && j < d1_ && k >= 0 && k < d2_ &&
                    l >= 0 && l < d3_,
                "tensor index out of range");
    return static_cast<std::size_t>(((i * d1_ + j) * d2_ + k) * d3_ + l);
  }

  std::int64_t d0_ = 0, d1_ = 0, d2_ = 0, d3_ = 0;
  std::vector<T> data_;
};

template <typename T>
void fill_random(Tensor4<T>& t, util::Pcg32& rng, double lo = -1.0,
                 double hi = 1.0) {
  for (T& v : t.data()) v = static_cast<T>(rng.uniform(lo, hi));
}

template <typename T>
void fill_random_int(Tensor4<T>& t, util::Pcg32& rng, std::int64_t lo = -3,
                     std::int64_t hi = 3) {
  for (T& v : t.data()) {
    v = static_cast<T>(static_cast<double>(rng.uniform_int(lo, hi)));
  }
}

}  // namespace streamk::conv
