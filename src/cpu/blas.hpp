#pragma once

// BLAS-style GEMM entry points with operand transposes.
//
// Vendor GEMM APIs expose the transpose cross product (the paper's Section 2
// mentions MAGMA's hgemm_tt() and cuBLAS's per-layout kernel specializations
// -- part of why tile-centric ensembles balloon).  Here a single set of
// decomposition machinery serves all four layouts: operands are accessed
// through stride views, so a transposed A or B costs a different fragment
// gather, never a different kernel.
//
//     C = alpha * op(A) . op(B) + beta * C,   op in {identity, transpose}
//
// Matrices are row-major; op(A) must be m x k and op(B) k x n.

#include "core/decomposition.hpp"
#include "cpu/gemm.hpp"
#include "cpu/matrix.hpp"

namespace streamk::core {
class SchedulePlan;
}  // namespace streamk::core

namespace streamk::cpu {

enum class Trans {
  kNone,       ///< use the operand as stored
  kTranspose,  ///< use the operand's transpose
};

/// Non-owning strided view of a (possibly transposed) matrix.
template <typename T>
class MatrixView {
 public:
  MatrixView(const Matrix<T>& m, Trans trans)
      : data_(m.data().data()),
        rows_(trans == Trans::kNone ? m.rows() : m.cols()),
        cols_(trans == Trans::kNone ? m.cols() : m.rows()),
        row_stride_(trans == Trans::kNone ? m.cols() : 1),
        col_stride_(trans == Trans::kNone ? 1 : m.cols()) {}

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  T at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * row_stride_ + c * col_stride_)];
  }

 private:
  const T* data_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t row_stride_;
  std::int64_t col_stride_;
};

/// Executes a compiled plan over transposed views.
template <typename In, typename Acc, typename Out>
void execute_views_plan(const core::SchedulePlan& plan,
                        const MatrixView<In>& a, const MatrixView<In>& b,
                        Matrix<Out>& c, const ExecutorOptions& options = {});

/// Convenience overload: compiles `decomposition` and executes the plan.
template <typename In, typename Acc, typename Out>
void execute_views(const core::Decomposition& decomposition,
                   const MatrixView<In>& a, const MatrixView<In>& b,
                   Matrix<Out>& c, const ExecutorOptions& options = {});

/// FP64 GEMM with transposes (row-major dgemm analogue).
GemmReport dgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<double>& a, const Matrix<double>& b,
                 double beta, Matrix<double>& c,
                 const GemmOptions& options = {});

/// FP32 GEMM with transposes.
GemmReport sgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<float>& a, const Matrix<float>& b, double beta,
                 Matrix<float>& c, const GemmOptions& options = {});

/// Mixed-precision FP16->32 GEMM with transposes (hgemm analogue).
GemmReport hgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<util::Half>& a, const Matrix<util::Half>& b,
                 double beta, Matrix<float>& c,
                 const GemmOptions& options = {});

extern template void execute_views_plan<double, double, double>(
    const core::SchedulePlan&, const MatrixView<double>&,
    const MatrixView<double>&, Matrix<double>&, const ExecutorOptions&);
extern template void execute_views_plan<float, float, float>(
    const core::SchedulePlan&, const MatrixView<float>&,
    const MatrixView<float>&, Matrix<float>&, const ExecutorOptions&);
extern template void execute_views_plan<util::Half, float, float>(
    const core::SchedulePlan&, const MatrixView<util::Half>&,
    const MatrixView<util::Half>&, Matrix<float>&, const ExecutorOptions&);

extern template void execute_views<double, double, double>(
    const core::Decomposition&, const MatrixView<double>&,
    const MatrixView<double>&, Matrix<double>&, const ExecutorOptions&);
extern template void execute_views<float, float, float>(
    const core::Decomposition&, const MatrixView<float>&,
    const MatrixView<float>&, Matrix<float>&, const ExecutorOptions&);
extern template void execute_views<util::Half, float, float>(
    const core::Decomposition&, const MatrixView<util::Half>&,
    const MatrixView<util::Half>&, Matrix<float>&, const ExecutorOptions&);

}  // namespace streamk::cpu
