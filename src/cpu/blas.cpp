#include "cpu/blas.hpp"

#include <chrono>

#include "cpu/decomposed_runner.hpp"
#include "epilogue/apply.hpp"
#include "runtime/gemm_runtime.hpp"

namespace streamk::cpu {

namespace {

/// Packs view operands and accumulates one segment (strided analogue of
/// run_mac_segment; the In -> Acc conversion and the transpose's stride
/// walk both happen once per element at pack time, after which the
/// microkernel is identical to the contiguous path).
template <typename In, typename Acc>
void view_mac_segment(const MatrixView<In>& a, const MatrixView<In>& b,
                      const core::WorkMapping& mapping,
                      const core::TileSegment& seg, std::span<Acc> accum,
                      MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
  const gpu::BlockShape& blk = mapping.block();
  const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  const std::int64_t k_total = mapping.shape().k;
  const std::int64_t k_begin = seg.iter_begin * blk.k;
  const std::int64_t k_end = std::min(seg.iter_end * blk.k, k_total);
  run_cached_chunks<Acc>(
      cache, coord.tm, coord.tn, em, en, k_begin, k_end, k_total,
      scratch.panel_kc(),
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_a_panels<Acc>(
            em, kc,
            [&](std::int64_t i, std::int64_t k) {
              return static_cast<Acc>(a.at(mm + i, k0 + k));
            },
            dst);
      },
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_b_panels<Acc>(
            kc, en,
            [&](std::int64_t k, std::int64_t j) {
              return static_cast<Acc>(b.at(k0 + k, nn + j));
            },
            dst);
      },
      scratch.packs, accum.data(), blk.n);
}

}  // namespace

template <typename In, typename Acc, typename Out>
void execute_views_plan(const core::SchedulePlan& plan,
                        const MatrixView<In>& a, const MatrixView<In>& b,
                        Matrix<Out>& c, const ExecutorOptions& options) {
  const core::WorkMapping& mapping = plan.mapping();
  util::check(a.rows() == mapping.shape().m && a.cols() == mapping.shape().k,
              "op(A) does not conform to the decomposition");
  util::check(b.rows() == mapping.shape().k && b.cols() == mapping.shape().n,
              "op(B) does not conform to the decomposition");
  util::check(c.rows() == mapping.shape().m && c.cols() == mapping.shape().n,
              "C does not conform to the decomposition");
  const gpu::BlockShape& blk = mapping.block();

  const epilogue::EpiloguePlanPtr eplan = plan.epilogue_plan(options.epilogue);
  epilogue::check_bindings(*eplan, options.epilogue, mapping.shape().m,
                           mapping.shape().n,
                           epilogue::tensor_type_of<Out>());

  run_decomposed<Acc>(
      plan, blk.tile_elements(),
      [&](const core::TileSegment& seg, std::span<Acc> accum,
          MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
        view_mac_segment<In, Acc>(a, b, mapping, seg, accum, scratch, cache);
      },
      [&](std::int64_t tile_idx, std::span<const Acc> accum) {
        const core::TileCoord coord = mapping.tile_coord(tile_idx);
        const std::int64_t mm = coord.tm * blk.m;
        const std::int64_t nn = coord.tn * blk.n;
        epilogue::apply_tile<Acc, Out>(
            *eplan, options.epilogue, options.alpha, options.beta, mm, nn,
            mapping.tile_extent_m(coord.tm), mapping.tile_extent_n(coord.tn),
            mapping.shape().n, accum.data(), blk.n, c.row_ptr(mm) + nn,
            c.cols());
      },
      options);
}

template <typename In, typename Acc, typename Out>
void execute_views(const core::Decomposition& decomposition,
                   const MatrixView<In>& a, const MatrixView<In>& b,
                   Matrix<Out>& c, const ExecutorOptions& options) {
  const core::SchedulePlan plan = core::compile_plan(decomposition);
  execute_views_plan<In, Acc, Out>(plan, a, b, c, options);
}

namespace {

template <typename In, typename Acc, typename Out>
GemmReport blas_impl(Trans trans_a, Trans trans_b, double alpha,
                     const Matrix<In>& a, const Matrix<In>& b, double beta,
                     Matrix<Out>& c, const GemmOptions& caller_options,
                     gpu::Precision precision) {
  const MatrixView<In> va(a, trans_a);
  const MatrixView<In> vb(b, trans_b);
  util::check(va.cols() == vb.rows(), "GEMM inner extents do not conform");
  const core::GemmShape shape{va.rows(), vb.cols(), va.cols()};
  util::check(c.rows() == shape.m && c.cols() == shape.n,
              "GEMM output extents do not conform");

  const GemmOptions options =
      apply_tuned_dispatch(shape, precision, caller_options);
  const gpu::BlockShape block =
      options.block.valid() ? options.block : default_cpu_block(precision);
  const core::WorkMapping mapping(shape, block, options.tile_order);
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();
  const core::DecompositionSpec spec =
      resolve_schedule(options, mapping, precision, workers);
  const core::PlanCache::PlanPtr plan = runtime::plan_cache().obtain(
      core::make_plan_key(mapping, spec), mapping, spec);

  ExecutorOptions exec;
  exec.workers = workers;
  exec.alpha = alpha;
  exec.beta = beta;
  exec.epilogue = options.epilogue;
  exec.panel_cache = options.panel_cache;

  const auto start = std::chrono::steady_clock::now();
  execute_views_plan<In, Acc, Out>(*plan, va, vb, c, exec);
  const auto stop = std::chrono::steady_clock::now();

  GemmReport report;
  report.spec = spec;
  report.schedule_name = plan->name();
  report.grid = plan->grid();
  report.tiles = mapping.tiles();
  report.spills = plan->total_spills();
  report.seconds = std::chrono::duration<double>(stop - start).count();
  report.gflops =
      report.seconds > 0.0 ? shape.flops() / report.seconds / 1e9 : 0.0;
  return report;
}

}  // namespace

// Sync entry points are submit-then-get wrappers over the async runtime
// (see runtime/gemm_runtime.hpp for the work-stealing guarantee).

GemmReport dgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<double>& a, const Matrix<double>& b,
                 double beta, Matrix<double>& c, const GemmOptions& options) {
  return runtime::submit_dgemm(trans_a, trans_b, alpha, a, b, beta, c,
                               options)
      .get();
}

GemmReport sgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<float>& a, const Matrix<float>& b, double beta,
                 Matrix<float>& c, const GemmOptions& options) {
  return runtime::submit_sgemm(trans_a, trans_b, alpha, a, b, beta, c,
                               options)
      .get();
}

GemmReport hgemm(Trans trans_a, Trans trans_b, double alpha,
                 const Matrix<util::Half>& a, const Matrix<util::Half>& b,
                 double beta, Matrix<float>& c, const GemmOptions& options) {
  return runtime::submit_hgemm(trans_a, trans_b, alpha, a, b, beta, c,
                               options)
      .get();
}

template void execute_views_plan<double, double, double>(
    const core::SchedulePlan&, const MatrixView<double>&,
    const MatrixView<double>&, Matrix<double>&, const ExecutorOptions&);
template void execute_views_plan<float, float, float>(
    const core::SchedulePlan&, const MatrixView<float>&,
    const MatrixView<float>&, Matrix<float>&, const ExecutorOptions&);
template void execute_views_plan<util::Half, float, float>(
    const core::SchedulePlan&, const MatrixView<util::Half>&,
    const MatrixView<util::Half>&, Matrix<float>&, const ExecutorOptions&);

template void execute_views<double, double, double>(
    const core::Decomposition&, const MatrixView<double>&,
    const MatrixView<double>&, Matrix<double>&, const ExecutorOptions&);
template void execute_views<float, float, float>(
    const core::Decomposition&, const MatrixView<float>&,
    const MatrixView<float>&, Matrix<float>&, const ExecutorOptions&);
template void execute_views<util::Half, float, float>(
    const core::Decomposition&, const MatrixView<util::Half>&,
    const MatrixView<util::Half>&, Matrix<float>&, const ExecutorOptions&);

}  // namespace streamk::cpu

namespace streamk::runtime {

GemmHandle submit_dgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<double>& a,
                        const cpu::Matrix<double>& b, double beta,
                        cpu::Matrix<double>& c,
                        const cpu::GemmOptions& options) {
  return global_pool().async([trans_a, trans_b, alpha, &a, &b, beta, &c,
                              options] {
    return cpu::blas_impl<double, double, double>(
        trans_a, trans_b, alpha, a, b, beta, c, options,
        gpu::Precision::kFp64);
  });
}

GemmHandle submit_sgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<float>& a,
                        const cpu::Matrix<float>& b, double beta,
                        cpu::Matrix<float>& c,
                        const cpu::GemmOptions& options) {
  return global_pool().async([trans_a, trans_b, alpha, &a, &b, beta, &c,
                              options] {
    return cpu::blas_impl<float, float, float>(trans_a, trans_b, alpha, a, b,
                                               beta, c, options,
                                               gpu::Precision::kFp32);
  });
}

GemmHandle submit_hgemm(cpu::Trans trans_a, cpu::Trans trans_b, double alpha,
                        const cpu::Matrix<util::Half>& a,
                        const cpu::Matrix<util::Half>& b, double beta,
                        cpu::Matrix<float>& c,
                        const cpu::GemmOptions& options) {
  return global_pool().async([trans_a, trans_b, alpha, &a, &b, beta, &c,
                              options] {
    return cpu::blas_impl<util::Half, float, float>(
        trans_a, trans_b, alpha, a, b, beta, c, options,
        gpu::Precision::kFp16F32);
  });
}

}  // namespace streamk::runtime
