#pragma once

// Decomposed GEMM execution on CPU threads.
//
// Worker threads play the role of SMs: each claims CTA ids dynamically and
// runs the CTA's segment stream -- MacLoop per segment, then the fixup
// protocol (spill+signal, or wait+reduce+store) exactly as the simulator
// models it.  Both consume the same compiled core::SchedulePlan, so
// functional behaviour and simulated schedules cannot drift apart.
//
// Deadlock freedom with any worker count W >= 1: flag waits always target
// CTAs with *higher* ids (Stream-K owners wait on later-range CTAs;
// fixed-split owners on their split peers y > 0; hybrids on their Stream-K
// region neighbours), and workers claim ids in *descending* order.  Hence
// every producer a blocked CTA awaits was claimed earlier, i.e. is finished
// or in flight on another worker; with W == 1 the claim order degenerates to
// the reverse-index serial schedule in which every signal precedes its wait.
// Waits block on C++20 atomic waiting, so an oversubscribed worker is
// descheduled rather than starving its producer.

#include <cstddef>

#include "core/decomposition.hpp"
#include "cpu/matrix.hpp"
#include "epilogue/epilogue.hpp"

namespace streamk::core {
class SchedulePlan;
}  // namespace streamk::core

namespace streamk::cpu {

/// Shared packed-panel cache policy (cpu/panel_cache.hpp).  kAuto shares
/// whenever the plan says sharing can pay (two or more tiles) and the
/// STREAMK_PANEL_CACHE kill switch is armed; kOn/kOff force the decision
/// per call (the kill switch still overrides kOn, so STREAMK_PANEL_CACHE=0
/// restores private packing process-wide).
enum class PanelCacheMode {
  kAuto,
  kOn,
  kOff,
};

struct ExecutorOptions {
  /// Worker threads (0 = one per hardware thread).
  std::size_t workers = 0;
  double alpha = 1.0;
  double beta = 0.0;
  /// Shared packed-panel cache policy for this call.
  PanelCacheMode panel_cache = PanelCacheMode::kAuto;
  /// Fused output-transform chain, applied exactly once per output element
  /// by the tile owner's store (solo tiles at tile-store time, split tiles
  /// at the post-fixup reconciliation point) -- see epilogue/epilogue.hpp.
  /// The alpha/beta scale above is stage zero of the same code path.
  epilogue::EpilogueSpec epilogue;
};

/// Executes a compiled plan over real matrices: C = alpha * A.B + beta * C.
/// The matrices must conform to the plan's GEMM shape.  Reusing one plan
/// across calls amortizes schedule compilation entirely.
template <typename In, typename Acc, typename Out>
void execute_plan(const core::SchedulePlan& plan, const Matrix<In>& a,
                  const Matrix<In>& b, Matrix<Out>& c,
                  const ExecutorOptions& options = {});

/// Convenience overload: compiles `decomposition` and executes the plan.
template <typename In, typename Acc, typename Out>
void execute_decomposition(const core::Decomposition& decomposition,
                           const Matrix<In>& a, const Matrix<In>& b,
                           Matrix<Out>& c, const ExecutorOptions& options = {});

extern template void execute_plan<double, double, double>(
    const core::SchedulePlan&, const Matrix<double>&, const Matrix<double>&,
    Matrix<double>&, const ExecutorOptions&);
extern template void execute_plan<float, float, float>(
    const core::SchedulePlan&, const Matrix<float>&, const Matrix<float>&,
    Matrix<float>&, const ExecutorOptions&);
extern template void execute_plan<util::Half, float, float>(
    const core::SchedulePlan&, const Matrix<util::Half>&,
    const Matrix<util::Half>&, Matrix<float>&, const ExecutorOptions&);

extern template void execute_decomposition<double, double, double>(
    const core::Decomposition&, const Matrix<double>&, const Matrix<double>&,
    Matrix<double>&, const ExecutorOptions&);
extern template void execute_decomposition<float, float, float>(
    const core::Decomposition&, const Matrix<float>&, const Matrix<float>&,
    Matrix<float>&, const ExecutorOptions&);
extern template void execute_decomposition<util::Half, float, float>(
    const core::Decomposition&, const Matrix<util::Half>&,
    const Matrix<util::Half>&, Matrix<float>&, const ExecutorOptions&);

}  // namespace streamk::cpu
