#include "cpu/grouped.hpp"

#include <algorithm>
#include <chrono>
#include <type_traits>
#include <vector>

#include "core/grouped.hpp"
#include "core/schedule_plan.hpp"
#include "cpu/decomposed_runner.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/reference.hpp"
#include "epilogue/apply.hpp"
#include "runtime/gemm_runtime.hpp"
#include "tuner/tuning_db.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

namespace {

/// Packs one problem's operands and accumulates the segment's MAC-loop
/// iterations.  Extents come from the owning problem's real shape; a k == 0
/// problem yields an empty k-range (the chunk walk is a no-op) while the
/// segment still drives the beta/epilogue store.  Panel-cache keys are
/// problem-qualified via the mapping's panel offsets, since two problems'
/// tiles at equal local coordinates read different operand matrices.
template <typename In, typename Acc>
void grouped_mac_segment(const core::GroupedMapping& grouped,
                         std::span<const Matrix<In>> as,
                         std::span<const Matrix<In>> bs,
                         const core::TileSegment& seg, std::span<Acc> accum,
                         MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
  const gpu::BlockShape& blk = grouped.block();
  const core::GroupedTileRef ref = grouped.tile_ref(seg.tile_idx);
  const core::GroupedProblem& prob = grouped.problem(ref.problem);
  const core::GemmShape& shape = prob.shape;
  const Matrix<In>& a = as[ref.problem];
  const Matrix<In>& b = bs[ref.problem];

  const std::int64_t mm = ref.tm * blk.m;
  const std::int64_t nn = ref.tn * blk.n;
  const std::int64_t em = std::min(blk.m, shape.m - mm);
  const std::int64_t en = std::min(blk.n, shape.n - nn);

  const std::int64_t k_begin = seg.iter_begin * blk.k;
  const std::int64_t k_end = std::min(seg.iter_end * blk.k, shape.k);
  run_cached_chunks<Acc>(
      cache, prob.row_panel_offset + ref.tm, prob.col_panel_offset + ref.tn,
      em, en, k_begin, k_end, shape.k, scratch.panel_kc(),
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_a_matrix(a, mm, em, k0, kc, dst);
      },
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_b_matrix(b, k0, kc, nn, en, dst);
      },
      scratch.packs, accum.data(), blk.n);
}

}  // namespace

template <typename In, typename Acc, typename Out>
void execute_grouped_plan(
    const core::SchedulePlan& plan, std::span<const Matrix<In>> as,
    std::span<const Matrix<In>> bs, std::span<Matrix<Out>> cs,
    const ExecutorOptions& options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  const core::GroupedMapping* grouped = plan.group();
  util::check(grouped != nullptr,
              "execute_grouped_plan needs a plan compiled from a "
              "GroupedMapping");
  const std::size_t problems = grouped->problems();
  util::check(as.size() == problems && bs.size() == problems &&
                  cs.size() == problems,
              "grouped operand count mismatch");
  util::check(problem_epilogues.empty() ||
                  problem_epilogues.size() == problems,
              "problem_epilogues must be empty or one spec per problem");
  for (std::size_t p = 0; p < problems; ++p) {
    const core::GemmShape s = product_shape(as[p], bs[p], cs[p]);
    util::check(s == grouped->problem(p).shape,
                "grouped problem shape mismatch");
  }

  const gpu::BlockShape& blk = grouped->block();

  // One op-chain *structure* serves the whole group (bindings vary per
  // problem): compile it once from the first spec and insist every other
  // spec shares its class -- a per-problem chain change would change the
  // store cost mid-schedule and the plan's epilogue memo keys by class.
  const epilogue::EpilogueSpec& structure =
      problem_epilogues.empty() ? options.epilogue : problem_epilogues[0];
  const epilogue::EpiloguePlanPtr eplan = plan.epilogue_plan(structure);
  for (const epilogue::EpilogueSpec& spec : problem_epilogues) {
    util::check(epilogue::class_key(spec.ops) == eplan->class_key(),
                "grouped problem epilogues must share one op-chain class");
  }
  util::check(!eplan->needs_residual() ||
                  !problem_epilogues.empty() || problems == 1,
              "grouped GEMM with a shared epilogue spec does not support "
              "the residual op (one D matrix cannot address every "
              "problem); pass per-problem specs");
  // Bindings are problem-local: validate each spec against its problem's
  // own output extents.
  for (std::size_t p = 0; p < problems; ++p) {
    const epilogue::EpilogueSpec& spec =
        problem_epilogues.empty() ? options.epilogue : problem_epilogues[p];
    epilogue::check_bindings(*eplan, spec, grouped->problem(p).shape.m,
                             grouped->problem(p).shape.n,
                             epilogue::tensor_type_of<Out>());
  }

  // The plan's panel geometry already spans the concatenated panel-key
  // space; restate it as an explicit override so the cache grid stays
  // correct even for callers that rebuilt the plan with other geometry.
  const core::PanelCacheGeometry& geo = plan.panel_geometry();
  PanelCacheConfig cache_config;
  cache_config.row_panels = grouped->row_panels();
  cache_config.col_panels = grouped->col_panels();
  cache_config.chunks = geo.chunks;
  cache_config.chunk_depth = geo.panel_kc;

  run_decomposed<Acc>(
      plan, blk.tile_elements(),
      [&](const core::TileSegment& seg, std::span<Acc> accum,
          MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
        grouped_mac_segment<In, Acc>(*grouped, as, bs, seg, accum, scratch,
                                     cache);
      },
      [&](std::int64_t tile_idx, std::span<const Acc> accum) {
        const core::GroupedTileRef ref = grouped->tile_ref(tile_idx);
        const core::GemmShape& shape = grouped->problem(ref.problem).shape;
        const epilogue::EpilogueSpec& spec =
            problem_epilogues.empty() ? options.epilogue
                                      : problem_epilogues[ref.problem];
        Matrix<Out>& c = cs[ref.problem];
        const std::int64_t mm = ref.tm * blk.m;
        const std::int64_t nn = ref.tn * blk.n;
        const std::int64_t em = std::min(blk.m, shape.m - mm);
        const std::int64_t en = std::min(blk.n, shape.n - nn);
        epilogue::apply_tile<Acc, Out>(*eplan, spec, options.alpha,
                                       options.beta, mm, nn, em, en, shape.n,
                                       accum.data(), blk.n,
                                       c.row_ptr(mm) + nn, c.cols());
      },
      options, &cache_config);
}

namespace {

template <typename In, typename Acc, typename Out>
GemmReport grouped_gemm_blocking(
    std::span<const Matrix<In>> as, std::span<const Matrix<In>> bs,
    std::span<Matrix<Out>> cs, const GemmOptions& caller_options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  util::check(!as.empty(), "grouped GEMM needs at least one problem");
  util::check(as.size() == bs.size() && as.size() == cs.size(),
              "grouped operand count mismatch");
  std::vector<core::GemmShape> shapes;
  shapes.reserve(as.size());
  for (std::size_t p = 0; p < as.size(); ++p) {
    shapes.push_back(product_shape(as[p], bs[p], cs[p]));
  }

  gpu::Precision precision = gpu::Precision::kFp64;
  if constexpr (std::is_same_v<In, float>) precision = gpu::Precision::kFp32;
  if constexpr (std::is_same_v<In, util::Half>) {
    precision = gpu::Precision::kFp16F32;
  }

  // Tuning-db key: the grouped shape-multiset digest, filed under the
  // aggregate shape (tuner/tuning_db.hpp).  Lookup only -- a background
  // find job would measure a plain GEMM of the aggregate shape, not this
  // grouped schedule.  A record may still be infeasible against the
  // group's *smallest* k (fixed-split factors larger than a problem's
  // iteration count): run the caller's request instead of failing.
  const GemmOptions dispatched = apply_tuned_dispatch(
      tuner::group_key_shape(shapes), precision, caller_options,
      /*allow_background_find=*/false, tuner::group_digest(shapes));
  std::int64_t min_k = shapes[0].k;
  for (const core::GemmShape& s : shapes) min_k = std::min(min_k, s.k);
  const GemmOptions options =
      tuned_dispatch_feasible(dispatched, precision, min_k) ? dispatched
                                                            : caller_options;

  const gpu::BlockShape block =
      options.block.valid() ? options.block : default_cpu_block(precision);
  const core::GroupedMapping grouped(shapes, block);
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();

  // kAuto policy: the analytical planner reasons over one uniform
  // WorkMapping, so hand it the iteration-dominant problem's real mapping.
  // A skewed group's cost is concentrated in that problem, and the
  // schedule the planner picks for its tile grid is the one the whole
  // queue should run -- the remaining problems ride along either way.  A
  // synthetic average-shape proxy mispredicts both extremes of a skewed
  // group (measured: it steered a 1-large + 31-small fp64 group into a
  // hybrid schedule 10% slower than the dominant problem's own choice).
  // Forced schedules bypass the planner entirely.
  std::size_t dominant = 0;
  std::int64_t dominant_iters = -1;
  for (std::size_t p = 0; p < grouped.problems(); ++p) {
    const core::GroupedProblem& prob = grouped.problem(p);
    const std::int64_t iters = prob.tiles * prob.iters_per_tile;
    if (iters > dominant_iters) {
      dominant = p;
      dominant_iters = iters;
    }
  }
  const core::WorkMapping dominant_mapping(grouped.problem(dominant).shape,
                                           block);
  const core::DecompositionSpec spec =
      resolve_schedule(options, dominant_mapping, precision, workers);
  const core::PlanCache::PlanPtr plan = runtime::plan_cache().obtain(
      core::make_grouped_plan_key(grouped, spec), grouped, spec);

  ExecutorOptions exec;
  exec.workers = workers;
  exec.alpha = options.alpha;
  exec.beta = options.beta;
  exec.epilogue = options.epilogue;
  exec.panel_cache = options.panel_cache;

  const auto start = std::chrono::steady_clock::now();
  execute_grouped_plan<In, Acc, Out>(*plan, as, bs, cs, exec,
                                     problem_epilogues);
  const auto stop = std::chrono::steady_clock::now();

  GemmReport report;
  report.spec = spec;
  report.schedule_name = plan->name();
  report.grid = plan->grid();
  report.tiles = grouped.tiles();
  report.spills = plan->total_spills();
  report.seconds = std::chrono::duration<double>(stop - start).count();
  report.gflops =
      report.seconds > 0.0 ? grouped.flops() / report.seconds / 1e9 : 0.0;
  return report;
}

}  // namespace

// Sync front end: one pool job per group (submit-then-get; see
// runtime/gemm_runtime.hpp for the work-stealing guarantee).
template <typename In, typename Acc, typename Out>
GemmReport grouped_gemm(
    std::span<const Matrix<In>> as, std::span<const Matrix<In>> bs,
    std::span<Matrix<Out>> cs, const GemmOptions& options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  return runtime::global_pool()
      .async([as, bs, cs, options, problem_epilogues]() mutable {
        return grouped_gemm_blocking<In, Acc, Out>(as, bs, cs, options,
                                                   problem_epilogues);
      })
      .get();
}

template void execute_grouped_plan<double, double, double>(
    const core::SchedulePlan&, std::span<const Matrix<double>>,
    std::span<const Matrix<double>>, std::span<Matrix<double>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);
template void execute_grouped_plan<float, float, float>(
    const core::SchedulePlan&, std::span<const Matrix<float>>,
    std::span<const Matrix<float>>, std::span<Matrix<float>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);
template void execute_grouped_plan<util::Half, float, float>(
    const core::SchedulePlan&, std::span<const Matrix<util::Half>>,
    std::span<const Matrix<util::Half>>, std::span<Matrix<float>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);

template GemmReport grouped_gemm<double, double, double>(
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);
template GemmReport grouped_gemm<float, float, float>(
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);
template GemmReport grouped_gemm<util::Half, float, float>(
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);

}  // namespace streamk::cpu

namespace streamk::runtime {

GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<double>> as,
    std::span<const cpu::Matrix<double>> bs, std::span<cpu::Matrix<double>> cs,
    const cpu::GemmOptions& options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  return global_pool().async([as, bs, cs, options,
                              problem_epilogues]() mutable {
    return cpu::grouped_gemm_blocking<double, double, double>(
        as, bs, cs, options, problem_epilogues);
  });
}

GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<float>> as,
    std::span<const cpu::Matrix<float>> bs, std::span<cpu::Matrix<float>> cs,
    const cpu::GemmOptions& options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  return global_pool().async([as, bs, cs, options,
                              problem_epilogues]() mutable {
    return cpu::grouped_gemm_blocking<float, float, float>(
        as, bs, cs, options, problem_epilogues);
  });
}

GemmHandle submit_grouped_gemm(
    std::span<const cpu::Matrix<util::Half>> as,
    std::span<const cpu::Matrix<util::Half>> bs,
    std::span<cpu::Matrix<float>> cs, const cpu::GemmOptions& options,
    std::span<const epilogue::EpilogueSpec> problem_epilogues) {
  return global_pool().async([as, bs, cs, options,
                              problem_epilogues]() mutable {
    return cpu::grouped_gemm_blocking<util::Half, float, float>(
        as, bs, cs, options, problem_epilogues);
  });
}

}  // namespace streamk::runtime
