#pragma once

// CTA-wide MacLoop (Algorithm 3 of the paper), CPU edition.
//
// Performs a range of MAC-loop iterations for one output tile, staging
// fragments of A and B into local (cache-resident) scratch at accumulator
// precision before the fully unrolled multiply-accumulate -- the CPU
// analogue of the shared-memory staging in CUTLASS kernels.  Ragged tile
// edges are zero-padded in the fragments so the inner loops stay branch
// free, mirroring how GPU kernels predicate out-of-bounds lanes.

#include <span>

#include "core/decomposition.hpp"
#include "cpu/matrix.hpp"

namespace streamk::cpu {

/// Scratch buffers for one CTA's fragment staging, sized for a block shape;
/// reused across segments to avoid per-segment allocation, and resizable so
/// runtime::local_cta_buffers can recycle them across submissions (resize
/// to an already-held shape allocates nothing).
template <typename Acc>
struct MacScratch {
  std::vector<Acc> frag_a;  ///< BLK_M x BLK_K
  std::vector<Acc> frag_b;  ///< BLK_K x BLK_N

  MacScratch() = default;
  explicit MacScratch(const gpu::BlockShape& block) { resize(block); }

  void resize(const gpu::BlockShape& block) {
    frag_a.resize(static_cast<std::size_t>(block.m * block.k));
    frag_b.resize(static_cast<std::size_t>(block.k * block.n));
  }
};

/// Accumulates segment `seg`'s MAC-loop iterations of the decomposed GEMM
/// into `accum` (BLK_M x BLK_N, row-major).  The caller zero-initializes
/// `accum` before the first segment of a tile.
template <typename In, typename Acc>
void run_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                     const core::WorkMapping& mapping,
                     const core::TileSegment& seg, std::span<Acc> accum,
                     MacScratch<Acc>& scratch);

extern template void run_mac_segment<double, double>(
    const Matrix<double>&, const Matrix<double>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<double>, MacScratch<double>&);
extern template void run_mac_segment<float, float>(
    const Matrix<float>&, const Matrix<float>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<float>, MacScratch<float>&);
extern template void run_mac_segment<util::Half, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&,
    const core::WorkMapping&, const core::TileSegment&, std::span<float>,
    MacScratch<float>&);

}  // namespace streamk::cpu
