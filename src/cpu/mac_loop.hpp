#pragma once

// CTA-wide MacLoop (Algorithm 3 of the paper), CPU edition.
//
// Performs a range of MAC-loop iterations for one output tile.  The
// operands are packed once per k-chunk into register-blocked panels
// (cpu/packing.hpp) at accumulator precision, then consumed by the MR x NR
// microkernel (cpu/microkernel.hpp) -- the CPU analogue of the
// shared-memory staging plus warp-tile MMA of CUTLASS kernels.  Ragged tile
// edges are resolved at pack time and by dedicated edge kernels, so a
// partial tile performs only em * en-proportional work instead of the full
// block volume.

#include <span>

#include "core/decomposition.hpp"
#include "cpu/matrix.hpp"
#include "cpu/packing.hpp"
#include "cpu/panel_cache.hpp"

namespace streamk::cpu {

/// Scratch buffers for one CTA's operand staging, sized for a block shape
/// and packed-chunk depth; reused across segments to avoid per-segment
/// allocation, and resizable so runtime::local_cta_buffers can recycle them
/// across submissions (resize to an already-held shape allocates nothing).
///
/// `frag_a`/`frag_b` are row-major gather staging for substrates whose
/// operands need per-element address math (implicit-GEMM convolution);
/// they are sized lazily via ensure_frags() so the GEMM-family paths --
/// which pack straight from the source matrices -- never carry them.
template <typename Acc>
struct MacScratch {
  std::vector<Acc> frag_a;  ///< BLK_M x BLK_K gather staging (conv)
  std::vector<Acc> frag_b;  ///< BLK_K x BLK_N gather staging (conv)
  PackBuffers<Acc> packs;   ///< microkernel panels, panel_kc deep

  MacScratch() = default;
  explicit MacScratch(const gpu::BlockShape& block) { resize(block); }
  MacScratch(const gpu::BlockShape& block, std::int64_t panel_kc) {
    resize(block, panel_kc);
  }

  /// Sizes the packing buffers for `block` with chunks of `panel_kc`
  /// accumulator elements along k (defaults to one MAC-loop iteration's
  /// depth).
  void resize(const gpu::BlockShape& block, std::int64_t panel_kc = 0) {
    panel_kc_ = panel_kc > 0 ? panel_kc : block.k;
    packs.resize(block, std::max(panel_kc_, block.k));
  }

  /// Sizes the gather staging (no-op once held at this shape).
  void ensure_frags(const gpu::BlockShape& block) {
    frag_a.resize(static_cast<std::size_t>(block.m * block.k));
    frag_b.resize(static_cast<std::size_t>(block.k * block.n));
  }

  /// The k depth one packed chunk holds (>= BLK_K).
  std::int64_t panel_kc() const { return panel_kc_; }

 private:
  std::int64_t panel_kc_ = 0;
};

/// Accumulates segment `seg`'s MAC-loop iterations of the decomposed GEMM
/// into `accum` (BLK_M x BLK_N, row-major).  The caller zero-initializes
/// `accum` before the first segment of a tile; only the valid em x en
/// corner is written, so the padding region of an edge tile stays zero.
/// With a non-null `cache`, chunk panels aligned to the shared arena's
/// grid are packed once per GEMM instead of once per tile (see
/// cpu/panel_cache.hpp); a null cache packs privately as before.
template <typename In, typename Acc>
void run_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                     const core::WorkMapping& mapping,
                     const core::TileSegment& seg, std::span<Acc> accum,
                     MacScratch<Acc>& scratch,
                     PanelCache<Acc>* cache = nullptr);

extern template void run_mac_segment<double, double>(
    const Matrix<double>&, const Matrix<double>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<double>, MacScratch<double>&,
    PanelCache<double>*);
extern template void run_mac_segment<float, float>(
    const Matrix<float>&, const Matrix<float>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<float>, MacScratch<float>&,
    PanelCache<float>*);
extern template void run_mac_segment<util::Half, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&,
    const core::WorkMapping&, const core::TileSegment&, std::span<float>,
    MacScratch<float>&, PanelCache<float>*);

}  // namespace streamk::cpu
