#include "cpu/timing_harness.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/stream_k.hpp"
#include "cpu/executor.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

CalibrationResult calibrate_cpu(const core::GemmShape& shape,
                                gpu::BlockShape block,
                                const CalibrationOptions& options) {
  const core::WorkMapping mapping(shape, block);
  std::vector<std::int64_t> grids = options.grids;
  if (grids.empty()) {
    // Default ladder: spans the no-split / moderate-split / heavy-split
    // regimes so all four constants are observable.
    grids = {1, 2, 3, 4, 6, 8, 12, 16};
  }

  Matrix<double> a(shape.m, shape.k);
  Matrix<double> b(shape.k, shape.n);
  Matrix<double> c(shape.m, shape.n);
  util::Pcg32 rng(0xca11b7a7e);
  fill_random(a, rng);
  fill_random(b, rng);

  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();

  CalibrationResult result;
  for (const std::int64_t g : grids) {
    const core::StreamKBasic decomposition(mapping, g);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, options.repetitions); ++rep) {
      const auto start = std::chrono::steady_clock::now();
      ExecutorOptions exec_options;
      exec_options.workers = workers;
      execute_decomposition<double, double, double>(decomposition, a, b, c,
                                                    exec_options);
      const auto stop = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(stop - start).count());
    }
    result.samples.push_back(model::FitSample{g, best});
  }

  result.params = model::fit_cost_params(mapping, result.samples);
  return result;
}

}  // namespace streamk::cpu
