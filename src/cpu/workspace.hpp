#pragma once

// Fixup workspace: temporary partial-sum storage plus flags.
//
// Stream-K's communication structure (Algorithm 5): a CTA whose iteration
// range begins mid-tile stores its accumulators to a per-CTA partials slot
// in global memory and raises its flag; the tile's owner waits on each
// contributing CTA's flag and reduces the slots.  Storage is allocated only
// for CTAs that actually spill, so -- as the paper emphasizes -- temporary
// storage scales with the grid (O(p)), never with the problem output size.
//
// Synchronization uses one std::atomic<std::uint32_t> per spilling CTA with
// release/acquire ordering: the release store in signal() publishes the
// partials written before it; the acquire load in wait() makes them visible
// to the owner.  wait() blocks via C++20 atomic waiting, so heavily
// oversubscribed executions (hundreds of CTAs on one hardware thread) make
// progress without spinning.
//
// A workspace is *rebindable*: bind(plan, tile_elements) re-derives the
// slot map and rearms the flags while reusing the existing buffer capacity,
// which is what lets runtime::WorkspacePool recycle workspaces across
// submissions instead of allocating per call.  Partials need no clearing on
// rebind or reset: a spilling CTA overwrites its whole slot before
// signalling.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/schedule_plan.hpp"
#include "util/check.hpp"

namespace streamk::cpu {

template <typename Acc>
class FixupWorkspace {
 public:
  /// Unbound workspace (for pooling); bind() before use.
  FixupWorkspace() = default;

  /// Adopts the plan's spill-slot assignment: one slot per CTA with a
  /// non-starting segment.  `tile_elements` is BLK_M * BLK_N.
  FixupWorkspace(const core::SchedulePlan& plan, std::int64_t tile_elements) {
    bind(plan, tile_elements);
  }

  /// Convenience overload: compiles `decomposition` for its slot layout.
  FixupWorkspace(const core::Decomposition& decomposition,
                 std::int64_t tile_elements) {
    bind(core::compile_plan(decomposition), tile_elements);
  }

  /// (Re)binds the workspace to `plan`: rebuilds the slot map, sizes the
  /// partials buffer, and rearms all flags.  Existing vector capacity is
  /// reused, so rebinding to a same-shaped plan allocates nothing.  The
  /// plan is not referenced after bind() returns.
  void bind(const core::SchedulePlan& plan, std::int64_t tile_elements) {
    plan.check_runnable();
    tile_elements_ = tile_elements;
    slot_count_ = plan.spill_slot_count();
    const std::int64_t grid = plan.grid();
    slot_of_cta_.resize(static_cast<std::size_t>(grid));
    for (std::int64_t cta = 0; cta < grid; ++cta) {
      slot_of_cta_[static_cast<std::size_t>(cta)] = plan.spill_slot(cta);
    }
    partials_.resize(static_cast<std::size_t>(slot_count_ * tile_elements_));
    if (flag_capacity_ < slot_count_ || !flags_) {
      const std::int64_t capacity = slot_count_ > 0 ? slot_count_ : 1;
      flags_ = std::make_unique<std::atomic<std::uint32_t>[]>(
          static_cast<std::size_t>(capacity));
      flag_capacity_ = capacity;
    }
    reset();
  }

  std::int64_t slot_count() const { return slot_count_; }

  bool cta_spills(std::int64_t cta) const {
    return slot_of_cta_[static_cast<std::size_t>(cta)] >= 0;
  }

  /// The partials buffer of a spilling CTA.
  std::span<Acc> partials(std::int64_t cta) {
    const std::int64_t slot = slot_of_cta_[static_cast<std::size_t>(cta)];
    util::check(slot >= 0, "CTA has no partials slot");
    return std::span<Acc>(
        partials_.data() + static_cast<std::size_t>(slot * tile_elements_),
        static_cast<std::size_t>(tile_elements_));
  }

  /// Publishes `cta`'s partials (release) and wakes waiters.
  void signal(std::int64_t cta) {
    const std::int64_t slot = slot_of_cta_[static_cast<std::size_t>(cta)];
    util::check(slot >= 0, "signal from CTA without slot");
    auto& flag = flags_[static_cast<std::size_t>(slot)];
    flag.store(1, std::memory_order_release);
    flag.notify_all();
  }

  /// Blocks until `cta`'s partials are published (acquire).  Returns the
  /// number of blocking iterations taken (0 = the flag was already up), so
  /// callers can report fixup contention without this header knowing about
  /// the telemetry layer.
  std::int64_t wait(std::int64_t cta) {
    const std::int64_t slot = slot_of_cta_[static_cast<std::size_t>(cta)];
    util::check(slot >= 0, "wait on CTA without slot");
    auto& flag = flags_[static_cast<std::size_t>(slot)];
    std::int64_t wakeups = 0;
    std::uint32_t observed = flag.load(std::memory_order_acquire);
    while (observed == 0) {
      flag.wait(0, std::memory_order_acquire);
      observed = flag.load(std::memory_order_acquire);
      ++wakeups;
    }
    return wakeups;
  }

  /// Rearms all flags (partials contents need no clearing; spilling CTAs
  /// overwrite their slot before signalling).
  void reset() {
    for (std::int64_t s = 0; s < slot_count_; ++s) {
      flags_[static_cast<std::size_t>(s)].store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::int64_t tile_elements_ = 0;
  std::int64_t slot_count_ = 0;
  std::int64_t flag_capacity_ = 0;
  std::vector<std::int64_t> slot_of_cta_;
  std::vector<Acc> partials_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> flags_;
};

}  // namespace streamk::cpu
