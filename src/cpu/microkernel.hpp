#pragma once

// Register-blocked MAC microkernel over packed panels.
//
// The CPU analogue of a CUTLASS warp-tile: the packed A/B panels produced by
// cpu/packing.hpp are consumed MR x NR output sub-tiles at a time, with the
// sub-tile held in registers across the whole packed k depth.  Compared to
// the seed's triple loop (which re-read and re-wrote every accumulator
// element once per k step), the microkernel performs one C load and one C
// store per kc-deep chunk and streams A/B linearly from the packed panels.
//
// Three implementations share one contract:
//
//   * microkernel_generic<Acc> -- full MR x NR tile, portable C++ written
//     so the j loop auto-vectorizes (constant trip counts, one separate
//     accumulator array per row -- see the comment on the function);
//   * an __AVX2__/__FMA__ intrinsic specialization for double and float on
//     builds without AVX-512 (where the portable kernel's own codegen is
//     already a full-width zmm tile), selected at runtime unless
//     STREAMK_FORCE_SCALAR is set (environment variable or
//     set_force_scalar()), so vector and portable paths can be A/B-tested
//     in one binary;
//   * microkernel_edge<Acc>   -- ragged fringe variant bounded by (mr, nr):
//                                it performs exactly mr * nr * kc MACs, which
//                                is what makes edge tiles pay only for their
//                                valid region (the seed's loop always paid
//                                the full BLK_M * BLK_N block volume).
//
// Panel element layout (see cpu/packing.hpp): A panel p holds rows
// [p*MR, p*MR + MR) k-major -- element (i, k) at a[k * MR + i]; B panel q
// holds columns [q*NR, q*NR + NR) -- element (k, j) at b[k * NR + j].
//
// MR x NR choice: MR = 4 rows with NR spanning two vectors of the widest
// available extension (8/16 doubles, 16/32 floats on AVX2/AVX-512) keeps
// the accumulator tile plus one broadcast and two B loads inside the
// architectural vector register file, and gives the compiler the same
// shape to work with in the portable path.
//
// MacProbe is the test hook for the edge-tile accounting bugfix: when
// enabled it counts the MACs actually dispatched (per-kernel mr * nr * kc),
// so a test can assert that a ragged tile performs em * en-proportional
// work.  Disabled it costs one relaxed atomic load per microkernel call.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace streamk::cpu {

/// Register-tile extents for an accumulator type: MR = 4 rows by NR
/// columns, NR sized to two vectors of the widest extension the build
/// targets (zmm on AVX-512, ymm otherwise).  The 4 x 2-vector tile plus
/// one broadcast and two B loads stays inside the architectural vector
/// register file in both cases.
template <typename Acc>
struct MicroTile {
  static constexpr std::int64_t kMr = 4;
#if defined(__AVX512F__)
  static constexpr std::int64_t kNr =
      128 / static_cast<std::int64_t>(sizeof(Acc));
#else
  static constexpr std::int64_t kNr =
      64 / static_cast<std::int64_t>(sizeof(Acc));
#endif
};

/// Test-only MAC accounting.  Kernels report the multiply-accumulates they
/// actually perform; tests enable the probe, run a path, and compare the
/// count against the valid-region volume.
class MacProbe {
 public:
  static void enable(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
    if (on) counter().store(0, std::memory_order_relaxed);
  }
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static std::int64_t count() {
    return counter().load(std::memory_order_relaxed);
  }
  static void reset() { counter().store(0, std::memory_order_relaxed); }

  /// Called by the packed-MAC driver once per kernel dispatch.
  static void add(std::int64_t macs) {
    if (enabled()) counter().fetch_add(macs, std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }
  static std::atomic<std::int64_t>& counter() {
    static std::atomic<std::int64_t> count{0};
    return count;
  }
};

/// Escape hatch: when true, the portable kernels run even on AVX2 builds.
/// Seeded from the STREAMK_FORCE_SCALAR environment variable ("", unset, or
/// "0" mean off) and overridable in-process for A/B benching.
inline std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("STREAMK_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' && std::string_view(env) != "0";
  }()};
  return flag;
}
inline void set_force_scalar(bool forced) {
  force_scalar_flag().store(forced, std::memory_order_relaxed);
}
inline bool force_scalar() {
  return force_scalar_flag().load(std::memory_order_relaxed);
}

/// Portable full-tile kernel: C[MR][NR] += A_panel . B_panel over kc steps.
/// The four row accumulators are *separate* constant-extent locals rather
/// than one 2D array, with the B element hoisted across rows -- the shape
/// GCC's vectorizer reliably turns into four independent fused
/// multiply-add chains over the full NR width (the 2D-array form trips its
/// access-pattern analysis for float and falls back to scalar code, an
/// order of magnitude slower).  On AVX-512 builds this compiles to the
/// same zmm register tile a hand-written kernel would use.
template <typename Acc>
void microkernel_generic(const Acc* a_panel, const Acc* b_panel,
                         std::int64_t kc, Acc* c, std::int64_t ldc) {
  constexpr std::int64_t kNr = MicroTile<Acc>::kNr;
  static_assert(MicroTile<Acc>::kMr == 4, "kernel unrolls four rows");
  Acc acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const Acc* ak = a_panel + k * 4;
    const Acc* bk = b_panel + k * kNr;
    const Acc a0 = ak[0], a1 = ak[1], a2 = ak[2], a3 = ak[3];
    for (std::int64_t j = 0; j < kNr; ++j) {
      const Acc bj = bk[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
  for (std::int64_t j = 0; j < kNr; ++j) c[j] += acc0[j];
  for (std::int64_t j = 0; j < kNr; ++j) c[ldc + j] += acc1[j];
  for (std::int64_t j = 0; j < kNr; ++j) c[2 * ldc + j] += acc2[j];
  for (std::int64_t j = 0; j < kNr; ++j) c[3 * ldc + j] += acc3[j];
}

/// Ragged-fringe kernel: exactly mr x nr x kc MACs (1 <= mr <= MR,
/// 1 <= nr <= NR).  Panels keep their full MR/NR strides; only the valid
/// lanes are read.
template <typename Acc>
void microkernel_edge(const Acc* a_panel, const Acc* b_panel, std::int64_t kc,
                      std::int64_t mr, std::int64_t nr, Acc* c,
                      std::int64_t ldc) {
  constexpr std::int64_t kMr = MicroTile<Acc>::kMr;
  constexpr std::int64_t kNr = MicroTile<Acc>::kNr;
  Acc acc[kMr][kNr] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const Acc* ak = a_panel + k * kMr;
    const Acc* bk = b_panel + k * kNr;
    for (std::int64_t i = 0; i < mr; ++i) {
      const Acc av = ak[i];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    Acc* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) c_row[j] += acc[i][j];
  }
}

#if defined(__AVX2__) && defined(__FMA__) && !defined(__AVX512F__)

// Hand-written AVX2 kernels for builds without AVX-512.  (With AVX-512 the
// register tile is twice as wide and the portable kernel above already
// compiles to the full-width zmm FMA tile, so no intrinsics are needed --
// the dispatch below routes accordingly.)

/// AVX2+FMA full-tile kernel, double: 4 x 8 accumulator in 8 ymm registers,
/// one broadcast and two B loads live per k step.
inline void microkernel_avx2(const double* a_panel, const double* b_panel,
                             std::int64_t kc, double* c, std::int64_t ldc) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  for (std::int64_t k = 0; k < kc; ++k) {
    const double* ak = a_panel + k * 4;
    const double* bk = b_panel + k * 8;
    const __m256d b0 = _mm256_loadu_pd(bk);
    const __m256d b1 = _mm256_loadu_pd(bk + 4);
    __m256d ai = _mm256_broadcast_sd(ak + 0);
    acc00 = _mm256_fmadd_pd(ai, b0, acc00);
    acc01 = _mm256_fmadd_pd(ai, b1, acc01);
    ai = _mm256_broadcast_sd(ak + 1);
    acc10 = _mm256_fmadd_pd(ai, b0, acc10);
    acc11 = _mm256_fmadd_pd(ai, b1, acc11);
    ai = _mm256_broadcast_sd(ak + 2);
    acc20 = _mm256_fmadd_pd(ai, b0, acc20);
    acc21 = _mm256_fmadd_pd(ai, b1, acc21);
    ai = _mm256_broadcast_sd(ak + 3);
    acc30 = _mm256_fmadd_pd(ai, b0, acc30);
    acc31 = _mm256_fmadd_pd(ai, b1, acc31);
  }
  double* c0 = c;
  double* c1 = c + ldc;
  double* c2 = c + 2 * ldc;
  double* c3 = c + 3 * ldc;
  _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), acc00));
  _mm256_storeu_pd(c0 + 4, _mm256_add_pd(_mm256_loadu_pd(c0 + 4), acc01));
  _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), acc10));
  _mm256_storeu_pd(c1 + 4, _mm256_add_pd(_mm256_loadu_pd(c1 + 4), acc11));
  _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), acc20));
  _mm256_storeu_pd(c2 + 4, _mm256_add_pd(_mm256_loadu_pd(c2 + 4), acc21));
  _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), acc30));
  _mm256_storeu_pd(c3 + 4, _mm256_add_pd(_mm256_loadu_pd(c3 + 4), acc31));
}

/// AVX2+FMA full-tile kernel, float: 4 x 16 accumulator in 8 ymm registers.
inline void microkernel_avx2(const float* a_panel, const float* b_panel,
                             std::int64_t kc, float* c, std::int64_t ldc) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* ak = a_panel + k * 4;
    const float* bk = b_panel + k * 16;
    const __m256 b0 = _mm256_loadu_ps(bk);
    const __m256 b1 = _mm256_loadu_ps(bk + 8);
    __m256 ai = _mm256_broadcast_ss(ak + 0);
    acc00 = _mm256_fmadd_ps(ai, b0, acc00);
    acc01 = _mm256_fmadd_ps(ai, b1, acc01);
    ai = _mm256_broadcast_ss(ak + 1);
    acc10 = _mm256_fmadd_ps(ai, b0, acc10);
    acc11 = _mm256_fmadd_ps(ai, b1, acc11);
    ai = _mm256_broadcast_ss(ak + 2);
    acc20 = _mm256_fmadd_ps(ai, b0, acc20);
    acc21 = _mm256_fmadd_ps(ai, b1, acc21);
    ai = _mm256_broadcast_ss(ak + 3);
    acc30 = _mm256_fmadd_ps(ai, b0, acc30);
    acc31 = _mm256_fmadd_ps(ai, b1, acc31);
  }
  float* c0 = c;
  float* c1 = c + ldc;
  float* c2 = c + 2 * ldc;
  float* c3 = c + 3 * ldc;
  _mm256_storeu_ps(c0, _mm256_add_ps(_mm256_loadu_ps(c0), acc00));
  _mm256_storeu_ps(c0 + 8, _mm256_add_ps(_mm256_loadu_ps(c0 + 8), acc01));
  _mm256_storeu_ps(c1, _mm256_add_ps(_mm256_loadu_ps(c1), acc10));
  _mm256_storeu_ps(c1 + 8, _mm256_add_ps(_mm256_loadu_ps(c1 + 8), acc11));
  _mm256_storeu_ps(c2, _mm256_add_ps(_mm256_loadu_ps(c2), acc20));
  _mm256_storeu_ps(c2 + 8, _mm256_add_ps(_mm256_loadu_ps(c2 + 8), acc21));
  _mm256_storeu_ps(c3, _mm256_add_ps(_mm256_loadu_ps(c3), acc30));
  _mm256_storeu_ps(c3 + 8, _mm256_add_ps(_mm256_loadu_ps(c3 + 8), acc31));
}

template <typename Acc>
inline constexpr bool kHasIntrinsicKernel =
    std::is_same_v<Acc, double> || std::is_same_v<Acc, float>;

#else

template <typename Acc>
inline constexpr bool kHasIntrinsicKernel = false;

#endif  // __AVX2__ && __FMA__ && !__AVX512F__

/// True when the build carries a vector ISA wide enough that the full-tile
/// kernel runs as fused-multiply-add register tiles (by intrinsics on AVX2,
/// by the portable kernel's codegen on AVX-512).
template <typename Acc>
inline constexpr bool kHasVectorKernel =
#if defined(__AVX512F__)
    std::is_same_v<Acc, double> || std::is_same_v<Acc, float>;
#else
    kHasIntrinsicKernel<Acc>;
#endif

/// Full-tile dispatch: intrinsic kernel when compiled in and not forced off.
template <typename Acc>
inline void microkernel(const Acc* a_panel, const Acc* b_panel,
                        std::int64_t kc, Acc* c, std::int64_t ldc) {
#if defined(__AVX2__) && defined(__FMA__) && !defined(__AVX512F__)
  if constexpr (kHasIntrinsicKernel<Acc>) {
    if (!force_scalar()) {
      microkernel_avx2(a_panel, b_panel, kc, c, ldc);
      return;
    }
  }
#endif
  microkernel_generic(a_panel, b_panel, kc, c, ldc);
}

/// Runs the register-tiled kernels over one packed chunk: full MR x NR
/// tiles across the interior, edge variants over the ragged fringe.  `c` is
/// the em x en valid corner of a row-major tile with leading dimension
/// `ldc`; only rows [0, em) and columns [0, en) are touched, so the zero
/// padding of a partial tile's accumulator stays zero.
template <typename Acc>
void run_packed_mac(const Acc* packed_a, const Acc* packed_b, std::int64_t em,
                    std::int64_t en, std::int64_t kc, Acc* c,
                    std::int64_t ldc) {
  constexpr std::int64_t kMr = MicroTile<Acc>::kMr;
  constexpr std::int64_t kNr = MicroTile<Acc>::kNr;
  const std::int64_t m_panels = (em + kMr - 1) / kMr;
  const std::int64_t n_panels = (en + kNr - 1) / kNr;
  for (std::int64_t q = 0; q < n_panels; ++q) {
    const Acc* b_panel = packed_b + q * kNr * kc;
    const std::int64_t nr = std::min(kNr, en - q * kNr);
    for (std::int64_t p = 0; p < m_panels; ++p) {
      const Acc* a_panel = packed_a + p * kMr * kc;
      const std::int64_t mr = std::min(kMr, em - p * kMr);
      Acc* c_block = c + p * kMr * ldc + q * kNr;
      if (mr == kMr && nr == kNr) {
        microkernel(a_panel, b_panel, kc, c_block, ldc);
      } else {
        microkernel_edge(a_panel, b_panel, kc, mr, nr, c_block, ldc);
      }
      MacProbe::add(mr * nr * kc);
    }
  }
}

}  // namespace streamk::cpu
