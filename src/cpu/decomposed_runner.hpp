#pragma once

// Generic plan-driven execution skeleton.
//
// The single CTA loop behind every execution substrate (GEMM, batched GEMM,
// implicit-GEMM convolution, transposed BLAS views): claim CTAs in
// descending id order, run each segment's MAC functor into a local
// accumulator, and apply the Stream-K fixup protocol -- spill + signal for
// non-starting segments, await + serial reduce + store for owners.  Work
// streams and fixup peers come from a compiled core::SchedulePlan, so the
// hot loop touches only flat arrays: no virtual calls, no per-CTA vector
// materialization.  The caller supplies two functors:
//
//     mac(segment, accum, scratch)  -- accumulate the segment's iterations
//     store(tile_idx, accum)        -- epilogue for a completed tile
//
// Deadlock freedom and memory-ordering arguments are identical to
// cpu/executor.hpp (waits target higher ids; claims descend; flag
// signal/wait is release/acquire); see DESIGN.md.

#include <algorithm>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/executor.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/workspace.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

template <typename Acc, typename MacFn, typename StoreFn>
void run_decomposed(const core::SchedulePlan& plan, std::int64_t tile_elements,
                    MacFn&& mac, StoreFn&& store,
                    const ExecutorOptions& options) {
  plan.check_runnable();
  FixupWorkspace<Acc> workspace(plan, tile_elements);
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::hardware_threads();

  auto run_cta = [&](std::size_t cta_index) {
    const auto cta = static_cast<std::int64_t>(cta_index);
    const std::span<const core::TileSegment> segments = plan.cta_segments(cta);
    if (segments.empty()) return;

    std::vector<Acc> accum(static_cast<std::size_t>(tile_elements));
    MacScratch<Acc> scratch(plan.mapping().block());

    for (const core::TileSegment& seg : segments) {
      std::fill(accum.begin(), accum.end(), Acc{});
      mac(seg, std::span<Acc>(accum), scratch);

      if (!seg.starts_tile()) {
        std::span<Acc> slot = workspace.partials(cta);
        std::copy(accum.begin(), accum.end(), slot.begin());
        workspace.signal(cta);
        continue;
      }
      if (!seg.ends_tile()) {
        for (const std::int64_t peer : plan.tile_contributors(seg.tile_idx)) {
          workspace.wait(peer);
          std::span<const Acc> slot = workspace.partials(peer);
          for (std::size_t i = 0; i < accum.size(); ++i) accum[i] += slot[i];
        }
      }
      store(seg.tile_idx, std::span<const Acc>(accum));
    }
  };

  util::parallel_for_descending(static_cast<std::size_t>(plan.grid()), run_cta,
                                workers);
}

}  // namespace streamk::cpu
