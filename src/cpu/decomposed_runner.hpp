#pragma once

// Generic plan-driven execution skeleton.
//
// The single CTA loop behind every execution substrate (GEMM, batched GEMM,
// implicit-GEMM convolution, transposed BLAS views): claim CTAs in
// descending id order, run each segment's MAC functor into a local
// accumulator, and apply the Stream-K fixup protocol -- spill + signal for
// non-starting segments, await + serial reduce + store for owners.  Work
// streams and fixup peers come from a compiled core::SchedulePlan, so the
// hot loop touches only flat arrays: no virtual calls, no per-CTA vector
// materialization.  The caller supplies two functors:
//
//     mac(segment, accum, scratch, cache)  -- accumulate the segment's
//                                             iterations (cache may be null:
//                                             pack privately)
//     store(tile_idx, accum)               -- epilogue for a completed tile
//
// Deadlock freedom and memory-ordering arguments are identical to
// cpu/executor.hpp (waits target higher ids; claims descend; flag
// signal/wait is release/acquire); see DESIGN.md.
//
// Allocation behaviour: the fixup workspace is leased from
// runtime::WorkspacePool and the per-CTA accumulator/fragment scratch comes
// from the claiming thread's runtime::local_cta_buffers, so steady-state
// traffic over one plan shape executes with no per-call or per-CTA heap
// allocation.  Parallelism comes from util::parallel_for_descending, which
// dispatches onto the persistent runtime::global_pool().

#include <algorithm>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/executor.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/panel_cache.hpp"
#include "cpu/workspace.hpp"
#include "obs/obs.hpp"
#include "runtime/workspace_pool.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

/// `cache_config` overrides the plan's panel-cache slot grid for substrates
/// whose panel keys are not the plain (tm, tn) matrix panels (batched
/// entries, convolution iterations); nullptr takes the plan geometry.
template <typename Acc, typename MacFn, typename StoreFn>
void run_decomposed(const core::SchedulePlan& plan, std::int64_t tile_elements,
                    MacFn&& mac, StoreFn&& store,
                    const ExecutorOptions& options,
                    const PanelCacheConfig* cache_config = nullptr) {
  plan.check_runnable();
  auto lease =
      runtime::WorkspacePool<Acc>::instance().acquire(plan, tile_elements);
  FixupWorkspace<Acc>& workspace = lease.workspace();
  auto cache_lease = runtime::PanelCachePool<Acc>::instance().acquire(
      plan, options.panel_cache, cache_config);
  PanelCache<Acc>* cache = cache_lease.cache();
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();

  const std::int64_t panel_kc = plan.pack_geometry().panel_kc;

  auto run_cta = [&](std::size_t cta_index) {
    const auto cta = static_cast<std::int64_t>(cta_index);
    const std::span<const core::TileSegment> segments = plan.cta_segments(cta);
    if (segments.empty()) return;

    runtime::CtaBuffers<Acc> fresh;  // used only when pooling is disabled
    runtime::CtaBuffers<Acc>& buffers = runtime::local_cta_buffers<Acc>(
        fresh, plan.block(), tile_elements, panel_kc);
    std::vector<Acc>& accum = buffers.accum;
    MacScratch<Acc>& scratch = buffers.scratch;

    try {
      for (const core::TileSegment& seg : segments) {
        std::fill(accum.begin(), accum.end(), Acc{});
        {
          STREAMK_OBS_SPAN(kMacSegment, cta, seg.tile_idx);
          mac(seg, std::span<Acc>(accum), scratch, cache);
        }

        if (!seg.starts_tile()) {
          std::span<Acc> slot = workspace.partials(cta);
          std::copy(accum.begin(), accum.end(), slot.begin());
          workspace.signal(cta);
          STREAMK_OBS_INSTANT(kFixupSignal, cta, seg.tile_idx);
          continue;
        }
        if (!seg.ends_tile()) {
          for (const std::int64_t peer :
               plan.tile_contributors(seg.tile_idx)) {
            {
              STREAMK_OBS_SPAN(kFixupWait, cta, peer);
              const std::int64_t wakeups = workspace.wait(peer);
              STREAMK_OBS_COUNT_N("fixup.wait_wakeups", wakeups);
              STREAMK_OBS_COUNT("fixup.waits");
            }
            std::span<const Acc> slot = workspace.partials(peer);
            for (std::size_t i = 0; i < accum.size(); ++i) accum[i] += slot[i];
          }
        }
        {
          STREAMK_OBS_SPAN(kEpilogueApply, cta, seg.tile_idx);
          store(seg.tile_idx, std::span<const Acc>(accum));
        }
      }
    } catch (...) {
      // A spilling CTA that dies before signalling would strand its tile
      // owner in workspace.wait() forever (the parallel region keeps
      // draining after a failure precisely so waiters are released).
      // Raise the flag on the way out -- the partials are garbage, but the
      // first exception is what reaches the caller, not the results.
      if (workspace.cta_spills(cta)) workspace.signal(cta);
      throw;
    }
  };

  util::parallel_for_descending(static_cast<std::size_t>(plan.grid()), run_cta,
                                workers);
}

}  // namespace streamk::cpu
