#include "cpu/executor.hpp"

#include <algorithm>
#include <vector>

#include "core/peers.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/reference.hpp"
#include "cpu/workspace.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

namespace {

/// Stores accum into the valid region of C with alpha/beta scaling.
template <typename Acc, typename Out>
void store_tile(const core::WorkMapping& mapping, std::int64_t tile_idx,
                std::span<const Acc> accum, Matrix<Out>& c, double alpha,
                double beta) {
  const gpu::BlockShape& blk = mapping.block();
  const core::TileCoord coord = mapping.tile_coord(tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  for (std::int64_t i = 0; i < em; ++i) {
    Out* c_row = c.row_ptr(mm + i) + nn;
    const Acc* acc_row = accum.data() + static_cast<std::size_t>(i * blk.n);
    for (std::int64_t j = 0; j < en; ++j) {
      const Acc scaled =
          static_cast<Acc>(alpha) * acc_row[j] +
          static_cast<Acc>(beta) * static_cast<Acc>(c_row[j]);
      c_row[j] = static_cast<Out>(scaled);
    }
  }
}

}  // namespace

template <typename In, typename Acc, typename Out>
void execute_decomposition(const core::Decomposition& decomposition,
                           const Matrix<In>& a, const Matrix<In>& b,
                           Matrix<Out>& c, const ExecutorOptions& options) {
  const core::WorkMapping& mapping = decomposition.mapping();
  const core::GemmShape shape = product_shape(a, b, c);
  util::check(shape == mapping.shape(),
              "matrices do not match the decomposition's GEMM shape");

  const gpu::BlockShape& blk = mapping.block();
  const core::FixupTable fixups(decomposition);
  FixupWorkspace<Acc> workspace(decomposition, blk.tile_elements());

  const std::size_t workers =
      options.workers > 0 ? options.workers : util::hardware_threads();

  auto run_cta = [&](std::size_t cta_index) {
    const auto cta = static_cast<std::int64_t>(cta_index);
    const core::CtaWork work = decomposition.cta_work(cta);
    if (work.empty()) return;

    std::vector<Acc> accum(static_cast<std::size_t>(blk.tile_elements()));
    MacScratch<Acc> scratch(blk);

    for (const core::TileSegment& seg : work.segments) {
      std::fill(accum.begin(), accum.end(), Acc{});
      run_mac_segment<In, Acc>(a, b, mapping, seg, std::span<Acc>(accum),
                               scratch);

      if (!seg.starts_tile()) {
        // Spill: publish partials, raise this CTA's flag.
        std::span<Acc> slot = workspace.partials(cta);
        std::copy(accum.begin(), accum.end(), slot.begin());
        workspace.signal(cta);
        continue;
      }

      if (!seg.ends_tile()) {
        // Owner of a split tile: await and reduce each contributing peer in
        // ascending id order (Algorithm 5 lines 31-36).
        const core::TileFixup& fixup = fixups.tile(seg.tile_idx);
        for (const std::int64_t peer : fixup.contributors) {
          workspace.wait(peer);
          std::span<const Acc> slot = workspace.partials(peer);
          for (std::size_t i = 0; i < accum.size(); ++i) accum[i] += slot[i];
        }
      }

      store_tile<Acc, Out>(mapping, seg.tile_idx,
                           std::span<const Acc>(accum), c, options.alpha,
                           options.beta);
    }
  };

  // Descending-order claiming is what makes any worker count deadlock-free;
  // see the header comment.
  util::parallel_for_descending(
      static_cast<std::size_t>(decomposition.grid_size()), run_cta, workers);
}

template void execute_decomposition<double, double, double>(
    const core::Decomposition&, const Matrix<double>&, const Matrix<double>&,
    Matrix<double>&, const ExecutorOptions&);
template void execute_decomposition<float, float, float>(
    const core::Decomposition&, const Matrix<float>&, const Matrix<float>&,
    Matrix<float>&, const ExecutorOptions&);
template void execute_decomposition<util::Half, float, float>(
    const core::Decomposition&, const Matrix<util::Half>&,
    const Matrix<util::Half>&, Matrix<float>&, const ExecutorOptions&);

}  // namespace streamk::cpu
