#include "cpu/executor.hpp"

#include <algorithm>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/decomposed_runner.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/reference.hpp"
#include "cpu/workspace.hpp"
#include "epilogue/apply.hpp"

namespace streamk::cpu {

template <typename In, typename Acc, typename Out>
void execute_plan(const core::SchedulePlan& plan, const Matrix<In>& a,
                  const Matrix<In>& b, Matrix<Out>& c,
                  const ExecutorOptions& options) {
  const core::WorkMapping& mapping = plan.mapping();
  const core::GemmShape shape = product_shape(a, b, c);
  util::check(shape == mapping.shape(),
              "matrices do not match the plan's GEMM shape");

  const epilogue::EpiloguePlanPtr eplan = plan.epilogue_plan(options.epilogue);
  epilogue::check_bindings(*eplan, options.epilogue, shape.m, shape.n,
                           epilogue::tensor_type_of<Out>());

  run_decomposed<Acc>(
      plan, mapping.block().tile_elements(),
      [&](const core::TileSegment& seg, std::span<Acc> accum,
          MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
        run_mac_segment<In, Acc>(a, b, mapping, seg, accum, scratch, cache);
      },
      [&](std::int64_t tile_idx, std::span<const Acc> accum) {
        const gpu::BlockShape& blk = mapping.block();
        const core::TileCoord coord = mapping.tile_coord(tile_idx);
        const std::int64_t mm = coord.tm * blk.m;
        const std::int64_t nn = coord.tn * blk.n;
        epilogue::apply_tile<Acc, Out>(
            *eplan, options.epilogue, options.alpha, options.beta, mm, nn,
            mapping.tile_extent_m(coord.tm), mapping.tile_extent_n(coord.tn),
            shape.n, accum.data(), blk.n, c.row_ptr(mm) + nn, c.cols());
      },
      options);
}

template <typename In, typename Acc, typename Out>
void execute_decomposition(const core::Decomposition& decomposition,
                           const Matrix<In>& a, const Matrix<In>& b,
                           Matrix<Out>& c, const ExecutorOptions& options) {
  const core::SchedulePlan plan = core::compile_plan(decomposition);
  execute_plan<In, Acc, Out>(plan, a, b, c, options);
}

template void execute_plan<double, double, double>(
    const core::SchedulePlan&, const Matrix<double>&, const Matrix<double>&,
    Matrix<double>&, const ExecutorOptions&);
template void execute_plan<float, float, float>(
    const core::SchedulePlan&, const Matrix<float>&, const Matrix<float>&,
    Matrix<float>&, const ExecutorOptions&);
template void execute_plan<util::Half, float, float>(
    const core::SchedulePlan&, const Matrix<util::Half>&,
    const Matrix<util::Half>&, Matrix<float>&, const ExecutorOptions&);

template void execute_decomposition<double, double, double>(
    const core::Decomposition&, const Matrix<double>&, const Matrix<double>&,
    Matrix<double>&, const ExecutorOptions&);
template void execute_decomposition<float, float, float>(
    const core::Decomposition&, const Matrix<float>&, const Matrix<float>&,
    Matrix<float>&, const ExecutorOptions&);
template void execute_decomposition<util::Half, float, float>(
    const core::Decomposition&, const Matrix<util::Half>&,
    const Matrix<util::Half>&, Matrix<float>&, const ExecutorOptions&);

}  // namespace streamk::cpu
