#pragma once

// Reference GEMM implementations.
//
//   * reference_gemm: the classic sequential cache-blocked formulation
//     (Algorithm 1 of the paper) -- six loops, three blocking factors --
//     generalized with alpha/beta scaling.  This is the ground truth the
//     decomposed executors are verified against, and itself one of the
//     paper's described systems.
//   * naive_gemm: the textbook triple loop, used to validate the blocked
//     reference on small problems.
//
// Both accumulate at the precision's accumulator type (float for FP16->32).

#include "core/gemm_shape.hpp"
#include "cpu/matrix.hpp"
#include "gpu/block_shape.hpp"

namespace streamk::cpu {

template <typename In, typename Acc, typename Out>
void reference_gemm(const Matrix<In>& a, const Matrix<In>& b, Matrix<Out>& c,
                    gpu::BlockShape block, double alpha = 1.0,
                    double beta = 0.0);

template <typename In, typename Acc, typename Out>
void naive_gemm(const Matrix<In>& a, const Matrix<In>& b, Matrix<Out>& c,
                double alpha = 1.0, double beta = 0.0);

/// Shape of the product a * b, validating conformance.
template <typename In, typename Out>
core::GemmShape product_shape(const Matrix<In>& a, const Matrix<In>& b,
                              const Matrix<Out>& c) {
  util::check(a.cols() == b.rows(), "GEMM inner extents do not conform");
  util::check(c.rows() == a.rows() && c.cols() == b.cols(),
              "GEMM output extents do not conform");
  return core::GemmShape{a.rows(), b.cols(), a.cols()};
}

}  // namespace streamk::cpu
