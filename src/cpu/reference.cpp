#include "cpu/reference.hpp"

#include <algorithm>
#include <vector>

namespace streamk::cpu {

namespace {

template <typename In, typename Acc>
Acc load(const In& v) {
  return static_cast<Acc>(v);
}
template <>
float load<util::Half, float>(const util::Half& v) {
  return static_cast<float>(v);
}

}  // namespace

template <typename In, typename Acc, typename Out>
void reference_gemm(const Matrix<In>& a, const Matrix<In>& b, Matrix<Out>& c,
                    gpu::BlockShape block, double alpha, double beta) {
  const core::GemmShape shape = product_shape(a, b, c);
  util::check(block.valid(), "invalid block shape");

  std::vector<Acc> accum(
      static_cast<std::size_t>(block.m * block.n));

  // Tile-processing outer loops (Algorithm 1 lines 2-3).
  for (std::int64_t mm = 0; mm < shape.m; mm += block.m) {
    const std::int64_t em = std::min(block.m, shape.m - mm);
    for (std::int64_t nn = 0; nn < shape.n; nn += block.n) {
      const std::int64_t en = std::min(block.n, shape.n - nn);

      // Zero-initialize the output tile accumulators (lines 5-9).
      std::fill(accum.begin(), accum.end(), Acc{});

      // MAC iterations for this tile (lines 11-21).
      for (std::int64_t kk = 0; kk < shape.k; kk += block.k) {
        const std::int64_t ek = std::min(block.k, shape.k - kk);
        for (std::int64_t i = 0; i < em; ++i) {
          const In* a_row = a.row_ptr(mm + i) + kk;
          Acc* acc_row = accum.data() + static_cast<std::size_t>(i * block.n);
          for (std::int64_t l = 0; l < ek; ++l) {
            const Acc av = load<In, Acc>(a_row[l]);
            const In* b_row = b.row_ptr(kk + l) + nn;
            for (std::int64_t j = 0; j < en; ++j) {
              acc_row[j] += av * load<In, Acc>(b_row[j]);
            }
          }
        }
      }

      // Epilogue: C = alpha * accum + beta * C on the valid region.
      for (std::int64_t i = 0; i < em; ++i) {
        Out* c_row = c.row_ptr(mm + i) + nn;
        const Acc* acc_row =
            accum.data() + static_cast<std::size_t>(i * block.n);
        for (std::int64_t j = 0; j < en; ++j) {
          const Acc scaled = static_cast<Acc>(alpha) * acc_row[j] +
                             static_cast<Acc>(beta) *
                                 static_cast<Acc>(c_row[j]);
          c_row[j] = static_cast<Out>(scaled);
        }
      }
    }
  }
}

template <typename In, typename Acc, typename Out>
void naive_gemm(const Matrix<In>& a, const Matrix<In>& b, Matrix<Out>& c,
                double alpha, double beta) {
  const core::GemmShape shape = product_shape(a, b, c);
  for (std::int64_t i = 0; i < shape.m; ++i) {
    for (std::int64_t j = 0; j < shape.n; ++j) {
      Acc sum{};
      for (std::int64_t l = 0; l < shape.k; ++l) {
        sum += load<In, Acc>(a.at(i, l)) * load<In, Acc>(b.at(l, j));
      }
      const Acc scaled = static_cast<Acc>(alpha) * sum +
                         static_cast<Acc>(beta) *
                             static_cast<Acc>(c.at(i, j));
      c.at(i, j) = static_cast<Out>(scaled);
    }
  }
}

// Explicit instantiations for the supported precisions.
template void reference_gemm<double, double, double>(
    const Matrix<double>&, const Matrix<double>&, Matrix<double>&,
    gpu::BlockShape, double, double);
template void reference_gemm<float, float, float>(
    const Matrix<float>&, const Matrix<float>&, Matrix<float>&,
    gpu::BlockShape, double, double);
template void reference_gemm<util::Half, float, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&, Matrix<float>&,
    gpu::BlockShape, double, double);

template void naive_gemm<double, double, double>(const Matrix<double>&,
                                                 const Matrix<double>&,
                                                 Matrix<double>&, double,
                                                 double);
template void naive_gemm<float, float, float>(const Matrix<float>&,
                                              const Matrix<float>&,
                                              Matrix<float>&, double, double);
template void naive_gemm<util::Half, float, float>(const Matrix<util::Half>&,
                                                   const Matrix<util::Half>&,
                                                   Matrix<float>&, double,
                                                   double);

}  // namespace streamk::cpu
