#include "cpu/mac_loop.hpp"

#include <algorithm>

namespace streamk::cpu {

template <typename In, typename Acc>
void run_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                     const core::WorkMapping& mapping,
                     const core::TileSegment& seg, std::span<Acc> accum,
                     MacScratch<Acc>& scratch) {
  const gpu::BlockShape& blk = mapping.block();
  util::check(accum.size() ==
                  static_cast<std::size_t>(blk.tile_elements()),
              "accumulator span size mismatch");

  const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  for (std::int64_t iter = seg.iter_begin; iter < seg.iter_end; ++iter) {
    const std::int64_t kk = iter * blk.k;
    const std::int64_t ek = mapping.iter_extent_k(iter);

    // LoadFragment(A, mm, kk): stage at accumulator precision, zero-pad the
    // ragged edges.
    for (std::int64_t i = 0; i < blk.m; ++i) {
      Acc* dst = scratch.frag_a.data() + static_cast<std::size_t>(i * blk.k);
      if (i < em) {
        const In* src = a.row_ptr(mm + i) + kk;
        for (std::int64_t l = 0; l < ek; ++l) dst[l] = static_cast<Acc>(src[l]);
        std::fill(dst + ek, dst + blk.k, Acc{});
      } else {
        std::fill(dst, dst + blk.k, Acc{});
      }
    }
    // LoadFragment(B, kk, nn).
    for (std::int64_t l = 0; l < blk.k; ++l) {
      Acc* dst = scratch.frag_b.data() + static_cast<std::size_t>(l * blk.n);
      if (l < ek) {
        const In* src = b.row_ptr(kk + l) + nn;
        for (std::int64_t j = 0; j < en; ++j) dst[j] = static_cast<Acc>(src[j]);
        std::fill(dst + en, dst + blk.n, Acc{});
      } else {
        std::fill(dst, dst + blk.n, Acc{});
      }
    }

    // The MAC iteration: accum[m][n] += frag_a[m][k] * frag_b[k][n], with n
    // innermost for vectorization.
    for (std::int64_t i = 0; i < blk.m; ++i) {
      const Acc* a_row =
          scratch.frag_a.data() + static_cast<std::size_t>(i * blk.k);
      Acc* acc_row = accum.data() + static_cast<std::size_t>(i * blk.n);
      for (std::int64_t l = 0; l < blk.k; ++l) {
        const Acc av = a_row[l];
        const Acc* b_row =
            scratch.frag_b.data() + static_cast<std::size_t>(l * blk.n);
        for (std::int64_t j = 0; j < blk.n; ++j) {
          acc_row[j] += av * b_row[j];
        }
      }
    }
  }
}

template void run_mac_segment<double, double>(
    const Matrix<double>&, const Matrix<double>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<double>, MacScratch<double>&);
template void run_mac_segment<float, float>(
    const Matrix<float>&, const Matrix<float>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<float>, MacScratch<float>&);
template void run_mac_segment<util::Half, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&,
    const core::WorkMapping&, const core::TileSegment&, std::span<float>,
    MacScratch<float>&);

}  // namespace streamk::cpu
