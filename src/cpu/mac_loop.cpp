#include "cpu/mac_loop.hpp"

#include <algorithm>

#include "cpu/microkernel.hpp"

namespace streamk::cpu {

template <typename In, typename Acc>
void run_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                     const core::WorkMapping& mapping,
                     const core::TileSegment& seg, std::span<Acc> accum,
                     MacScratch<Acc>& scratch) {
  const gpu::BlockShape& blk = mapping.block();
  util::check(accum.size() ==
                  static_cast<std::size_t>(blk.tile_elements()),
              "accumulator span size mismatch");
  util::check(scratch.panel_kc() >= blk.k, "pack scratch not sized");

  const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  // A segment's iterations are contiguous in k, so the whole segment is one
  // k range; pack and multiply it panel_kc elements at a time.
  const std::int64_t k_begin = seg.iter_begin * blk.k;
  const std::int64_t k_end = std::min(seg.iter_end * blk.k, mapping.shape().k);
  for (std::int64_t k0 = k_begin; k0 < k_end; k0 += scratch.panel_kc()) {
    const std::int64_t kc = std::min(scratch.panel_kc(), k_end - k0);
    pack_a_matrix(a, mm, em, k0, kc, scratch.packs.a.data());
    pack_b_matrix(b, k0, kc, nn, en, scratch.packs.b.data());
    run_packed_mac(scratch.packs.a.data(), scratch.packs.b.data(), em, en, kc,
                   accum.data(), blk.n);
  }
}

template void run_mac_segment<double, double>(
    const Matrix<double>&, const Matrix<double>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<double>, MacScratch<double>&);
template void run_mac_segment<float, float>(
    const Matrix<float>&, const Matrix<float>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<float>, MacScratch<float>&);
template void run_mac_segment<util::Half, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&,
    const core::WorkMapping&, const core::TileSegment&, std::span<float>,
    MacScratch<float>&);

}  // namespace streamk::cpu
