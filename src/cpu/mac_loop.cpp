#include "cpu/mac_loop.hpp"

#include <algorithm>

#include "cpu/microkernel.hpp"

namespace streamk::cpu {

template <typename In, typename Acc>
void run_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                     const core::WorkMapping& mapping,
                     const core::TileSegment& seg, std::span<Acc> accum,
                     MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
  const gpu::BlockShape& blk = mapping.block();
  util::check(accum.size() ==
                  static_cast<std::size_t>(blk.tile_elements()),
              "accumulator span size mismatch");
  util::check(scratch.panel_kc() >= blk.k, "pack scratch not sized");

  const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  // A segment's iterations are contiguous in k, so the whole segment is one
  // k range; pack and multiply it panel_kc elements at a time.  Chunks that
  // line up with the shared arena's absolute-k grid come from the cache;
  // the rest (and everything when cache == nullptr) pack privately.
  const std::int64_t k_total = mapping.shape().k;
  const std::int64_t k_begin = seg.iter_begin * blk.k;
  const std::int64_t k_end = std::min(seg.iter_end * blk.k, k_total);
  run_cached_chunks<Acc>(
      cache, coord.tm, coord.tn, em, en, k_begin, k_end, k_total,
      scratch.panel_kc(),
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_a_matrix(a, mm, em, k0, kc, dst);
      },
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_b_matrix(b, k0, kc, nn, en, dst);
      },
      scratch.packs, accum.data(), blk.n);
}

template void run_mac_segment<double, double>(
    const Matrix<double>&, const Matrix<double>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<double>, MacScratch<double>&,
    PanelCache<double>*);
template void run_mac_segment<float, float>(
    const Matrix<float>&, const Matrix<float>&, const core::WorkMapping&,
    const core::TileSegment&, std::span<float>, MacScratch<float>&,
    PanelCache<float>*);
template void run_mac_segment<util::Half, float>(
    const Matrix<util::Half>&, const Matrix<util::Half>&,
    const core::WorkMapping&, const core::TileSegment&, std::span<float>,
    MacScratch<float>&, PanelCache<float>*);

}  // namespace streamk::cpu
