#include "cpu/batched.hpp"

#include <algorithm>
#include <chrono>
#include <type_traits>
#include <vector>

#include "core/schedule_plan.hpp"
#include "cpu/decomposed_runner.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/reference.hpp"
#include "epilogue/apply.hpp"
#include "runtime/gemm_runtime.hpp"
#include "tuner/tuning_db.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

core::WorkMapping batched_mapping(const BatchedShape& batched,
                                  gpu::BlockShape block) {
  util::check(batched.valid(), "invalid batched shape");
  util::check(block.valid(), "invalid block shape");
  const std::int64_t tiles_m = core::ceil_div(batched.shape.m, block.m);
  // Stack the per-entry tile grids along m.  The virtual m is padded to the
  // block so each entry owns a whole number of tile rows; executors resolve
  // ragged extents per entry (the virtual mapping must stay row-major so
  // the entry math below holds).
  const core::GemmShape virtual_shape{batched.batch * tiles_m * block.m,
                                      batched.shape.n, batched.shape.k};
  return core::WorkMapping(virtual_shape, block);
}

BatchedTile batched_tile(const BatchedShape& batched, gpu::BlockShape block,
                         std::int64_t tile_idx) {
  const std::int64_t tiles_m = core::ceil_div(batched.shape.m, block.m);
  const std::int64_t tiles_n = core::ceil_div(batched.shape.n, block.n);
  util::check(tile_idx >= 0 &&
                  tile_idx < batched.batch * tiles_m * tiles_n,
              "batched tile index out of range");
  const std::int64_t vtm = tile_idx / tiles_n;
  return BatchedTile{vtm / tiles_m, vtm % tiles_m, tile_idx % tiles_n};
}

namespace {

/// Packs one batch entry's operands and accumulates the segment's MAC-loop
/// iterations (the batched analogue of run_mac_segment).  Extents come from
/// the entry's real shape, not the virtual stacked mapping, so the m-padding
/// rows between entries are never packed or multiplied.
/// `row_key`/`col_key` name this tile's panels in the shared cache's grid:
/// entry-qualified, since two entries' tiles at the same local coordinates
/// read different operand matrices.
template <typename In, typename Acc>
void batched_mac_segment(const Matrix<In>& a, const Matrix<In>& b,
                         const core::GemmShape& shape,
                         const gpu::BlockShape& blk, const BatchedTile& tile,
                         const core::TileSegment& seg, std::span<Acc> accum,
                         MacScratch<Acc>& scratch, PanelCache<Acc>* cache,
                         std::int64_t row_key, std::int64_t col_key) {
  const std::int64_t mm = tile.local_tm * blk.m;
  const std::int64_t nn = tile.tn * blk.n;
  const std::int64_t em = std::min(blk.m, shape.m - mm);
  const std::int64_t en = std::min(blk.n, shape.n - nn);

  const std::int64_t k_begin = seg.iter_begin * blk.k;
  const std::int64_t k_end = std::min(seg.iter_end * blk.k, shape.k);
  run_cached_chunks<Acc>(
      cache, row_key, col_key, em, en, k_begin, k_end, shape.k,
      scratch.panel_kc(),
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_a_matrix(a, mm, em, k0, kc, dst);
      },
      [&](std::int64_t k0, std::int64_t kc, Acc* dst) {
        pack_b_matrix(b, k0, kc, nn, en, dst);
      },
      scratch.packs, accum.data(), blk.n);
}

/// Epilogue for one batch entry's tile.  Row-indexed epilogue bindings
/// (bias_row, reductions) are indexed by the *stacked* global row
/// `entry * m + i`, so one spec covers the whole batch; the output pointer
/// is entry-local.
template <typename Acc, typename Out>
void batched_store_tile(const epilogue::EpiloguePlan& eplan,
                        const core::GemmShape& shape,
                        const gpu::BlockShape& blk, const BatchedTile& tile,
                        std::span<const Acc> accum, Matrix<Out>& c,
                        const ExecutorOptions& options) {
  const std::int64_t mm = tile.local_tm * blk.m;
  const std::int64_t nn = tile.tn * blk.n;
  const std::int64_t em = std::min(blk.m, shape.m - mm);
  const std::int64_t en = std::min(blk.n, shape.n - nn);
  epilogue::apply_tile<Acc, Out>(
      eplan, options.epilogue, options.alpha, options.beta,
      tile.entry * shape.m + mm, nn, em, en, shape.n, accum.data(), blk.n,
      c.row_ptr(mm) + nn, c.cols());
}

}  // namespace

template <typename In, typename Acc, typename Out>
void execute_batched_plan(const core::SchedulePlan& plan,
                          const BatchedShape& batched,
                          std::span<const Matrix<In>> as,
                          std::span<const Matrix<In>> bs,
                          std::span<Matrix<Out>> cs,
                          const ExecutorOptions& options) {
  util::check(batched.valid(), "invalid batched shape");
  const auto batch = static_cast<std::size_t>(batched.batch);
  util::check(as.size() == batch && bs.size() == batch && cs.size() == batch,
              "batch operand count mismatch");
  for (std::size_t i = 0; i < batch; ++i) {
    const core::GemmShape s = product_shape(as[i], bs[i], cs[i]);
    util::check(s == batched.shape, "batch entry shape mismatch");
  }

  const core::WorkMapping& mapping = plan.mapping();
  const gpu::BlockShape& blk = mapping.block();
  util::check(mapping.shape() ==
                  batched_mapping(batched, blk).shape(),
              "plan was not built over batched_mapping");

  const epilogue::EpiloguePlanPtr eplan = plan.epilogue_plan(options.epilogue);
  util::check(!eplan->needs_residual(),
              "batched GEMM does not support the residual epilogue op "
              "(one D matrix cannot address every batch entry)");
  // Row-indexed bindings span the stacked batch * m rows.
  epilogue::check_bindings(*eplan, options.epilogue,
                           batched.batch * batched.shape.m, batched.shape.n,
                           epilogue::tensor_type_of<Out>());

  // The virtual stacked mapping already entry-qualifies the m axis (its
  // tiles_m is batch * per-entry tiles_m), but the n axis is shared across
  // entries in the plan -- and entries multiply *different* B matrices --
  // so the cache grid widens col_panels to batch * tiles_n.
  const std::int64_t tiles_m = core::ceil_div(batched.shape.m, blk.m);
  const std::int64_t tiles_n = core::ceil_div(batched.shape.n, blk.n);
  const core::PanelCacheGeometry& geo = plan.panel_geometry();
  PanelCacheConfig cache_config;
  cache_config.row_panels = mapping.tiles_m();  // == batch * tiles_m
  cache_config.col_panels = batched.batch * tiles_n;
  cache_config.chunks = geo.chunks;
  cache_config.chunk_depth = geo.panel_kc;

  run_decomposed<Acc>(
      plan, blk.tile_elements(),
      [&](const core::TileSegment& seg, std::span<Acc> accum,
          MacScratch<Acc>& scratch, PanelCache<Acc>* cache) {
        const BatchedTile tile = batched_tile(batched, blk, seg.tile_idx);
        const auto entry = static_cast<std::size_t>(tile.entry);
        batched_mac_segment<In, Acc>(as[entry], bs[entry], batched.shape, blk,
                                     tile, seg, accum, scratch, cache,
                                     tile.entry * tiles_m + tile.local_tm,
                                     tile.entry * tiles_n + tile.tn);
      },
      [&](std::int64_t tile_idx, std::span<const Acc> accum) {
        const BatchedTile tile = batched_tile(batched, blk, tile_idx);
        batched_store_tile<Acc, Out>(*eplan, batched.shape, blk, tile, accum,
                                     cs[static_cast<std::size_t>(tile.entry)],
                                     options);
      },
      options, &cache_config);
}

template <typename In, typename Acc, typename Out>
void execute_batched(const core::Decomposition& decomposition,
                     const BatchedShape& batched,
                     std::span<const Matrix<In>> as,
                     std::span<const Matrix<In>> bs, std::span<Matrix<Out>> cs,
                     const ExecutorOptions& options) {
  const core::SchedulePlan plan = core::compile_plan(decomposition);
  execute_batched_plan<In, Acc, Out>(plan, batched, as, bs, cs, options);
}

namespace {

template <typename In, typename Acc, typename Out>
GemmReport batched_gemm_blocking(std::span<const Matrix<In>> as,
                                 std::span<const Matrix<In>> bs,
                                 std::span<Matrix<Out>> cs,
                                 const GemmOptions& caller_options) {
  util::check(!as.empty(), "empty batch");
  BatchedShape batched;
  batched.batch = static_cast<std::int64_t>(as.size());
  batched.shape = product_shape(as[0], bs[0], cs[0]);

  gpu::Precision precision = gpu::Precision::kFp64;
  if constexpr (std::is_same_v<In, float>) precision = gpu::Precision::kFp32;
  if constexpr (std::is_same_v<In, util::Half>) {
    precision = gpu::Precision::kFp16F32;
  }

  // Tuning-db key: a batch of identical shapes IS the grouped concatenation
  // of `batch` copies -- same tiles, same iterations per tile -- so it keys
  // on the grouped shape-multiset digest.  The old key (the stacked plain
  // GEMM shape {batch*m, n, k}) collided with a genuinely plain GEMM whose
  // mapping tiles differently, so a record tuned for either silently
  // mis-dispatched the other.  Lookup only: a background find job would
  // measure a plain GEMM of the aggregate shape, not the batched mapping.
  const std::vector<core::GemmShape> group(
      static_cast<std::size_t>(batched.batch), batched.shape);
  GemmOptions options = apply_tuned_dispatch(
      tuner::group_key_shape(group), precision, caller_options,
      /*allow_background_find=*/false, tuner::group_digest(group));
  if (!tuned_dispatch_feasible(options, precision, batched.shape.k)) {
    // A db record can legally disagree with the per-entry k (hand-edited
    // files, digest collisions): run the caller's request rather than fail.
    options = caller_options;
  }
  const gpu::BlockShape block =
      options.block.valid() ? options.block : default_cpu_block(precision);
  const core::WorkMapping mapping = batched_mapping(batched, block);
  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();
  const core::DecompositionSpec spec =
      resolve_schedule(options, mapping, precision, workers);
  const core::PlanCache::PlanPtr plan = runtime::plan_cache().obtain(
      core::make_plan_key(mapping, spec), mapping, spec);

  ExecutorOptions exec;
  exec.workers = workers;
  exec.alpha = options.alpha;
  exec.beta = options.beta;
  exec.epilogue = options.epilogue;
  exec.panel_cache = options.panel_cache;

  const auto start = std::chrono::steady_clock::now();
  execute_batched_plan<In, Acc, Out>(*plan, batched, as, bs, cs, exec);
  const auto stop = std::chrono::steady_clock::now();

  GemmReport report;
  report.spec = spec;
  report.schedule_name = plan->name();
  report.grid = plan->grid();
  report.tiles = mapping.tiles();
  report.spills = plan->total_spills();
  report.seconds = std::chrono::duration<double>(stop - start).count();
  report.gflops =
      report.seconds > 0.0 ? batched.flops() / report.seconds / 1e9 : 0.0;
  return report;
}

}  // namespace

// Sync front end: one pool job per batch (submit-then-get; see
// runtime/gemm_runtime.hpp for the work-stealing guarantee).
template <typename In, typename Acc, typename Out>
GemmReport batched_gemm(std::span<const Matrix<In>> as,
                        std::span<const Matrix<In>> bs,
                        std::span<Matrix<Out>> cs,
                        const GemmOptions& options) {
  return runtime::global_pool()
      .async([as, bs, cs, options]() mutable {
        return batched_gemm_blocking<In, Acc, Out>(as, bs, cs, options);
      })
      .get();
}

template void execute_batched_plan<double, double, double>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const ExecutorOptions&);
template void execute_batched_plan<float, float, float>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const ExecutorOptions&);
template void execute_batched_plan<util::Half, float, float>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const ExecutorOptions&);

template void execute_batched<double, double, double>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const ExecutorOptions&);
template void execute_batched<float, float, float>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const ExecutorOptions&);
template void execute_batched<util::Half, float, float>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const ExecutorOptions&);

template GemmReport batched_gemm<double, double, double>(
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const GemmOptions&);
template GemmReport batched_gemm<float, float, float>(
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const GemmOptions&);
template GemmReport batched_gemm<util::Half, float, float>(
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const GemmOptions&);

}  // namespace streamk::cpu

namespace streamk::runtime {

GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<double>> as,
                               std::span<const cpu::Matrix<double>> bs,
                               std::span<cpu::Matrix<double>> cs,
                               const cpu::GemmOptions& options) {
  return global_pool().async([as, bs, cs, options]() mutable {
    return cpu::batched_gemm_blocking<double, double, double>(as, bs, cs,
                                                              options);
  });
}

GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<float>> as,
                               std::span<const cpu::Matrix<float>> bs,
                               std::span<cpu::Matrix<float>> cs,
                               const cpu::GemmOptions& options) {
  return global_pool().async([as, bs, cs, options]() mutable {
    return cpu::batched_gemm_blocking<float, float, float>(as, bs, cs,
                                                           options);
  });
}

GemmHandle submit_batched_gemm(std::span<const cpu::Matrix<util::Half>> as,
                               std::span<const cpu::Matrix<util::Half>> bs,
                               std::span<cpu::Matrix<float>> cs,
                               const cpu::GemmOptions& options) {
  return global_pool().async([as, bs, cs, options]() mutable {
    return cpu::batched_gemm_blocking<util::Half, float, float>(as, bs, cs,
                                                                options);
  });
}

}  // namespace streamk::runtime
