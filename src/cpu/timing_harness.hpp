#pragma once

// Per-architecture cost-constant calibration (Section 5.1's offline step).
//
// Times basic Stream-K executions of one problem shape at several grid
// sizes on the host CPU, then least-squares-fits the Appendix A.1 constants
// {a, b, c, d} to the measurements -- demonstrating the exact workflow the
// paper prescribes for porting the grid-size model to a new target:
// "Parameters to the model are trivially chosen with empirical measurements
// and need only be done once per target architecture."

#include <vector>

#include "core/gemm_shape.hpp"
#include "gpu/block_shape.hpp"
#include "model/fit.hpp"

namespace streamk::cpu {

struct CalibrationResult {
  model::CostParams params;
  std::vector<model::FitSample> samples;  ///< (grid, best-of-reps seconds)
};

struct CalibrationOptions {
  std::vector<std::int64_t> grids;  ///< grid sizes to time (empty = default)
  int repetitions = 3;              ///< best-of timing repetitions
  std::size_t workers = 0;          ///< 0 = hardware concurrency
};

/// Runs the calibration GEMM (FP64) and fits the cost constants.
CalibrationResult calibrate_cpu(const core::GemmShape& shape,
                                gpu::BlockShape block,
                                const CalibrationOptions& options = {});

}  // namespace streamk::cpu
