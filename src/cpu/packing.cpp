#include "cpu/packing.hpp"

#if defined(__F16C__)
#include <immintrin.h>
#endif

namespace streamk::cpu {

namespace {

/// Converts `count` contiguous source elements to Acc.  The Half -> float
/// case carries an F16C fast path (vcvtph2ps, 8 lanes per instruction):
/// Half stores IEEE binary16 bits, which is exactly the hardware format,
/// and the scalar decode's branchy bit manipulation is expensive enough to
/// dominate fp16 packing otherwise.
template <typename In, typename Acc>
inline void convert_row(const In* src, std::int64_t count, Acc* dst) {
  for (std::int64_t j = 0; j < count; ++j) dst[j] = static_cast<Acc>(src[j]);
}

#if defined(__F16C__)
inline void convert_row(const util::Half* src, std::int64_t count,
                        float* dst) {
  static_assert(sizeof(util::Half) == 2, "Half must be raw binary16 bits");
  std::int64_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __m128i bits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    _mm256_storeu_ps(dst + j, _mm256_cvtph_ps(bits));
  }
  for (; j < count; ++j) dst[j] = static_cast<float>(src[j]);
}
#endif

}  // namespace

template <typename In, typename Acc>
void pack_a_matrix(const Matrix<In>& a, std::int64_t row0, std::int64_t em,
                   std::int64_t col0, std::int64_t kc, Acc* dst) {
  constexpr std::int64_t kMr = MicroTile<Acc>::kMr;
  const std::int64_t panels = (em + kMr - 1) / kMr;
  // Each source row is contiguous along k: convert a stretch of the row at
  // unit stride (vectorizable, F16C for Half), then scatter it into the
  // panel's k-major layout.  Only the final panel of an MR-ragged em needs
  // its tail lanes zeroed; full-extent tiles never execute fill code.
  for (std::int64_t p = 0; p < panels; ++p) {
    Acc* panel = dst + p * kMr * kc;
    const std::int64_t mr = std::min(kMr, em - p * kMr);
    Acc row[128];
    for (std::int64_t i = 0; i < mr; ++i) {
      const In* src = a.row_ptr(row0 + p * kMr + i) + col0;
      for (std::int64_t k0 = 0; k0 < kc; k0 += 128) {
        const std::int64_t chunk = std::min<std::int64_t>(128, kc - k0);
        convert_row(src + k0, chunk, row);
        for (std::int64_t k = 0; k < chunk; ++k) {
          panel[(k0 + k) * kMr + i] = row[k];
        }
      }
    }
    if (mr == kMr) continue;  // full panel: no tail to zero
    for (std::int64_t i = mr; i < kMr; ++i) {
      for (std::int64_t k = 0; k < kc; ++k) panel[k * kMr + i] = Acc{};
    }
  }
}

template <typename In, typename Acc>
void pack_b_matrix(const Matrix<In>& b, std::int64_t row0, std::int64_t kc,
                   std::int64_t col0, std::int64_t en, Acc* dst) {
  constexpr std::int64_t kNr = MicroTile<Acc>::kNr;
  const std::int64_t full_panels = en / kNr;
  // B packs row-by-row within a panel (source rows are contiguous), so the
  // copy is a unit-stride sweep (F16C-converted for Half) rather than the
  // generic accessor walk.  Full panels run a tail-free inner loop; the
  // per-k zero fill exists only in the single ragged final panel (if any),
  // so a full-extent tile's pack writes no padding at all.
  for (std::int64_t q = 0; q < full_panels; ++q) {
    Acc* panel = dst + q * kNr * kc;
    for (std::int64_t k = 0; k < kc; ++k) {
      convert_row(b.row_ptr(row0 + k) + col0 + q * kNr, kNr,
                  panel + k * kNr);
    }
  }
  const std::int64_t nr = en - full_panels * kNr;
  if (nr == 0) return;
  Acc* panel = dst + full_panels * kNr * kc;
  for (std::int64_t k = 0; k < kc; ++k) {
    const In* src = b.row_ptr(row0 + k) + col0 + full_panels * kNr;
    Acc* row = panel + k * kNr;
    convert_row(src, nr, row);
    for (std::int64_t j = nr; j < kNr; ++j) row[j] = Acc{};
  }
}

template void pack_a_matrix<double, double>(const Matrix<double>&,
                                            std::int64_t, std::int64_t,
                                            std::int64_t, std::int64_t,
                                            double*);
template void pack_a_matrix<float, float>(const Matrix<float>&, std::int64_t,
                                          std::int64_t, std::int64_t,
                                          std::int64_t, float*);
template void pack_a_matrix<util::Half, float>(const Matrix<util::Half>&,
                                               std::int64_t, std::int64_t,
                                               std::int64_t, std::int64_t,
                                               float*);

template void pack_b_matrix<double, double>(const Matrix<double>&,
                                            std::int64_t, std::int64_t,
                                            std::int64_t, std::int64_t,
                                            double*);
template void pack_b_matrix<float, float>(const Matrix<float>&, std::int64_t,
                                          std::int64_t, std::int64_t,
                                          std::int64_t, float*);
template void pack_b_matrix<util::Half, float>(const Matrix<util::Half>&,
                                               std::int64_t, std::int64_t,
                                               std::int64_t, std::int64_t,
                                               float*);

}  // namespace streamk::cpu
