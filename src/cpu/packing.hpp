#pragma once

// Packed panel staging for the register-blocked MAC microkernel.
//
// Instead of staging one BLK_M x BLK_K / BLK_K x BLK_N fragment per
// MAC-loop iteration and walking it with a scalar triple loop (the seed's
// path), a segment's operands are packed once per k-chunk into the layout
// the microkernel streams:
//
//   A: ceil(em / MR) panels of MR rows, k-major within a panel --
//      element (i, k) of panel p lives at  a[p*MR*kc + k*MR + (i - p*MR)];
//   B: ceil(en / NR) panels of NR columns --
//      element (k, j) of panel q lives at  b[q*NR*kc + k*NR + (j - q*NR)].
//
// Ragged edges are handled at pack time: only the valid em x kc / kc x en
// region is read from the source, and the unused tail lanes of a partial
// panel are zero-filled so every kernel reads initialized memory.  Panel
// buffers are cache-line aligned (the microkernel still uses unaligned
// loads, so alignment is a prefetch-friendliness property, not a
// correctness one) and sized from the plan's PackedPanelGeometry, so
// steady-state traffic over one plan shape repacks into already-held
// storage and allocates nothing.
//
// The packers are templated on a source accessor (In -> Acc conversion
// happens during the pack, which is where the Half -> float widening of the
// fp16 path lives); packing.cpp instantiates the contiguous row-major fast
// path for the three supported precisions.

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "cpu/matrix.hpp"
#include "cpu/microkernel.hpp"
#include "gpu/block_shape.hpp"

namespace streamk::cpu {

/// Minimal aligned allocator so packed panels start on a cache line.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot infer it across the non-type
  /// alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

template <typename Acc>
using PanelVector = std::vector<Acc, AlignedAllocator<Acc>>;

/// Round `x` up to a multiple of `unit`.
constexpr std::int64_t round_up(std::int64_t x, std::int64_t unit) {
  return (x + unit - 1) / unit * unit;
}

/// Reusable packed-panel storage for one CTA, sized for (block, panel_kc).
/// resize() to an already-held geometry allocates nothing, which is what
/// lets runtime::local_cta_buffers recycle these across submissions.
template <typename Acc>
struct PackBuffers {
  PanelVector<Acc> a;  ///< ceil(BLK_M / MR) * MR x panel_kc, panel-major
  PanelVector<Acc> b;  ///< panel_kc x ceil(BLK_N / NR) * NR, panel-major

  void resize(const gpu::BlockShape& block, std::int64_t panel_kc) {
    a.resize(static_cast<std::size_t>(
        round_up(block.m, MicroTile<Acc>::kMr) * panel_kc));
    b.resize(static_cast<std::size_t>(
        round_up(block.n, MicroTile<Acc>::kNr) * panel_kc));
  }
};

/// Packs the em x kc A sub-block into MR-row panels.  `src(i, k)` returns
/// element (i, k) of the sub-block at accumulator precision.  Zero fill is
/// confined to the single ragged final panel (when em % MR != 0): full
/// panels run a tail-free inner loop, so a full-extent tile writes no
/// padding at all.
template <typename Acc, typename SrcFn>
void pack_a_panels(std::int64_t em, std::int64_t kc, SrcFn&& src, Acc* dst) {
  constexpr std::int64_t kMr = MicroTile<Acc>::kMr;
  const std::int64_t full_panels = em / kMr;
  for (std::int64_t p = 0; p < full_panels; ++p) {
    Acc* panel = dst + p * kMr * kc;
    for (std::int64_t k = 0; k < kc; ++k) {
      Acc* col = panel + k * kMr;
      for (std::int64_t i = 0; i < kMr; ++i) col[i] = src(p * kMr + i, k);
    }
  }
  const std::int64_t mr = em - full_panels * kMr;
  if (mr == 0) return;
  Acc* panel = dst + full_panels * kMr * kc;
  for (std::int64_t k = 0; k < kc; ++k) {
    Acc* col = panel + k * kMr;
    for (std::int64_t i = 0; i < mr; ++i) col[i] = src(full_panels * kMr + i, k);
    for (std::int64_t i = mr; i < kMr; ++i) col[i] = Acc{};
  }
}

/// Packs the kc x en B sub-block into NR-column panels; `src(k, j)` returns
/// element (k, j) at accumulator precision.  As with pack_a_panels, only a
/// ragged final panel zero-fills its tail lanes.
template <typename Acc, typename SrcFn>
void pack_b_panels(std::int64_t kc, std::int64_t en, SrcFn&& src, Acc* dst) {
  constexpr std::int64_t kNr = MicroTile<Acc>::kNr;
  const std::int64_t full_panels = en / kNr;
  for (std::int64_t q = 0; q < full_panels; ++q) {
    Acc* panel = dst + q * kNr * kc;
    for (std::int64_t k = 0; k < kc; ++k) {
      Acc* row = panel + k * kNr;
      for (std::int64_t j = 0; j < kNr; ++j) row[j] = src(k, q * kNr + j);
    }
  }
  const std::int64_t nr = en - full_panels * kNr;
  if (nr == 0) return;
  Acc* panel = dst + full_panels * kNr * kc;
  for (std::int64_t k = 0; k < kc; ++k) {
    Acc* row = panel + k * kNr;
    for (std::int64_t j = 0; j < nr; ++j) row[j] = src(k, full_panels * kNr + j);
    for (std::int64_t j = nr; j < kNr; ++j) row[j] = Acc{};
  }
}

/// Row-major contiguous fast path: packs A rows [row0, row0 + em) columns
/// [col0, col0 + kc) of `a`.
template <typename In, typename Acc>
void pack_a_matrix(const Matrix<In>& a, std::int64_t row0, std::int64_t em,
                   std::int64_t col0, std::int64_t kc, Acc* dst);

/// Row-major contiguous fast path: packs B rows [row0, row0 + kc) columns
/// [col0, col0 + en) of `b`.
template <typename In, typename Acc>
void pack_b_matrix(const Matrix<In>& b, std::int64_t row0, std::int64_t kc,
                   std::int64_t col0, std::int64_t en, Acc* dst);

extern template void pack_a_matrix<double, double>(const Matrix<double>&,
                                                   std::int64_t, std::int64_t,
                                                   std::int64_t, std::int64_t,
                                                   double*);
extern template void pack_a_matrix<float, float>(const Matrix<float>&,
                                                 std::int64_t, std::int64_t,
                                                 std::int64_t, std::int64_t,
                                                 float*);
extern template void pack_a_matrix<util::Half, float>(
    const Matrix<util::Half>&, std::int64_t, std::int64_t, std::int64_t,
    std::int64_t, float*);

extern template void pack_b_matrix<double, double>(const Matrix<double>&,
                                                   std::int64_t, std::int64_t,
                                                   std::int64_t, std::int64_t,
                                                   double*);
extern template void pack_b_matrix<float, float>(const Matrix<float>&,
                                                 std::int64_t, std::int64_t,
                                                 std::int64_t, std::int64_t,
                                                 float*);
extern template void pack_b_matrix<util::Half, float>(
    const Matrix<util::Half>&, std::int64_t, std::int64_t, std::int64_t,
    std::int64_t, float*);

}  // namespace streamk::cpu
