#include "cpu/gemm.hpp"

#include <algorithm>
#include <chrono>

#include "core/schedule_plan.hpp"
#include "cpu/reference.hpp"
#include "model/grid_selector.hpp"
#include "obs/obs.hpp"
#include "runtime/gemm_runtime.hpp"
#include "tuner/dispatch.hpp"
#include "util/threading.hpp"

namespace streamk::cpu {

gpu::GpuSpec host_proxy_spec(std::size_t workers) {
  gpu::GpuSpec spec;
  spec.name = "host-cpu-proxy";
  spec.sm_count = static_cast<std::int64_t>(workers);
  spec.peak_fp64_tflops = 0.01 * static_cast<double>(workers);
  spec.peak_fp32_tflops = 0.02 * static_cast<double>(workers);
  spec.peak_fp16f32_tflops = 0.02 * static_cast<double>(workers);
  spec.dram_gbytes_per_s = 20.0;
  spec.l2_bytes = 1 << 20;
  return spec;
}

core::DecompositionSpec resolve_schedule(const GemmOptions& options,
                                         const core::WorkMapping& mapping,
                                         gpu::Precision precision,
                                         std::size_t workers) {
  core::DecompositionSpec spec;
  spec.sm_count = static_cast<std::int64_t>(workers);
  switch (options.schedule) {
    case Schedule::kAuto: {
      const gpu::GpuSpec proxy = host_proxy_spec(workers);
      const model::CostModel model =
          model::CostModel::calibrated(proxy, mapping.block(), precision);
      spec = model::plan(model, mapping, proxy);
      return spec;
    }
    case Schedule::kDataParallel:
      spec.kind = core::DecompositionKind::kDataParallel;
      return spec;
    case Schedule::kFixedSplit:
      spec.kind = core::DecompositionKind::kFixedSplit;
      spec.split = options.split;
      return spec;
    case Schedule::kStreamK:
      spec.kind = core::DecompositionKind::kStreamKBasic;
      spec.grid = options.grid;
      return spec;
    case Schedule::kHybridOneTile:
      spec.kind = core::DecompositionKind::kHybridOneTile;
      return spec;
    case Schedule::kHybridTwoTile:
      spec.kind = core::DecompositionKind::kHybridTwoTile;
      return spec;
  }
  util::fail("unknown schedule");
}

namespace {

template <typename In, typename Acc, typename Out>
GemmReport gemm_impl(const Matrix<In>& a, const Matrix<In>& b, Matrix<Out>& c,
                     const GemmOptions& caller_options,
                     gpu::Precision precision) {
  const core::GemmShape shape = product_shape(a, b, c);
  const GemmOptions options =
      apply_tuned_dispatch(shape, precision, caller_options);
  const gpu::BlockShape block =
      options.block.valid() ? options.block : default_cpu_block(precision);
  const core::WorkMapping mapping(shape, block, options.tile_order);

  const std::size_t workers =
      options.workers > 0 ? options.workers : util::default_workers();
  const core::DecompositionSpec spec =
      resolve_schedule(options, mapping, precision, workers);
  const core::PlanCache::PlanPtr plan = runtime::plan_cache().obtain(
      core::make_plan_key(mapping, spec), mapping, spec);

  ExecutorOptions exec;
  exec.workers = workers;
  exec.alpha = options.alpha;
  exec.beta = options.beta;
  exec.epilogue = options.epilogue;
  exec.panel_cache = options.panel_cache;

  const auto start = std::chrono::steady_clock::now();
  {
    STREAMK_OBS_SPAN(kGemm, plan->grid(), mapping.tiles());
    execute_plan<In, Acc, Out>(*plan, a, b, c, exec);
  }
  STREAMK_OBS_COUNT("gemm.calls");
  const auto stop = std::chrono::steady_clock::now();

  GemmReport report;
  report.spec = spec;
  report.schedule_name = plan->name();
  report.grid = plan->grid();
  report.tiles = mapping.tiles();
  report.spills = plan->total_spills();
  report.seconds = std::chrono::duration<double>(stop - start).count();
  report.gflops =
      report.seconds > 0.0 ? shape.flops() / report.seconds / 1e9 : 0.0;
  return report;
}

}  // namespace

GemmOptions apply_tuned_dispatch(const core::GemmShape& shape,
                                 gpu::Precision precision, GemmOptions options,
                                 bool allow_background_find,
                                 std::uint64_t group_digest) {
  if (options.schedule != Schedule::kAuto || options.block.valid()) {
    return options;  // caller pinned a schedule or tile: respect it
  }
  const std::optional<tuner::TunedConfig> tuned = tuner::tuned_dispatch(
      shape, precision, std::span<const epilogue::EpilogueOp>(
                            options.epilogue.ops),
      allow_background_find ? tuner::DispatchFind::kAllowed
                            : tuner::DispatchFind::kLookupOnly,
      group_digest);
  if (!tuned) return options;
  const GemmOptions t = tuner::tuned_options(*tuned);
  options.schedule = t.schedule;
  options.block = t.block;
  options.grid = t.grid;
  options.split = t.split;
  if (options.panel_cache == PanelCacheMode::kAuto) {
    // The db's measured verdict on panel sharing applies only when the
    // caller has not forced the knob (kAuto is the only tunable state, so
    // this mirrors the schedule/block pinning rule above).
    options.panel_cache = t.panel_cache;
  }
  if (options.workers == 0 && t.workers > 0) {
    // Cap at the host default: a database tuned on a wider machine may
    // mis-rank schedules here, but it must not oversubscribe this one
    // (see the time-base caveat in tuner/tuning_db.hpp).
    options.workers = std::min(t.workers, util::default_workers());
  }
  return options;
}

bool tuned_dispatch_feasible(const GemmOptions& options,
                             gpu::Precision precision, std::int64_t k) {
  const bool block_set =
      options.block.m != 0 || options.block.n != 0 || options.block.k != 0;
  if (block_set && !options.block.valid()) return false;
  const gpu::BlockShape block =
      options.block.valid() ? options.block : default_cpu_block(precision);
  const std::int64_t iters_per_tile =
      std::max<std::int64_t>(1, core::ceil_div(k, block.k));
  if (options.schedule == Schedule::kFixedSplit &&
      (options.split < 1 || options.split > iters_per_tile)) {
    return false;
  }
  if (options.schedule == Schedule::kStreamK && options.grid < 0) return false;
  return true;
}

gpu::BlockShape default_cpu_block(gpu::Precision precision) {
  switch (precision) {
    case gpu::Precision::kFp64:
      return {48, 48, 16};
    case gpu::Precision::kFp32:
    case gpu::Precision::kFp16F32:
      return {64, 64, 16};
  }
  util::fail("unknown precision");
}

// Sync entry points are submit-then-get wrappers over the async runtime:
// the whole operation is one pool job, and get() work-steals it onto the
// calling thread when every pool worker is busy.

GemmReport gemm(const Matrix<double>& a, const Matrix<double>& b,
                Matrix<double>& c, const GemmOptions& options) {
  return runtime::submit_gemm(a, b, c, options).get();
}

GemmReport gemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<float>& c, const GemmOptions& options) {
  return runtime::submit_gemm(a, b, c, options).get();
}

GemmReport gemm(const Matrix<util::Half>& a, const Matrix<util::Half>& b,
                Matrix<float>& c, const GemmOptions& options) {
  return runtime::submit_gemm(a, b, c, options).get();
}

}  // namespace streamk::cpu

namespace streamk::runtime {

core::PlanCache& plan_cache() {
  // Intentionally immortal (reachable via the static pointer, so not a
  // leak): pool workers may still drain queued jobs during static
  // destruction, after a function-local static would already be gone.
  static core::PlanCache* cache = new core::PlanCache();
  return *cache;
}

GemmHandle submit_gemm(const cpu::Matrix<double>& a,
                       const cpu::Matrix<double>& b, cpu::Matrix<double>& c,
                       const cpu::GemmOptions& options) {
  return global_pool().async([&a, &b, &c, options] {
    return cpu::gemm_impl<double, double, double>(a, b, c, options,
                                                  gpu::Precision::kFp64);
  });
}

GemmHandle submit_gemm(const cpu::Matrix<float>& a,
                       const cpu::Matrix<float>& b, cpu::Matrix<float>& c,
                       const cpu::GemmOptions& options) {
  return global_pool().async([&a, &b, &c, options] {
    return cpu::gemm_impl<float, float, float>(a, b, c, options,
                                               gpu::Precision::kFp32);
  });
}

GemmHandle submit_gemm(const cpu::Matrix<util::Half>& a,
                       const cpu::Matrix<util::Half>& b, cpu::Matrix<float>& c,
                       const cpu::GemmOptions& options) {
  return global_pool().async([&a, &b, &c, options] {
    return cpu::gemm_impl<util::Half, float, float>(a, b, c, options,
                                                    gpu::Precision::kFp16F32);
  });
}

}  // namespace streamk::runtime
