#pragma once

// Shared packed-panel cache: pack each A/B panel once per GEMM, not once
// per tile.
//
// The per-CTA MAC loop (cpu/mac_loop.cpp) packs its operands privately, so
// an A row-panel is repacked by every tile in its grid row and a B
// column-panel by every tile in its column -- O(tiles_m * tiles_n * k)
// packing traffic for O((tiles_m + tiles_n) * k) distinct panel bytes.
// PanelCache is a per-GEMM arena holding every (panel, k-chunk) of both
// operands exactly once, guarded by one atomic claim/publish byte per slot:
//
//     kEmpty --CAS--> kPacking --store-release--> kReady
//
// The first CTA to need a slot claims it, packs into the arena with the
// *same* pack functions the private path uses, and publishes; later CTAs
// load-acquire kReady and consume the published panel directly.  A CTA that
// observes kPacking spins briefly and then falls back to its private
// scratch -- the cache can only ever *remove* work, never block progress,
// so the deadlock-freedom argument of the fixup flag protocol (waits target
// higher CTA ids only; see cpu/decomposed_runner.hpp) is untouched: no new
// wait edges exist, only a bounded spin with a packing-it-myself exit.
//
// Bitwise identity: the arena's chunk grid is anchored at absolute k = 0
// with the plan's pack panel_kc, and a per-CTA chunk is served from the
// cache only when it coincides exactly with a grid chunk (segment-aligned
// walks of misaligned Stream-K segment starts bypass the cache).  Served
// panels are byte-identical to what the private pack would have produced,
// and the chunk walk itself -- hence every FP summation tree -- is
// unchanged, so cached and private execution produce bitwise-equal C.
//
// Arenas are pooled per accumulator type by runtime::PanelCachePool
// (runtime/workspace_pool.hpp); bind() to an already-held geometry
// allocates nothing.  STREAMK_PANEL_CACHE=0 (or GemmOptions::panel_cache =
// kOff) disables sharing entirely, restoring the private-pack path
// byte-for-byte.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "cpu/microkernel.hpp"
#include "cpu/packing.hpp"
#include "gpu/block_shape.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace streamk::cpu {

/// Global enable for shared panel packing.  Seeded from the
/// STREAMK_PANEL_CACHE environment variable ("0" disables; unset, empty, or
/// anything else leaves it on) and overridable in-process for A/B benching.
/// Acts as a kill switch: when off, even PanelCacheMode::kOn calls run the
/// private-pack path.
bool panel_cache_enabled();
void set_panel_cache_enabled(bool enabled);

/// Test hook: when `stride` > 0, every stride-th acquire pretends its slot
/// was observed mid-PACKING and takes the private-scratch fallback, so the
/// contention path is exercised deterministically on any machine.  0
/// disables the hook (default).
void set_panel_cache_contention_stride(std::int64_t stride);
/// Internal: consumes one tick of the contention hook.
bool panel_cache_contention_fires();

/// Arena budget in bytes: bind() refuses geometries whose arena would
/// exceed it (the caller then runs all-private).  Settable for tests.
std::int64_t panel_cache_arena_budget();
void set_panel_cache_arena_budget(std::int64_t bytes);

/// Test/bench accounting for packing traffic, MacProbe-style: counts pack
/// operations and the packed bytes they wrote, split by destination
/// (shared arena vs. private scratch), plus cache hit / contention-fallback
/// totals.  Disabled it costs one relaxed atomic load per pack decision.
class PackProbe {
 public:
  static void enable(bool on);
  static bool enabled();
  static void reset();

  static void add_shared(std::int64_t bytes);   ///< packed into the arena
  static void add_private(std::int64_t bytes);  ///< packed into CTA scratch
  static void add_hit();       ///< consumed an already-published panel
  static void add_fallback();  ///< observed PACKING, fell back to scratch

  static std::int64_t shared_packs();
  static std::int64_t shared_bytes();
  static std::int64_t private_packs();
  static std::int64_t private_bytes();
  static std::int64_t hits();
  static std::int64_t fallbacks();
  /// Total packed bytes written anywhere -- the bench/CI regression metric.
  static std::int64_t total_bytes();
};

/// Slot-grid geometry of one arena: `row_panels` A panels and `col_panels`
/// B panels, each cut into `chunks` k-chunks of `chunk_depth` accumulator
/// elements (the plan's pack panel_kc).  Substrates with non-matrix panel
/// keys (batched entries, convolution iterations) supply their own grid;
/// plain GEMM takes it from core::SchedulePlan::panel_geometry().
struct PanelCacheConfig {
  std::int64_t row_panels = 0;
  std::int64_t col_panels = 0;
  std::int64_t chunks = 0;
  std::int64_t chunk_depth = 0;

  bool valid() const {
    return row_panels > 0 && col_panels > 0 && chunks > 0 && chunk_depth > 0;
  }
};

template <typename Acc>
class PanelCache {
 public:
  /// Sizes the arena and rearms every slot to EMPTY.  Returns false (cache
  /// unusable this run) when the geometry is degenerate or the arena would
  /// exceed panel_cache_arena_budget().  Rebinding reuses held storage, so
  /// steady-state traffic over one plan shape allocates nothing.
  bool bind(const gpu::BlockShape& block, const PanelCacheConfig& config) {
    bound_ = false;
    if (!config.valid()) return false;
    constexpr auto kMr = MicroTile<Acc>::kMr;
    constexpr auto kNr = MicroTile<Acc>::kNr;
    row_slot_elems_ = round_up(block.m, kMr) * config.chunk_depth;
    col_slot_elems_ = round_up(block.n, kNr) * config.chunk_depth;
    const std::int64_t row_elems = config.row_panels * config.chunks *
                                   row_slot_elems_;
    const std::int64_t col_elems = config.col_panels * config.chunks *
                                   col_slot_elems_;
    const std::int64_t bytes =
        (row_elems + col_elems) * static_cast<std::int64_t>(sizeof(Acc));
    if (bytes > panel_cache_arena_budget()) return false;

    config_ = config;
    // Grow-only: the arena's contents are gated by the slot states (every
    // read is preceded by a winning pack), so the bytes never need
    // initializing.  A plain resize() would value-initialize the regrown
    // tail -- tens of MB of memset per call when a pooled arena ping-pongs
    // between a large geometry and a small one (grouped GEMM interleaved
    // with its per-problem shapes).
    if (row_arena_.size() < static_cast<std::size_t>(row_elems)) {
      row_arena_.resize(static_cast<std::size_t>(row_elems));
    }
    if (col_arena_.size() < static_cast<std::size_t>(col_elems)) {
      col_arena_.resize(static_cast<std::size_t>(col_elems));
    }
    const auto slots =
        static_cast<std::size_t>((config.row_panels + config.col_panels) *
                                 config.chunks);
    if (slots > slot_capacity_) {
      slots_ = std::make_unique<std::atomic<std::uint8_t>[]>(slots);
      slot_capacity_ = slots;
    }
    // Relaxed rearm: the pool lease handoff (and the parallel-for dispatch
    // that fans workers out) happens-before every acquire of this run.
    for (std::size_t i = 0; i < slots; ++i) {
      slots_[i].store(kEmpty, std::memory_order_relaxed);
    }
    bound_ = true;
    return true;
  }

  bool bound() const { return bound_; }
  const PanelCacheConfig& config() const { return config_; }
  std::int64_t chunk_depth() const { return config_.chunk_depth; }

  /// The published A panel for (row_panel, chunk), packing it first if this
  /// caller wins the claim (`pack(dst)` must fill the em x kc panel with
  /// the same bytes the private path would).  nullptr = slot is mid-pack
  /// elsewhere; caller packs privately.  `em`/`kc` are the panel's valid
  /// extents, used for byte accounting only.
  template <typename PackFn>
  Acc* acquire_a(std::int64_t row_panel, std::int64_t chunk, std::int64_t em,
                 std::int64_t kc, PackFn&& pack) {
    util::check(row_panel >= 0 && row_panel < config_.row_panels &&
                    chunk >= 0 && chunk < config_.chunks,
                "A panel slot out of range");
    Acc* dst = row_arena_.data() +
               (row_panel * config_.chunks + chunk) * row_slot_elems_;
    return acquire(slot_index(row_panel, chunk, /*is_b=*/false), dst,
                   round_up(em, MicroTile<Acc>::kMr) * kc *
                       static_cast<std::int64_t>(sizeof(Acc)),
                   static_cast<PackFn&&>(pack));
  }

  /// B-side analogue of acquire_a for (col_panel, chunk) with valid extents
  /// en x kc.
  template <typename PackFn>
  Acc* acquire_b(std::int64_t col_panel, std::int64_t chunk, std::int64_t en,
                 std::int64_t kc, PackFn&& pack) {
    util::check(col_panel >= 0 && col_panel < config_.col_panels &&
                    chunk >= 0 && chunk < config_.chunks,
                "B panel slot out of range");
    Acc* dst = col_arena_.data() +
               (col_panel * config_.chunks + chunk) * col_slot_elems_;
    return acquire(slot_index(col_panel, chunk, /*is_b=*/true), dst,
                   round_up(en, MicroTile<Acc>::kNr) * kc *
                       static_cast<std::int64_t>(sizeof(Acc)),
                   static_cast<PackFn&&>(pack));
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kPacking = 1;
  static constexpr std::uint8_t kReady = 2;
  /// Publish latency is one pack (~tens of microseconds); spin about that
  /// long before conceding.  The fallback is merely the status quo ante --
  /// one private pack -- so conceding early is cheap and blocking is
  /// impossible by construction.
  static constexpr int kSpinLimit = 4096;

  std::size_t slot_index(std::int64_t panel, std::int64_t chunk,
                         bool is_b) const {
    const std::int64_t base = is_b ? config_.row_panels * config_.chunks : 0;
    return static_cast<std::size_t>(base + panel * config_.chunks + chunk);
  }

  template <typename PackFn>
  Acc* acquire(std::size_t slot, Acc* dst, std::int64_t bytes, PackFn&& pack) {
    if (panel_cache_contention_fires()) {
      PackProbe::add_fallback();
      STREAMK_OBS_COUNT("panel_cache.fallbacks");
      STREAMK_OBS_INSTANT(kPanelFallback, slot, bytes);
      return nullptr;
    }
    std::atomic<std::uint8_t>& state = slots_[slot];
    std::uint8_t seen = state.load(std::memory_order_acquire);
    if (seen == kReady) {
      PackProbe::add_hit();
      STREAMK_OBS_COUNT("panel_cache.hits");
      return dst;
    }
    if (seen == kEmpty &&
        state.compare_exchange_strong(seen, kPacking,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      // A throwing pack would strand the slot at kPacking; every later
      // consumer then falls back to private scratch, so progress (and the
      // in-flight exception) still reach the caller.
      {
        STREAMK_OBS_SPAN(kPack, slot, bytes);
        pack(dst);
      }
      state.store(kReady, std::memory_order_release);
      PackProbe::add_shared(bytes);
      STREAMK_OBS_COUNT("panel_cache.shared_packs");
      return dst;
    }
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (state.load(std::memory_order_acquire) == kReady) {
        PackProbe::add_hit();
        STREAMK_OBS_COUNT("panel_cache.hits");
        return dst;
      }
      if ((spin & 255) == 255) std::this_thread::yield();
    }
    PackProbe::add_fallback();
    STREAMK_OBS_COUNT("panel_cache.fallbacks");
    STREAMK_OBS_INSTANT(kPanelFallback, slot, bytes);
    return nullptr;
  }

  PanelCacheConfig config_;
  std::int64_t row_slot_elems_ = 0;
  std::int64_t col_slot_elems_ = 0;
  PanelVector<Acc> row_arena_;
  PanelVector<Acc> col_arena_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> slots_;
  std::size_t slot_capacity_ = 0;
  bool bound_ = false;
};

/// The shared chunk walk of every GEMM-family substrate: packs and
/// multiplies the segment k-range [k_begin, k_end) (already clamped to
/// `k_total`) in panel_kc-deep chunks, serving each chunk's A/B panels from
/// `cache` when possible and from `packs` otherwise.  A chunk is cacheable
/// only when it coincides with the absolute-k chunk grid -- `k0` a
/// panel_kc multiple *and* the segment covering that grid chunk in full --
/// so the walk (and the FP summation tree) is identical with and without a
/// cache.  `pack_a(k0, kc, dst)` / `pack_b(k0, kc, dst)` stage the chunk's
/// panels; `row_key`/`col_key` name the tile's panels in the cache's grid.
template <typename Acc, typename PackAFn, typename PackBFn>
void run_cached_chunks(PanelCache<Acc>* cache, std::int64_t row_key,
                       std::int64_t col_key, std::int64_t em, std::int64_t en,
                       std::int64_t k_begin, std::int64_t k_end,
                       std::int64_t k_total, std::int64_t panel_kc,
                       PackAFn&& pack_a, PackBFn&& pack_b,
                       PackBuffers<Acc>& packs, Acc* accum, std::int64_t ldc) {
  for (std::int64_t k0 = k_begin; k0 < k_end; k0 += panel_kc) {
    const std::int64_t kc = std::min(panel_kc, k_end - k0);
    const Acc* pa = nullptr;
    const Acc* pb = nullptr;
    const bool cacheable = cache != nullptr &&
                           cache->chunk_depth() == panel_kc &&
                           k0 % panel_kc == 0 &&
                           kc == std::min(panel_kc, k_total - k0);
    if (cacheable) {
      const std::int64_t chunk = k0 / panel_kc;
      pa = cache->acquire_a(row_key, chunk, em, kc,
                            [&](Acc* dst) { pack_a(k0, kc, dst); });
      pb = cache->acquire_b(col_key, chunk, en, kc,
                            [&](Acc* dst) { pack_b(k0, kc, dst); });
    }
    if (pa == nullptr) {
      const std::int64_t bytes = round_up(em, MicroTile<Acc>::kMr) * kc *
                                 static_cast<std::int64_t>(sizeof(Acc));
      {
        STREAMK_OBS_SPAN(kPack, -1, bytes);
        pack_a(k0, kc, packs.a.data());
      }
      PackProbe::add_private(bytes);
      STREAMK_OBS_COUNT("panel_cache.private_packs");
      pa = packs.a.data();
    }
    if (pb == nullptr) {
      const std::int64_t bytes = round_up(en, MicroTile<Acc>::kNr) * kc *
                                 static_cast<std::int64_t>(sizeof(Acc));
      {
        STREAMK_OBS_SPAN(kPack, -1, bytes);
        pack_b(k0, kc, packs.b.data());
      }
      PackProbe::add_private(bytes);
      STREAMK_OBS_COUNT("panel_cache.private_packs");
      pb = packs.b.data();
    }
    run_packed_mac(pa, pb, em, en, kc, accum, ldc);
  }
}

}  // namespace streamk::cpu
