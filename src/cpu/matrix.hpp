#pragma once

// Dense row-major matrix container for the CPU execution path.
//
// Deliberately minimal: owning storage, bounds-checked accessors in terms of
// (row, col), and deterministic fill helpers.  GEMM kernels access raw spans
// for speed; tests use at().

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/half.hpp"
#include "util/rng.hpp"

namespace streamk::cpu {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols)) {
    // Zero extents are legal (a k == 0 GEMM carries 0-column A / 0-row B
    // operands); negative extents are not.
    util::check(rows >= 0 && cols >= 0, "matrix extents must be non-negative");
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  T& at(std::int64_t r, std::int64_t c) {
    util::check(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& at(std::int64_t r, std::int64_t c) const {
    util::check(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Unchecked element access for kernels.
  T* row_ptr(std::int64_t r) {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }
  const T* row_ptr(std::int64_t r) const {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T> data_;
};

namespace detail {
template <typename T>
T from_double(double v) {
  return static_cast<T>(v);
}
template <>
inline util::Half from_double<util::Half>(double v) {
  return util::Half(static_cast<float>(v));
}
}  // namespace detail

/// Uniform random fill in [lo, hi), deterministic under the seed.
template <typename T>
void fill_random(Matrix<T>& m, util::Pcg32& rng, double lo = -1.0,
                 double hi = 1.0) {
  for (T& v : m.data()) v = detail::from_double<T>(rng.uniform(lo, hi));
}

/// Small-integer fill: every value, product, and modest sum is exactly
/// representable at all supported precisions, enabling bitwise-exact
/// cross-decomposition comparisons in tests.
template <typename T>
void fill_random_int(Matrix<T>& m, util::Pcg32& rng, std::int64_t lo = -4,
                     std::int64_t hi = 4) {
  for (T& v : m.data()) {
    v = detail::from_double<T>(static_cast<double>(rng.uniform_int(lo, hi)));
  }
}

template <typename T>
void fill_value(Matrix<T>& m, double value) {
  for (T& v : m.data()) v = detail::from_double<T>(value);
}

}  // namespace streamk::cpu
