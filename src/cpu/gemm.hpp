#pragma once

// Public BLAS-like GEMM entry points (CPU execution).
//
// C = alpha * A.B + beta * C, decomposed per the caller's schedule choice or
// the analytical planner (Section 5.1) -- the library interface the paper
// emphasizes is unchanged by Stream-K: decomposition internals are invisible
// to callers beyond the performance characteristics.
//
// Supported precisions mirror the paper's evaluation:
//   gemm(Matrix<double>,  ...) -> FP64
//   gemm(Matrix<float>,   ...) -> FP32 (testing convenience)
//   gemm(Matrix<Half>,    ..., Matrix<float>) -> FP16->32 mixed precision

#include <cstdint>
#include <string>

#include "core/decomposition.hpp"
#include "cpu/executor.hpp"
#include "cpu/matrix.hpp"
#include "epilogue/epilogue.hpp"
#include "gpu/block_shape.hpp"
#include "gpu/gpu_spec.hpp"

namespace streamk::cpu {

enum class Schedule {
  kAuto,          ///< analytical planner picks (Section 5.1)
  kDataParallel,  ///< Algorithm 2
  kFixedSplit,    ///< Algorithm 4 (set GemmOptions::split)
  kStreamK,       ///< Algorithm 5 (set GemmOptions::grid, 0 = worker count)
  kHybridOneTile, ///< Section 5.2, "DP + one-tile SK"
  kHybridTwoTile, ///< Section 5.2, "two-tile SK + DP"
};

struct GemmOptions {
  Schedule schedule = Schedule::kAuto;
  /// Blocking factors; {0,0,0} selects a CPU-cache-friendly default.
  gpu::BlockShape block{0, 0, 0};
  /// Output-tile traversal order (kMortonZ enables the cache-aware
  /// Z-order access pattern of the paper's future-work section).
  core::TileOrder tile_order = core::TileOrder::kRowMajor;
  std::int64_t grid = 0;   ///< Stream-K grid size (0 = worker count)
  std::int64_t split = 2;  ///< fixed-split factor
  std::size_t workers = 0; ///< 0 = hardware concurrency
  double alpha = 1.0;
  double beta = 0.0;
  /// Shared packed-panel cache policy (cpu/panel_cache.hpp): kAuto lets the
  /// plan (and the tuner, when the db has a measured verdict for the shape)
  /// decide; kOn/kOff force it.  STREAMK_PANEL_CACHE=0 overrides everything.
  PanelCacheMode panel_cache = PanelCacheMode::kAuto;
  /// Fused epilogue chain (bias, activation, residual add, per-row
  /// reductions), applied exactly once per output element at tile-store /
  /// post-fixup time instead of a second pass over C.  Structure plus
  /// non-owning bindings; bindings follow operand lifetime rules (they
  /// must outlive the call, including async submissions).  See
  /// epilogue/epilogue.hpp.
  epilogue::EpilogueSpec epilogue;
};

struct GemmReport {
  core::DecompositionSpec spec;
  std::string schedule_name;
  std::int64_t grid = 0;
  std::int64_t tiles = 0;
  std::int64_t spills = 0;
  double seconds = 0.0;
  double gflops = 0.0;  ///< useful GFLOP/s achieved
};

/// Resolves a GemmOptions schedule request into a concrete decomposition
/// spec for `workers` CPU workers (kAuto runs the Section 5.1 planner).
/// Exposed for the batched / convolution front ends.
core::DecompositionSpec resolve_schedule(const GemmOptions& options,
                                         const core::WorkMapping& mapping,
                                         gpu::Precision precision,
                                         std::size_t workers);

/// Tuned-dispatch consultation shared by every GEMM front end: when the
/// caller requested Schedule::kAuto without forcing a blocking factor and
/// the tuning database holds a measured winner for `shape`, the returned
/// options pin that winner's schedule, block, grid/split, and (unless the
/// caller set one) worker count; the plan then comes pointer-identical from
/// runtime::plan_cache().  On a miss the options pass through unchanged --
/// and in tuner::FindMode::kBackground the miss schedules a background
/// tuning job for the shape (see tuner/dispatch.hpp), unless
/// `allow_background_find` is false: front ends whose key approximates
/// their real mapping (batched on the stacked shape, conv on the
/// implicit-GEMM shape) consult the db but never auto-tune the key, since
/// the find job would measure a plain GEMM instead.  The database key also
/// carries the epilogue *class* (options.epilogue's canonical op-chain
/// fingerprint), so a winner measured unfused is never served to a fused
/// call or vice versa.  Caller-chosen tile_order, alpha, beta, and the
/// epilogue chain itself are always preserved.  `group_digest` is the
/// grouped-GEMM shape-multiset digest (tuner::group_digest; 0 for plain
/// GEMMs): grouped/batched front ends pass it with `shape` set to the
/// aggregate tuner::group_key_shape, so their records never collide with
/// the plain GEMM of the same aggregate shape.
GemmOptions apply_tuned_dispatch(const core::GemmShape& shape,
                                 gpu::Precision precision, GemmOptions options,
                                 bool allow_background_find = true,
                                 std::uint64_t group_digest = 0);

/// Whether `options` (typically apply_tuned_dispatch output) denotes a
/// schedule that can legally run a mapping whose iterations-per-tile derive
/// from `k`: a fixed-split factor must not exceed the iteration count and a
/// pinned block must be valid.  Front ends that key the db on an aggregate
/// of their real mapping (batched, grouped) validate the tuned config
/// against the *actual* per-problem k before applying it, falling back to
/// the caller's options on a mismatch instead of failing the GEMM.
bool tuned_dispatch_feasible(const GemmOptions& options,
                             gpu::Precision precision, std::int64_t k);

GemmReport gemm(const Matrix<double>& a, const Matrix<double>& b,
                Matrix<double>& c, const GemmOptions& options = {});
GemmReport gemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<float>& c, const GemmOptions& options = {});
GemmReport gemm(const Matrix<util::Half>& a, const Matrix<util::Half>& b,
                Matrix<float>& c, const GemmOptions& options = {});

/// Default CPU blocking factors for a precision (sized so one tile's
/// working set stays cache resident).
gpu::BlockShape default_cpu_block(gpu::Precision precision);

/// A GpuSpec stand-in describing the host CPU with `workers` cores, so the
/// analytical planner's thresholds (tiles vs. concurrency slots) apply to
/// the worker pool.  Peak numbers are placeholders -- the planner and the
/// tuner's search-space pruning only use relative model terms.
gpu::GpuSpec host_proxy_spec(std::size_t workers);

}  // namespace streamk::cpu
