#pragma once

// Public BLAS-like GEMM entry points (CPU execution).
//
// C = alpha * A.B + beta * C, decomposed per the caller's schedule choice or
// the analytical planner (Section 5.1) -- the library interface the paper
// emphasizes is unchanged by Stream-K: decomposition internals are invisible
// to callers beyond the performance characteristics.
//
// Supported precisions mirror the paper's evaluation:
//   gemm(Matrix<double>,  ...) -> FP64
//   gemm(Matrix<float>,   ...) -> FP32 (testing convenience)
//   gemm(Matrix<Half>,    ..., Matrix<float>) -> FP16->32 mixed precision

#include <string>

#include "core/decomposition.hpp"
#include "cpu/executor.hpp"
#include "cpu/matrix.hpp"
#include "gpu/block_shape.hpp"

namespace streamk::cpu {

enum class Schedule {
  kAuto,          ///< analytical planner picks (Section 5.1)
  kDataParallel,  ///< Algorithm 2
  kFixedSplit,    ///< Algorithm 4 (set GemmOptions::split)
  kStreamK,       ///< Algorithm 5 (set GemmOptions::grid, 0 = worker count)
  kHybridOneTile, ///< Section 5.2, "DP + one-tile SK"
  kHybridTwoTile, ///< Section 5.2, "two-tile SK + DP"
};

struct GemmOptions {
  Schedule schedule = Schedule::kAuto;
  /// Blocking factors; {0,0,0} selects a CPU-cache-friendly default.
  gpu::BlockShape block{0, 0, 0};
  /// Output-tile traversal order (kMortonZ enables the cache-aware
  /// Z-order access pattern of the paper's future-work section).
  core::TileOrder tile_order = core::TileOrder::kRowMajor;
  std::int64_t grid = 0;   ///< Stream-K grid size (0 = worker count)
  std::int64_t split = 2;  ///< fixed-split factor
  std::size_t workers = 0; ///< 0 = hardware concurrency
  double alpha = 1.0;
  double beta = 0.0;
};

struct GemmReport {
  core::DecompositionSpec spec;
  std::string schedule_name;
  std::int64_t grid = 0;
  std::int64_t tiles = 0;
  std::int64_t spills = 0;
  double seconds = 0.0;
  double gflops = 0.0;  ///< useful GFLOP/s achieved
};

/// Resolves a GemmOptions schedule request into a concrete decomposition
/// spec for `workers` CPU workers (kAuto runs the Section 5.1 planner).
/// Exposed for the batched / convolution front ends.
core::DecompositionSpec resolve_schedule(const GemmOptions& options,
                                         const core::WorkMapping& mapping,
                                         gpu::Precision precision,
                                         std::size_t workers);

GemmReport gemm(const Matrix<double>& a, const Matrix<double>& b,
                Matrix<double>& c, const GemmOptions& options = {});
GemmReport gemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<float>& c, const GemmOptions& options = {});
GemmReport gemm(const Matrix<util::Half>& a, const Matrix<util::Half>& b,
                Matrix<float>& c, const GemmOptions& options = {});

/// Default CPU blocking factors for a precision (sized so one tile's
/// working set stays cache resident).
gpu::BlockShape default_cpu_block(gpu::Precision precision);

}  // namespace streamk::cpu
