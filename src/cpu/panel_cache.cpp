#include "cpu/panel_cache.hpp"

#include <cstdlib>
#include <string_view>

namespace streamk::cpu {

namespace {

std::atomic<bool>& panel_cache_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("STREAMK_PANEL_CACHE");
    // Default ON; only an explicit "0" disables (mirrors the
    // STREAMK_FORCE_SCALAR convention with the opposite default).
    return env == nullptr || std::string_view(env) != "0";
  }()};
  return flag;
}

std::atomic<std::int64_t>& contention_stride() {
  static std::atomic<std::int64_t> stride{0};
  return stride;
}

std::atomic<std::int64_t>& contention_ticks() {
  static std::atomic<std::int64_t> ticks{0};
  return ticks;
}

std::atomic<std::int64_t>& arena_budget() {
  /// Generous by default: a 4096^2 fp64 GEMM's full panel set is ~0.5 GiB
  /// of operands but only (tiles_m + tiles_n) * k panel elements here, and
  /// the budget exists to stop pathological grids, not typical ones.
  static std::atomic<std::int64_t> budget{256ll << 20};
  return budget;
}

struct ProbeCounters {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> shared_packs{0};
  std::atomic<std::int64_t> shared_bytes{0};
  std::atomic<std::int64_t> private_packs{0};
  std::atomic<std::int64_t> private_bytes{0};
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> fallbacks{0};
};

ProbeCounters& probe() {
  static ProbeCounters counters;
  return counters;
}

}  // namespace

bool panel_cache_enabled() {
  return panel_cache_flag().load(std::memory_order_relaxed);
}

void set_panel_cache_enabled(bool enabled) {
  panel_cache_flag().store(enabled, std::memory_order_relaxed);
}

void set_panel_cache_contention_stride(std::int64_t stride) {
  contention_stride().store(stride, std::memory_order_relaxed);
  contention_ticks().store(0, std::memory_order_relaxed);
}

bool panel_cache_contention_fires() {
  const std::int64_t stride =
      contention_stride().load(std::memory_order_relaxed);
  if (stride <= 0) return false;
  const std::int64_t tick =
      contention_ticks().fetch_add(1, std::memory_order_relaxed);
  return tick % stride == stride - 1;
}

std::int64_t panel_cache_arena_budget() {
  return arena_budget().load(std::memory_order_relaxed);
}

void set_panel_cache_arena_budget(std::int64_t bytes) {
  arena_budget().store(bytes, std::memory_order_relaxed);
}

void PackProbe::enable(bool on) {
  probe().enabled.store(on, std::memory_order_relaxed);
  if (on) reset();
}

bool PackProbe::enabled() {
  return probe().enabled.load(std::memory_order_relaxed);
}

void PackProbe::reset() {
  probe().shared_packs.store(0, std::memory_order_relaxed);
  probe().shared_bytes.store(0, std::memory_order_relaxed);
  probe().private_packs.store(0, std::memory_order_relaxed);
  probe().private_bytes.store(0, std::memory_order_relaxed);
  probe().hits.store(0, std::memory_order_relaxed);
  probe().fallbacks.store(0, std::memory_order_relaxed);
}

void PackProbe::add_shared(std::int64_t bytes) {
  if (!enabled()) return;
  probe().shared_packs.fetch_add(1, std::memory_order_relaxed);
  probe().shared_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void PackProbe::add_private(std::int64_t bytes) {
  if (!enabled()) return;
  probe().private_packs.fetch_add(1, std::memory_order_relaxed);
  probe().private_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void PackProbe::add_hit() {
  if (!enabled()) return;
  probe().hits.fetch_add(1, std::memory_order_relaxed);
}

void PackProbe::add_fallback() {
  if (!enabled()) return;
  probe().fallbacks.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t PackProbe::shared_packs() {
  return probe().shared_packs.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::shared_bytes() {
  return probe().shared_bytes.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::private_packs() {
  return probe().private_packs.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::private_bytes() {
  return probe().private_bytes.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::hits() {
  return probe().hits.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::fallbacks() {
  return probe().fallbacks.load(std::memory_order_relaxed);
}
std::int64_t PackProbe::total_bytes() {
  return shared_bytes() + private_bytes();
}

}  // namespace streamk::cpu
