#pragma once

// Grouped (ragged-batch) GEMM front end.
//
// cpu/batched.hpp handles uniform batches; this front end drops the last
// shape assumption: every problem brings its own (m, n, k), and one
// Stream-K schedule balances the *concatenated* iteration space of the
// whole group (core/grouped.hpp).  A skewed group -- one large problem
// plus many small ones -- is exactly the quantization scenario the paper
// targets: scheduled per problem, the large GEMM's tail wave idles most
// of the machine; scheduled as one domain, its iterations spread across
// every CTA and the small problems fill the gaps.
//
// Epilogues: one spec may serve the whole group, or `problem_epilogues`
// supplies one spec per problem.  All specs must share one op-chain
// *structure* (epilogue::class_key); bindings vary per problem and are
// indexed problem-locally (row 0 = the problem's first output row).  The
// residual op (D matrix) therefore works with per-problem specs -- each
// problem binds its own output-shaped D -- but is rejected for a shared
// spec over more than one problem, where a single D cannot address every
// problem's output.

#include <span>

#include "cpu/gemm.hpp"
#include "cpu/matrix.hpp"
#include "epilogue/epilogue.hpp"

namespace streamk::core {
class SchedulePlan;
}  // namespace streamk::core

namespace streamk::cpu {

/// Executes a compiled grouped plan (built from a core::GroupedMapping via
/// runtime::plan_cache() or core::SchedulePlan's grouped constructor):
/// cs[p] = alpha * as[p].bs[p] + beta * cs[p] for every problem p, with
/// the fused epilogue applied once per output element exactly as in the
/// single-problem executor.  `problem_epilogues` is empty (use
/// options.epilogue for every problem) or one spec per problem.
template <typename In, typename Acc, typename Out>
void execute_grouped_plan(
    const core::SchedulePlan& plan, std::span<const Matrix<In>> as,
    std::span<const Matrix<In>> bs, std::span<Matrix<Out>> cs,
    const ExecutorOptions& options = {},
    std::span<const epilogue::EpilogueSpec> problem_epilogues = {});

/// BLAS-like convenience: one schedule over the whole group, chosen by
/// GemmOptions (kAuto plans over the concatenated tile space; the tuning
/// database is consulted under the grouped shape-multiset key).
template <typename In, typename Acc, typename Out>
GemmReport grouped_gemm(
    std::span<const Matrix<In>> as, std::span<const Matrix<In>> bs,
    std::span<Matrix<Out>> cs, const GemmOptions& options = {},
    std::span<const epilogue::EpilogueSpec> problem_epilogues = {});

extern template void execute_grouped_plan<double, double, double>(
    const core::SchedulePlan&, std::span<const Matrix<double>>,
    std::span<const Matrix<double>>, std::span<Matrix<double>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);
extern template void execute_grouped_plan<float, float, float>(
    const core::SchedulePlan&, std::span<const Matrix<float>>,
    std::span<const Matrix<float>>, std::span<Matrix<float>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);
extern template void execute_grouped_plan<util::Half, float, float>(
    const core::SchedulePlan&, std::span<const Matrix<util::Half>>,
    std::span<const Matrix<util::Half>>, std::span<Matrix<float>>,
    const ExecutorOptions&, std::span<const epilogue::EpilogueSpec>);

extern template GemmReport grouped_gemm<double, double, double>(
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);
extern template GemmReport grouped_gemm<float, float, float>(
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);
extern template GemmReport grouped_gemm<util::Half, float, float>(
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const GemmOptions&,
    std::span<const epilogue::EpilogueSpec>);

}  // namespace streamk::cpu
