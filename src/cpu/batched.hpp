#pragma once

// Batched GEMM on the Stream-K decomposition machinery.
//
// Deep-learning workloads (the paper's motivating domain) run *batches* of
// identical GEMMs -- attention heads, per-sample projections.  Launching
// each batch entry as its own kernel multiplies the quantization problem:
// every small GEMM leaves its own partial wave.  Work-centric decomposition
// dissolves the batch boundary the same way it dissolves tile boundaries:
// the aggregate MAC-loop iteration space of all batch entries is one linear
// domain, and any Decomposition (data-parallel, Stream-K, hybrid) schedules
// it as a whole.
//
// Geometrically, a batch of B GEMMs of shape (m, n, k) is exposed to the
// decomposition layer as a single virtual GEMM whose tile grid stacks the B
// per-entry grids along m:
//
//     virtual tiles = B * tiles_m(m) * tiles_n(n), same iterations per tile.
//
// Only the executor needs to know which batch entry a tile belongs to; the
// decomposition, validation, fixup, and simulation layers are unchanged --
// precisely the paper's "other GEMM-like workloads" generalization
// (Section 7).

#include <span>

#include "core/decomposition.hpp"
#include "cpu/gemm.hpp"
#include "cpu/matrix.hpp"

namespace streamk::core {
class SchedulePlan;
}  // namespace streamk::core

namespace streamk::cpu {

/// Geometry of a uniform batch of GEMMs.
struct BatchedShape {
  std::int64_t batch = 0;
  core::GemmShape shape;

  constexpr bool valid() const { return batch >= 1 && shape.valid(); }
  constexpr double flops() const {
    return static_cast<double>(batch) * shape.flops();
  }
};

/// The virtual single-GEMM work mapping whose tile space stacks all batch
/// entries (use for constructing decompositions and for simulation).
core::WorkMapping batched_mapping(const BatchedShape& batched,
                                  gpu::BlockShape block);

/// Batch entry that owns virtual tile `tile_idx`, plus the entry-local tile
/// row index.
struct BatchedTile {
  std::int64_t entry = 0;    ///< batch index
  std::int64_t local_tm = 0; ///< tile row within the entry
  std::int64_t tn = 0;       ///< tile column (shared across entries)
};
BatchedTile batched_tile(const BatchedShape& batched, gpu::BlockShape block,
                         std::int64_t tile_idx);

/// Executes a compiled plan (built over batched_mapping) across the batch:
/// cs[i] = alpha * as[i].bs[i] + beta * cs[i] for every entry i.
template <typename In, typename Acc, typename Out>
void execute_batched_plan(const core::SchedulePlan& plan,
                          const BatchedShape& batched,
                          std::span<const Matrix<In>> as,
                          std::span<const Matrix<In>> bs,
                          std::span<Matrix<Out>> cs,
                          const ExecutorOptions& options = {});

/// Convenience overload: compiles `decomposition` and executes the plan.
template <typename In, typename Acc, typename Out>
void execute_batched(const core::Decomposition& decomposition,
                     const BatchedShape& batched,
                     std::span<const Matrix<In>> as,
                     std::span<const Matrix<In>> bs, std::span<Matrix<Out>> cs,
                     const ExecutorOptions& options = {});

/// BLAS-like convenience: schedule chosen by GemmOptions (kAuto plans over
/// the fused tile space).
template <typename In, typename Acc, typename Out>
GemmReport batched_gemm(std::span<const Matrix<In>> as,
                        std::span<const Matrix<In>> bs,
                        std::span<Matrix<Out>> cs,
                        const GemmOptions& options = {});

extern template void execute_batched_plan<double, double, double>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const ExecutorOptions&);
extern template void execute_batched_plan<float, float, float>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const ExecutorOptions&);
extern template void execute_batched_plan<util::Half, float, float>(
    const core::SchedulePlan&, const BatchedShape&,
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const ExecutorOptions&);

extern template void execute_batched<double, double, double>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const ExecutorOptions&);
extern template void execute_batched<float, float, float>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const ExecutorOptions&);
extern template void execute_batched<util::Half, float, float>(
    const core::Decomposition&, const BatchedShape&,
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const ExecutorOptions&);

extern template GemmReport batched_gemm<double, double, double>(
    std::span<const Matrix<double>>, std::span<const Matrix<double>>,
    std::span<Matrix<double>>, const GemmOptions&);
extern template GemmReport batched_gemm<float, float, float>(
    std::span<const Matrix<float>>, std::span<const Matrix<float>>,
    std::span<Matrix<float>>, const GemmOptions&);
extern template GemmReport batched_gemm<util::Half, float, float>(
    std::span<const Matrix<util::Half>>, std::span<const Matrix<util::Half>>,
    std::span<Matrix<float>>, const GemmOptions&);

}  // namespace streamk::cpu
