#!/usr/bin/env python3
"""CI guard for the shared panel cache's packing-traffic reduction.

Diffs the packed-bytes columns of a fresh `bench_panel_cache --smoke --csv`
run against the committed baseline
(bench/baselines/panel_cache_smoke_bytes.csv) and fails when:

  * a (label, burst) row present in the baseline is missing from the run,
  * either byte column deviates from the baseline by more than --tolerance
    (default 10%), or
  * shared packed bytes are not strictly smaller than private packed bytes
    on any row -- the cache's raison d'etre.

The smoke shapes have every extent a multiple of the widest microkernel NR,
so the byte totals are ISA-independent and exact equality is the expected
steady state; the tolerance only absorbs deliberate geometry retunes small
enough not to need a baseline refresh.  For larger changes, regenerate the
baseline from a local smoke run and commit it alongside the change.

Usage: scripts/check_packed_bytes.py RUN_CSV [--baseline PATH] [--tolerance F]
"""

import argparse
import csv
import sys


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"error: no data rows in {path}")
    return {(r["label"], r["burst"]): r for r in rows}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run_csv", help="CSV from bench_panel_cache --smoke --csv")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/panel_cache_smoke_bytes.csv",
        help="committed baseline CSV (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative deviation per byte column (default: %(default)s)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    run = load(args.run_csv)

    failures = []
    for key, base in baseline.items():
        got = run.get(key)
        if got is None:
            failures.append(f"{key}: row missing from run CSV")
            continue
        shared = int(got["shared_packed_bytes"])
        private = int(got["private_packed_bytes"])
        if shared >= private:
            failures.append(
                f"{key}: shared packed bytes {shared} >= private {private}"
            )
        for column in ("shared_packed_bytes", "private_packed_bytes"):
            want = int(base[column])
            have = int(got[column])
            if want <= 0:
                failures.append(f"{key}: non-positive baseline {column}={want}")
                continue
            deviation = abs(have - want) / want
            if deviation > args.tolerance:
                failures.append(
                    f"{key}: {column} {have} deviates "
                    f"{deviation:.1%} from baseline {want} "
                    f"(tolerance {args.tolerance:.0%})"
                )

    if failures:
        print("packed-bytes regression check FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"packed-bytes regression check passed: {len(baseline)} row(s) "
        f"within {args.tolerance:.0%} of baseline, shared < private everywhere"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
