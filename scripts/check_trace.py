#!/usr/bin/env python3
"""Validate a streamk Chrome trace-event JSON file.

Checks the schema every Perfetto/chrome://tracing loader relies on --
a top-level ``traceEvents`` array whose entries carry name/cat/ph/pid/tid/ts
with phase-appropriate fields -- and, optionally, that the trace actually
contains the event categories a given run must have produced (so CI catches
an instrumentation point silently going dark, not just malformed JSON).

Usage:
    check_trace.py TRACE.json [--require CAT]...

Exit status 0 when the trace validates, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "M"}

# streamk's event taxonomy (obs/trace.cpp kKindInfo): any category outside
# this set means serializer and checker have drifted apart.
KNOWN_CATEGORIES = {
    "plan",
    "pack",
    "mac",
    "fixup",
    "epilogue",
    "panel_cache",
    "pool",
    "tuner",
    "gemm",
    "bench",
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_event(index, event):
    if not isinstance(event, dict):
        fail(f"event {index} is not an object")
    for field in ("name", "ph", "pid", "tid"):
        if field not in event:
            fail(f"event {index} missing required field '{field}'")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"event {index} has a non-string or empty name")
    ph = event["ph"]
    if ph not in VALID_PHASES:
        fail(f"event {index} has unsupported phase {ph!r}")
    if not isinstance(event["pid"], int) or not isinstance(event["tid"], int):
        fail(f"event {index} pid/tid must be integers")

    if ph == "M":
        if "args" not in event or "name" not in event["args"]:
            fail(f"metadata event {index} needs args.name")
        return None

    # Timed events: ts is mandatory, X additionally carries a duration.
    if "ts" not in event or not isinstance(event["ts"], (int, float)):
        fail(f"event {index} ({event['name']}) missing numeric 'ts'")
    if event["ts"] < 0:
        fail(f"event {index} ({event['name']}) has negative ts")
    if ph == "X":
        if "dur" not in event or not isinstance(event["dur"], (int, float)):
            fail(f"complete event {index} ({event['name']}) missing 'dur'")
        if event["dur"] < 0:
            fail(f"event {index} ({event['name']}) has negative dur")
    if ph == "i" and event.get("s") not in ("t", "p", "g"):
        fail(f"instant event {index} ({event['name']}) has bad scope 's'")

    cat = event.get("cat")
    if not isinstance(cat, str) or not cat:
        fail(f"event {index} ({event['name']}) missing category")
    if cat not in KNOWN_CATEGORIES:
        fail(f"event {index} has unknown category {cat!r} "
             f"(serializer/checker drift?)")
    return cat


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="CAT",
        help="fail unless at least one event of this category is present "
             "(repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("top level must be an object with a 'traceEvents' array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    categories = {}
    timed = 0
    for index, event in enumerate(events):
        cat = check_event(index, event)
        if cat is not None:
            categories[cat] = categories.get(cat, 0) + 1
            timed += 1

    if timed == 0:
        fail("trace contains no timed events (tracing armed but idle?)")

    missing = [cat for cat in args.require if cat not in categories]
    if missing:
        fail(f"required categories absent: {', '.join(missing)} "
             f"(present: {', '.join(sorted(categories)) or 'none'})")

    summary = ", ".join(f"{cat}={n}" for cat, n in sorted(categories.items()))
    print(f"check_trace: OK: {timed} timed events ({summary})")


if __name__ == "__main__":
    main()
