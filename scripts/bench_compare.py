#!/usr/bin/env python3
"""Statistical no-worse-than gate over BENCH_*.json artifacts.

Every bench binary emits a ``BENCH_<name>.json`` (schema streamk-bench/1)
when run with ``--bench-json`` or ``STREAMK_BENCH_JSON``; this script
compares a candidate artifact against the committed baseline and fails
only on *confirmed* regressions:

  * ``deterministic`` cases (model/simulation outputs, bit-reproducible
    per binary) are compared near-exactly -- any drift beyond float
    round-off is a regression or an intentional change that needs a
    baseline refresh.
  * measured cases regress only when BOTH the relative slowdown exceeds
    ``--tolerance`` AND the bootstrap confidence intervals are disjoint,
    so a noisy CI machine cannot fail the gate on timing jitter alone.
    A single-sample case has a degenerate CI (no variance estimate), so
    it can never *confirm* a regression -- warn only.  Gating a measured
    metric requires reps >= 2 on both sides.

When the machine fingerprints differ (different host / core count / ISA),
measured cases are reported but never fail: absolute timing from another
machine is not a baseline, only the deterministic cases travel.

Usage:
    bench_compare.py compare BASELINE.json CANDIDATE.json [--tolerance F]
    bench_compare.py degrade SRC.json DST.json [--factor F]
    bench_compare.py selftest GOLDENS_DIR

``degrade`` writes a copy of SRC with every case's values worsened by
FACTOR -- the CI job uses it to prove the gate actually fails.
``selftest`` replays the golden accept/reject pairs under
tests/golden/bench_compare/.

On failure the refresh procedure is printed: re-run the bench on the
baseline machine and commit the fresh artifact to bench/baselines/ (see
bench/baselines/README.md for the policy).
"""

import argparse
import json
import sys

SCHEMA = "streamk-bench/1"
DEFAULT_TOLERANCE = 0.12
EXACT_REL_EPS = 1e-6


def fail(message):
    print(f"bench_compare: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if report.get("schema") != SCHEMA:
        fail(f"{path}: schema {report.get('schema')!r}, want {SCHEMA!r}")
    for key in ("bench", "machine", "cases"):
        if key not in report:
            fail(f"{path}: missing key {key!r}")
    for case in report["cases"]:
        for key in ("name", "metric", "higher_is_better", "deterministic",
                    "best", "ci_lo", "ci_hi"):
            if key not in case:
                fail(f"{path}: case {case.get('name', '?')!r} missing {key!r}")
    return report


def same_machine(a, b):
    return (a.get("host") == b.get("host")
            and a.get("hardware_concurrency") == b.get("hardware_concurrency")
            and a.get("isa") == b.get("isa"))


def slowdown(base, cand, higher_is_better):
    """Relative regression of cand vs base; positive = worse."""
    if base == 0:
        return 0.0
    if higher_is_better:
        return (base - cand) / abs(base)
    return (cand - base) / abs(base)


def cis_disjoint(base, cand, higher_is_better):
    """True when the candidate's CI is entirely on the worse side."""
    if higher_is_better:
        return cand["ci_hi"] < base["ci_lo"]
    return cand["ci_lo"] > base["ci_hi"]


def sample_count(case):
    return case.get("reps", len(case.get("samples", [])))


def compare_reports(baseline, candidate, tolerance):
    """Returns (failures, warnings) as lists of message strings."""
    failures = []
    warnings = []
    portable = same_machine(baseline["machine"], candidate["machine"])
    if not portable:
        warnings.append(
            "machine fingerprint differs "
            f"({baseline['machine']} vs {candidate['machine']}): "
            "measured cases are informational only")

    base_cases = {c["name"]: c for c in baseline["cases"]}
    cand_cases = {c["name"]: c for c in candidate["cases"]}
    for name in base_cases:
        if name not in cand_cases:
            warnings.append(f"case {name!r} missing from candidate")
    for name in cand_cases:
        if name not in base_cases:
            warnings.append(f"case {name!r} not in baseline (new case?)")

    for name, base in sorted(base_cases.items()):
        cand = cand_cases.get(name)
        if cand is None:
            continue
        reg = slowdown(base["best"], cand["best"], base["higher_is_better"])
        label = (f"{name}: baseline {base['best']:g} -> "
                 f"candidate {cand['best']:g} {base['metric']}")
        if base["deterministic"] and cand["deterministic"]:
            denom = max(abs(base["best"]), abs(cand["best"]), 1e-300)
            if abs(base["best"] - cand["best"]) / denom > EXACT_REL_EPS:
                if reg > 0:
                    failures.append(f"{label} (deterministic case changed)")
                else:
                    warnings.append(
                        f"{label} (deterministic case improved; refresh "
                        "the baseline to lock in the gain)")
            continue
        if reg <= tolerance:
            continue
        enough_samples = min(sample_count(base), sample_count(cand)) >= 2
        confirmed = (enough_samples
                     and cis_disjoint(base, cand, base["higher_is_better"]))
        message = (f"{label} ({reg * 100:.1f}% worse, "
                   f"tolerance {tolerance * 100:.0f}%)")
        if not enough_samples:
            warnings.append(f"{message}; single-sample case, no variance "
                            "estimate, not confirmed")
        elif not confirmed:
            warnings.append(f"{message}; confidence intervals overlap, "
                            "not confirmed")
        elif not portable:
            warnings.append(f"{message}; different machine, not gated")
        else:
            failures.append(f"{message}, confirmed by disjoint CIs")
    return failures, warnings


def cmd_compare(args):
    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    failures, warnings = compare_reports(baseline, candidate, args.tolerance)
    for w in warnings:
        print(f"bench_compare: warning: {w}")
    if failures:
        for f in failures:
            print(f"bench_compare: regression: {f}", file=sys.stderr)
        print(
            "bench_compare: FAIL: confirmed perf regression(s) vs "
            f"{args.baseline}.\n"
            "If the change is intentional, refresh the baseline: re-run the "
            "bench with --bench-json on the baseline machine and commit the "
            "new artifact to bench/baselines/ (policy in "
            "bench/baselines/README.md).",
            file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: PASS: {args.candidate} is no worse than "
          f"{args.baseline} ({len(baseline['cases'])} case(s))")


def cmd_degrade(args):
    report = load_report(args.src)
    if args.factor <= 0:
        fail("--factor must be positive")
    for case in report["cases"]:
        scale = 1.0 / args.factor if case["higher_is_better"] else args.factor
        for key in ("best", "ci_lo", "ci_hi"):
            case[key] *= scale
        case["samples"] = [v * scale for v in case.get("samples", [])]
    with open(args.dst, "w", encoding="utf-8") as f:
        json.dump(report, f)
        f.write("\n")
    print(f"bench_compare: wrote {args.dst} ({args.factor}x worse than "
          f"{args.src})")


def cmd_selftest(args):
    import pathlib
    goldens = pathlib.Path(args.goldens)
    manifest_path = goldens / "manifest.json"
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{manifest_path}: {e}")
    ran = 0
    for entry in manifest["cases"]:
        baseline = load_report(goldens / entry["baseline"])
        candidate = load_report(goldens / entry["candidate"])
        tolerance = entry.get("tolerance", DEFAULT_TOLERANCE)
        failures, _ = compare_reports(baseline, candidate, tolerance)
        verdict = "reject" if failures else "accept"
        if verdict != entry["expect"]:
            fail(f"golden {entry['baseline']} vs {entry['candidate']}: "
                 f"got {verdict}, expected {entry['expect']} "
                 f"(failures: {failures})")
        ran += 1
    print(f"bench_compare: selftest OK ({ran} golden pair(s))")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="gate CANDIDATE against BASELINE")
    p.add_argument("baseline")
    p.add_argument("candidate")
    p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                   help="relative slowdown allowed for measured cases "
                        "(default %(default)s)")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("degrade",
                       help="write SRC worsened by FACTOR to DST (CI uses "
                            "this to prove the gate fails)")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--factor", type=float, default=1.2)
    p.set_defaults(func=cmd_degrade)

    p = sub.add_parser("selftest", help="replay the golden accept/reject "
                                        "pairs")
    p.add_argument("goldens")
    p.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
