#!/usr/bin/env python3
"""Guard the disabled-instrumentation overhead of the obs layer.

Compares two ``bench_runtime_throughput`` CSVs -- one from the default
build (``STREAMK_OBS=ON`` but tracing disarmed, i.e. the path every user
runs) and one from a ``STREAMK_OBS=OFF`` build where the macros compile to
nothing -- and fails when the instrumented-but-disabled build is slower
than the stripped build beyond a tolerance.  This is the check that keeps
"one relaxed load per span site" from quietly regressing into real cost.

Usage:
    check_overhead.py INSTRUMENTED.csv STRIPPED.csv [--tolerance FRAC]

Rows are matched on (mode, submitters, shape) and compared on
gemms_per_sec; the verdict uses the geometric-mean ratio across matched
rows, so one noisy configuration cannot fail the gate alone.  Exit status
0 when within tolerance, 1 otherwise.
"""

import argparse
import csv
import math
import sys


def fail(message):
    print(f"check_overhead: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_rates(path):
    """Returns {(mode, submitters, shape): gemms_per_sec}."""
    rates = {}
    try:
        with open(path, newline="", encoding="utf-8") as f:
            reader = csv.DictReader(f)
            required = {"mode", "submitters", "shape", "gemms_per_sec"}
            if reader.fieldnames is None or not required.issubset(
                    reader.fieldnames):
                fail(f"{path}: missing columns "
                     f"{sorted(required - set(reader.fieldnames or []))}")
            for row in reader:
                key = (row["mode"], row["submitters"], row["shape"])
                rate = float(row["gemms_per_sec"])
                if rate <= 0:
                    fail(f"{path}: non-positive rate for {key}")
                rates[key] = rate
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except ValueError as e:
        fail(f"{path}: bad gemms_per_sec value: {e}")
    if not rates:
        fail(f"{path}: no data rows")
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("instrumented",
                        help="CSV from the default (STREAMK_OBS=ON) build")
    parser.add_argument("stripped",
                        help="CSV from the STREAMK_OBS=OFF build")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown of the geomean (default 0.15; "
             "CI machines are noisy -- local verification should use 0.02)",
    )
    args = parser.parse_args()

    instrumented = load_rates(args.instrumented)
    stripped = load_rates(args.stripped)
    keys = sorted(set(instrumented) & set(stripped))
    if not keys:
        fail("the two CSVs share no (mode, submitters, shape) rows")

    log_sum = 0.0
    print(f"{'mode':<8}{'submitters':>12}{'shape':>22}"
          f"{'on GEMM/s':>12}{'off GEMM/s':>12}{'ratio':>8}")
    for key in keys:
        ratio = instrumented[key] / stripped[key]
        log_sum += math.log(ratio)
        mode, submitters, shape = key
        print(f"{mode:<8}{submitters:>12}{shape:>22}"
              f"{instrumented[key]:>12.1f}{stripped[key]:>12.1f}"
              f"{ratio:>8.3f}")

    geomean = math.exp(log_sum / len(keys))
    slowdown = 1.0 - geomean
    print(f"\ngeomean instrumented/stripped ratio: {geomean:.4f} "
          f"({slowdown * 100.0:+.1f}% slowdown, tolerance "
          f"{args.tolerance * 100.0:.0f}%)")
    if geomean < 1.0 - args.tolerance:
        fail(f"disabled instrumentation costs {slowdown * 100.0:.1f}% "
             f"(> {args.tolerance * 100.0:.0f}% tolerance); the off-path "
             f"is supposed to be one relaxed load per site")
    print("check_overhead: OK")


if __name__ == "__main__":
    main()
