#pragma once

// Shared CLI parsing for the streamk_* tools (tune, profile, doctor).
//
// One grammar for shapes and grouped-GEMM specs everywhere:
//   MxNxK                 a GEMM shape (e.g. 384x384x1024)
//   MxNxK[*C][+MxNxK...]  a grouped ragged batch: '+'-separated member
//                         shapes, each with an optional *count multiplicity
//                         (e.g. 1024x1024x1024+128x128x128*31)
//
// Parse failures print a one-line diagnostic prefixed with `tool` and
// exit(2), matching each tool's usage() convention.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/gemm_shape.hpp"
#include "cpu/gemm.hpp"

namespace streamk::tools {

inline core::GemmShape parse_shape(const std::string& token,
                                   const char* tool) {
  core::GemmShape shape;
  char sep1 = 0;
  char sep2 = 0;
  std::istringstream is(token);
  is >> shape.m >> sep1 >> shape.n >> sep2 >> shape.k;
  // get() must hit EOF: trailing junk ("96x96x128x512") means the user
  // asked for something this parser does not express.
  if (!is || is.get() != EOF || sep1 != 'x' || sep2 != 'x' ||
      !shape.valid()) {
    std::cerr << tool << ": bad shape '" << token
              << "' (want MxNxK, e.g. 384x384x1024)\n";
    std::exit(2);
  }
  return shape;
}

/// One --group spec: '+'-separated members, each `MxNxK` with an optional
/// `*count` multiplicity.  Order never matters to the tuner database key
/// (the digest is a shape-multiset), but the member list is what the tools
/// actually execute, so it is kept as written.
inline std::vector<core::GemmShape> parse_group(const std::string& token,
                                                const char* tool) {
  std::vector<core::GemmShape> shapes;
  std::istringstream members(token);
  std::string member;
  while (std::getline(members, member, '+')) {
    std::string shape_part = member;
    long long count = 1;
    if (const std::size_t star = member.find('*');
        star != std::string::npos) {
      shape_part = member.substr(0, star);
      const std::string count_part = member.substr(star + 1);
      std::size_t consumed = 0;
      try {
        count = std::stoll(count_part, &consumed);
      } catch (const std::exception&) {
        count = 0;
      }
      if (consumed != count_part.size() || count < 1) {
        std::cerr << tool << ": bad --group multiplicity '" << member
                  << "' (want MxNxK*count, count >= 1)\n";
        std::exit(2);
      }
    }
    const core::GemmShape shape = parse_shape(shape_part, tool);
    shapes.insert(shapes.end(), static_cast<std::size_t>(count), shape);
  }
  if (shapes.empty()) {
    std::cerr << tool << ": empty --group spec '" << token << "'\n";
    std::exit(2);
  }
  return shapes;
}

inline cpu::Schedule parse_schedule(const std::string& token,
                                    const char* tool) {
  if (token == "auto") return cpu::Schedule::kAuto;
  if (token == "dp") return cpu::Schedule::kDataParallel;
  if (token == "split") return cpu::Schedule::kFixedSplit;
  if (token == "streamk") return cpu::Schedule::kStreamK;
  if (token == "hybrid1") return cpu::Schedule::kHybridOneTile;
  if (token == "hybrid2") return cpu::Schedule::kHybridTwoTile;
  std::cerr << tool << ": bad --schedule '" << token
            << "' (want auto|dp|split|streamk|hybrid1|hybrid2)\n";
  std::exit(2);
}

}  // namespace streamk::tools
