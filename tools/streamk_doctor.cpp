// streamk_doctor: perf triage for a GEMM shape -- why is it below roofline?
//
//   streamk_doctor [--shape MxNxK] [--schedule auto|dp|split|streamk|
//                   hybrid1|hybrid2] [--grid N] [--split S] [--workers W]
//                   [--reps R] [--json] [--no-pmu]
//   streamk_doctor --selftest
//
// The doctor closes the loop between the paper's analytical model and the
// machine it actually runs on:
//
//   1. Calibration: measures a perfectly-quantized data-parallel microbench
//      (tiles == workers, no fixup, no tail) and compares it with
//      model::closed_form_estimate's prediction for the same launch.  The
//      host proxy GpuSpec's peak numbers are placeholders, so the model's
//      absolute seconds are meaningless -- but the *ratio*
//      measured/predicted on a shape the model nails calibrates its units
//      to this machine.
//   2. Target run: executes the requested shape under trace (and, where
//      the kernel allows, PMU) sampling, takes best-of-reps wall time, and
//      rescales the model's prediction for the actual resolved schedule
//      into measured units: roofline = predicted_target * scale.
//   3. Attribution: obs::build_waterfall decomposes measured - roofline
//      into imbalance / fixup / pack / memory-stall / residual buckets
//      (buckets sum to the gap by construction), and obs::diagnose turns
//      the evidence into ruled findings (DR-MEM-BOUND, DR-IMBALANCE,
//      DR-OVERSUB, DR-PANEL-MISS, DR-FIXUP-HEAVY, DR-MODEL-DRIFT,
//      DR-PMU-UNAVAILABLE, DR-CLEAN).
//
// Without a usable PMU (containers, perf_event_paranoid, non-Linux) the
// doctor degrades to timing-only diagnoses, reports DR-PMU-UNAVAILABLE
// with the reason, and still exits 0: absence of counters is a property of
// the machine, not a failure of the run.  --selftest checks rule-id
// stability and waterfall-closure invariants without touching the PMU and
// exits nonzero on violation (wired into CI).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "cpu/gemm.hpp"
#include "model/cost_model.hpp"
#include "model/grid_selector.hpp"
#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace streamk;

struct CliOptions {
  core::GemmShape shape{192, 192, 2048};
  cpu::Schedule schedule = cpu::Schedule::kStreamK;
  std::int64_t grid = 0;
  std::int64_t split = 2;
  std::size_t workers = 0;
  int reps = 3;
  bool json = false;
  bool no_pmu = false;
  bool selftest = false;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: streamk_doctor [--shape MxNxK] [--schedule auto|dp|split|"
         "streamk|hybrid1|hybrid2]\n"
         "                      [--grid N] [--split S] [--workers W] "
         "[--reps R]\n"
         "                      [--json] [--no-pmu] | --selftest\n";
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--shape") {
      options.shape = tools::parse_shape(value(), "streamk_doctor");
    } else if (arg == "--schedule") {
      options.schedule = tools::parse_schedule(value(), "streamk_doctor");
    } else if (arg == "--grid") {
      options.grid = std::atoll(value().c_str());
    } else if (arg == "--split") {
      options.split = std::atoll(value().c_str());
    } else if (arg == "--workers") {
      options.workers =
          static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg == "--reps") {
      options.reps = std::atoi(value().c_str());
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--no-pmu") {
      options.no_pmu = true;
    } else if (arg == "--selftest") {
      options.selftest = true;
    } else {
      usage();
    }
  }
  if (options.reps < 1) options.reps = 1;
  return options;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps wall time of `fn` (seconds).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_seconds();
    fn();
    const double t = now_seconds() - t0;
    if (rep == 0 || t < best) best = t;
  }
  return best;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Selftest: the doctor's output contract, checkable without a PMU or even a
// warm machine.  Exercised by CI and tests/test_pmu_attrib.cpp.
// ---------------------------------------------------------------------------

int selftest() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "streamk_doctor selftest FAIL: " << what << "\n";
      ++failures;
    }
  };
  auto has_rule = [](const std::vector<obs::Diagnosis>& ds,
                     const char* rule) {
    return std::any_of(ds.begin(), ds.end(), [rule](const obs::Diagnosis& d) {
      return d.rule == rule;
    });
  };

  // Rule ids are an output contract: these strings may never change.
  expect(std::string(obs::rules::kPmuUnavailable) == "DR-PMU-UNAVAILABLE",
         "rule id kPmuUnavailable");
  expect(std::string(obs::rules::kMemBound) == "DR-MEM-BOUND",
         "rule id kMemBound");
  expect(std::string(obs::rules::kImbalance) == "DR-IMBALANCE",
         "rule id kImbalance");
  expect(std::string(obs::rules::kOversub) == "DR-OVERSUB",
         "rule id kOversub");
  expect(std::string(obs::rules::kPanelMiss) == "DR-PANEL-MISS",
         "rule id kPanelMiss");
  expect(std::string(obs::rules::kFixupHeavy) == "DR-FIXUP-HEAVY",
         "rule id kFixupHeavy");
  expect(std::string(obs::rules::kModelDrift) == "DR-MODEL-DRIFT",
         "rule id kModelDrift");
  expect(std::string(obs::rules::kClean) == "DR-CLEAN", "rule id kClean");

  // Waterfall closure on a synthetic two-CTA trace: buckets must sum to
  // the gap exactly (the residual closes the ledger).
  std::vector<obs::TraceSpan> spans;
  auto push = [&spans](obs::EventKind kind, std::int64_t cta,
                       std::int64_t t0_ms, std::int64_t t1_ms) {
    obs::TraceSpan span;
    span.kind = kind;
    span.arg0 = cta;
    span.t0_ns = t0_ms * 1'000'000;
    span.t1_ns = t1_ms * 1'000'000;
    spans.push_back(span);
  };
  push(obs::EventKind::kMacSegment, 0, 0, 10);
  push(obs::EventKind::kMacSegment, 1, 0, 4);   // CTA 1 idles 6 ms
  push(obs::EventKind::kFixupWait, 1, 4, 6);
  push(obs::EventKind::kPack, -1, 0, 2);
  obs::WaterfallInputs inputs;
  inputs.measured_seconds = 0.012;
  inputs.roofline_seconds = 0.007;
  inputs.ctas = 2;
  inputs.reps = 1;
  inputs.spans = spans;
  const obs::EfficiencyWaterfall w = obs::build_waterfall(inputs);
  expect(std::abs(w.bucket_sum() - w.gap_seconds) < 1e-12,
         "waterfall buckets sum to gap");
  expect(!w.pmu_based, "synthetic trace is timing-only");
  expect(w.fixup_seconds > 0.0, "fixup bucket sees the wait span");
  expect(w.pack_seconds > 0.0, "pack bucket sees the pack span");

  // Canned diagnoses: each rule fires on its designed evidence.
  {
    obs::DoctorInputs d;
    d.waterfall = w;
    d.pmu_available = false;
    d.pmu_reason = "selftest";
    d.grid = 2;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(has_rule(findings, obs::rules::kPmuUnavailable),
           "timing-only run reports DR-PMU-UNAVAILABLE");
    expect(!has_rule(findings, obs::rules::kOversub),
           "grid <= workers must not report DR-OVERSUB");
  }
  {
    obs::DoctorInputs d;
    d.waterfall = w;
    d.pmu_available = true;
    d.grid = 16;
    d.workers = 4;
    d.panel_fallbacks = 3;
    const auto findings = obs::diagnose(d);
    expect(has_rule(findings, obs::rules::kOversub),
           "grid > workers reports DR-OVERSUB");
    expect(has_rule(findings, obs::rules::kPanelMiss),
           "panel fallbacks report DR-PANEL-MISS");
  }
  {
    obs::DoctorInputs d;
    d.waterfall.measured_seconds = 0.010;
    d.waterfall.roofline_seconds = 0.009;
    d.waterfall.gap_seconds = 0.001;
    d.waterfall.residual_seconds = 0.001;
    d.pmu_available = true;
    d.grid = 4;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(!findings.empty(), "diagnose never returns empty");
  }
  {
    obs::DoctorInputs d;
    d.waterfall.measured_seconds = 0.010;
    d.waterfall.roofline_seconds = 0.0098;
    d.waterfall.gap_seconds = 0.0002;
    d.waterfall.residual_seconds = 0.0002;
    d.pmu_available = true;
    d.grid = 4;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(findings.size() == 1 && findings[0].rule == obs::rules::kClean,
           "near-roofline run reports exactly DR-CLEAN");
  }
  {
    obs::DoctorInputs d;
    d.waterfall.measured_seconds = 0.010;
    d.waterfall.roofline_seconds = 0.004;
    d.waterfall.gap_seconds = 0.006;
    d.waterfall.imbalance_seconds = 0.004;
    d.waterfall.residual_seconds = 0.002;
    d.waterfall.profile.makespan_ns = 10'000'000;
    d.waterfall.profile.busy_sum_ns = 12'000'000;
    d.waterfall.profile.ctas.resize(2);
    d.pmu_available = true;
    d.grid = 2;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(has_rule(findings, obs::rules::kImbalance),
           "idle-tail evidence reports DR-IMBALANCE");
  }
  {
    obs::DoctorInputs d;
    d.waterfall.measured_seconds = 0.010;
    d.waterfall.roofline_seconds = 0.005;
    d.waterfall.gap_seconds = 0.005;
    d.waterfall.memory_stall_seconds = 0.004;
    d.waterfall.residual_seconds = 0.001;
    d.waterfall.pmu_based = true;
    d.waterfall.profile.pmu_spans = 8;
    d.waterfall.profile.cycles_sum = 1'000'000;
    d.waterfall.profile.stalled_sum = 600'000;
    d.pmu_available = true;
    d.grid = 4;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(has_rule(findings, obs::rules::kMemBound),
           "stall-share evidence reports DR-MEM-BOUND");
  }
  {
    obs::DoctorInputs d;
    d.waterfall.measured_seconds = 0.010;
    d.waterfall.roofline_seconds = 0.005;
    d.waterfall.gap_seconds = 0.005;
    d.waterfall.fixup_seconds = 0.002;
    d.waterfall.residual_seconds = 0.003;
    d.pmu_available = true;
    d.grid = 4;
    d.workers = 4;
    const auto findings = obs::diagnose(d);
    expect(has_rule(findings, obs::rules::kFixupHeavy),
           "fixup-share evidence reports DR-FIXUP-HEAVY");
    expect(has_rule(findings, obs::rules::kModelDrift),
           "residual-share evidence reports DR-MODEL-DRIFT");
  }

  if (failures == 0) {
    std::cout << "streamk_doctor selftest: OK (8 rule ids, waterfall "
                 "closure, 7 diagnosis scenarios)\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);
  if (options.selftest) return selftest();

  const std::size_t workers =
      options.workers != 0
          ? options.workers
          : std::max(1u, std::thread::hardware_concurrency());

  // PMU arming: explicit --no-pmu wins, then the environment/availability.
  bool pmu_on = false;
  std::string pmu_reason;
  if (options.no_pmu) {
    pmu_reason = "disabled by --no-pmu";
  } else if (obs::arm_pmu()) {
    pmu_on = true;
  } else {
    pmu_reason = obs::pmu_unavailable_reason();
  }

  const gpu::BlockShape block = cpu::default_cpu_block(gpu::Precision::kFp64);
  const gpu::GpuSpec proxy = cpu::host_proxy_spec(workers);
  const model::CostModel cost_model =
      model::CostModel::calibrated(proxy, block, gpu::Precision::kFp64);
  util::Pcg32 rng(42);

  // -------------------------------------------------------------------------
  // 1. Calibration: perfectly-quantized data-parallel shape (tiles ==
  //    workers, whole k per tile).  The model is most trustworthy here, so
  //    measured/predicted calibrates model units to this machine.
  // -------------------------------------------------------------------------
  const core::GemmShape calib_shape{
      block.m * static_cast<std::int64_t>(workers), block.n,
      block.k * 64};
  const core::WorkMapping calib_mapping(calib_shape, block);
  core::DecompositionSpec calib_spec;
  calib_spec.kind = core::DecompositionKind::kDataParallel;
  calib_spec.sm_count = static_cast<std::int64_t>(workers);
  const double predicted_calib = model::closed_form_estimate(
      calib_spec, cost_model, calib_mapping, proxy);

  cpu::Matrix<double> ca(calib_shape.m, calib_shape.k);
  cpu::Matrix<double> cb(calib_shape.k, calib_shape.n);
  cpu::Matrix<double> cc(calib_shape.m, calib_shape.n);
  cpu::fill_random(ca, rng, -0.5, 0.5);
  cpu::fill_random(cb, rng, -0.5, 0.5);
  cpu::GemmOptions calib_options;
  calib_options.schedule = cpu::Schedule::kDataParallel;
  calib_options.workers = workers;
  cpu::gemm(ca, cb, cc, calib_options);  // warmup
  const double measured_calib = best_of(
      options.reps, [&] { cpu::gemm(ca, cb, cc, calib_options); });
  const double scale =
      predicted_calib > 0.0 ? measured_calib / predicted_calib : 0.0;

  // -------------------------------------------------------------------------
  // 2. Target run under trace (+ PMU) sampling.
  // -------------------------------------------------------------------------
  cpu::Matrix<double> a(options.shape.m, options.shape.k);
  cpu::Matrix<double> b(options.shape.k, options.shape.n);
  cpu::Matrix<double> c(options.shape.m, options.shape.n);
  cpu::fill_random(a, rng, -0.5, 0.5);
  cpu::fill_random(b, rng, -0.5, 0.5);

  cpu::GemmOptions gemm_options;
  gemm_options.schedule = options.schedule;
  gemm_options.grid = options.grid;
  gemm_options.split = options.split;
  gemm_options.workers = workers;

  cpu::GemmReport report = cpu::gemm(a, b, c, gemm_options);  // warmup

  const std::int64_t fallbacks_before =
      obs::counter("panel_cache.fallbacks").value();
  obs::arm_trace();
  obs::reset_trace();
  const double measured = best_of(
      options.reps, [&] { report = cpu::gemm(a, b, c, gemm_options); });
  const std::vector<obs::TraceSpan> spans = obs::snapshot_trace();
  obs::disarm_trace();
  const std::int64_t panel_fallbacks =
      obs::counter("panel_cache.fallbacks").value() - fallbacks_before;

  const core::WorkMapping mapping(options.shape, block);
  const double predicted_target =
      model::closed_form_estimate(report.spec, cost_model, mapping, proxy);
  const double roofline = predicted_target * scale;

  // -------------------------------------------------------------------------
  // 3. Attribution + diagnosis.
  // -------------------------------------------------------------------------
  obs::WaterfallInputs inputs;
  inputs.measured_seconds = measured;
  inputs.roofline_seconds = roofline;
  inputs.ctas = report.grid;
  inputs.reps = options.reps;
  inputs.spans = spans;
  const obs::EfficiencyWaterfall waterfall = obs::build_waterfall(inputs);

  obs::DoctorInputs doctor_inputs;
  doctor_inputs.waterfall = waterfall;
  doctor_inputs.pmu_available = pmu_on;
  doctor_inputs.pmu_reason = pmu_reason;
  doctor_inputs.grid = report.grid;
  doctor_inputs.workers = static_cast<std::int64_t>(workers);
  doctor_inputs.panel_fallbacks = panel_fallbacks;
  const std::vector<obs::Diagnosis> findings = obs::diagnose(doctor_inputs);

  if (options.json) {
    std::cout << "{\"shape\":\"" << options.shape.m << "x" << options.shape.n
              << "x" << options.shape.k << "\",\"schedule\":\""
              << json_escape(report.schedule_name)
              << "\",\"grid\":" << report.grid << ",\"workers\":" << workers
              << ",\"reps\":" << options.reps
              << ",\"measured_seconds\":" << measured
              << ",\"gflops\":" << report.gflops
              << ",\"calibration\":{\"measured_seconds\":" << measured_calib
              << ",\"predicted_model_units\":" << predicted_calib
              << ",\"scale\":" << scale << "}"
              << ",\"pmu\":{\"available\":" << (pmu_on ? "true" : "false")
              << ",\"reason\":\"" << json_escape(pmu_reason) << "\"}"
              << ",\"waterfall\":" << obs::waterfall_json(waterfall)
              << ",\"diagnoses\":[";
    bool first = true;
    for (const obs::Diagnosis& d : findings) {
      std::cout << (first ? "" : ",") << "{\"rule\":\"" << d.rule
                << "\",\"detail\":\"" << json_escape(d.detail) << "\"}";
      first = false;
    }
    std::cout << "]}\n";
  } else {
    std::cout << "streamk_doctor: " << options.shape.m << "x"
              << options.shape.n << "x" << options.shape.k << "  schedule "
              << report.schedule_name << "  grid " << report.grid
              << "  workers " << workers << "  reps " << options.reps << "\n"
              << "  best rep " << measured * 1e3 << " ms (" << report.gflops
              << " GFLOP/s), calibration scale " << scale << "\n"
              << (pmu_on ? "  pmu: counters attached to spans\n"
                         : "  pmu: unavailable (" + pmu_reason +
                               "), timing-only\n")
              << "\n"
              << obs::render_waterfall(waterfall) << "\ndiagnoses:\n";
    for (const obs::Diagnosis& d : findings) {
      std::cout << "  [" << d.rule << "] " << d.detail << "\n";
    }
  }
  return 0;
}
