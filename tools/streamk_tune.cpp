// streamk_tune: offline driver for the empirical tuner.
//
//   streamk_tune tune  [--db FILE] [--shape MxNxK]... [--corpus N]
//                      [--precision fp64|fp32|fp16] [--reps R] [--top-k K]
//                      [--epilogue CLASS]
//     Measures the budgeted search space for every requested shape on this
//     host and merges the winners into FILE (load -> tune -> locked
//     merge_save, so concurrent tuners sharing one file compose
//     keep-fastest without losing each other's records).
//
//   streamk_tune print [--db FILE]
//     Dumps the database as a table.
//
//   streamk_tune ab    [--db FILE] [--shape MxNxK]... [--corpus N]
//                      [--precision ...] [--reps R] [--epilogue CLASS]
//     A/B: re-measures each db shape under heuristic-only dispatch
//     (Schedule::kAuto with an empty global db) vs. the tuned config, and
//     reports per-shape and geomean speedups.
//
// --epilogue tunes/measures a *fused* epilogue class (canonical
// epilogue::class_key form, e.g. "bias_col+relu"); the class is part of the
// database key, so fused and unfused winners for one shape coexist.
//
// Point STREAMK_TUNING_DB at FILE to make library dispatch consume the
// result (see tuner/dispatch.hpp).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bencher/table.hpp"
#include "cli_common.hpp"
#include "epilogue/epilogue.hpp"
#include "corpus/corpus.hpp"
#include "cpu/gemm.hpp"
#include "tuner/dispatch.hpp"
#include "tuner/tuner.hpp"
#include "util/check.hpp"

namespace {

using namespace streamk;

struct CliOptions {
  std::string command;
  std::string db_path = "streamk_tuning.csv";
  std::vector<core::GemmShape> shapes;
  std::vector<std::vector<core::GemmShape>> groups;
  std::size_t corpus = 0;
  gpu::Precision precision = gpu::Precision::kFp64;
  int reps = 3;
  std::size_t top_k = 12;
  std::string epilogue_class;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: streamk_tune <tune|print|ab> [--db FILE] [--shape MxNxK]...\n"
         "                    [--group MxNxK[*C][+MxNxK[*C]]...]\n"
         "                    [--corpus N] [--precision fp64|fp32|fp16]\n"
         "                    [--reps R] [--top-k K] [--epilogue CLASS]\n"
         "  --group tunes/measures ONE grouped ragged-batch GEMM per flag:\n"
         "  '+'-separated member shapes, each with an optional *count\n"
         "  multiplicity (e.g. --group 1024x1024x1024+128x128x128*31).\n";
  std::exit(2);
}

// Shape and group grammar shared with streamk_profile / streamk_doctor.
core::GemmShape parse_shape(const std::string& token) {
  return tools::parse_shape(token, "streamk_tune");
}

std::vector<core::GemmShape> parse_group(const std::string& token) {
  return tools::parse_group(token, "streamk_tune");
}

/// Full-string numeric parse; anything else (including trailing junk like
/// "12x") prints usage instead of an unhandled std::stoi exception.
long long parse_number(const std::string& token) {
  std::size_t consumed = 0;
  long long v = 0;
  try {
    v = std::stoll(token, &consumed);
  } catch (const std::exception&) {
    usage();
  }
  if (consumed != token.size() || v < 0) usage();
  return v;
}

CliOptions parse_cli(int argc, char** argv) {
  if (argc < 2) usage();
  CliOptions cli;
  cli.command = argv[1];
  if (cli.command != "tune" && cli.command != "print" && cli.command != "ab") {
    usage();
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--db") {
      cli.db_path = value();
    } else if (arg == "--shape") {
      cli.shapes.push_back(parse_shape(value()));
    } else if (arg == "--group") {
      cli.groups.push_back(parse_group(value()));
    } else if (arg == "--corpus") {
      cli.corpus = static_cast<std::size_t>(parse_number(value()));
    } else if (arg == "--precision") {
      const std::string p = value();
      if (p == "fp64") {
        cli.precision = gpu::Precision::kFp64;
      } else if (p == "fp32") {
        cli.precision = gpu::Precision::kFp32;
      } else if (p == "fp16") {
        cli.precision = gpu::Precision::kFp16F32;
      } else {
        usage();
      }
    } else if (arg == "--reps") {
      cli.reps = static_cast<int>(parse_number(value()));
    } else if (arg == "--top-k") {
      cli.top_k = static_cast<std::size_t>(parse_number(value()));
    } else if (arg == "--epilogue") {
      // Parse-and-reformat canonicalizes the class so it matches the key
      // runtime dispatch computes (and rejects typos loudly).
      try {
        cli.epilogue_class = epilogue::canonical_class_key(value());
      } catch (const std::exception& e) {
        std::cerr << "streamk_tune: " << e.what() << "\n";
        std::exit(2);
      }
    } else {
      usage();
    }
  }
  return cli;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// The shapes to operate on: explicit --shape list, then --corpus N corpus
/// shapes scaled into CPU-tractable sizes (the paper corpus spans up to
/// 8192^3, which is no place for a host CPU tuner; divide extents by 16 and
/// floor at one tile).
std::vector<core::GemmShape> requested_shapes(const CliOptions& cli) {
  std::vector<core::GemmShape> shapes = cli.shapes;
  if (cli.corpus > 0) {
    for (const core::GemmShape& s : corpus::Corpus::paper(cli.corpus).shapes()) {
      shapes.push_back({std::max<std::int64_t>(s.m / 16, 16),
                        std::max<std::int64_t>(s.n / 16, 16),
                        std::max<std::int64_t>(s.k / 16, 16)});
    }
  }
  return shapes;
}

int run_tune(const CliOptions& cli) {
  const std::vector<core::GemmShape> shapes = requested_shapes(cli);
  if (shapes.empty() && cli.groups.empty()) {
    std::cerr
        << "streamk_tune tune: no work (--shape, --group, or --corpus)\n";
    return 2;
  }

  tuner::TuningDb db;
  if (file_exists(cli.db_path)) {
    std::cout << "loaded " << db.load(cli.db_path) << " records from "
              << cli.db_path << "\n";
  }

  tuner::TuneOptions options;
  options.repetitions = cli.reps;
  options.space.top_k = cli.top_k;
  options.epilogue_class = cli.epilogue_class;
  const std::size_t tuned =
      tuner::tune_corpus(shapes, cli.precision, db, options);

  std::size_t tuned_groups = 0;
  for (const std::vector<core::GemmShape>& group : cli.groups) {
    const tuner::ShapeKey key{tuner::group_key_shape(group), cli.precision,
                              cli.epilogue_class,
                              tuner::group_digest(group)};
    if (db.lookup(key)) continue;
    const tuner::TuneReport report =
        tuner::tune_group(group, cli.precision, options);
    db.update(report.key, report.best);
    ++tuned_groups;
  }

  // Serialized contribute: merge what landed on disk while we measured and
  // save the union under the db's advisory lock, so concurrent tuners
  // sharing this file never lose each other's records.
  db.merge_save(cli.db_path);
  std::cout << "tuned " << tuned << " new shape(s) and " << tuned_groups
            << " new group(s); " << db.size() << " record(s) saved to "
            << cli.db_path << "\n";
  return 0;
}

int run_print(const CliOptions& cli) {
  tuner::TuningDb db;
  db.load(cli.db_path);
  bencher::TextTable table({"shape", "precision", "epilogue", "group",
                            "config", "seconds", "GFLOP/s"});
  for (const auto& [key, record] : db.snapshot()) {
    // Grouped keys print the digest (the member shapes are not recoverable
    // from it); the shape column shows the group's aggregate shape.
    std::ostringstream group;
    if (key.group == 0) {
      group << "-";
    } else {
      group << std::hex << key.group;
    }
    table.row({key.shape.to_string(), std::string(gpu::name(key.precision)),
               key.epilogue.empty() ? "-" : key.epilogue, group.str(),
               record.config.to_string(), bencher::fmt_num(record.seconds, 6),
               bencher::fmt_num(record.gflops, 2)});
  }
  std::cout << table.render() << db.size() << " record(s) in " << cli.db_path
            << "\n";
  return 0;
}

int run_ab(const CliOptions& cli) {
  tuner::TuningDb db;
  db.load(cli.db_path);
  std::vector<core::GemmShape> shapes = requested_shapes(cli);
  if (shapes.empty() && cli.groups.empty()) {
    for (const auto& [key, record] : db.snapshot()) {
      // Grouped records are excluded: key.shape is the group's *aggregate*
      // shape, and re-measuring it as one plain GEMM would compare against
      // a schedule the record was never tuned for.  A/B a group by passing
      // its --group spec explicitly.
      if (key.precision == cli.precision &&
          key.epilogue == cli.epilogue_class && key.group == 0) {
        shapes.push_back(key.shape);
      }
    }
  }
  if (shapes.empty() && cli.groups.empty()) {
    std::cerr << "streamk_tune ab: no shapes in db for precision\n";
    return 2;
  }

  util::check(tuner::global_tuning_db().size() == 0,
              "streamk_tune ab: unset STREAMK_TUNING_DB (the heuristic side "
              "must dispatch untuned)");

  bencher::TextTable table(
      {"shape", "heuristic s", "tuned s", "speedup", "tuned config"});
  double log_sum = 0.0;
  std::size_t measured = 0;
  const auto tally = [&](const tuner::AbResult& ab) {
    if (ab.speedup <= 0.0) return;  // degenerate timing: keep it out of
                                    // the geomean
    log_sum += std::log(ab.speedup);
    ++measured;
  };
  for (const core::GemmShape& shape : shapes) {
    const auto record = db.lookup({shape, cli.precision, cli.epilogue_class});
    if (!record) continue;
    const tuner::AbResult ab = tuner::ab_measure(
        shape, cli.precision, record->config, cli.reps, cli.epilogue_class);
    table.row({shape.to_string(), bencher::fmt_num(ab.heuristic_seconds, 6),
               bencher::fmt_num(ab.tuned_seconds, 6),
               bencher::fmt_num(ab.speedup, 3),
               record->config.to_string()});
    tally(ab);
  }
  for (const std::vector<core::GemmShape>& group : cli.groups) {
    const auto record =
        db.lookup({tuner::group_key_shape(group), cli.precision,
                   cli.epilogue_class, tuner::group_digest(group)});
    if (!record) {
      std::cerr << "streamk_tune ab: group not in db (tune it first)\n";
      continue;
    }
    const tuner::AbResult ab = tuner::ab_measure_group(
        group, cli.precision, record->config, cli.reps, cli.epilogue_class);
    table.row({tuner::group_key_shape(group).to_string() + " [group of " +
                   std::to_string(group.size()) + "]",
               bencher::fmt_num(ab.heuristic_seconds, 6),
               bencher::fmt_num(ab.tuned_seconds, 6),
               bencher::fmt_num(ab.speedup, 3),
               record->config.to_string()});
    tally(ab);
  }
  std::cout << table.render();
  if (measured > 0) {
    std::cout << "geomean tuned-vs-heuristic speedup over " << measured
              << " shape(s): "
              << bencher::fmt_num(
                     std::exp(log_sum / static_cast<double>(measured)), 3)
              << "x\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);
  try {
    if (cli.command == "tune") return run_tune(cli);
    if (cli.command == "print") return run_print(cli);
    return run_ab(cli);
  } catch (const std::exception& e) {
    std::cerr << "streamk_tune: " << e.what() << "\n";
    return 1;
  }
}
