// streamk_profile: the Stream-K load-balance profiler.
//
//   streamk_profile [--shape MxNxK | --group MxNxK[*C][+...]]
//                   [--schedule auto|dp|split|streamk|hybrid1|hybrid2]
//                   [--grid N] [--split S] [--workers W]
//                   [--reps R] [--json] [--trace FILE] [--metrics FILE]
//
// Runs the requested GEMM under the obs trace layer and prints the
// imbalance report the paper's figures argue from: per-CTA busy time,
// makespan vs. sum-of-work, and the fixup-wait share.  One warmup rep runs
// before the trace epoch opens, so plan compilation and pool spin-up do not
// pollute the measured timeline.
//
//   --group SPEC    profile ONE grouped ragged-batch GEMM instead of a
//                   single shape: '+'-separated member shapes, each with an
//                   optional *count multiplicity (same grammar as
//                   streamk_tune), scheduled as one Stream-K domain
//   --json          print the profile as JSON instead of the table
//   --trace FILE    also dump the measured reps' Chrome trace-event JSON
//                   (loads in chrome://tracing and ui.perfetto.dev)
//   --metrics FILE  also dump the metrics-registry snapshot (JSON, or CSV
//                   when FILE ends in .csv)
//
// The default configuration (384x384x1024, --schedule streamk, grid =
// workers) oversubscribes tiles enough to split them across CTAs, so the
// fixup columns are exercised out of the box.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "cpu/gemm.hpp"
#include "cpu/grouped.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct CliOptions {
  core::GemmShape shape{384, 384, 1024};
  std::vector<core::GemmShape> group;  ///< non-empty = grouped mode
  cpu::Schedule schedule = cpu::Schedule::kStreamK;
  std::int64_t grid = 0;
  std::int64_t split = 2;
  std::size_t workers = 0;
  int reps = 3;
  bool json = false;
  std::string trace_path;
  std::string metrics_path;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: streamk_profile [--shape MxNxK | --group MxNxK[*C][+...]]\n"
         "                       [--schedule auto|dp|split|streamk|"
         "hybrid1|hybrid2]\n"
         "                       [--grid N] [--split S] [--workers W] "
         "[--reps R]\n"
         "                       [--json] [--trace FILE] [--metrics FILE]\n";
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--shape") {
      options.shape = tools::parse_shape(value(), "streamk_profile");
    } else if (arg == "--group") {
      options.group = tools::parse_group(value(), "streamk_profile");
    } else if (arg == "--schedule") {
      options.schedule = tools::parse_schedule(value(), "streamk_profile");
    } else if (arg == "--grid") {
      options.grid = std::atoll(value().c_str());
    } else if (arg == "--split") {
      options.split = std::atoll(value().c_str());
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(
          std::atoll(value().c_str()));
    } else if (arg == "--reps") {
      options.reps = std::atoi(value().c_str());
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--metrics") {
      options.metrics_path = value();
    } else {
      usage();
    }
  }
  if (options.reps < 1) options.reps = 1;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);

  cpu::GemmOptions gemm_options;
  gemm_options.schedule = options.schedule;
  gemm_options.grid = options.grid;
  gemm_options.split = options.split;
  gemm_options.workers = options.workers;

  util::Pcg32 rng(42);
  cpu::GemmReport report;
  std::string shape_label;

  if (options.group.empty()) {
    shape_label = std::to_string(options.shape.m) + "x" +
                  std::to_string(options.shape.n) + "x" +
                  std::to_string(options.shape.k);
    cpu::Matrix<double> a(options.shape.m, options.shape.k);
    cpu::Matrix<double> b(options.shape.k, options.shape.n);
    cpu::Matrix<double> c(options.shape.m, options.shape.n);
    cpu::fill_random(a, rng, -0.5, 0.5);
    cpu::fill_random(b, rng, -0.5, 0.5);

    // Warmup outside the trace epoch: compiles and caches the plan, spins
    // up the pool, binds the pooled workspaces.
    report = cpu::gemm(a, b, c, gemm_options);

    obs::arm_trace();
    obs::reset_trace();
    for (int rep = 0; rep < options.reps; ++rep) {
      report = cpu::gemm(a, b, c, gemm_options);
    }
  } else {
    shape_label = "group[" + std::to_string(options.group.size()) + "]";
    std::vector<cpu::Matrix<double>> as;
    std::vector<cpu::Matrix<double>> bs;
    std::vector<cpu::Matrix<double>> cs;
    as.reserve(options.group.size());
    bs.reserve(options.group.size());
    cs.reserve(options.group.size());
    for (const core::GemmShape& shape : options.group) {
      as.emplace_back(shape.m, shape.k);
      bs.emplace_back(shape.k, shape.n);
      cs.emplace_back(shape.m, shape.n);
      cpu::fill_random(as.back(), rng, -0.5, 0.5);
      cpu::fill_random(bs.back(), rng, -0.5, 0.5);
    }
    const std::span<const cpu::Matrix<double>> as_span(as);
    const std::span<const cpu::Matrix<double>> bs_span(bs);
    const std::span<cpu::Matrix<double>> cs_span(cs);

    report = cpu::grouped_gemm<double, double, double>(as_span, bs_span,
                                                       cs_span, gemm_options);

    obs::arm_trace();
    obs::reset_trace();
    for (int rep = 0; rep < options.reps; ++rep) {
      report = cpu::grouped_gemm<double, double, double>(
          as_span, bs_span, cs_span, gemm_options);
    }
  }
  const std::vector<obs::TraceSpan> spans = obs::snapshot_trace();
  obs::disarm_trace();

  const obs::LoadBalanceProfile profile =
      obs::build_load_balance_profile(spans);

  if (!options.json) {
    std::cout << "shape " << shape_label << "  schedule "
              << report.schedule_name << "  grid " << report.grid
              << "  tiles " << report.tiles << "  spills " << report.spills
              << "  reps " << options.reps << "\n"
              << "last rep: " << report.seconds * 1e3 << " ms, "
              << report.gflops << " GFLOP/s\n\n";
    std::cout << obs::render_load_balance_profile(profile);
    if (obs::trace_overwritten() > 0) {
      std::cout << "\nnote: " << obs::trace_overwritten()
                << " spans were overwritten by ring wraparound; raise the "
                   "buffer via obs::set_trace_buffer_capacity or lower "
                   "--reps\n";
    }
  } else {
    std::cout << obs::load_balance_profile_json(profile) << "\n";
  }

  if (!options.trace_path.empty()) {
    obs::write_chrome_trace(options.trace_path);
    if (!options.json) {
      std::cout << "\ntrace written to " << options.trace_path << "\n";
    }
  }
  if (!options.metrics_path.empty()) {
    obs::write_metrics(options.metrics_path);
    if (!options.json) {
      std::cout << "metrics written to " << options.metrics_path << "\n";
    }
  }
  return 0;
}
