// streamk_profile: the Stream-K load-balance profiler.
//
//   streamk_profile [--shape MxNxK] [--schedule auto|dp|split|streamk|
//                    hybrid1|hybrid2] [--grid N] [--split S] [--workers W]
//                    [--reps R] [--json] [--trace FILE] [--metrics FILE]
//
// Runs the requested GEMM under the obs trace layer and prints the
// imbalance report the paper's figures argue from: per-CTA busy time,
// makespan vs. sum-of-work, and the fixup-wait share.  One warmup rep runs
// before the trace epoch opens, so plan compilation and pool spin-up do not
// pollute the measured timeline.
//
//   --json          print the profile as JSON instead of the table
//   --trace FILE    also dump the measured reps' Chrome trace-event JSON
//                   (loads in chrome://tracing and ui.perfetto.dev)
//   --metrics FILE  also dump the metrics-registry snapshot (JSON, or CSV
//                   when FILE ends in .csv)
//
// The default configuration (384x384x1024, --schedule streamk, grid =
// workers) oversubscribes tiles enough to split them across CTAs, so the
// fixup columns are exercised out of the box.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "cpu/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct CliOptions {
  core::GemmShape shape{384, 384, 1024};
  cpu::Schedule schedule = cpu::Schedule::kStreamK;
  std::int64_t grid = 0;
  std::int64_t split = 2;
  std::size_t workers = 0;
  int reps = 3;
  bool json = false;
  std::string trace_path;
  std::string metrics_path;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: streamk_profile [--shape MxNxK] [--schedule auto|dp|split|"
         "streamk|hybrid1|hybrid2]\n"
         "                       [--grid N] [--split S] [--workers W] "
         "[--reps R]\n"
         "                       [--json] [--trace FILE] [--metrics FILE]\n";
  std::exit(2);
}

core::GemmShape parse_shape(const std::string& token) {
  core::GemmShape shape;
  char sep1 = 0;
  char sep2 = 0;
  std::istringstream is(token);
  is >> shape.m >> sep1 >> shape.n >> sep2 >> shape.k;
  if (!is || is.get() != EOF || sep1 != 'x' || sep2 != 'x' ||
      !shape.valid()) {
    std::cerr << "streamk_profile: bad --shape '" << token
              << "' (want MxNxK, e.g. 384x384x1024)\n";
    std::exit(2);
  }
  return shape;
}

cpu::Schedule parse_schedule(const std::string& token) {
  if (token == "auto") return cpu::Schedule::kAuto;
  if (token == "dp") return cpu::Schedule::kDataParallel;
  if (token == "split") return cpu::Schedule::kFixedSplit;
  if (token == "streamk") return cpu::Schedule::kStreamK;
  if (token == "hybrid1") return cpu::Schedule::kHybridOneTile;
  if (token == "hybrid2") return cpu::Schedule::kHybridTwoTile;
  std::cerr << "streamk_profile: bad --schedule '" << token << "'\n";
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--shape") {
      options.shape = parse_shape(value());
    } else if (arg == "--schedule") {
      options.schedule = parse_schedule(value());
    } else if (arg == "--grid") {
      options.grid = std::atoll(value().c_str());
    } else if (arg == "--split") {
      options.split = std::atoll(value().c_str());
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(
          std::atoll(value().c_str()));
    } else if (arg == "--reps") {
      options.reps = std::atoi(value().c_str());
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--metrics") {
      options.metrics_path = value();
    } else {
      usage();
    }
  }
  if (options.reps < 1) options.reps = 1;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);

  cpu::Matrix<double> a(options.shape.m, options.shape.k);
  cpu::Matrix<double> b(options.shape.k, options.shape.n);
  cpu::Matrix<double> c(options.shape.m, options.shape.n);
  util::Pcg32 rng(42);
  cpu::fill_random(a, rng, -0.5, 0.5);
  cpu::fill_random(b, rng, -0.5, 0.5);

  cpu::GemmOptions gemm_options;
  gemm_options.schedule = options.schedule;
  gemm_options.grid = options.grid;
  gemm_options.split = options.split;
  gemm_options.workers = options.workers;

  // Warmup outside the trace epoch: compiles and caches the plan, spins up
  // the pool, binds the pooled workspaces.
  cpu::GemmReport report = cpu::gemm(a, b, c, gemm_options);

  obs::arm_trace();
  obs::reset_trace();
  for (int rep = 0; rep < options.reps; ++rep) {
    report = cpu::gemm(a, b, c, gemm_options);
  }
  const std::vector<obs::TraceSpan> spans = obs::snapshot_trace();
  obs::disarm_trace();

  const obs::LoadBalanceProfile profile =
      obs::build_load_balance_profile(spans);

  if (!options.json) {
    std::cout << "shape " << options.shape.m << "x" << options.shape.n << "x"
              << options.shape.k << "  schedule " << report.schedule_name
              << "  grid " << report.grid << "  tiles " << report.tiles
              << "  spills " << report.spills << "  reps " << options.reps
              << "\n"
              << "last rep: " << report.seconds * 1e3 << " ms, "
              << report.gflops << " GFLOP/s\n\n";
    std::cout << obs::render_load_balance_profile(profile);
    if (obs::trace_overwritten() > 0) {
      std::cout << "\nnote: " << obs::trace_overwritten()
                << " spans were overwritten by ring wraparound; raise the "
                   "buffer via obs::set_trace_buffer_capacity or lower "
                   "--reps\n";
    }
  } else {
    std::cout << obs::load_balance_profile_json(profile) << "\n";
  }

  if (!options.trace_path.empty()) {
    obs::write_chrome_trace(options.trace_path);
    if (!options.json) {
      std::cout << "\ntrace written to " << options.trace_path << "\n";
    }
  }
  if (!options.metrics_path.empty()) {
    obs::write_metrics(options.metrics_path);
    if (!options.json) {
      std::cout << "metrics written to " << options.metrics_path << "\n";
    }
  }
  return 0;
}
