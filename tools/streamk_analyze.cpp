// streamk_analyze: the static concurrency analyzer CLI.
//
// Modes (combinable; exit status is nonzero when any mode finds a problem):
//
//   --corpus [N]    Sweep N log-sampled corpus shapes (default 64) through
//                   every decomposition kind x spilling grid x epilogue
//                   class, plus grouped multi-problem plans, and run the
//                   wait-graph rule sweep on each compiled plan.  Production
//                   plans must analyze clean, so any finding is a failure.
//   --smoke         Shrink the corpus (8 shapes) for CI smoke runs.
//   --model-check   Exhaustive explicit-state check of the fixup flag
//                   protocol and the panel-cache slot protocol, including
//                   the seeded protocol mutants.
//   --selftest      Compile every seeded-flaw plan and require the analyzer
//                   to raise the expected rule for each (a flaw the
//                   analyzer misses is a failure of the analyzer).
//   --inject CLASS  Analyze one seeded-flaw plan and print its report
//                   (CLASS in: wait-cycle, slot-alias, double-owner,
//                   coverage-gap, boundary-straddle, grouped-double-owner).
//                   Exits nonzero because findings are present -- the
//                   demonstration that the flaw class is detected.
//   --json          Emit reports as JSON instead of text.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/flaws.hpp"
#include "analysis/protocol_model.hpp"
#include "analysis/wait_graph.hpp"
#include "core/decomposition.hpp"
#include "core/grouped.hpp"
#include "core/schedule_plan.hpp"
#include "corpus/sampler.hpp"
#include "epilogue/epilogue.hpp"

namespace {

using streamk::analysis::AnalysisReport;
using streamk::core::DecompositionKind;
using streamk::core::DecompositionSpec;
using streamk::core::GemmShape;

struct Options {
  bool corpus = false;
  std::int64_t corpus_size = 64;
  bool smoke = false;
  bool model_check = false;
  bool selftest = false;
  bool json = false;
  std::string inject;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: streamk_analyze [--corpus [N]] [--smoke] [--model-check]\n"
      "                       [--selftest] [--inject CLASS] [--json]\n");
}

/// The sweep's schedule axis: every decomposition kind, with Stream-K /
/// hybrid grids chosen to force spilling (grids that do not divide the
/// tile count, so tiles are split across CTAs and the fixup protocol is
/// structurally present in the plan).
std::vector<DecompositionSpec> sweep_specs() {
  std::vector<DecompositionSpec> specs;
  DecompositionSpec spec;
  spec.sm_count = 8;

  spec.kind = DecompositionKind::kDataParallel;
  specs.push_back(spec);
  spec.kind = DecompositionKind::kFixedSplit;
  spec.split = 4;
  specs.push_back(spec);
  spec.split = 1;
  for (const std::int64_t grid : {5, 7, 12}) {
    spec.kind = DecompositionKind::kStreamKBasic;
    spec.grid = grid;
    specs.push_back(spec);
  }
  spec.grid = 0;
  spec.kind = DecompositionKind::kHybridOneTile;
  specs.push_back(spec);
  spec.kind = DecompositionKind::kHybridTwoTile;
  specs.push_back(spec);
  return specs;
}

/// Epilogue classes attached to each analyzed plan; chain compilation must
/// validate for every class (EP-CLASS finding otherwise).
std::vector<std::vector<streamk::epilogue::EpilogueOp>> epilogue_classes() {
  using streamk::epilogue::EpilogueOp;
  return {
      {},
      {EpilogueOp::bias_col(), EpilogueOp::relu()},
      {EpilogueOp::clamp(0.0, 6.0)},
      {EpilogueOp::bias_row(), EpilogueOp::gelu(), EpilogueOp::row_sum()},
  };
}

/// Analyzes one plan (plus its epilogue classes) and prints the report when
/// it is dirty.  Returns the error-finding count.
std::int64_t analyze_and_report(const streamk::core::SchedulePlan& plan,
                                const Options& opt, bool print_clean = false) {
  AnalysisReport report = streamk::analysis::analyze_plan(plan);

  for (const auto& ops : epilogue_classes()) {
    streamk::epilogue::EpilogueSpec espec;
    espec.ops = ops;
    try {
      (void)plan.epilogue_plan(espec);
    } catch (const std::exception& e) {
      report.add(streamk::analysis::rules::kEpilogueClass,
                 streamk::analysis::Severity::kError,
                 std::string("epilogue class failed to compile: ") + e.what());
    }
  }

  if (!report.ok() || print_clean) {
    std::printf("%s\n", opt.json ? report.to_json().c_str()
                                 : report.to_text().c_str());
  }
  return report.error_count();
}

int run_corpus(const Options& opt) {
  const std::int64_t count = opt.smoke ? 8 : opt.corpus_size;
  streamk::corpus::SamplerConfig config;
  config.lo = 128;
  config.hi = opt.smoke ? 1024 : 4096;
  const std::vector<GemmShape> shapes = streamk::corpus::sample_shapes(
      static_cast<std::size_t>(count), config);
  const streamk::gpu::BlockShape block{64, 64, 16};

  std::int64_t plans = 0;
  std::int64_t errors = 0;
  for (const GemmShape& shape : shapes) {
    const streamk::core::WorkMapping mapping(shape, block);
    for (const DecompositionSpec& spec : sweep_specs()) {
      const auto decomposition = streamk::core::make_decomposition(spec, mapping);
      const streamk::core::SchedulePlan plan(*decomposition);
      errors += analyze_and_report(plan, opt);
      ++plans;
    }
  }

  // Grouped plans: consecutive corpus shapes bundled into multi-problem
  // groups of 2..4, swept over the kinds that generalize to ragged groups.
  std::size_t i = 0;
  std::size_t group_size = 2;
  while (i + group_size <= shapes.size()) {
    const std::vector<GemmShape> group(shapes.begin() + static_cast<std::ptrdiff_t>(i),
                                       shapes.begin() + static_cast<std::ptrdiff_t>(i + group_size));
    const streamk::core::GroupedMapping grouped(group, block);
    for (DecompositionKind kind :
         {DecompositionKind::kDataParallel, DecompositionKind::kFixedSplit,
          DecompositionKind::kStreamKBasic}) {
      DecompositionSpec spec;
      spec.kind = kind;
      spec.split = 3;
      spec.grid = 7;  // not a divisor of any group's tile count: forces spills
      spec.sm_count = 8;
      const streamk::core::SchedulePlan plan(grouped, spec);
      errors += analyze_and_report(plan, opt);
      ++plans;
    }
    i += group_size;
    group_size = group_size == 4 ? 2 : group_size + 1;
  }

  std::printf("corpus sweep: %lld plans analyzed, %lld error finding(s)\n",
              static_cast<long long>(plans), static_cast<long long>(errors));
  return errors == 0 ? 0 : 1;
}

int run_model_check(const Options& opt) {
  const streamk::analysis::ModelSuite suite =
      streamk::analysis::run_model_suite();
  if (opt.json) {
    std::printf("%s\n", suite.report.to_json().c_str());
  } else {
    for (const auto& result : suite.production) {
      std::printf("production %s: %s (%lld states)\n", result.protocol.c_str(),
                  result.ok ? "verified" : "FAILED",
                  static_cast<long long>(result.states_explored));
      if (!result.ok) std::printf("%s\n", result.to_text().c_str());
    }
    for (const auto& [name, result] : suite.mutants) {
      std::printf("mutant %s: %s\n", name.c_str(),
                  result.ok ? "UNDETECTED (checker failure)" : "rejected");
      if (result.ok) std::printf("%s\n", result.to_text().c_str());
    }
    std::printf("model check: %s (%lld states total)\n",
                suite.ok ? "ok" : "FAILED",
                static_cast<long long>(suite.total_states));
  }
  return suite.ok ? 0 : 1;
}

int run_selftest(const Options& opt) {
  int failures = 0;
  for (const streamk::analysis::PlanFlaw flaw :
       streamk::analysis::all_plan_flaws()) {
    const streamk::core::SchedulePlan plan =
        streamk::analysis::make_flawed_plan(flaw);
    const AnalysisReport report = streamk::analysis::analyze_plan(plan);
    const std::string_view want = streamk::analysis::expected_rule(flaw);
    bool hit = false;
    for (const auto& finding : report.findings) {
      if (finding.rule == want &&
          finding.severity == streamk::analysis::Severity::kError) {
        hit = true;
        break;
      }
    }
    std::printf("flaw %-22s -> %s (%s, %lld finding(s))\n",
                std::string(streamk::analysis::flaw_name(flaw)).c_str(),
                hit ? "detected" : "MISSED",
                std::string(want).c_str(),
                static_cast<long long>(report.findings.size()));
    if (!hit) {
      std::printf("%s\n", opt.json ? report.to_json().c_str()
                                   : report.to_text().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int run_inject(const Options& opt) {
  const auto flaw = streamk::analysis::parse_flaw(opt.inject);
  if (!flaw) {
    std::fprintf(stderr, "unknown flaw class '%s'\n", opt.inject.c_str());
    usage();
    return 2;
  }
  const streamk::core::SchedulePlan plan =
      streamk::analysis::make_flawed_plan(*flaw);
  const std::int64_t errors = analyze_and_report(plan, opt, true);
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--corpus") {
      opt.corpus = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opt.corpus_size = std::atoll(argv[++i]);
      }
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--model-check") {
      opt.model_check = true;
    } else if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--inject" && i + 1 < argc) {
      opt.inject = argv[++i];
    } else {
      usage();
      return 2;
    }
  }
  if (!opt.corpus && !opt.model_check && !opt.selftest && opt.inject.empty()) {
    usage();
    return 2;
  }

  int status = 0;
  try {
    if (opt.corpus) status |= run_corpus(opt);
    if (opt.model_check) status |= run_model_check(opt);
    if (opt.selftest) status |= run_selftest(opt);
    if (!opt.inject.empty()) status |= run_inject(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "streamk_analyze: %s\n", e.what());
    return 2;
  }
  return status;
}
