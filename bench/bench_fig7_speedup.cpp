// Figure 7: Stream-K speedup vs the cuBLAS-like ensemble as a function of
// arithmetic intensity, for FP64 (7a) and FP16->32 (7b).
//
// The paper's observation: below the compute-bound threshold the response
// is noisy (Stream-K adds memory traffic to memory-bound problems); above
// it, Stream-K wins essentially unilaterally.  We print per-bucket speedup
// bands and the min/avg/max split across the threshold.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/roofline.hpp"
#include "bencher/table.hpp"
#include "util/csv.hpp"

namespace {

using namespace streamk;

void run_panel(const char* title, gpu::Precision precision, std::size_t n,
               util::CsvWriter* csv) {
  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  const auto suite =
      ensemble::EvaluationSuite::make(gpu::GpuSpec::a100_locked(), precision);
  const bencher::CorpusEvaluation eval = bencher::evaluate_corpus(
      corpus, suite, [](std::size_t done, std::size_t total) {
        std::cerr << "\r  evaluated " << done << "/" << total << std::flush;
      });
  std::cerr << "\n";

  std::vector<double> speedups(eval.intensity.size());
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    speedups[i] = eval.cublas_like_seconds[i] / eval.stream_k_seconds[i];
  }

  std::cout << "\n" << title << "\n";
  const auto bands = bencher::banded_summary(eval.intensity, speedups, 10);
  bencher::TextTable table(
      {"ops/byte", "n", "min", "median", "max"});
  for (const auto& band : bands) {
    table.row({bencher::fmt_num(band.intensity_lo, 0) + "-" +
                   bencher::fmt_num(band.intensity_hi, 0),
               std::to_string(band.utilization.count),
               bencher::fmt_ratio(band.utilization.min),
               bencher::fmt_ratio(band.utilization.median),
               bencher::fmt_ratio(band.utilization.max)});
    if (csv) {
      csv->row({title, util::CsvWriter::cell(band.intensity_lo),
                util::CsvWriter::cell(band.intensity_hi),
                util::CsvWriter::cell(band.utilization.count),
                util::CsvWriter::cell(band.utilization.min),
                util::CsvWriter::cell(band.utilization.median),
                util::CsvWriter::cell(band.utilization.max)});
    }
  }
  std::cout << table.render();

  const double threshold = corpus::compute_bound_threshold(precision);
  const util::Summary compute_bound = bencher::speedup_summary_filtered(
      eval.cublas_like_seconds, eval.stream_k_seconds, eval.intensity,
      threshold);
  std::cout << "compute-bound (> " << bencher::fmt_num(threshold, 0)
            << " ops/B, " << compute_bound.count
            << " problems): min " << bencher::fmt_ratio(compute_bound.min)
            << ", avg " << bencher::fmt_ratio(compute_bound.mean)
            << ", geomean " << bench::format_metric(compute_bound.geomean)
            << ", max " << bencher::fmt_ratio(compute_bound.max)
            << (compute_bound.min >= 0.98
                    ? "  (virtually no slowdowns, as in the paper)"
                    : "")
            << "\n";
  const std::string panel(title);
  bench::report_case(panel.substr(0, panel.find(':')) + " geomean speedup",
                     "speedup", true, compute_bound.geomean,
                     /*deterministic=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 7: Stream-K speedup vs the cuBLAS-like "
                      "ensemble across arithmetic intensity",
                      "Figure 7a (FP64) and 7b (FP16->32)");
  auto csv = bench::maybe_csv(
      opts, {"panel", "intensity_lo", "intensity_hi", "count", "min_speedup",
             "median_speedup", "max_speedup"});
  const std::size_t n = bench::corpus_size(opts);
  run_panel("Figure 7a: FP64 speedup vs cuBLAS-like",
            gpu::Precision::kFp64, n, csv.get());
  run_panel("Figure 7b: FP16->32 speedup vs cuBLAS-like",
            gpu::Precision::kFp16F32, n, csv.get());
  return 0;
}
