#pragma once

// Shared helpers for the paper-reproduction bench binaries, including the
// unified CLI every bench_* binary accepts:
//
//   --smoke        shrink problem sizes / repetitions so the bench finishes
//                  in CI-friendly time while still driving the full path
//   --csv <path>   additionally write the bench's headline series as CSV
//                  (uploaded as artifacts by the CI bench-smoke job)
//   --trace <path> arm the obs trace layer for the whole run and write a
//                  Chrome trace-event JSON (Perfetto-loadable) at exit --
//                  handled entirely here, so every bench binary has it
//
// Unknown arguments are rejected with a usage message so typos fail loudly
// (bench_cpu_gemm, the google-benchmark binary, forwards unknowns to the
// benchmark library instead).

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "corpus/corpus.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace streamk::bench {

struct BenchOptions {
  bool smoke = false;
  std::string csv_path;    ///< empty = no CSV requested
  std::string trace_path;  ///< empty = no trace requested
};

namespace detail {

/// atexit target for --trace (a plain function pointer, so the path lives
/// in an immortal holder rather than a capture).
inline std::string& trace_path_holder() {
  static std::string* path = new std::string();
  return *path;
}

inline void flush_trace_at_exit() {
  try {
    obs::write_chrome_trace(trace_path_holder());
  } catch (const std::exception& e) {
    util::log_warn(std::string("--trace not written: ") + e.what());
  }
}

}  // namespace detail

/// Parses the unified bench CLI.  `allow_unknown` lets wrapper binaries
/// (google-benchmark) pass their own flags through.  A --trace request is
/// honored right here -- arm now, flush at exit -- so individual benches
/// need no trace code at all.
inline BenchOptions parse_bench_args(int argc, char** argv,
                                     bool allow_unknown = false) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (!allow_unknown) {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--csv <path>] [--trace <path>]\n";
      std::exit(2);
    }
  }
  if (!options.trace_path.empty()) {
    detail::trace_path_holder() = options.trace_path;
    obs::arm_trace();
    std::atexit(&detail::flush_trace_at_exit);
  }
  return options;
}

/// CSV sink honoring --csv: returns a writer when a path was requested,
/// nullptr otherwise (callers guard rows with `if (csv)`).
inline std::unique_ptr<util::CsvWriter> maybe_csv(
    const BenchOptions& options, const std::vector<std::string>& header) {
  if (options.csv_path.empty()) return nullptr;
  return std::make_unique<util::CsvWriter>(options.csv_path, header);
}

/// Renders a summary metric for terminal reports: NaN (e.g. the geometric
/// mean of a sample containing non-positive values) prints as "n/a" rather
/// than masquerading as a measurement.
inline std::string format_metric(double v) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Corpus size for the sweep benches.  Defaults to the paper's full 32,824
/// problems; set STREAMK_CORPUS_SIZE to a smaller value for quick runs.
inline std::size_t corpus_size_from_env() {
  if (const char* env = std::getenv("STREAMK_CORPUS_SIZE")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return corpus::kPaperCorpusSize;
}

/// Corpus size honoring both --smoke and the environment override (the
/// explicit env var wins so CI can pin exact sizes).
inline std::size_t corpus_size(const BenchOptions& options) {
  if (std::getenv("STREAMK_CORPUS_SIZE")) return corpus_size_from_env();
  return options.smoke ? 24 : corpus::kPaperCorpusSize;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "==============================================================="
               "=================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==============================================================="
               "=================\n";
}

}  // namespace streamk::bench
