#pragma once

// Shared helpers for the paper-reproduction bench binaries.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "corpus/corpus.hpp"

namespace streamk::bench {

/// Renders a summary metric for terminal reports: NaN (e.g. the geometric
/// mean of a sample containing non-positive values) prints as "n/a" rather
/// than masquerading as a measurement.
inline std::string format_metric(double v) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Corpus size for the sweep benches.  Defaults to the paper's full 32,824
/// problems; set STREAMK_CORPUS_SIZE to a smaller value for quick runs.
inline std::size_t corpus_size_from_env() {
  if (const char* env = std::getenv("STREAMK_CORPUS_SIZE")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return corpus::kPaperCorpusSize;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "==============================================================="
               "=================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==============================================================="
               "=================\n";
}

}  // namespace streamk::bench
