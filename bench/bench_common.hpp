#pragma once

// Shared helpers for the paper-reproduction bench binaries, including the
// unified CLI every bench_* binary accepts:
//
//   --smoke        shrink problem sizes / repetitions so the bench finishes
//                  in CI-friendly time while still driving the full path
//   --csv <path>   additionally write the bench's headline series as CSV
//                  (uploaded as artifacts by the CI bench-smoke job)
//   --trace <path> arm the obs trace layer for the whole run and write a
//                  Chrome trace-event JSON (Perfetto-loadable) at exit --
//                  handled entirely here, so every bench binary has it
//   --bench-json <path>
//                  write the structured regression artifact BENCH_<name>.json
//                  (git sha, machine fingerprint, best-of-reps + bootstrap
//                  confidence interval per case) -- the input of
//                  scripts/bench_compare.py.  STREAMK_BENCH_JSON=<path> in
//                  the environment does the same without touching argv;
//                  either may name a directory (the file name is derived
//                  from the binary) or a .json file path.
//
// Unknown arguments are rejected with a usage message so typos fail loudly
// (bench_cpu_gemm, the google-benchmark binary, forwards unknowns to the
// benchmark library instead).
//
// Benches publish their headline numbers through report_case() /
// report_samples(); recording is unconditional and cheap (a vector push),
// emission happens only when a JSON destination was requested.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "corpus/corpus.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace streamk::bench {

struct BenchOptions {
  bool smoke = false;
  std::string csv_path;    ///< empty = no CSV requested
  std::string trace_path;  ///< empty = no trace requested
  std::string json_path;   ///< empty = no BENCH_*.json requested
};

/// One published bench result: `samples` holds the per-rep measurements
/// (one entry when the bench reports a single value).  `deterministic`
/// marks model/simulation outputs that are bit-reproducible on one binary:
/// bench_compare.py gates those exactly and measured ones statistically.
struct BenchCase {
  std::string name;
  std::string metric;  ///< "seconds", "gflops", "gemms_per_sec", ...
  bool higher_is_better = false;
  bool deterministic = false;
  std::vector<double> samples;
};

namespace detail {

/// atexit target for --trace (a plain function pointer, so the path lives
/// in an immortal holder rather than a capture).
inline std::string& trace_path_holder() {
  static std::string* path = new std::string();
  return *path;
}

inline void flush_trace_at_exit() {
  try {
    obs::write_chrome_trace(trace_path_holder());
  } catch (const std::exception& e) {
    util::log_warn(std::string("--trace not written: ") + e.what());
  }
}

struct JsonReportState {
  std::string bench_name = "bench";
  std::string out_path;  ///< empty = recording only, no emission
  bool smoke = false;
  std::vector<BenchCase> cases;
};

inline JsonReportState& json_report() {
  static JsonReportState* state = new JsonReportState();
  return *state;
}

/// Best value of a sample set under the case's direction.
inline double best_of(const BenchCase& c) {
  if (c.samples.empty()) return 0.0;
  return c.higher_is_better
             ? *std::max_element(c.samples.begin(), c.samples.end())
             : *std::min_element(c.samples.begin(), c.samples.end());
}

/// 95% bootstrap confidence interval of the median (fixed-seed PCG32
/// resampling, 200 resamples) -- wide for noisy samples, degenerate for a
/// single one, which is exactly the behaviour the statistical gate wants.
inline std::pair<double, double> bootstrap_ci(std::vector<double> samples) {
  if (samples.empty()) return {0.0, 0.0};
  if (samples.size() == 1) return {samples[0], samples[0]};
  constexpr int kResamples = 200;
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  util::Pcg32 rng(0x5742454e43484dULL);  // fixed: artifacts are reproducible
  std::vector<double> medians;
  medians.reserve(kResamples);
  std::vector<double> resample(samples.size());
  for (int b = 0; b < kResamples; ++b) {
    for (double& value : resample) {
      value = samples[rng.uniform_below(
          static_cast<std::uint32_t>(samples.size()))];
    }
    medians.push_back(median(resample));
  }
  std::sort(medians.begin(), medians.end());
  const auto lo_idx = static_cast<std::size_t>(0.025 * (kResamples - 1));
  const auto hi_idx = static_cast<std::size_t>(0.975 * (kResamples - 1));
  return {medians[lo_idx], medians[hi_idx]};
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

inline std::string machine_isa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__) && defined(__FMA__)
  return "avx2+fma";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__aarch64__)
  return "neon";
#else
  return "portable";
#endif
}

inline std::string machine_host() {
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    return host;
  }
#endif
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

inline void flush_json_at_exit() {
  const JsonReportState& state = json_report();
  if (state.out_path.empty()) return;

  namespace fs = std::filesystem;
  fs::path out(state.out_path);
  // A directory destination (or a trailing slash) derives the file name
  // from the binary: <dir>/BENCH_<bench>.json.
  std::error_code ec;
  if (fs::is_directory(out, ec) || state.out_path.back() == '/') {
    fs::create_directories(out, ec);
    out /= "BENCH_" + state.bench_name + ".json";
  }

  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("STREAMK_GIT_SHA");

  std::ostringstream os;
  os << "{\"schema\":\"streamk-bench/1\""
     << ",\"bench\":\"" << json_escape(state.bench_name) << "\""
     << ",\"git_sha\":\"" << json_escape(sha != nullptr ? sha : "unknown")
     << "\"" << ",\"smoke\":" << (state.smoke ? "true" : "false")
     << ",\"machine\":{\"host\":\"" << json_escape(machine_host())
     << "\",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
     << ",\"isa\":\"" << machine_isa() << "\"},\"cases\":[";
  bool first = true;
  for (const BenchCase& c : state.cases) {
    const auto [ci_lo, ci_hi] = bootstrap_ci(c.samples);
    os << (first ? "" : ",") << "{\"name\":\"" << json_escape(c.name)
       << "\",\"metric\":\"" << json_escape(c.metric)
       << "\",\"higher_is_better\":" << (c.higher_is_better ? "true" : "false")
       << ",\"deterministic\":" << (c.deterministic ? "true" : "false")
       << ",\"reps\":" << c.samples.size() << ",\"best\":" << best_of(c)
       << ",\"ci_lo\":" << ci_lo << ",\"ci_hi\":" << ci_hi << ",\"samples\":[";
    for (std::size_t i = 0; i < c.samples.size(); ++i) {
      os << (i == 0 ? "" : ",") << c.samples[i];
    }
    os << "]}";
    first = false;
  }
  os << "]}";

  std::ofstream file(out);
  if (!file.good()) {
    util::log_warn("BENCH json not written: cannot open " + out.string());
    return;
  }
  file << os.str() << "\n";
  file.close();
  if (!file.good()) {
    util::log_warn("BENCH json not written: write failed for " +
                   out.string());
  }
}

}  // namespace detail

/// Publishes one case's per-rep samples into the BENCH_*.json artifact.
/// Recording is unconditional; the file is only written when --bench-json
/// or STREAMK_BENCH_JSON requested it.  `deterministic` marks values that
/// are bit-reproducible per binary (model/simulation outputs), which the
/// regression gate compares exactly instead of statistically.
inline void report_samples(std::string name, std::string metric,
                           bool higher_is_better, std::vector<double> samples,
                           bool deterministic = false) {
  BenchCase c;
  c.name = std::move(name);
  c.metric = std::move(metric);
  c.higher_is_better = higher_is_better;
  c.deterministic = deterministic;
  c.samples = std::move(samples);
  detail::json_report().cases.push_back(std::move(c));
}

/// report_samples for a single headline value.
inline void report_case(std::string name, std::string metric,
                        bool higher_is_better, double value,
                        bool deterministic = false) {
  report_samples(std::move(name), std::move(metric), higher_is_better,
                 {value}, deterministic);
}

/// Parses the unified bench CLI.  `allow_unknown` lets wrapper binaries
/// (google-benchmark) pass their own flags through.  A --trace request is
/// honored right here -- arm now, flush at exit -- so individual benches
/// need no trace code at all.
inline BenchOptions parse_bench_args(int argc, char** argv,
                                     bool allow_unknown = false) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (arg == "--bench-json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (!allow_unknown) {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--csv <path>] [--trace <path>]"
                   " [--bench-json <path>]\n";
      std::exit(2);
    }
  }
  if (options.json_path.empty()) {
    if (const char* env = std::getenv("STREAMK_BENCH_JSON")) {
      if (*env != '\0') options.json_path = env;
    }
  }
  if (!options.trace_path.empty()) {
    detail::trace_path_holder() = options.trace_path;
    obs::arm_trace();
    std::atexit(&detail::flush_trace_at_exit);
  }
  {
    detail::JsonReportState& state = detail::json_report();
    state.bench_name =
        std::filesystem::path(argc > 0 ? argv[0] : "bench").stem().string();
    state.smoke = options.smoke;
    if (!options.json_path.empty()) {
      state.out_path = options.json_path;
      std::atexit(&detail::flush_json_at_exit);
    }
  }
  return options;
}

/// CSV sink honoring --csv: returns a writer when a path was requested,
/// nullptr otherwise (callers guard rows with `if (csv)`).
inline std::unique_ptr<util::CsvWriter> maybe_csv(
    const BenchOptions& options, const std::vector<std::string>& header) {
  if (options.csv_path.empty()) return nullptr;
  return std::make_unique<util::CsvWriter>(options.csv_path, header);
}

/// Renders a summary metric for terminal reports: NaN (e.g. the geometric
/// mean of a sample containing non-positive values) prints as "n/a" rather
/// than masquerading as a measurement.
inline std::string format_metric(double v) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Corpus size for the sweep benches.  Defaults to the paper's full 32,824
/// problems; set STREAMK_CORPUS_SIZE to a smaller value for quick runs.
inline std::size_t corpus_size_from_env() {
  if (const char* env = std::getenv("STREAMK_CORPUS_SIZE")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return corpus::kPaperCorpusSize;
}

/// Corpus size honoring both --smoke and the environment override (the
/// explicit env var wins so CI can pin exact sizes).
inline std::size_t corpus_size(const BenchOptions& options) {
  if (std::getenv("STREAMK_CORPUS_SIZE")) return corpus_size_from_env();
  return options.smoke ? 24 : corpus::kPaperCorpusSize;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "==============================================================="
               "=================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==============================================================="
               "=================\n";
}

}  // namespace streamk::bench
