// google-benchmark microbenchmarks of the *real* CPU execution path: the
// decomposed GEMM running on worker threads, plus the per-architecture
// cost-constant calibration workflow (Section 5.1's offline step performed
// live against this host).

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/data_parallel.hpp"
#include "core/fixed_split.hpp"
#include "core/hybrid.hpp"
#include "core/stream_k.hpp"
#include "cpu/executor.hpp"
#include "cpu/gemm.hpp"
#include "cpu/reference.hpp"
#include "cpu/timing_harness.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

constexpr std::int64_t kM = 256, kN = 256, kK = 256;
const gpu::BlockShape kBlock{64, 64, 32};

struct Fixture {
  cpu::Matrix<double> a{kM, kK};
  cpu::Matrix<double> b{kK, kN};
  cpu::Matrix<double> c{kM, kN};
  core::WorkMapping mapping{{kM, kN, kK}, kBlock};

  Fixture() {
    util::Pcg32 rng(1);
    cpu::fill_random(a, rng);
    cpu::fill_random(b, rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void report_flops(benchmark::State& state) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * kM * kN * kK * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_Reference(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    cpu::reference_gemm<double, double, double>(f.a, f.b, f.c, kBlock);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_Reference)->Unit(benchmark::kMillisecond);

void BM_DataParallel(benchmark::State& state) {
  Fixture& f = fixture();
  const core::DataParallel dp(f.mapping);
  const cpu::ExecutorOptions options{
      .workers = static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    cpu::execute_decomposition<double, double, double>(dp, f.a, f.b, f.c,
                                                       options);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_DataParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_FixedSplit(benchmark::State& state) {
  Fixture& f = fixture();
  const core::FixedSplit fs(f.mapping, state.range(0));
  const cpu::ExecutorOptions options{.workers = 2};
  for (auto _ : state) {
    cpu::execute_decomposition<double, double, double>(fs, f.a, f.b, f.c,
                                                       options);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_FixedSplit)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_StreamK(benchmark::State& state) {
  Fixture& f = fixture();
  const core::StreamKBasic sk(f.mapping, state.range(0));
  const cpu::ExecutorOptions options{
      .workers = std::min<std::size_t>(4, util::hardware_threads())};
  for (auto _ : state) {
    cpu::execute_decomposition<double, double, double>(sk, f.a, f.b, f.c,
                                                       options);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_StreamK)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_HybridTwoTile(benchmark::State& state) {
  Fixture& f = fixture();
  const core::Hybrid hybrid(f.mapping,
                            core::DecompositionKind::kHybridTwoTile, 4);
  const cpu::ExecutorOptions options{.workers = 2};
  for (auto _ : state) {
    cpu::execute_decomposition<double, double, double>(hybrid, f.a, f.b, f.c,
                                                       options);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_HybridTwoTile)->Unit(benchmark::kMillisecond);

void BM_AutoPlanned(benchmark::State& state) {
  Fixture& f = fixture();
  cpu::GemmOptions options;
  options.block = kBlock;
  options.workers = 2;
  for (auto _ : state) {
    cpu::gemm(f.a, f.b, f.c, options);
    benchmark::DoNotOptimize(f.c.data().data());
  }
  report_flops(state);
}
BENCHMARK(BM_AutoPlanned)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The unified bench CLI (--smoke, --csv <path>) is translated into
  // google-benchmark flags; everything else passes through to the library.
  const bench::BenchOptions opts =
      bench::parse_bench_args(argc, argv, /*allow_unknown=*/true);
  std::vector<std::string> args_storage;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") continue;
    if (arg == "--csv") {
      ++i;  // skip the path operand too
      continue;
    }
    args_storage.push_back(arg);
  }
  // Bare-seconds form: benchmark 1.7 only parses a double; 1.8+ accepts it
  // too (with a suffix-deprecation note).
  if (opts.smoke) args_storage.push_back("--benchmark_min_time=0.01");
  if (!opts.csv_path.empty()) {
    args_storage.push_back("--benchmark_out=" + opts.csv_path);
    args_storage.push_back("--benchmark_out_format=csv");
  }
  std::vector<char*> args;
  args.reserve(args_storage.size());
  for (std::string& arg : args_storage) args.push_back(arg.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Section 5.1's offline calibration, performed against this host CPU.
  std::cout << "\n=== cost-constant calibration on this host (FP64, "
            << kBlock.to_string() << ") ===\n";
  cpu::CalibrationOptions options;
  options.repetitions = opts.smoke ? 1 : 3;
  options.workers = std::min<std::size_t>(4, util::hardware_threads());
  const cpu::CalibrationResult result =
      cpu::calibrate_cpu({kM, kN, kK}, kBlock, options);
  std::cout << "samples (grid -> seconds):\n";
  for (const auto& s : result.samples) {
    std::cout << "  g=" << s.grid << " -> " << s.seconds << "\n";
  }
  std::cout << "fitted Appendix A.1 constants: a=" << result.params.a
            << " b=" << result.params.b << " c=" << result.params.c
            << " d=" << result.params.d << " (seconds)\n";
  return 0;
}
