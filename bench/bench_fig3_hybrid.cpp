// Figure 3: basic Stream-K vs the hybrid schedules for an 896x384x128 GEMM
// (21 output tiles) on the hypothetical four-SM GPU.
//
//   3a: basic Stream-K, g = 4          -- every CTA skewed in k
//   3b: "DP + one-tile SK"             -- 5 full DP waves + sub-tile SK
//   3c: "two-tile SK + DP"             -- SK region first ([1,2) tiles per
//                                         CTA), then 4 aligned DP waves
//
// The report includes the skew-relevant statistics: spill count, wait time,
// and the share of tiles produced in temporally aligned waves.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "core/hybrid.hpp"
#include "core/stream_k.hpp"
#include "sim/schedule_render.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"

namespace {

using namespace streamk;

void show(const std::string& title, const core::Decomposition& decomposition,
          const model::CostModel& model, const gpu::GpuSpec& gpu,
          util::CsvWriter* csv) {
  sim::SimOptions options;
  options.record_trace = true;
  options.occupancy_override = 1;
  const sim::SimResult r = sim::simulate(decomposition, model, gpu, options);
  if (csv) {
    csv->row({title, util::CsvWriter::cell(r.makespan),
              util::CsvWriter::cell(r.occupancy_efficiency),
              util::CsvWriter::cell(r.spills),
              util::CsvWriter::cell(r.wait_time)});
  }
  std::cout << "\n--- " << title << " ---\n"
            << "makespan " << bencher::fmt_seconds(r.makespan)
            << ", efficiency " << bencher::fmt_pct(r.occupancy_efficiency)
            << ", spills " << r.spills << ", wait "
            << bencher::fmt_seconds(r.wait_time) << "\n"
            << sim::render_schedule(r.timeline,
                                    {.width = 96, .show_legend = false});
  bench::report_case(title.substr(0, title.find(':')) + " makespan",
                     "seconds", false, r.makespan, /*deterministic=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  auto csv = bench::maybe_csv(opts, {"figure", "makespan_seconds",
                                     "efficiency", "spills", "wait_seconds"});
  bench::print_header(
      "Figure 3: basic Stream-K vs hybrid schedules, 896x384x128 on a 4-SM "
      "GPU",
      "Figure 3a/3b/3c (Section 5.2)");

  const gpu::GpuSpec tiny = gpu::GpuSpec::hypothetical4();
  const gpu::BlockShape block{128, 128, 4};
  const core::WorkMapping mapping({896, 384, 128}, block);
  std::cout << "tiles: " << mapping.tiles() << " ("
            << mapping.tiles() / tiny.sm_count << " full waves + "
            << mapping.tiles() % tiny.sm_count << " remainder)\n";

  // Small-but-nonzero fixup costs make waits and spills visible in the
  // schedule without dwarfing the MAC work.
  const model::CostModel model(
      model::CostParams{0.5e-6, 1e-6, 1e-6, 1e-6}, block,
      gpu::Precision::kFp16F32);

  const core::StreamKBasic basic(mapping, 4);
  show("Figure 3a: basic Stream-K (g=4)", basic, model, tiny, csv.get());

  const core::Hybrid one(mapping, core::DecompositionKind::kHybridOneTile, 4);
  show("Figure 3b: data-parallel + one-tile Stream-K", one, model, tiny,
       csv.get());

  const core::Hybrid two(mapping, core::DecompositionKind::kHybridTwoTile, 4);
  show("Figure 3c: two-tile Stream-K + data-parallel", two, model, tiny,
       csv.get());

  std::cout << "\nNote how 3c confines k-skew to the leading Stream-K region "
               "and aligns the remaining waves,\nwhile every CTA of 3a stays "
               "skewed for the whole GEMM (Section 5.2).\n";
  return 0;
}
