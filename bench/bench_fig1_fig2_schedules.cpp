// Figures 1 and 2: execution schedules for a 384x384x128 GEMM on the
// hypothetical four-SM GPU.
//
//   1a: data-parallel, 128x128 tiles, g = 9  -> 75% utilization ceiling
//   1b: data-parallel, 128x64 tiles,  g = 18 -> 90% ceiling
//   2a: fixed-split s = 2,            g = 18 -> 90% quantization efficiency
//   2b: basic Stream-K,               g = 4  -> ~100% quantization efficiency
//
// Each schedule is rendered as a per-SM Gantt chart with its measured
// occupancy efficiency.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "core/data_parallel.hpp"
#include "core/fixed_split.hpp"
#include "core/stream_k.hpp"
#include "sim/schedule_render.hpp"
#include "sim/sim_gemm.hpp"
#include "util/csv.hpp"

namespace {

using namespace streamk;

void show(const std::string& title, const core::Decomposition& decomposition,
          const model::CostModel& model, const gpu::GpuSpec& gpu,
          double paper_ceiling, util::CsvWriter* csv) {
  sim::SimOptions options;
  options.record_trace = true;
  options.occupancy_override = 1;  // the figures assume one CTA per SM
  sim::SimResult traced = sim::simulate(decomposition, model, gpu, options);

  std::cout << "\n--- " << title << " ---\n"
            << "grid " << traced.grid << " CTAs, makespan "
            << bencher::fmt_seconds(traced.makespan) << ", efficiency "
            << bencher::fmt_pct(traced.occupancy_efficiency)
            << "  (paper ceiling: " << bencher::fmt_pct(paper_ceiling)
            << ")\n"
            << sim::render_schedule(traced.timeline, {.width = 96,
                                                      .show_legend = false});
  if (csv) {
    csv->row({title, util::CsvWriter::cell(traced.grid),
              util::CsvWriter::cell(traced.makespan),
              util::CsvWriter::cell(traced.occupancy_efficiency),
              util::CsvWriter::cell(paper_ceiling)});
  }
  // The figure label up to the colon is the stable regression-case name.
  bench::report_case(title.substr(0, title.find(':')) + " efficiency",
                     "efficiency", true, traced.occupancy_efficiency,
                     /*deterministic=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  auto csv = bench::maybe_csv(opts, {"figure", "grid", "makespan_seconds",
                                     "efficiency", "paper_ceiling"});
  bench::print_header(
      "Figures 1-2: data-parallel vs tile-splitting schedules, 384x384x128 "
      "on a 4-SM GPU",
      "Figure 1a/1b (data-parallel), Figure 2a (fixed-split), Figure 2b "
      "(basic Stream-K)");

  const gpu::GpuSpec tiny = gpu::GpuSpec::hypothetical4();
  const core::GemmShape shape{384, 384, 128};

  // Pure compute cost model (unit iteration cost): the figures illustrate
  // schedule structure, not absolute time.
  const auto pure = [](gpu::BlockShape block) {
    return model::CostModel(model::CostParams{0.0, 0.0, 1e-6, 0.0}, block,
                            gpu::Precision::kFp16F32);
  };

  {
    const gpu::BlockShape block{128, 128, 4};
    const core::WorkMapping mapping(shape, block);
    const core::DataParallel dp(mapping);
    show("Figure 1a: data-parallel, 128x128 tiles, g=9", dp, pure(block),
         tiny, 0.75, csv.get());
  }
  {
    const gpu::BlockShape block{128, 64, 4};
    const core::WorkMapping mapping(shape, block);
    const core::DataParallel dp(mapping);
    show("Figure 1b: data-parallel, 128x64 tiles, g=18", dp, pure(block),
         tiny, 0.90, csv.get());
  }
  {
    const gpu::BlockShape block{128, 128, 4};
    const core::WorkMapping mapping(shape, block);
    const core::FixedSplit fs(mapping, 2);
    show("Figure 2a: fixed-split s=2, g=18", fs, pure(block), tiny, 0.90,
         csv.get());
  }
  {
    const gpu::BlockShape block{128, 128, 4};
    const core::WorkMapping mapping(shape, block);
    const core::StreamKBasic sk(mapping, 4);
    show("Figure 2b: basic Stream-K, g=4 (72 MAC iterations per CTA)", sk,
         pure(block), tiny, 1.00, csv.get());
  }
  return 0;
}
