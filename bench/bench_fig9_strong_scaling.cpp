// Figure 9: strong-scaling comparison of data-parallel and Stream-K for a
// 128x128x384 GEMM (one output tile, deep k) on the hypothetical four-SM
// GPU.  Data-parallel serializes the whole k extent in a single CTA while
// three SMs idle; Stream-K splits the iteration stream across all four.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "core/data_parallel.hpp"
#include "core/stream_k.hpp"
#include "sim/schedule_render.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  auto csv = bench::maybe_csv(
      opts, {"schedule", "makespan_seconds", "speedup", "efficiency"});
  bench::print_header(
      "Figure 9: strong scaling, 128x128x384 (one output tile) on a 4-SM GPU",
      "Figure 9 (Appendix A.1)");

  const gpu::GpuSpec tiny = gpu::GpuSpec::hypothetical4();
  const gpu::BlockShape block{128, 128, 4};
  const core::WorkMapping mapping({128, 128, 384}, block);
  std::cout << "tiles: " << mapping.tiles()
            << ", MAC-loop iterations: " << mapping.total_iters() << "\n";

  const model::CostModel model(
      model::CostParams{0.5e-6, 1e-6, 1e-6, 1e-6}, block,
      gpu::Precision::kFp16F32);

  sim::SimOptions options;
  options.record_trace = true;
  options.occupancy_override = 1;

  const core::DataParallel dp(mapping);
  const sim::SimResult dp_result = sim::simulate(dp, model, tiny, options);
  std::cout << "\n--- data-parallel (g=1: the single tile owns all of k) ---\n"
            << sim::render_schedule(dp_result.timeline,
                                    {.width = 96, .show_legend = false});

  const core::StreamKBasic sk(mapping, 4);
  const sim::SimResult sk_result = sim::simulate(sk, model, tiny, options);
  std::cout << "\n--- Stream-K (g=4: k-parallelism across all SMs) ---\n"
            << sim::render_schedule(sk_result.timeline,
                                    {.width = 96, .show_legend = false});

  bencher::TextTable table({"schedule", "makespan", "speedup",
                            "occupancy efficiency"});
  table.row({"data-parallel", bencher::fmt_seconds(dp_result.makespan),
             "1.00x", bencher::fmt_pct(dp_result.occupancy_efficiency)});
  table.row({"stream-k g=4", bencher::fmt_seconds(sk_result.makespan),
             bencher::fmt_ratio(dp_result.makespan / sk_result.makespan),
             bencher::fmt_pct(sk_result.occupancy_efficiency)});
  std::cout << "\n" << table.render();
  if (csv) {
    csv->row({"data-parallel", util::CsvWriter::cell(dp_result.makespan),
              util::CsvWriter::cell(1.0),
              util::CsvWriter::cell(dp_result.occupancy_efficiency)});
    csv->row({"stream-k g=4", util::CsvWriter::cell(sk_result.makespan),
              util::CsvWriter::cell(dp_result.makespan / sk_result.makespan),
              util::CsvWriter::cell(sk_result.occupancy_efficiency)});
  }
  bench::report_case("streamk_vs_dp_speedup", "speedup", true,
                     dp_result.makespan / sk_result.makespan,
                     /*deterministic=*/true);
  return 0;
}
