// Grouped ragged-batch GEMM: one Stream-K schedule vs. a per-problem loop.
//
// The skewed group is the motivating workload: one large problem plus many
// small ones.  Submitted problem-by-problem, every small GEMM launches its
// own schedule (its tiles cannot fill the machine) and the large GEMM ends
// on a quantized tail wave; scheduled as ONE concatenated iteration domain
// (core/grouped.hpp), Stream-K spreads the large problem's iterations
// across all CTAs and the small problems fill the gaps.  This bench times
// both paths round-for-round over identical integer operands, checks the
// outputs stay bitwise identical, and reports GEMMs/sec, the tail (worst
// round) latency, and the geomean speedup across cases.
//
//   ./bench_grouped_gemm [--smoke] [--csv <path>]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "cpu/gemm.hpp"
#include "cpu/grouped.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct GroupCase {
  const char* label;
  gpu::Precision precision;
  std::vector<core::GemmShape> shapes;
};

/// One large problem plus `count` small ones.
std::vector<core::GemmShape> skewed_group(std::int64_t large,
                                          std::int64_t small,
                                          std::size_t count) {
  std::vector<core::GemmShape> shapes{{large, large, large}};
  shapes.insert(shapes.end(), count, {small, small, small});
  return shapes;
}

/// `count` copies of one tiny cube: the submission-overhead regime, where
/// the per-problem loop pays dispatch + pool round-trip + arena bind per
/// problem and the grouped schedule pays them once.
std::vector<core::GemmShape> tiny_group(std::int64_t extent,
                                        std::size_t count) {
  return std::vector<core::GemmShape>(count, {extent, extent, extent});
}

struct Measurement {
  double grouped_best = 0.0;   ///< best round, seconds
  double grouped_tail = 0.0;   ///< worst round, seconds
  double loop_best = 0.0;
  double loop_tail = 0.0;
  bool bitwise_identical = false;
};

template <typename In, typename Acc, typename Out>
Measurement measure(const std::vector<core::GemmShape>& shapes, int rounds) {
  std::vector<cpu::Matrix<In>> as, bs;
  std::vector<cpu::Matrix<Out>> grouped_c, loop_c;
  util::Pcg32 rng(0x70e4db);
  for (const core::GemmShape& s : shapes) {
    as.emplace_back(s.m, s.k);
    bs.emplace_back(s.k, s.n);
    cpu::fill_random_int(as.back(), rng, -2, 2);
    cpu::fill_random_int(bs.back(), rng, -2, 2);
    grouped_c.emplace_back(s.m, s.n);
    loop_c.emplace_back(s.m, s.n);
  }

  const cpu::GemmOptions options;  // kAuto on both sides, same workers
  const auto wall = [] { return std::chrono::steady_clock::now(); };
  const auto run_grouped = [&] {
    const auto start = wall();
    cpu::grouped_gemm<In, Acc, Out>(as, bs, grouped_c, options);
    return std::chrono::duration<double>(wall() - start).count();
  };
  const auto run_loop = [&] {
    const auto start = wall();
    for (std::size_t p = 0; p < shapes.size(); ++p) {
      cpu::gemm(as[p], bs[p], loop_c[p], options);
    }
    return std::chrono::duration<double>(wall() - start).count();
  };

  run_grouped();  // warm plan caches, pools, and scratch before timing
  run_loop();

  Measurement m;
  m.grouped_best = std::numeric_limits<double>::infinity();
  m.loop_best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const double g = run_grouped();
    const double l = run_loop();
    m.grouped_best = std::min(m.grouped_best, g);
    m.grouped_tail = std::max(m.grouped_tail, g);
    m.loop_best = std::min(m.loop_best, l);
    m.loop_tail = std::max(m.loop_tail, l);
  }

  m.bitwise_identical = true;
  for (std::size_t p = 0; p < shapes.size(); ++p) {
    for (std::int64_t i = 0; i < grouped_c[p].rows() && m.bitwise_identical;
         ++i) {
      if (std::memcmp(grouped_c[p].row_ptr(i), loop_c[p].row_ptr(i),
                      static_cast<std::size_t>(grouped_c[p].cols()) *
                          sizeof(Out)) != 0) {
        m.bitwise_identical = false;
      }
    }
  }
  return m;
}

Measurement measure_case(const GroupCase& c, int rounds) {
  switch (c.precision) {
    case gpu::Precision::kFp64:
      return measure<double, double, double>(c.shapes, rounds);
    case gpu::Precision::kFp32:
      return measure<float, float, float>(c.shapes, rounds);
    case gpu::Precision::kFp16F32:
      return measure<util::Half, float, float>(c.shapes, rounds);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Grouped ragged-batch GEMM: one schedule vs. per-problem loop",
      "grouped extension of the paper's batched-GEMM generalization "
      "(Section 7); quantization motivation of Sections 1-3");

  // The headline case: one 1024^3 problem plus thirty-one 128^3 problems.
  // Smoke shrinks extents (same 1-large + N-small skew) for CI.
  const std::vector<GroupCase> cases =
      options.smoke
          ? std::vector<GroupCase>{
                {"fp64 skewed 1+7", gpu::Precision::kFp64,
                 skewed_group(256, 64, 7)},
                {"fp32 tiny x64", gpu::Precision::kFp32, tiny_group(64, 64)},
            }
          : std::vector<GroupCase>{
                {"fp64 skewed 1+31", gpu::Precision::kFp64,
                 skewed_group(1024, 128, 31)},
                {"fp32 skewed 1+31", gpu::Precision::kFp32,
                 skewed_group(1024, 128, 31)},
                {"fp16 skewed 1+31", gpu::Precision::kFp16F32,
                 skewed_group(1024, 128, 31)},
                {"fp64 uniform small 32", gpu::Precision::kFp64,
                 skewed_group(128, 128, 31)},
                {"fp64 tiny x128", gpu::Precision::kFp64,
                 tiny_group(64, 128)},
                {"fp32 tiny x256", gpu::Precision::kFp32,
                 tiny_group(64, 256)},
            };
  const int rounds = options.smoke ? 3 : 7;

  auto csv = bench::maybe_csv(
      options, {"label", "problems", "precision", "grouped_s", "loop_s",
                "speedup", "grouped_gemms_per_s", "loop_gemms_per_s",
                "grouped_tail_s", "loop_tail_s", "bitwise_identical"});

  bencher::TextTable table({"case", "problems", "grouped", "loop", "speedup",
                            "gemms/s grouped/loop", "tail grouped/loop"});
  double log_sum = 0.0;
  std::size_t counted = 0;
  bool all_identical = true;
  for (const GroupCase& c : cases) {
    const Measurement m = measure_case(c, rounds);
    const double n = static_cast<double>(c.shapes.size());
    const double speedup =
        m.grouped_best > 0.0 ? m.loop_best / m.grouped_best : 0.0;
    const double grouped_rate = m.grouped_best > 0.0 ? n / m.grouped_best : 0.0;
    const double loop_rate = m.loop_best > 0.0 ? n / m.loop_best : 0.0;
    all_identical = all_identical && m.bitwise_identical;
    table.row({c.label, std::to_string(c.shapes.size()),
               bencher::fmt_seconds(m.grouped_best),
               bencher::fmt_seconds(m.loop_best), bencher::fmt_ratio(speedup),
               bench::format_metric(grouped_rate) + " / " +
                   bench::format_metric(loop_rate),
               bencher::fmt_seconds(m.grouped_tail) + " / " +
                   bencher::fmt_seconds(m.loop_tail)});
    if (csv) {
      csv->row({std::string(c.label), std::to_string(c.shapes.size()),
                std::string(gpu::name(c.precision)),
                util::CsvWriter::cell(m.grouped_best),
                util::CsvWriter::cell(m.loop_best),
                util::CsvWriter::cell(speedup),
                util::CsvWriter::cell(grouped_rate),
                util::CsvWriter::cell(loop_rate),
                util::CsvWriter::cell(m.grouped_tail),
                util::CsvWriter::cell(m.loop_tail),
                m.bitwise_identical ? "1" : "0"});
    }
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++counted;
    }
  }
  std::cout << table.render();
  if (counted > 0) {
    const double geomean = std::exp(log_sum / static_cast<double>(counted));
    std::cout << "geomean grouped-vs-loop speedup: "
              << bench::format_metric(geomean) << "x over " << counted
              << " case(s)\n";
    bench::report_case("grouped_vs_loop_geomean", "speedup", true, geomean);
  }
  std::cout << (all_identical
                    ? "bitwise check: grouped == per-problem loop on every "
                      "case\n"
                    : "bitwise check: FAILED (outputs diverged)\n");
  return all_identical ? 0 : 1;
}
