// Persistent worker-pool vs spawn-per-call submission throughput.
//
// The runtime PR's headline claim: a process-wide persistent pool serves
// concurrent small-GEMM traffic at a multiple of the old spawn-per-call
// host runtime, because submission is a queue push instead of `workers - 1`
// thread spawns plus a workspace allocation.  This bench A/Bs the two
// regimes the codebase still contains:
//
//   spawn -- the pre-runtime world, faithfully reconstructed: no pool
//            workers (the global pool is shut down), util::parallel_for
//            uses the legacy spawning backend, workspace pooling is
//            disabled (allocate-per-call, like the seed), and the schedule
//            is recompiled per call (execute_decomposition);
//   pool  -- the persistent runtime: submitters block on submit-then-get
//            handles, inner regions recruit pool workers, the compiled
//            plan comes from the plan cache, and workspaces / CTA buffers
//            come from the runtime pools.
//
// Each configuration is (mode, submitter threads, shape): 1/4/16 concurrent
// submitters pushing a fixed number of Stream-K GEMMs, small and large
// shapes.  GEMMs/sec plus the pool/spawn speedup are printed and the usual
// CSV is emitted so later PRs have a trajectory point.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cpu/executor.hpp"
#include "cpu/gemm.hpp"
#include "runtime/gemm_runtime.hpp"
#include "runtime/workspace_pool.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct ShapeCase {
  std::string label;
  core::GemmShape shape;
};

struct Workload {
  std::string mode;
  std::size_t submitters = 1;
  ShapeCase shape_case;
  int total_jobs = 0;
  double seconds = 0.0;

  double gemms_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(total_jobs) / seconds : 0.0;
  }
};

cpu::GemmOptions gemm_options() {
  // Stream-K with an 8-CTA grid and 8 workers -- the configuration a
  // server sizing its worker count to the machine would run.  Every call
  // opens a real parallel region (the spawn backend must create 7 threads
  // per call; the pool enqueues at most pool-width helpers), and the
  // schedule spills, exercising the fixup workspace on both sides.
  cpu::GemmOptions options;
  options.schedule = cpu::Schedule::kStreamK;
  options.block = {32, 32, 16};
  options.grid = 8;
  options.workers = 8;
  return options;
}

/// One pre-runtime GEMM: schedule recompiled per call (the old gemm() path
/// compiled mapping -> decomposition -> plan on every invocation), workers
/// spawned per region, workspace allocated per call.
void spawn_world_gemm(const ShapeCase& sc, const cpu::Matrix<double>& a,
                      const cpu::Matrix<double>& b, cpu::Matrix<double>& c,
                      const cpu::GemmOptions& options) {
  const core::WorkMapping mapping(sc.shape, options.block);
  core::DecompositionSpec spec;
  spec.kind = core::DecompositionKind::kStreamKBasic;
  spec.grid = options.grid;
  spec.sm_count = static_cast<std::int64_t>(options.workers);
  const auto decomposition = core::make_decomposition(spec, mapping);
  cpu::ExecutorOptions exec;
  exec.workers = options.workers;
  cpu::execute_decomposition<double, double, double>(*decomposition, a, b, c,
                                                     exec);
}

/// Runs `total_jobs` GEMMs of `sc` from `submitters` concurrent threads,
/// every submitter blocking on each call (closed-loop traffic).
double run_workload(const std::string& mode, const ShapeCase& sc,
                    std::size_t submitters, int total_jobs) {
  const cpu::GemmOptions options = gemm_options();
  const int per_thread = total_jobs / static_cast<int>(submitters);

  // Per-submitter operands, prepared outside the timed section.
  struct Operands {
    cpu::Matrix<double> a, b, c;
  };
  std::vector<Operands> operands(submitters);
  util::Pcg32 rng(7);
  for (Operands& op : operands) {
    op.a = cpu::Matrix<double>(sc.shape.m, sc.shape.k);
    op.b = cpu::Matrix<double>(sc.shape.k, sc.shape.n);
    op.c = cpu::Matrix<double>(sc.shape.m, sc.shape.n);
    cpu::fill_random(op.a, rng);
    cpu::fill_random(op.b, rng);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      Operands& op = operands[t];
      for (int i = 0; i < per_thread; ++i) {
        if (mode == "spawn") {
          spawn_world_gemm(sc, op.a, op.b, op.c, options);
        } else {
          cpu::gemm(op.a, op.b, op.c, options);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "persistent pool vs spawn-per-call submission throughput",
      "runtime scaling substrate (no paper figure)");

  std::vector<ShapeCase> shapes = {
      {"small-32x32x128", {32, 32, 128}},
      {"large-192x192x192", {192, 192, 192}},
  };
  std::vector<std::size_t> submitter_counts = {1, 4, 16};
  if (opts.smoke) {
    shapes.resize(1);  // the small-shape case is the headline number
    submitter_counts = {1, 4};
  }

  std::vector<Workload> results;
  for (const ShapeCase& sc : shapes) {
    int total_jobs = sc.shape.m >= 128 ? 32 : 320;
    if (opts.smoke) total_jobs /= 4;
    for (const std::string& mode : {std::string("spawn"),
                                    std::string("pool")}) {
      if (mode == "spawn") {
        // Reconstruct the pre-runtime world: no pool workers, spawning
        // parallel regions, allocate-per-call workspaces.
        runtime::global_pool().shutdown();
        util::set_parallel_backend(util::ParallelBackend::kSpawn);
        runtime::set_workspace_pooling(false);
      } else {
        util::set_parallel_backend(util::ParallelBackend::kPool);
        runtime::set_workspace_pooling(true);
        runtime::global_pool().restart();  // hardware-sized persistent pool
      }
      for (const std::size_t submitters : submitter_counts) {
        Workload w;
        w.mode = mode;
        w.submitters = submitters;
        w.shape_case = sc;
        w.total_jobs = (total_jobs / static_cast<int>(submitters)) *
                       static_cast<int>(submitters);
        // Warm-up round outside the measurement (first-touch, pool spin-up).
        run_workload(mode, sc, submitters, static_cast<int>(submitters));
        w.seconds = run_workload(mode, sc, submitters, w.total_jobs);
        results.push_back(w);
      }
    }
  }
  util::set_parallel_backend(util::ParallelBackend::kPool);
  runtime::set_workspace_pooling(true);
  runtime::global_pool().restart();

  const std::string csv_path =
      opts.csv_path.empty() ? "runtime_throughput.csv" : opts.csv_path;
  util::CsvWriter csv(csv_path,
                      {"mode", "submitters", "shape", "m", "n", "k", "jobs",
                       "seconds", "gemms_per_sec"});
  for (const Workload& w : results) {
    csv.row({w.mode, util::CsvWriter::cell(w.submitters), w.shape_case.label,
             util::CsvWriter::cell(w.shape_case.shape.m),
             util::CsvWriter::cell(w.shape_case.shape.n),
             util::CsvWriter::cell(w.shape_case.shape.k),
             util::CsvWriter::cell(static_cast<std::int64_t>(w.total_jobs)),
             util::CsvWriter::cell(w.seconds),
             util::CsvWriter::cell(w.gemms_per_sec())});
  }

  // Paired speedup table.
  std::map<std::pair<std::string, std::size_t>, double> spawn_rate;
  for (const Workload& w : results) {
    if (w.mode == "spawn") {
      spawn_rate[{w.shape_case.label, w.submitters}] = w.gemms_per_sec();
    }
  }
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\nshape              submitters  spawn GEMM/s  pool GEMM/s  "
               "speedup\n";
  for (const Workload& w : results) {
    if (w.mode != "pool") continue;
    const double spawn = spawn_rate[{w.shape_case.label, w.submitters}];
    const double speedup = spawn > 0.0 ? w.gemms_per_sec() / spawn : 0.0;
    std::cout << std::left << std::setw(19) << w.shape_case.label
              << std::right << std::setw(10) << w.submitters << std::setw(14)
              << spawn << std::setw(13) << w.gemms_per_sec() << std::setw(8)
              << std::setprecision(2) << speedup << "x\n"
              << std::setprecision(1);
    bench::report_case(w.shape_case.label + std::string(" pool s") +
                           std::to_string(w.submitters) + " rate",
                       "gemms_per_sec", true, w.gemms_per_sec());
  }
  std::cout << "\nfull series written to " << csv_path << "\n";
  return 0;
}
