// Fused-epilogue A/B: one pass or two?
//
// For bias+activation workloads the pre-epilogue library needed a second
// full sweep over C (read, transform, write) after the GEMM -- pure DRAM
// traffic the fused path folds into the tile store for free.  This bench
// measures both formulations through the production pool-backed path:
//
//   fused     C = act(alpha*A.B + bias)         one cpu::gemm call
//   two-pass  C = alpha*A.B; C = act(C + bias)  gemm + apply_elementwise
//
// on bandwidth-bound shapes (large m*n, shallow k -- where the extra pass
// is a large fraction of total traffic) and one compute-bound contrast
// shape (deep k -- where it vanishes into the MAC time; fused must not
// regress there).  Both sides use the same worker budget; times are
// best-of-reps.
//
//   ./bench_epilogue [--smoke] [--csv <path>]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "cpu/gemm.hpp"
#include "epilogue/apply.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct AbCase {
  const char* label;
  core::GemmShape shape;
  gpu::Precision precision;
  const char* chain;  ///< epilogue class key
};

struct AbPoint {
  double fused_seconds = 0.0;
  double two_pass_seconds = 0.0;
};

/// One A/B point: best-of-reps fused vs. gemm-then-sweep, same operands,
/// same worker budget.  GemmReport::seconds covers plan execution (the
/// steady-state cost); the sweep is wall-clock timed around
/// apply_elementwise.
template <typename In, typename Out>
AbPoint measure(const core::GemmShape& shape,
                const std::vector<epilogue::EpilogueOp>& ops, int reps) {
  cpu::Matrix<In> a(shape.m, shape.k);
  cpu::Matrix<In> b(shape.k, shape.n);
  cpu::Matrix<Out> c(shape.m, shape.n);
  util::Pcg32 rng(0xeb110);
  cpu::fill_random(a, rng, -0.5, 0.5);
  cpu::fill_random(b, rng, -0.5, 0.5);

  std::vector<double> bias(static_cast<std::size_t>(shape.n));
  for (double& v : bias) v = rng.uniform(-1.0, 1.0);

  const std::size_t workers = util::default_workers();
  cpu::GemmOptions fused;
  fused.epilogue.ops = ops;
  fused.epilogue.bias_col = bias;

  cpu::GemmOptions plain;

  epilogue::EpilogueSpec sweep;
  sweep.ops = ops;
  sweep.bias_col = bias;
  const epilogue::EpiloguePlanPtr sweep_plan = epilogue::compile(sweep.ops);

  AbPoint point;
  point.fused_seconds = std::numeric_limits<double>::infinity();
  point.two_pass_seconds = std::numeric_limits<double>::infinity();

  // Warm both plans (and the packing scratch) before timing.
  cpu::gemm(a, b, c, fused);
  cpu::gemm(a, b, c, plain);

  for (int rep = 0; rep < reps; ++rep) {
    point.fused_seconds =
        std::min(point.fused_seconds, cpu::gemm(a, b, c, fused).seconds);

    const double gemm_seconds = cpu::gemm(a, b, c, plain).seconds;
    const auto start = std::chrono::steady_clock::now();
    epilogue::apply_elementwise(*sweep_plan, sweep, shape.m, shape.n,
                                c.row_ptr(0), shape.n, workers);
    const auto stop = std::chrono::steady_clock::now();
    point.two_pass_seconds = std::min(
        point.two_pass_seconds,
        gemm_seconds + std::chrono::duration<double>(stop - start).count());
  }
  return point;
}

AbPoint measure_case(const AbCase& c, int reps) {
  const std::vector<epilogue::EpilogueOp> ops =
      epilogue::parse_class_key(c.chain);
  switch (c.precision) {
    case gpu::Precision::kFp64:
      return measure<double, double>(c.shape, ops, reps);
    case gpu::Precision::kFp32:
      return measure<float, float>(c.shape, ops, reps);
    case gpu::Precision::kFp16F32:
      return measure<util::Half, float>(c.shape, ops, reps);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Fused epilogue vs. two-pass output transform",
      "epilogue subsystem (DESIGN.md section 9); fusion motivation of "
      "composable_kernel / MIOpen");

  // Bandwidth-bound shapes lead (shallow k: the second pass over C is a
  // large traffic fraction); the deep-k contrast pins "fused never hurts".
  const std::vector<AbCase> cases =
      options.smoke
          ? std::vector<AbCase>{
                {"bw-bound fp32 bias+relu", {768, 768, 16},
                 gpu::Precision::kFp32, "bias_col+relu"},
                {"bw-bound fp32 bias+sigmoid", {768, 768, 16},
                 gpu::Precision::kFp32, "bias_col+sigmoid"},
                {"bw-bound fp64 bias+relu", {640, 640, 16},
                 gpu::Precision::kFp64, "bias_col+relu"},
                {"compute-bound fp32 bias+relu", {256, 256, 512},
                 gpu::Precision::kFp32, "bias_col+relu"},
            }
          : std::vector<AbCase>{
                {"bw-bound fp32 bias+relu", {2048, 2048, 16},
                 gpu::Precision::kFp32, "bias_col+relu"},
                {"bw-bound fp32 bias+sigmoid", {2048, 2048, 16},
                 gpu::Precision::kFp32, "bias_col+sigmoid"},
                {"bw-bound fp32 bias+relu k=48", {2048, 2048, 48},
                 gpu::Precision::kFp32, "bias_col+relu"},
                {"bw-bound fp64 bias+relu", {1536, 1536, 16},
                 gpu::Precision::kFp64, "bias_col+relu"},
                {"bw-bound fp16 bias+relu", {2048, 2048, 16},
                 gpu::Precision::kFp16F32, "bias_col+relu"},
                {"compute-bound fp32 bias+relu", {768, 768, 768},
                 gpu::Precision::kFp32, "bias_col+relu"},
            };
  const int reps = options.smoke ? 5 : 9;

  auto csv = bench::maybe_csv(options,
                              {"label", "m", "n", "k", "precision", "chain",
                               "fused_s", "two_pass_s", "speedup"});

  bencher::TextTable table(
      {"case", "shape", "chain", "fused", "two-pass", "fused speedup"});
  double log_sum = 0.0;
  std::size_t counted = 0;
  for (const AbCase& c : cases) {
    const AbPoint point = measure_case(c, reps);
    const double speedup =
        point.fused_seconds > 0.0 && point.two_pass_seconds > 0.0
            ? point.two_pass_seconds / point.fused_seconds
            : 0.0;
    table.row({c.label, c.shape.to_string(), c.chain,
               bencher::fmt_seconds(point.fused_seconds),
               bencher::fmt_seconds(point.two_pass_seconds),
               bencher::fmt_ratio(speedup)});
    if (csv) {
      csv->row({std::string(c.label), std::to_string(c.shape.m),
                std::to_string(c.shape.n), std::to_string(c.shape.k),
                std::string(gpu::name(c.precision)), std::string(c.chain),
                util::CsvWriter::cell(point.fused_seconds),
                util::CsvWriter::cell(point.two_pass_seconds),
                util::CsvWriter::cell(speedup)});
    }
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++counted;
    }
  }
  std::cout << table.render();
  if (counted > 0) {
    const double geomean = std::exp(log_sum / static_cast<double>(counted));
    std::cout << "geomean fused-vs-two-pass speedup: "
              << bench::format_metric(geomean) << "x over " << counted
              << " case(s)\n";
    bench::report_case("fused_vs_two_pass_geomean", "speedup", true, geomean);
  }
  return 0;
}
