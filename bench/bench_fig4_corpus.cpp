// Figure 4: the test domain of 32,824 GEMM problem shapes and sizes.
//
// Regenerates the corpus ({m}, {n}, {k} log-sampled from [128, 8192]),
// reports its defining statistics (extent histograms in log space, volume
// span in orders of magnitude, compute-bound fractions), and exports the
// full scatter data to CSV for external plotting.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 4: the 32,824-problem GEMM corpus",
                      "Figure 4 (Section 6, Dataset)");

  const std::size_t n = bench::corpus_size(opts);
  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  std::cout << "problems: " << corpus.size() << "\n";

  std::vector<double> log_m, log_n, log_k, log_volume;
  for (const auto& s : corpus.shapes()) {
    log_m.push_back(std::log10(static_cast<double>(s.m)));
    log_n.push_back(std::log10(static_cast<double>(s.n)));
    log_k.push_back(std::log10(static_cast<double>(s.k)));
    log_volume.push_back(std::log10(s.flops()));
  }

  const auto lo = std::log10(128.0);
  const auto hi = std::log10(8192.0);
  std::cout << "\nlog10(m) distribution (should be ~flat: log-uniform):\n"
            << util::Histogram::of(log_m, lo, hi, 6).render()
            << "\nlog10(k) distribution:\n"
            << util::Histogram::of(log_k, lo, hi, 6).render();

  std::cout << "\nproblem volume: spans "
            << bencher::fmt_num(corpus.volume_orders_of_magnitude(), 2)
            << " orders of magnitude (paper: six)\n"
            << "log10(FLOPs) distribution:\n"
            << util::Histogram::of(log_volume, 6.5, 12.5, 6).render();

  bencher::TextTable table({"precision", "compute-bound threshold",
                            "compute-bound problems", "fraction"});
  for (const auto precision :
       {gpu::Precision::kFp64, gpu::Precision::kFp16F32}) {
    const auto bound = corpus.compute_bound(precision);
    table.row({std::string(gpu::name(precision)),
               bencher::fmt_num(corpus::compute_bound_threshold(precision), 0) +
                   " ops/B",
               std::to_string(bound.size()),
               bencher::fmt_pct(static_cast<double>(bound.size()) /
                                static_cast<double>(corpus.size()))});
  }
  std::cout << "\n" << table.render();

  const std::string csv =
      opts.csv_path.empty() ? "fig4_corpus.csv" : opts.csv_path;
  corpus.write_csv(csv);
  std::cout << "\nfull scatter data written to " << csv << "\n";

  bench::report_case("volume_orders_of_magnitude", "orders", true,
                     corpus.volume_orders_of_magnitude(),
                     /*deterministic=*/true);
  return 0;
}
