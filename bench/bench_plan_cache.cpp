// Schedule-compilation overhead microbenchmark.
//
// Tracks the cost the ensemble/library layer pays per run(shape):
//   1. legacy   -- rematerializing every CTA's segment stream through
//                  virtual cta_work() calls plus a fixup-table scan (what
//                  every consumer did before SchedulePlan existed);
//   2. compile  -- compiling a SchedulePlan from scratch;
//   3. cache    -- a PlanCache hit returning the memoized plan.
//
// Future PRs touching the scheduling layers should keep `compile` within
// sight of `legacy` (it does strictly more indexing work in one pass) and
// `cache` in the tens-of-nanoseconds regime.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/schedule_plan.hpp"
#include "gpu/gpu_spec.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace streamk;

struct Case {
  core::GemmShape shape;
  core::DecompositionSpec spec;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("plan compilation + cache hits",
                      "scheduling-overhead tracking (no paper figure)");

  const gpu::GpuSpec gpu = gpu::GpuSpec::a100_locked();
  const gpu::BlockShape block = gpu::BlockShape::paper_fp64();

  // A mixed population: every decomposition kind over a log-uniform shape
  // spread, the same regime the corpus sweeps exercise.
  constexpr core::DecompositionKind kKinds[] = {
      core::DecompositionKind::kDataParallel,
      core::DecompositionKind::kFixedSplit,
      core::DecompositionKind::kStreamKBasic,
      core::DecompositionKind::kHybridOneTile,
      core::DecompositionKind::kHybridTwoTile};
  util::Pcg32 rng(42);
  std::vector<Case> cases;
  const int case_count = opts.smoke ? 40 : 200;
  for (int i = 0; i < case_count; ++i) {
    Case c;
    c.shape = {rng.log_uniform_int(64, 4096), rng.log_uniform_int(64, 4096),
               rng.log_uniform_int(64, 2048)};
    c.spec.kind = kKinds[i % 5];
    c.spec.grid = gpu.sm_count;
    c.spec.split = 2 + i % 3;
    c.spec.sm_count = gpu.sm_count;
    cases.push_back(c);
  }

  // 1. Legacy rematerialization: per-CTA cta_work() streams plus the
  // pre-plan fixup-table scan, inlined here verbatim (FixupTable itself now
  // routes through compile_plan, so calling it would not measure the old
  // path).
  std::int64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (const Case& c : cases) {
    const core::WorkMapping mapping(c.shape, block);
    const auto decomposition = core::make_decomposition(c.spec, mapping);
    for (std::int64_t cta = 0; cta < decomposition->grid_size(); ++cta) {
      sink += static_cast<std::int64_t>(
          decomposition->cta_work(cta).segments.size());
    }
    std::vector<std::vector<std::int64_t>> contributors(
        static_cast<std::size_t>(mapping.tiles()));
    for (std::int64_t cta = 0; cta < decomposition->grid_size(); ++cta) {
      for (const core::TileSegment& seg :
           decomposition->cta_work(cta).segments) {
        if (!seg.starts_tile()) {
          contributors[static_cast<std::size_t>(seg.tile_idx)].push_back(cta);
        }
      }
    }
    for (const auto& peers : contributors) {
      sink += static_cast<std::int64_t>(peers.size());
    }
  }
  const double legacy_s = seconds_since(start);

  // 2. Fresh plan compilation.
  start = std::chrono::steady_clock::now();
  for (const Case& c : cases) {
    const core::WorkMapping mapping(c.shape, block);
    const auto decomposition = core::make_decomposition(c.spec, mapping);
    const core::SchedulePlan plan = core::compile_plan(*decomposition);
    sink += plan.total_segments() + plan.split_tiles();
  }
  const double compile_s = seconds_since(start);

  // 3. Cache hits (one warm-up miss per case).
  core::PlanCache cache;
  for (const Case& c : cases) {
    const core::WorkMapping mapping(c.shape, block);
    cache.obtain(core::make_plan_key(mapping, c.spec, gpu), mapping, c.spec);
  }
  const int kHitRounds = opts.smoke ? 10 : 50;
  start = std::chrono::steady_clock::now();
  for (int round = 0; round < kHitRounds; ++round) {
    for (const Case& c : cases) {
      const core::WorkMapping mapping(c.shape, block);
      const auto plan =
          cache.obtain(core::make_plan_key(mapping, c.spec, gpu), mapping,
                       c.spec);
      sink += plan->grid();
    }
  }
  const double hit_s = seconds_since(start);
  const auto hit_lookups = static_cast<double>(cases.size()) * kHitRounds;

  const auto n = static_cast<double>(cases.size());
  std::cout << std::fixed << std::setprecision(2)
            << "schedules:            " << cases.size() << " (all five kinds)\n"
            << "legacy cta_work walk: " << legacy_s / n * 1e6
            << " us/schedule\n"
            << "plan compilation:     " << compile_s / n * 1e6
            << " us/schedule\n"
            << "plan-cache hit:       " << hit_s / hit_lookups * 1e9
            << " ns/lookup (" << cache.hits() << " hits, " << cache.misses()
            << " misses)\n"
            << "[sink " << sink << "]\n";
  if (auto csv = bench::maybe_csv(
          opts, {"metric", "value"})) {
    csv->row({"legacy_us_per_schedule", util::CsvWriter::cell(legacy_s / n * 1e6)});
    csv->row({"compile_us_per_schedule", util::CsvWriter::cell(compile_s / n * 1e6)});
    csv->row({"cache_hit_ns_per_lookup", util::CsvWriter::cell(hit_s / hit_lookups * 1e9)});
  }
  bench::report_case("compile_us_per_schedule", "microseconds", false,
                     compile_s / n * 1e6);
  bench::report_case("cache_hit_ns_per_lookup", "nanoseconds", false,
                     hit_s / hit_lookups * 1e9);
  return 0;
}
