// Figure 8: the analytical grid-size selection model (Appendix A.1) on
// NVIDIA A100 (108 SMs) for FP16 blocking 128x128x32, evaluated on the
// paper's three strong-scaling case studies:
//
//   8a: 256x3584x8192  -- 56 tiles, 256 iters/tile -> g_best = 108
//   8b: 1024x1024x1024 -- 64 tiles,  32 iters/tile -> g_best = 64
//   8c: 128x128x16384  --  1 tile,  512 iters/tile -> g_best = 8
//
// For each case we print the modelled time-vs-g curve (normalized to the
// minimum) and the selected grid.  A second section sweeps the model-chosen
// grid against the g = p and g = t policies (the grid-selection ablation).

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "model/grid_selector.hpp"
#include "util/csv.hpp"

namespace {

using namespace streamk;

struct Case {
  const char* label;
  core::GemmShape shape;
  std::int64_t paper_gbest;
};

void run_case(const Case& c, const model::CostModel& model,
              const gpu::GpuSpec& gpu, util::CsvWriter* csv) {
  const core::WorkMapping mapping(c.shape, model.block());
  const model::GridChoice choice = model::select_grid(model, mapping, gpu);

  std::cout << "\n--- " << c.label << ": " << c.shape.to_string() << " ("
            << mapping.tiles() << " output tiles, "
            << mapping.iters_per_tile() << " iterations per tile) ---\n"
            << "g_best <- " << choice.grid << " CTAs, "
            << model::CostModel::iters_per_cta(mapping, choice.grid)
            << " iterations per CTA   (paper: g_best <- " << c.paper_gbest
            << ")\n";

  bencher::TextTable table({"g", "iters/CTA", "fixup peers",
                            "modelled time (norm.)"});
  for (const std::int64_t g :
       {1LL, 2LL, 4LL, 8LL, 16LL, 32LL, 56LL, 64LL, 80LL, 96LL, 108LL}) {
    if (g > gpu.sm_count) continue;
    const double t = model.stream_k_cta_time(mapping, g);
    table.row({std::to_string(g),
               std::to_string(model::CostModel::iters_per_cta(mapping, g)),
               std::to_string(model::CostModel::fixup_peers(mapping, g)),
               bencher::fmt_num(t / choice.predicted_seconds, 3)});
    if (csv) {
      csv->row({c.label, util::CsvWriter::cell(g),
                util::CsvWriter::cell(
                    model::CostModel::iters_per_cta(mapping, g)),
                util::CsvWriter::cell(
                    model::CostModel::fixup_peers(mapping, g)),
                util::CsvWriter::cell(t / choice.predicted_seconds)});
    }
  }
  std::cout << table.render();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Figure 8: modelled Stream-K performance vs grid size (A100, "
      "BLK 128x128x32)",
      "Figure 8a/8b/8c (Appendix A.1)");
  auto csv = bench::maybe_csv(opts, {"case", "g", "iters_per_cta",
                                     "fixup_peers", "normalized_time"});

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const gpu::BlockShape block = gpu::BlockShape::paper_fp16();
  // The conservative Figure-8 illustration constants (b = 9c, d = 8c).
  const model::CostModel model =
      model::CostModel::paper_fig8(a100, block, gpu::Precision::kFp16F32);

  const Case cases[] = {
      {"Figure 8a", {256, 3584, 8192}, 108},
      {"Figure 8b", {1024, 1024, 1024}, 64},
      {"Figure 8c", {128, 128, 16384}, 8},
  };
  for (const Case& c : cases) run_case(c, model, a100, csv.get());

  // Ablation: the model-chosen grid vs fixed policies, under the calibrated
  // (deployment) constants with the roofline included.
  std::cout << "\n=== grid-selection ablation (calibrated constants, "
               "delivered-time estimates) ===\n";
  const model::CostModel calibrated =
      model::CostModel::calibrated(a100, block, gpu::Precision::kFp16F32);
  bencher::TextTable table({"shape", "policy g=t (DP)", "policy g=p",
                            "planned", "plan choice"});
  for (const Case& c : cases) {
    const core::WorkMapping mapping(c.shape, block);
    core::DecompositionSpec dp;
    dp.kind = core::DecompositionKind::kDataParallel;
    core::DecompositionSpec full;
    full.kind = core::DecompositionKind::kStreamKBasic;
    full.grid = a100.sm_count;
    const core::DecompositionSpec planned =
        model::plan(calibrated, mapping, a100);

    const double t_dp =
        model::closed_form_estimate(dp, calibrated, mapping, a100);
    const double t_full =
        model::closed_form_estimate(full, calibrated, mapping, a100);
    const double t_plan =
        model::closed_form_estimate(planned, calibrated, mapping, a100);

    std::string choice = std::string(core::kind_name(planned.kind));
    if (planned.kind == core::DecompositionKind::kStreamKBasic) {
      choice += "(g=" + std::to_string(planned.grid) + ")";
    }
    table.row({c.shape.to_string(), bencher::fmt_seconds(t_dp),
               bencher::fmt_seconds(t_full), bencher::fmt_seconds(t_plan),
               choice});
    bench::report_case(c.label + std::string(" planned seconds"), "seconds",
                       false, t_plan, /*deterministic=*/true);
  }
  std::cout << table.render()
            << "planned time is never worse than either fixed policy.\n";
  return 0;
}
