// Tuner subsystem bench: does closing the measurement loop pay?
//
// Four stages over a CPU-sized shape sample:
//   1. find:      tune every shape (model-pruned top-K candidates, measured
//                 best-of-reps on the pool-backed executor) into a TuningDb.
//   2. A/B:       re-measure heuristic-only dispatch (Schedule::kAuto with
//                 an empty global db) vs. tuned dispatch per shape; report
//                 per-shape and geomean speedup.  The tuned side should be
//                 >= 1.0x geomean: its config won the same measurement on
//                 the same host.
//   3. lookup:    time the dispatch-path db probe (hit) -- the cost every
//                 repeat GEMM pays; should be well under a microsecond.
//   4. roundtrip: save -> load -> compare snapshots; dispatch after a
//                 process restart must be identical.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "cpu/gemm.hpp"
#include "tuner/dispatch.hpp"
#include "tuner/tuner.hpp"
#include "util/check.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      opts.smoke ? "Empirical tuner: tuned vs heuristic dispatch (smoke)"
                 : "Empirical tuner: tuned vs heuristic dispatch",
      "new subsystem (MIOpen-style find mode; beyond the paper)");

  // The A/B's heuristic side is Schedule::kAuto, which consults the global
  // tuning db -- a populated one (STREAMK_TUNING_DB) would silently turn
  // this into tuned-vs-tuned.
  util::check(tuner::global_tuning_db().size() == 0,
              "bench_tuner: unset STREAMK_TUNING_DB (the heuristic side "
              "must dispatch untuned)");

  // CPU-tractable shapes spanning the planner's regimes: quantized waves,
  // ragged edges, and the strong-scaling (deep-k) corner.
  std::vector<core::GemmShape> shapes = {
      {96, 96, 256}, {192, 160, 64}, {64, 64, 768},
      {160, 224, 96}, {48, 320, 128}, {128, 128, 128},
  };
  if (opts.smoke) {
    shapes = {{64, 64, 192}, {96, 80, 48}, {32, 32, 384}};
  }
  const int reps = opts.smoke ? 2 : 5;

  tuner::TuneOptions tune_options;
  tune_options.repetitions = reps;
  tune_options.space.top_k = opts.smoke ? 6 : 12;

  // --- stage 1: find -------------------------------------------------------
  tuner::TuningDb db;
  const auto find_start = std::chrono::steady_clock::now();
  const std::size_t tuned_count = tuner::tune_corpus(
      shapes, gpu::Precision::kFp64, db, tune_options);
  const double find_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    find_start)
          .count();
  std::cout << "find mode: tuned " << tuned_count << " shapes ("
            << tune_options.space.top_k << " candidates each) in "
            << bencher::fmt_num(find_seconds, 2) << " s\n\n";

  // --- stage 2: A/B tuned vs heuristic ------------------------------------
  auto csv = bench::maybe_csv(
      opts, {"m", "n", "k", "heuristic_seconds", "tuned_seconds", "speedup",
             "tuned_config"});
  bencher::TextTable table(
      {"shape", "heuristic s", "tuned s", "speedup", "tuned config"});
  double log_sum = 0.0;
  std::size_t measured = 0;
  for (const core::GemmShape& shape : shapes) {
    const auto record = db.lookup({shape, gpu::Precision::kFp64});
    const tuner::AbResult ab = tuner::ab_measure(shape, gpu::Precision::kFp64,
                                                 record->config, reps);
    table.row({shape.to_string(), bencher::fmt_num(ab.heuristic_seconds, 6),
               bencher::fmt_num(ab.tuned_seconds, 6),
               bencher::fmt_num(ab.speedup, 3),
               record->config.to_string()});
    if (csv) {
      csv->row({util::CsvWriter::cell(shape.m), util::CsvWriter::cell(shape.n),
                util::CsvWriter::cell(shape.k),
                util::CsvWriter::cell(ab.heuristic_seconds),
                util::CsvWriter::cell(ab.tuned_seconds),
                util::CsvWriter::cell(ab.speedup),
                record->config.to_string()});
    }
    if (ab.speedup > 0.0) {
      log_sum += std::log(ab.speedup);
      ++measured;
    }
  }
  const double geomean =
      measured > 0 ? std::exp(log_sum / static_cast<double>(measured)) : 0.0;
  std::cout << table.render() << "geomean tuned-vs-heuristic speedup: "
            << bencher::fmt_num(geomean, 3)
            << "x  (expect >= 1.0: the tuned config won this measurement)\n\n";

  // --- stage 3: dispatch lookup cost ---------------------------------------
  const std::size_t probes = opts.smoke ? 100000 : 1000000;
  const tuner::ShapeKey hot_key{shapes.front(), gpu::Precision::kFp64};
  volatile std::int64_t sink = 0;
  const auto probe_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < probes; ++i) {
    sink = sink + db.lookup(hot_key)->config.block.m;
  }
  const double probe_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - probe_start)
          .count() /
      static_cast<double>(probes);
  std::cout << "db-hit lookup: " << bencher::fmt_num(probe_ns, 1)
            << " ns/probe over " << probes
            << " probes (dispatch adds this per repeat GEMM; want << 1 us)\n";

  // --- stage 4: persistence round-trip -------------------------------------
  const std::string path = "bench_tuner_db.csv";
  db.save(path);
  tuner::TuningDb reloaded;
  reloaded.load(path);
  const bool identical = reloaded.snapshot() == db.snapshot();
  std::cout << "round-trip save -> load: " << db.size() << " records, "
            << (identical ? "identical dispatch OK" : "MISMATCH") << " ("
            << path << ")\n";

  bench::report_case("tuned_vs_heuristic_geomean", "speedup", true, geomean);
  bench::report_case("db_hit_lookup_ns", "nanoseconds", false, probe_ns);
  (void)sink;
  return identical && geomean > 0.0 ? 0 : 1;
}
