// Figure 5: FP16->32 roofline utilization landscapes across the corpus --
// four panels (CUTLASS data-parallel, cuBLAS-like ensemble, idealized
// oracle, Stream-K), each summarized as utilization percentile bands per
// log-spaced arithmetic-intensity bucket.  The figure's visual message is
// band *tightness*: Stream-K's p90-p10 spread is the narrowest.  Full
// scatter data is exported to CSV.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/roofline.hpp"
#include "bencher/table.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 5: FP16->32 roofline utilization landscapes",
                      "Figure 5a-5d (Section 6)");

  const std::size_t n = bench::corpus_size(opts);
  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  const auto suite = ensemble::EvaluationSuite::make(
      gpu::GpuSpec::a100_locked(), gpu::Precision::kFp16F32);
  const bencher::CorpusEvaluation eval = bencher::evaluate_corpus(
      corpus, suite, [](std::size_t done, std::size_t total) {
        std::cerr << "\r  evaluated " << done << "/" << total << std::flush;
      });
  std::cerr << "\n";

  struct Panel {
    const char* title;
    const std::vector<double>* utilization;
  };
  const Panel panels[] = {
      {"Figure 5a: CUTLASS data-parallel 128x128x32",
       &eval.data_parallel_utilization},
      {"Figure 5b: cuBLAS-like ensemble", &eval.cublas_like_utilization},
      {"Figure 5c: idealized CUTLASS oracle", &eval.oracle_utilization},
      {"Figure 5d: Stream-K 128x128x32", &eval.stream_k_utilization},
  };

  double dp_spread = 0.0, sk_spread = 0.0;
  for (const Panel& panel : panels) {
    const auto bands = bencher::banded_summary(eval.intensity,
                                               *panel.utilization, 10);
    std::cout << "\n" << bencher::render_roofline_panel(panel.title, bands);
    const double spread = bencher::mean_band_spread(bands);
    std::cout << "mean p90-p10 utilization spread: "
              << bencher::fmt_pct(spread) << "\n";
    if (panel.utilization == &eval.data_parallel_utilization) {
      dp_spread = spread;
    }
    if (panel.utilization == &eval.stream_k_utilization) sk_spread = spread;
  }

  std::cout << "\nperformance-response tightness: Stream-K spread "
            << bencher::fmt_pct(sk_spread) << " vs data-parallel "
            << bencher::fmt_pct(dp_spread)
            << (sk_spread < dp_spread ? "  (tighter, as in the paper)"
                                      : "  (UNEXPECTED)")
            << "\n";

  const std::string csv =
      opts.csv_path.empty() ? "fig5_roofline_fp16.csv" : opts.csv_path;
  bencher::write_roofline_csv(csv, eval);
  std::cout << "scatter data written to " << csv << "\n";

  bench::report_case("stream_k_spread", "p90_p10_spread", false, sk_spread,
                     /*deterministic=*/true);
  bench::report_case("data_parallel_spread", "p90_p10_spread", false,
                     dp_spread, /*deterministic=*/true);
  return 0;
}
