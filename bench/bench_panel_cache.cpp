// Shared packed-panel cache A/B: pack once per GEMM or once per tile?
//
// The private-pack path repacks an A row panel for every tile in its grid
// row and a B column panel for every tile in its column; the shared arena
// (cpu/panel_cache.hpp) packs each (panel, chunk) exactly once per GEMM.
// This bench measures both sides through the production pool-backed path
// for every supported precision, in two traffic modes:
//
//   single-shot  one cpu::gemm call per measurement (arena bind included)
//   repeated     a burst of back-to-back calls over the same operands,
//                the steady state the arena pool is built for
//
// and pairs every timing with a deterministic packed-bytes accounting pass
// (workers=1, data-parallel, PackProbe) whose totals are the CI regression
// metric: --smoke shapes have every extent a multiple of the widest
// microkernel NR, so the byte counts are identical across AVX2/AVX512/
// portable builds and can be diffed against a committed baseline
// (bench/baselines/panel_cache_smoke_bytes.csv, scripts/check_packed_bytes.py).
//
//   ./bench_panel_cache [--smoke] [--csv <path>]

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "cpu/gemm.hpp"
#include "cpu/panel_cache.hpp"
#include "util/threading.hpp"

namespace {

using namespace streamk;

struct AbCase {
  const char* label;
  core::GemmShape shape;
  gpu::Precision precision;
  int burst;  ///< calls per measurement: 1 = single-shot
};

struct AbPoint {
  double shared_seconds = 0.0;
  double private_seconds = 0.0;
  std::int64_t shared_bytes = 0;   ///< accounting pass, arena enabled
  std::int64_t private_bytes = 0;  ///< accounting pass, arena disabled
};

template <typename In, typename Out>
AbPoint measure(const core::GemmShape& shape, int burst, int reps) {
  cpu::Matrix<In> a(shape.m, shape.k);
  cpu::Matrix<In> b(shape.k, shape.n);
  cpu::Matrix<Out> c(shape.m, shape.n);
  util::Pcg32 rng(0x9a7e1);
  cpu::fill_random(a, rng, -0.5, 0.5);
  cpu::fill_random(b, rng, -0.5, 0.5);

  cpu::GemmOptions shared;
  shared.schedule = cpu::Schedule::kDataParallel;
  shared.panel_cache = cpu::PanelCacheMode::kOn;
  cpu::GemmOptions priv = shared;
  priv.panel_cache = cpu::PanelCacheMode::kOff;

  // Deterministic accounting pass first: one worker, so every slot is
  // packed exactly once and the byte totals are reproducible bit-for-bit.
  AbPoint point;
  {
    cpu::GemmOptions acct = shared;
    acct.workers = 1;
    cpu::PackProbe::enable(true);
    cpu::gemm(a, b, c, acct);
    point.shared_bytes = cpu::PackProbe::total_bytes();
    cpu::PackProbe::reset();
    acct.panel_cache = cpu::PanelCacheMode::kOff;
    cpu::gemm(a, b, c, acct);
    point.private_bytes = cpu::PackProbe::total_bytes();
    cpu::PackProbe::enable(false);
  }

  // Timed A/B at full width.  GemmReport::seconds covers plan execution
  // only; a burst sums consecutive reports (same operands, recycled
  // arena), which is the repeated-operand steady state.
  const auto run = [&](const cpu::GemmOptions& options) {
    double total = 0.0;
    for (int i = 0; i < burst; ++i) total += cpu::gemm(a, b, c, options).seconds;
    return total;
  };
  run(shared);  // warm plan cache, pools, and scratch before timing
  run(priv);
  point.shared_seconds = std::numeric_limits<double>::infinity();
  point.private_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    point.shared_seconds = std::min(point.shared_seconds, run(shared));
    point.private_seconds = std::min(point.private_seconds, run(priv));
  }
  return point;
}

AbPoint measure_case(const AbCase& c, int reps) {
  switch (c.precision) {
    case gpu::Precision::kFp64:
      return measure<double, double>(c.shape, c.burst, reps);
    case gpu::Precision::kFp32:
      return measure<float, float>(c.shape, c.burst, reps);
    case gpu::Precision::kFp16F32:
      return measure<util::Half, float>(c.shape, c.burst, reps);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Shared packed-panel cache vs. private per-tile packing",
      "panel-cache subsystem (DESIGN.md section 10); packing-reuse "
      "motivation of BLIS-style panel sharing");

  // Smoke shapes: every extent a multiple of 64 (the widest NR across
  // builds), so round_up is the identity and the accounting pass's byte
  // totals match the committed baseline on any ISA.
  const std::vector<AbCase> cases =
      options.smoke
          ? std::vector<AbCase>{
                {"fp64 4x4 tiles", {192, 192, 128}, gpu::Precision::kFp64, 1},
                {"fp64 4x4 tiles burst", {192, 192, 128},
                 gpu::Precision::kFp64, 4},
                {"fp32 4x4 tiles", {256, 256, 128}, gpu::Precision::kFp32, 1},
                {"fp32 4x4 tiles burst", {256, 256, 128},
                 gpu::Precision::kFp32, 4},
                {"fp16 4x4 tiles", {256, 256, 128},
                 gpu::Precision::kFp16F32, 1},
                {"fp16 4x4 tiles burst", {256, 256, 128},
                 gpu::Precision::kFp16F32, 4},
            }
          : std::vector<AbCase>{
                {"fp64 large", {1536, 1536, 192}, gpu::Precision::kFp64, 1},
                {"fp64 large burst", {1536, 1536, 192},
                 gpu::Precision::kFp64, 4},
                {"fp64 deep-k", {768, 768, 768}, gpu::Precision::kFp64, 1},
                {"fp32 large", {2048, 2048, 192}, gpu::Precision::kFp32, 1},
                {"fp32 large burst", {2048, 2048, 192},
                 gpu::Precision::kFp32, 4},
                {"fp32 deep-k", {1024, 1024, 1024}, gpu::Precision::kFp32, 1},
                {"fp16 large", {2048, 2048, 192},
                 gpu::Precision::kFp16F32, 1},
                {"fp16 large burst", {2048, 2048, 192},
                 gpu::Precision::kFp16F32, 4},
            };
  const int reps = options.smoke ? 3 : 7;

  auto csv = bench::maybe_csv(
      options, {"label", "m", "n", "k", "precision", "burst", "shared_s",
                "private_s", "speedup", "shared_packed_bytes",
                "private_packed_bytes"});

  bencher::TextTable table({"case", "shape", "prec", "shared", "private",
                            "speedup", "packed bytes shared/private"});
  double log_sum = 0.0;
  std::size_t counted = 0;
  bool bytes_ok = true;
  for (const AbCase& c : cases) {
    const AbPoint point = measure_case(c, reps);
    const double speedup =
        point.shared_seconds > 0.0 && point.private_seconds > 0.0
            ? point.private_seconds / point.shared_seconds
            : 0.0;
    bytes_ok = bytes_ok && point.shared_bytes < point.private_bytes;
    table.row({c.label, c.shape.to_string(),
               std::string(gpu::name(c.precision)),
               bencher::fmt_seconds(point.shared_seconds),
               bencher::fmt_seconds(point.private_seconds),
               bencher::fmt_ratio(speedup),
               std::to_string(point.shared_bytes) + " / " +
                   std::to_string(point.private_bytes)});
    if (csv) {
      csv->row({std::string(c.label), std::to_string(c.shape.m),
                std::to_string(c.shape.n), std::to_string(c.shape.k),
                std::string(gpu::name(c.precision)),
                std::to_string(c.burst),
                util::CsvWriter::cell(point.shared_seconds),
                util::CsvWriter::cell(point.private_seconds),
                util::CsvWriter::cell(speedup),
                std::to_string(point.shared_bytes),
                std::to_string(point.private_bytes)});
    }
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++counted;
    }
  }
  std::cout << table.render();
  if (counted > 0) {
    const double geomean = std::exp(log_sum / static_cast<double>(counted));
    std::cout << "geomean shared-vs-private speedup: "
              << bench::format_metric(geomean) << "x over " << counted
              << " case(s)\n";
    bench::report_case("shared_vs_private_geomean", "speedup", true, geomean);
  }
  std::cout << (bytes_ok
                    ? "packed-bytes check: shared < private on every case\n"
                    : "packed-bytes check: FAILED (shared >= private "
                      "somewhere)\n");
  return bytes_ok ? 0 : 1;
}
