// Extension bench: Stream-K on GEMM-like workloads (paper Section 7:
// "Stream-K decomposition could provide a similar improved performance
// response for other GEMM-like workloads that struggle with the same
// quantization inefficiencies").
//
//  1. Batched GEMM: per-entry kernel launches (each entry pays its own
//     partial wave) vs one fused work-centric launch over the stacked tile
//     space.
//  2. Convolution (implicit GEMM): batch-1 CNN inference layers,
//     data-parallel vs the planned Stream-K schedule.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "conv/conv_shape.hpp"
#include "cpu/batched.hpp"
#include "model/grid_selector.hpp"
#include "sim/sim_gemm.hpp"
#include "util/csv.hpp"

namespace {

using namespace streamk;

const gpu::GpuSpec kA100 = gpu::GpuSpec::a100_locked();
const gpu::BlockShape kBlock = gpu::BlockShape::paper_fp16();

model::CostModel fp16_model() {
  return model::CostModel::calibrated(kA100, kBlock,
                                      gpu::Precision::kFp16F32);
}

double simulate_spec(const core::DecompositionSpec& spec,
                     const core::WorkMapping& mapping) {
  return sim::estimate_kernel(spec, mapping, fp16_model(), kA100).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Extension: Stream-K on GEMM-like workloads",
                      "Section 7 (batched GEMM, convolution)");
  auto csv = bench::maybe_csv(opts, {"section", "case", "baseline_seconds",
                                     "stream_k_seconds", "speedup"});

  // -------------------------------------------------------------- batched
  std::cout << "\n=== 1. batched GEMM: per-entry launches vs fused "
               "work-centric launch ===\n";
  bencher::TextTable batched_table({"batch x shape", "tiles/entry",
                                    "per-entry DP", "fused stream-k",
                                    "speedup"});
  struct BatchCase {
    std::int64_t batch;
    core::GemmShape shape;
  };
  for (const BatchCase& bc : {BatchCase{16, {384, 384, 1024}},
                              BatchCase{8, {640, 512, 2048}},
                              BatchCase{64, {128, 128, 4096}},
                              BatchCase{4, {1920, 1152, 512}}}) {
    const core::WorkMapping entry_mapping(bc.shape, kBlock);
    core::DecompositionSpec dp;
    dp.kind = core::DecompositionKind::kDataParallel;
    // Sequential per-entry launches: batch x the single-entry makespan.
    const double per_entry =
        static_cast<double>(bc.batch) * simulate_spec(dp, entry_mapping);

    // Fused: one launch over the stacked tile space, planned schedule.
    const cpu::BatchedShape batched{bc.batch, bc.shape};
    const core::WorkMapping fused = cpu::batched_mapping(batched, kBlock);
    const core::DecompositionSpec planned =
        model::plan(fp16_model(), fused, kA100);
    const double fused_time = simulate_spec(planned, fused);

    batched_table.row(
        {std::to_string(bc.batch) + " x " + bc.shape.to_string(),
         std::to_string(entry_mapping.tiles()),
         bencher::fmt_seconds(per_entry), bencher::fmt_seconds(fused_time),
         bencher::fmt_ratio(per_entry / fused_time)});
    if (csv) {
      csv->row({"batched",
                std::to_string(bc.batch) + "x" + bc.shape.to_string(),
                util::CsvWriter::cell(per_entry),
                util::CsvWriter::cell(fused_time),
                util::CsvWriter::cell(per_entry / fused_time)});
    }
  }
  std::cout << batched_table.render()
            << "fusing the batch removes one partial wave per entry; the "
               "win grows with batch count and shrinks with entry size.\n";

  // ----------------------------------------------------------------- conv
  std::cout << "\n=== 2. convolution layers (implicit GEMM, batch-1 "
               "inference) ===\n";
  bencher::TextTable conv_table({"layer", "implicit GEMM", "tiles",
                                 "data-parallel", "planned stream-k",
                                 "speedup"});
  auto layer = [](std::int64_t hw, std::int64_t c, std::int64_t k,
                  std::int64_t f, std::int64_t stride, std::int64_t pad) {
    conv::ConvShape s;
    s.batch = 1;
    s.height = hw;
    s.width = hw;
    s.in_channels = c;
    s.out_channels = k;
    s.filter_h = f;
    s.filter_w = f;
    s.stride = stride;
    s.pad = pad;
    return s;
  };
  for (const conv::ConvShape& c :
       {layer(56, 64, 64, 3, 1, 1), layer(28, 128, 128, 3, 1, 1),
        layer(14, 256, 256, 3, 1, 1), layer(7, 512, 512, 3, 1, 1),
        layer(7, 512, 2048, 1, 1, 0)}) {
    const core::GemmShape g = c.gemm_shape();
    const core::WorkMapping mapping(g, kBlock);
    core::DecompositionSpec dp;
    dp.kind = core::DecompositionKind::kDataParallel;
    const double t_dp = simulate_spec(dp, mapping);
    const core::DecompositionSpec planned =
        model::plan(fp16_model(), mapping, kA100);
    const double t_sk = simulate_spec(planned, mapping);
    conv_table.row({c.to_string(), g.to_string(),
                    std::to_string(mapping.tiles()),
                    bencher::fmt_seconds(t_dp), bencher::fmt_seconds(t_sk),
                    bencher::fmt_ratio(t_dp / t_sk)});
    if (csv) {
      csv->row({"conv", c.to_string(), util::CsvWriter::cell(t_dp),
                util::CsvWriter::cell(t_sk),
                util::CsvWriter::cell(t_dp / t_sk)});
    }
    bench::report_case("conv " + c.to_string() + " speedup", "speedup", true,
                       t_dp / t_sk, /*deterministic=*/true);
  }
  std::cout << conv_table.render()
            << "deep-tail layers (few output pixels, deep filter volume) "
               "are the strong-scaling regime: Stream-K parallelizes the "
               "reduction the tile-centric schedule serializes.\n";
  return 0;
}
