// Packed register-blocked microkernel vs the seed's scalar MAC loop.
//
// The microkernel PR's headline claim: replacing the naive
// fragment-staging triple loop in run_mac_segment with packed panels plus
// an MR x NR register-tiled kernel buys >= 2x single-thread GFLOP/s on the
// paper's block shapes (fp64 64x64x16, fp16->fp32 128x128x32).  This bench
// A/Bs three in-process paths over one full-depth tile segment:
//
//   naive         -- the pre-PR path, faithfully reconstructed:
//                    per-iteration fragment staging at accumulator
//                    precision with zero padding, then the scalar m/k/n
//                    triple loop over the full block;
//   packed-scalar / packed-simd -- on AVX2 builds, the portable kernel
//                    (STREAMK_FORCE_SCALAR semantics) A/B'd against the
//                    intrinsics kernel;
//   packed-vector -- on AVX-512 builds, the single packed path (the
//                    portable kernel's codegen IS the vector kernel there,
//                    so a scalar/simd split would time identical code).
//
// Each path computes the same tile; results are cross-checked before
// timing.  GFLOP/s and speedups are printed, the >= 2x acceptance line is
// evaluated against the best available new path, and the usual CSV is
// emitted.  --smoke shrinks shapes and reps so CI can exercise the
// vectorized path in seconds.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/schedule_plan.hpp"
#include "core/work_mapping.hpp"
#include "cpu/mac_loop.hpp"
#include "cpu/matrix.hpp"
#include "cpu/microkernel.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace streamk;

/// The seed's run_mac_segment, kept verbatim as the baseline: stage
/// zero-padded fragments per iteration, then the scalar triple loop over
/// the full BLK_M x BLK_N x BLK_K volume.
template <typename In, typename Acc>
void naive_mac_segment(const cpu::Matrix<In>& a, const cpu::Matrix<In>& b,
                       const core::WorkMapping& mapping,
                       const core::TileSegment& seg, std::span<Acc> accum,
                       std::vector<Acc>& frag_a, std::vector<Acc>& frag_b) {
  const gpu::BlockShape& blk = mapping.block();
  const core::TileCoord coord = mapping.tile_coord(seg.tile_idx);
  const std::int64_t mm = coord.tm * blk.m;
  const std::int64_t nn = coord.tn * blk.n;
  const std::int64_t em = mapping.tile_extent_m(coord.tm);
  const std::int64_t en = mapping.tile_extent_n(coord.tn);

  for (std::int64_t iter = seg.iter_begin; iter < seg.iter_end; ++iter) {
    const std::int64_t kk = iter * blk.k;
    const std::int64_t ek = mapping.iter_extent_k(iter);

    for (std::int64_t i = 0; i < blk.m; ++i) {
      Acc* dst = frag_a.data() + static_cast<std::size_t>(i * blk.k);
      if (i < em) {
        const In* src = a.row_ptr(mm + i) + kk;
        for (std::int64_t l = 0; l < ek; ++l) dst[l] = static_cast<Acc>(src[l]);
        std::fill(dst + ek, dst + blk.k, Acc{});
      } else {
        std::fill(dst, dst + blk.k, Acc{});
      }
    }
    for (std::int64_t l = 0; l < blk.k; ++l) {
      Acc* dst = frag_b.data() + static_cast<std::size_t>(l * blk.n);
      if (l < ek) {
        const In* src = b.row_ptr(kk + l) + nn;
        for (std::int64_t j = 0; j < en; ++j) dst[j] = static_cast<Acc>(src[j]);
        std::fill(dst + en, dst + blk.n, Acc{});
      } else {
        std::fill(dst, dst + blk.n, Acc{});
      }
    }

    for (std::int64_t i = 0; i < blk.m; ++i) {
      const Acc* a_row = frag_a.data() + static_cast<std::size_t>(i * blk.k);
      Acc* acc_row = accum.data() + static_cast<std::size_t>(i * blk.n);
      for (std::int64_t l = 0; l < blk.k; ++l) {
        const Acc av = a_row[l];
        const Acc* b_row = frag_b.data() + static_cast<std::size_t>(l * blk.n);
        for (std::int64_t j = 0; j < blk.n; ++j) {
          acc_row[j] += av * b_row[j];
        }
      }
    }
  }
}

struct PathResult {
  std::string path;
  double gflops = 0.0;
};

struct CaseResult {
  std::string precision;
  gpu::BlockShape block;
  std::int64_t k = 0;
  std::vector<PathResult> paths;

  double naive_gflops() const { return paths.front().gflops; }
  double best_new_gflops() const {
    double best = 0.0;
    for (std::size_t i = 1; i < paths.size(); ++i) {
      best = std::max(best, paths[i].gflops);
    }
    return best;
  }
};

/// Repeats `fn` until ~`target_seconds` of wall clock and returns GFLOP/s.
template <typename Fn>
double time_gflops(double flops_per_call, double target_seconds, Fn&& fn) {
  fn();  // warmup (and first-touch of scratch)
  int reps = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds >= target_seconds || reps >= (1 << 24)) {
      return flops_per_call * reps / seconds / 1e9;
    }
    reps = seconds > 0.0
               ? std::max(reps * 2,
                          static_cast<int>(reps * target_seconds / seconds))
               : reps * 4;
  }
}

template <typename In, typename Acc>
CaseResult run_case(const std::string& precision, gpu::BlockShape blk,
                    std::int64_t iters, double target_seconds) {
  // One full tile, `iters` MAC-loop iterations deep: the compute-bound
  // regime the worker pool could not speed up.
  const core::GemmShape shape{blk.m, blk.n, iters * blk.k};
  const core::WorkMapping mapping(shape, blk);
  core::TileSegment seg;
  seg.tile_idx = 0;
  seg.iter_begin = 0;
  seg.iter_end = iters;
  seg.last = true;

  util::Pcg32 rng(2023);
  cpu::Matrix<In> a(shape.m, shape.k);
  cpu::Matrix<In> b(shape.k, shape.n);
  cpu::fill_random(a, rng);
  cpu::fill_random(b, rng);

  const auto tile_elems = static_cast<std::size_t>(blk.tile_elements());
  std::vector<Acc> accum_naive(tile_elems, Acc{});
  std::vector<Acc> frag_a(static_cast<std::size_t>(blk.m * blk.k));
  std::vector<Acc> frag_b(static_cast<std::size_t>(blk.k * blk.n));
  naive_mac_segment<In, Acc>(a, b, mapping, seg, accum_naive, frag_a, frag_b);

  // Cross-check the packed path against the baseline before timing it.
  cpu::MacScratch<Acc> scratch(blk, std::min<std::int64_t>(
                                        core::PackedPanelGeometry::kTargetPanelDepth,
                                        iters * blk.k));
  std::vector<Acc> accum_packed(tile_elems, Acc{});
  cpu::run_mac_segment<In, Acc>(a, b, mapping, seg, accum_packed, scratch);
  double max_err = 0.0;
  for (std::size_t i = 0; i < tile_elems; ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(accum_packed[i]) -
                                         static_cast<double>(accum_naive[i])));
  }
  const double tolerance = precision == "fp64" ? 1e-9 : 1e-1;
  if (max_err > tolerance) {
    std::cerr << "FATAL: packed path diverges from baseline (max err "
              << max_err << ")\n";
    std::exit(1);
  }

  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n) *
                       static_cast<double>(shape.k);

  CaseResult result;
  result.precision = precision;
  result.block = blk;
  result.k = shape.k;

  result.paths.push_back(
      {"naive", time_gflops(flops, target_seconds, [&] {
         std::fill(accum_naive.begin(), accum_naive.end(), Acc{});
         naive_mac_segment<In, Acc>(a, b, mapping, seg, accum_naive, frag_a,
                                    frag_b);
       })});

  const auto time_packed = [&](const std::string& label) {
    result.paths.push_back(
        {label, time_gflops(flops, target_seconds, [&] {
           std::fill(accum_packed.begin(), accum_packed.end(), Acc{});
           cpu::run_mac_segment<In, Acc>(a, b, mapping, seg, accum_packed,
                                         scratch);
         })});
  };

  if (cpu::kHasIntrinsicKernel<Acc> && !cpu::force_scalar()) {
    // AVX2 builds carry two distinct full-tile kernels; A/B both.  (This
    // branch is only entered with the dispatch unforced, so restoring
    // "unforced" afterwards is the invariant.)
    cpu::set_force_scalar(true);
    time_packed("packed-scalar");
    cpu::set_force_scalar(false);
    time_packed("packed-simd");
  } else {
    // One packed path: the portable kernel, which on AVX-512 builds is
    // itself the vector kernel (force_scalar changes nothing there, so a
    // scalar-vs-simd split would time identical code twice).
    time_packed(cpu::kHasVectorKernel<Acc> && !cpu::force_scalar()
                    ? "packed-vector"
                    : "packed-scalar");
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  const bool smoke = opts.smoke;

  bench::print_header(
      smoke ? "MAC microkernel vs scalar baseline (smoke)"
            : "MAC microkernel vs scalar baseline",
      "single-thread GFLOP/s on the paper's CTA block shapes (Section 5.1)");
#if defined(__AVX512F__)
  const char* flavor = "AVX-512 (via portable kernel codegen)";
#elif defined(__AVX2__) && defined(__FMA__)
  const char* flavor = "AVX2+FMA intrinsics";
#else
  const char* flavor = "none (portable kernels only)";
#endif
  std::cout << "vector kernel: " << flavor << "; STREAMK_FORCE_SCALAR: "
            << (cpu::force_scalar() ? "1" : "0") << "\n\n";

  const double target_seconds = smoke ? 0.02 : 0.4;
  const std::int64_t fp64_iters = smoke ? 2 : 16;
  const std::int64_t fp16_iters = smoke ? 2 : 8;

  std::vector<CaseResult> results;
  // The paper's blocking factors; --smoke shrinks them so the bench stays
  // sub-second while still crossing every kernel on every ISA: em = 37
  // leaves an mr = 1 row fringe, and en exceeds even the AVX-512 NR
  // (16 doubles / 32 floats) so at least one full-width interior tile is
  // dispatched alongside an n fringe.
  const gpu::BlockShape fp64_blk =
      smoke ? gpu::BlockShape{37, 40, 16} : gpu::BlockShape::paper_fp64();
  const gpu::BlockShape fp16_blk =
      smoke ? gpu::BlockShape{37, 72, 32} : gpu::BlockShape::paper_fp16();
  results.push_back(run_case<double, double>("fp64", fp64_blk, fp64_iters,
                                             target_seconds));
  results.push_back(run_case<util::Half, float>("fp16f32", fp16_blk,
                                                fp16_iters, target_seconds));

  const std::string csv_path =
      opts.csv_path.empty() ? "microkernel.csv" : opts.csv_path;
  util::CsvWriter csv(csv_path,
                      {"precision", "block", "k", "path", "gflops",
                       "speedup_vs_naive"});
  bool all_pass = true;
  for (const CaseResult& r : results) {
    std::cout << r.precision << "  block " << r.block.to_string() << "  k="
              << r.k << "\n";
    for (const PathResult& p : r.paths) {
      const double speedup = p.gflops / r.naive_gflops();
      std::cout << "  " << std::left << std::setw(14) << p.path << std::right
                << std::fixed << std::setprecision(2) << std::setw(8)
                << p.gflops << " GFLOP/s   " << std::setprecision(2)
                << speedup << "x vs naive\n";
      csv.row({r.precision, r.block.to_string(), util::CsvWriter::cell(r.k),
               p.path, util::CsvWriter::cell(p.gflops),
               util::CsvWriter::cell(speedup)});
    }
    const double best = r.best_new_gflops() / r.naive_gflops();
    const bool pass = best >= 2.0;
    all_pass = all_pass && pass;
    std::cout << "  => best new path " << std::setprecision(2) << best
              << "x vs naive: " << (pass ? "PASS (>= 2x)" : "BELOW 2x")
              << "\n\n";
    bench::report_case(r.precision + std::string("_best_gflops"), "gflops",
                       true, r.best_new_gflops());
  }
  std::cout << "full series written to " << csv_path << "\n";
  if (!smoke && !all_pass) {
    std::cout << "note: >= 2x acceptance not met on this build/host "
                 "(scalar-forced or non-AVX2 builds are expected to land "
                 "lower)\n";
  }
  return 0;
}
