// Extensions: the paper's two future-work directions (Section 6 final
// paragraph and Section 7), implemented and measured.
//
//  1. Morton-order tile access.  "We identify cache-aware, tile-access
//     patterns such as Morton Order, an avenue for optimization."  We
//     compare the L2 working set proxy -- distinct A/B panels touched per
//     wave of consecutive tiles -- between row-major and Z-order traversal.
//
//  2. Two-kernel Stream-K ensemble.  "...the bundling of a second Stream-K
//     kernel having smaller tile size into a two-kernel ensemble" for the
//     small / bandwidth-bound regime.  We sweep the corpus and compare the
//     single-kernel Stream-K library against the duo, focusing on the
//     worst-case relative performance vs the oracle where the single
//     largish tile loses.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/relative_perf.hpp"
#include "bencher/table.hpp"
#include "util/csv.hpp"
#include "core/tile_order.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Extensions: Morton tile order + two-kernel Stream-K",
                      "Section 7 / Section 6 future work");
  auto csv = bench::maybe_csv(
      opts, {"section", "case", "value_a", "value_b", "ratio"});

  // ---------------------------------------------------------------- Morton
  std::cout << "\n=== 1. Morton-order tile access: distinct panels touched "
               "per 108-tile wave (lower = more L2 reuse) ===\n";
  bencher::TextTable morton({"tile grid", "row-major", "morton-z",
                             "traffic ratio"});
  for (const auto& [tm, tn] : std::vector<std::pair<std::int64_t,
                                                    std::int64_t>>{
           {16, 16}, {32, 32}, {64, 64}, {23, 41}, {128, 16}, {9, 120}}) {
    const core::TileOrdering row(core::TileOrder::kRowMajor, tm, tn);
    const core::TileOrdering morton_z(core::TileOrder::kMortonZ, tm, tn);
    const std::int64_t c_row = core::panel_touch_cost(row, tm, tn, 108);
    const std::int64_t c_mor = core::panel_touch_cost(morton_z, tm, tn, 108);
    morton.row({std::to_string(tm) + "x" + std::to_string(tn),
                std::to_string(c_row), std::to_string(c_mor),
                bencher::fmt_ratio(static_cast<double>(c_mor) /
                                   static_cast<double>(c_row))});
    if (csv) {
      csv->row({"morton", std::to_string(tm) + "x" + std::to_string(tn),
                util::CsvWriter::cell(c_row), util::CsvWriter::cell(c_mor),
                util::CsvWriter::cell(static_cast<double>(c_mor) /
                                      static_cast<double>(c_row))});
    }
  }
  std::cout << morton.render()
            << "square-ish grids cut the per-wave input working set "
               "substantially; degenerate strips do not.\n";

  // ------------------------------------------------------------------ duo
  std::cout << "\n=== 2. Two-kernel Stream-K ensemble vs single kernel "
               "(FP16->32 corpus) ===\n";
  const std::size_t n =
      std::min<std::size_t>(bench::corpus_size(opts), 8000);
  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const auto precision = gpu::Precision::kFp16F32;
  ensemble::StreamKLibrary solo(a100, precision);
  ensemble::StreamKDuoLibrary duo(a100, precision);
  ensemble::OracleLibrary oracle(a100, precision);

  std::vector<double> solo_s, duo_s, oracle_s;
  std::size_t small_kernel_used = 0;
  for (const auto& shape : corpus.shapes()) {
    const auto s = solo.run(shape);
    const auto d = duo.run(shape);
    solo_s.push_back(s.estimate.seconds);
    duo_s.push_back(d.estimate.seconds);
    oracle_s.push_back(oracle.run(shape).estimate.seconds);
    if (d.config.block == duo.small_block()) ++small_kernel_used;
  }

  const util::Summary solo_vs_oracle =
      bencher::speedup_summary(oracle_s, solo_s);
  const util::Summary duo_vs_oracle =
      bencher::speedup_summary(oracle_s, duo_s);
  const util::Summary duo_vs_solo = bencher::speedup_summary(solo_s, duo_s);

  bencher::TextTable table({"metric", "single stream-k", "stream-k duo"});
  table.row({"avg vs oracle", bencher::fmt_ratio(solo_vs_oracle.mean),
             bencher::fmt_ratio(duo_vs_oracle.mean)});
  table.row({"min vs oracle (worst loss)",
             bencher::fmt_ratio(solo_vs_oracle.min),
             bencher::fmt_ratio(duo_vs_oracle.min)});
  table.row({"p10 vs oracle", bencher::fmt_ratio(solo_vs_oracle.p10),
             bencher::fmt_ratio(duo_vs_oracle.p10)});
  std::cout << table.render();
  if (csv) {
    csv->row({"duo", "avg_vs_oracle",
              util::CsvWriter::cell(solo_vs_oracle.mean),
              util::CsvWriter::cell(duo_vs_oracle.mean),
              util::CsvWriter::cell(duo_vs_oracle.mean /
                                    solo_vs_oracle.mean)});
    csv->row({"duo", "min_vs_oracle",
              util::CsvWriter::cell(solo_vs_oracle.min),
              util::CsvWriter::cell(duo_vs_oracle.min),
              util::CsvWriter::cell(duo_vs_oracle.min / solo_vs_oracle.min)});
  }
  std::cout << "duo dispatched the small kernel on " << small_kernel_used
            << "/" << corpus.size() << " problems; duo vs single: avg "
            << bencher::fmt_ratio(duo_vs_solo.mean) << ", max "
            << bencher::fmt_ratio(duo_vs_solo.max)
            << " (never worse than "
            << bencher::fmt_ratio(duo_vs_solo.min) << ")\n"
            << "still only two kernels per precision -- versus tens in "
               "vendor ensembles.\n";
  bench::report_case("duo_vs_oracle_mean", "speedup", true,
                     duo_vs_oracle.mean, /*deterministic=*/true);
  bench::report_case("duo_vs_solo_mean", "speedup", true, duo_vs_solo.mean,
                     /*deterministic=*/true);
  return 0;
}
