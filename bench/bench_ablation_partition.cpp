// Ablation: iteration partitioning strategy.
//
// Algorithm 5's pseudocode assigns every CTA ceil(total/g) iterations (the
// last CTAs absorb the shortfall and may idle); the deployed implementation
// balances within one iteration.  This bench quantifies the difference in
// simulated makespan across remainder-heavy problem shapes.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "core/stream_k.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Ablation: balanced-within-one vs ceil-uniform iteration partitioning",
      "Algorithm 5 vs Section 4's \"even share (within one)\"");
  auto csv = bench::maybe_csv(
      opts, {"m", "n", "k", "total_iters", "grid", "ceil_uniform_seconds",
             "balanced_seconds", "ratio"});

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const gpu::BlockShape block = gpu::BlockShape::paper_fp16();
  const model::CostModel model =
      model::CostModel::calibrated(a100, block, gpu::Precision::kFp16F32);

  bencher::TextTable table({"shape", "total iters", "g", "ceil-uniform",
                            "balanced", "balanced wins by"});
  util::Pcg32 rng(4242);
  double worst = 1.0;
  double sum_ratio = 0.0;
  int rows = 0;
  const int cases = opts.smoke ? 5 : 14;
  for (int i = 0; i < cases; ++i) {
    const core::GemmShape shape{rng.log_uniform_int(128, 2048),
                                rng.log_uniform_int(128, 2048),
                                rng.log_uniform_int(512, 8192)};
    const core::WorkMapping mapping(shape, block);
    const std::int64_t g = a100.sm_count;

    const core::StreamKBasic balanced(mapping, g,
                                      core::IterPartition::kBalancedWithinOne);
    const core::StreamKBasic ceiled(mapping, g,
                                    core::IterPartition::kCeilUniform);
    const double t_bal = sim::simulate(balanced, model, a100).makespan;
    const double t_ceil = sim::simulate(ceiled, model, a100).makespan;
    const double ratio = t_ceil / t_bal;
    worst = std::max(worst, ratio);
    sum_ratio += ratio;
    ++rows;
    table.row({shape.to_string(), std::to_string(mapping.total_iters()),
               std::to_string(g), bencher::fmt_seconds(t_ceil),
               bencher::fmt_seconds(t_bal), bencher::fmt_ratio(ratio)});
    if (csv) {
      csv->row({util::CsvWriter::cell(shape.m), util::CsvWriter::cell(shape.n),
                util::CsvWriter::cell(shape.k),
                util::CsvWriter::cell(mapping.total_iters()),
                util::CsvWriter::cell(g), util::CsvWriter::cell(t_ceil),
                util::CsvWriter::cell(t_bal), util::CsvWriter::cell(ratio)});
    }
  }
  std::cout << table.render()
            << "\nceil-uniform / balanced makespan: avg "
            << bencher::fmt_ratio(sum_ratio / rows) << ", worst "
            << bencher::fmt_ratio(worst)
            << "\n(balanced partitioning is what keeps per-CTA variance "
               "\"within one\" MAC-loop iteration)\n";
  bench::report_case("ceil_over_balanced_avg_ratio", "ratio", true,
                     sum_ratio / rows, /*deterministic=*/true);
  return 0;
}
