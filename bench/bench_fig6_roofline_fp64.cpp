// Figure 6: FP64 roofline utilization landscapes across the corpus -- the
// four panels of Figure 5 at double precision (data-parallel blocking
// 64x64x16).  See bench_fig5_roofline_fp16.cpp for the panel semantics.

#include <iostream>

#include "bench_common.hpp"
#include "bencher/roofline.hpp"
#include "bencher/table.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Figure 6: FP64 roofline utilization landscapes",
                      "Figure 6a-6d (Section 6)");

  const std::size_t n = bench::corpus_size(opts);
  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  const auto suite = ensemble::EvaluationSuite::make(
      gpu::GpuSpec::a100_locked(), gpu::Precision::kFp64);
  const bencher::CorpusEvaluation eval = bencher::evaluate_corpus(
      corpus, suite, [](std::size_t done, std::size_t total) {
        std::cerr << "\r  evaluated " << done << "/" << total << std::flush;
      });
  std::cerr << "\n";

  struct Panel {
    const char* title;
    const std::vector<double>* utilization;
  };
  const Panel panels[] = {
      {"Figure 6a: CUTLASS data-parallel 64x64x16",
       &eval.data_parallel_utilization},
      {"Figure 6b: cuBLAS-like ensemble", &eval.cublas_like_utilization},
      {"Figure 6c: idealized CUTLASS oracle", &eval.oracle_utilization},
      {"Figure 6d: Stream-K 64x64x16", &eval.stream_k_utilization},
  };

  double dp_spread = 0.0, sk_spread = 0.0;
  for (const Panel& panel : panels) {
    const auto bands = bencher::banded_summary(eval.intensity,
                                               *panel.utilization, 10);
    std::cout << "\n" << bencher::render_roofline_panel(panel.title, bands);
    const double spread = bencher::mean_band_spread(bands);
    std::cout << "mean p90-p10 utilization spread: "
              << bencher::fmt_pct(spread) << "\n";
    if (panel.utilization == &eval.data_parallel_utilization) {
      dp_spread = spread;
    }
    if (panel.utilization == &eval.stream_k_utilization) sk_spread = spread;
  }

  std::cout << "\nperformance-response tightness: Stream-K spread "
            << bencher::fmt_pct(sk_spread) << " vs data-parallel "
            << bencher::fmt_pct(dp_spread)
            << (sk_spread < dp_spread ? "  (tighter, as in the paper)"
                                      : "  (UNEXPECTED)")
            << "\n";

  const std::string csv =
      opts.csv_path.empty() ? "fig6_roofline_fp64.csv" : opts.csv_path;
  bencher::write_roofline_csv(csv, eval);
  std::cout << "scatter data written to " << csv << "\n";

  bench::report_case("stream_k_spread", "p90_p10_spread", false, sk_spread,
                     /*deterministic=*/true);
  bench::report_case("data_parallel_spread", "p90_p10_spread", false,
                     dp_spread, /*deterministic=*/true);
  return 0;
}
