// Ablation: hybrid schedule choice (Section 5.2).
//
// Sweeps wave counts w and remainders r (tile counts t = w*p + r) on the
// simulated A100 and compares basic Stream-K, "DP + one-tile SK", and
// "two-tile SK + DP".  The paper's claims to verify:
//   * the one-tile hybrid struggles when >= 3 CTAs share a remainder tile
//     (poor latency hiding, serialized accumulation);
//   * the two-tile hybrid bounds every accumulating CTA to one peer and is
//     the best (or tied) schedule once w >= 2.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "bencher/table.hpp"
#include "core/hybrid.hpp"
#include "core/stream_k.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Ablation: basic Stream-K vs hybrid schedules across wave counts",
      "Section 5.2 (Figures 3a-3c) on the simulated A100");
  auto csv = bench::maybe_csv(
      opts, {"tiles", "waves", "remainder", "basic_seconds",
             "one_tile_seconds", "two_tile_seconds", "winner"});

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const gpu::BlockShape block = gpu::BlockShape::paper_fp16();
  const model::CostModel model =
      model::CostModel::calibrated(a100, block, gpu::Precision::kFp16F32);
  const std::int64_t p = a100.sm_count;
  const std::int64_t ipt_k = 4096;  // 128 iterations per tile

  bencher::TextTable table({"tiles (w*p+r)", "basic SK", "DP+1-tile SK",
                            "2-tile SK+DP", "best"});

  std::vector<std::int64_t> waves{0, 1, 2, 4, 6};
  std::vector<std::int64_t> remainders{1, 27, 54, 107};
  if (opts.smoke) {
    waves = {0, 2};
    remainders = {1, 54};
  }

  int two_tile_wins = 0, rows = 0;
  for (const std::int64_t w : waves) {
    for (const std::int64_t r : remainders) {
      const std::int64_t tiles = w * p + r;
      // tiles = tiles_m * tiles_n with tiles_n = 1: m = tiles * 128.
      const core::GemmShape shape{tiles * block.m, block.n, ipt_k};
      const core::WorkMapping mapping(shape, block);

      const core::StreamKBasic basic(mapping, p);
      const core::Hybrid one(mapping,
                             core::DecompositionKind::kHybridOneTile, p);
      const core::Hybrid two(mapping,
                             core::DecompositionKind::kHybridTwoTile, p);

      const double t_basic = sim::simulate(basic, model, a100).makespan;
      const double t_one = sim::simulate(one, model, a100).makespan;
      const double t_two = sim::simulate(two, model, a100).makespan;

      const double best = std::min({t_basic, t_one, t_two});
      std::string winner = t_two <= best * 1.001 ? "2-tile"
                           : t_one <= best * 1.001 ? "1-tile"
                                                   : "basic";
      if (w >= 2 && t_two <= best * 1.001) ++two_tile_wins;
      if (w >= 2) ++rows;

      table.row({std::to_string(tiles) + " (" + std::to_string(w) + "*108+" +
                     std::to_string(r) + ")",
                 bencher::fmt_seconds(t_basic), bencher::fmt_seconds(t_one),
                 bencher::fmt_seconds(t_two), winner});
      if (csv) {
        csv->row({util::CsvWriter::cell(tiles), util::CsvWriter::cell(w),
                  util::CsvWriter::cell(r), util::CsvWriter::cell(t_basic),
                  util::CsvWriter::cell(t_one), util::CsvWriter::cell(t_two),
                  winner});
      }
    }
  }
  std::cout << table.render() << "\ntwo-tile hybrid best (or tied) in "
            << two_tile_wins << "/" << rows
            << " of the w >= 2 configurations (paper: it is the deployed "
               "schedule)\n";
  bench::report_case("two_tile_win_fraction", "fraction", true,
                     rows > 0 ? static_cast<double>(two_tile_wins) / rows
                              : 0.0,
                     /*deterministic=*/true);
  return 0;
}
