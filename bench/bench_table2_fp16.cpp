// Table 2: Stream-K FP16->32 relative performance over the 32,824-problem
// corpus on the (simulated) locked A100.  See bench_table1_fp64.cpp for the
// column/row structure; the compute-bound threshold for mixed precision is
// 400 ops/byte (Section 6, final paragraph).

#include <iostream>

#include "bench_common.hpp"
#include "bencher/relative_perf.hpp"

int main(int argc, char** argv) {
  using namespace streamk;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header("Table 2: Stream-K FP16->32 relative performance",
                      "Table 2 (Section 6)");

  const std::size_t n = bench::corpus_size(opts);
  std::cout << "corpus: " << n << " problems (STREAMK_CORPUS_SIZE overrides)\n"
            << "device: " << gpu::GpuSpec::a100_locked().name << "\n\n";

  const corpus::Corpus corpus = corpus::Corpus::paper(n);
  const auto suite = ensemble::EvaluationSuite::make(
      gpu::GpuSpec::a100_locked(), gpu::Precision::kFp16F32);

  const bencher::CorpusEvaluation eval = bencher::evaluate_corpus(
      corpus, suite, [](std::size_t done, std::size_t total) {
        std::cerr << "\r  evaluated " << done << "/" << total << std::flush;
      });
  std::cerr << "\n";

  if (auto csv = bench::maybe_csv(
          opts, {"m", "n", "k", "intensity", "stream_k_seconds",
                 "data_parallel_seconds", "cublas_like_seconds",
                 "oracle_seconds"})) {
    for (std::size_t i = 0; i < eval.shapes.size(); ++i) {
      csv->row({util::CsvWriter::cell(eval.shapes[i].m),
                util::CsvWriter::cell(eval.shapes[i].n),
                util::CsvWriter::cell(eval.shapes[i].k),
                util::CsvWriter::cell(eval.intensity[i]),
                util::CsvWriter::cell(eval.stream_k_seconds[i]),
                util::CsvWriter::cell(eval.data_parallel_seconds[i]),
                util::CsvWriter::cell(eval.cublas_like_seconds[i]),
                util::CsvWriter::cell(eval.oracle_seconds[i])});
    }
  }
  std::cout << bencher::render_relative_table(eval, gpu::Precision::kFp16F32,
                                              "128x128x32");
  std::cout << "\npaper reports (A100 hardware):      avg 1.63x / 1.13x / "
               "1.15x / 1.12x, max 14.7x / 6.74x / 1.85x / 4.63x\n";

  const util::Summary vs_dp = bencher::speedup_summary(
      eval.data_parallel_seconds, eval.stream_k_seconds);
  const util::Summary vs_cublas = bencher::speedup_summary(
      eval.cublas_like_seconds, eval.stream_k_seconds);
  bench::report_case("vs_data_parallel_mean_speedup", "speedup", true,
                     vs_dp.mean, /*deterministic=*/true);
  bench::report_case("vs_cublas_like_mean_speedup", "speedup", true,
                     vs_cublas.mean, /*deterministic=*/true);
  return 0;
}
