// Quickstart: multiply two matrices with the Stream-K library.
//
// Demonstrates the BLAS-like entry point: allocate matrices, call gemm(),
// let the analytical planner pick the decomposition, and verify the result
// against the sequential cache-blocked reference.
//
//   $ ./quickstart [m n k]

#include <cstdlib>
#include <iostream>

#include "cpu/gemm.hpp"
#include "cpu/reference.hpp"

int main(int argc, char** argv) {
  using namespace streamk;

  core::GemmShape shape{640, 512, 768};
  if (argc == 4) {
    shape = {std::atoll(argv[1]), std::atoll(argv[2]), std::atoll(argv[3])};
  }
  std::cout << "C = A.B with A: " << shape.m << "x" << shape.k
            << ", B: " << shape.k << "x" << shape.n << "\n";

  // 1. Allocate and fill the operands.
  cpu::Matrix<double> a(shape.m, shape.k);
  cpu::Matrix<double> b(shape.k, shape.n);
  cpu::Matrix<double> c(shape.m, shape.n);
  util::Pcg32 rng(2023);
  cpu::fill_random(a, rng);
  cpu::fill_random(b, rng);

  // 2. Multiply.  GemmOptions{} means: let the planner decide (Section 5.1
  //    of the paper) -- data-parallel waves, a hybrid, or basic Stream-K,
  //    depending on how the problem quantizes over the worker pool.
  const cpu::GemmReport report = cpu::gemm(a, b, c);

  std::cout << "schedule:  " << report.schedule_name << "\n"
            << "grid:      " << report.grid << " CTAs over " << report.tiles
            << " output tiles\n"
            << "spills:    " << report.spills
            << " partial-sum buffers (O(grid), never O(tiles))\n"
            << "time:      " << report.seconds * 1e3 << " ms  ("
            << report.gflops << " GFLOP/s)\n";

  // 3. Verify against the sequential cache-blocked reference (Algorithm 1).
  cpu::Matrix<double> expected(shape.m, shape.n);
  cpu::reference_gemm<double, double, double>(
      a, b, expected, cpu::default_cpu_block(gpu::Precision::kFp64));

  double worst = 0.0;
  for (std::int64_t i = 0; i < shape.m; ++i) {
    for (std::int64_t j = 0; j < shape.n; ++j) {
      worst = std::max(worst, std::abs(c.at(i, j) - expected.at(i, j)));
    }
  }
  std::cout << "verify:    max |delta| vs reference = " << worst << " -> "
            << (worst < 1e-10 * static_cast<double>(shape.k) ? "OK" : "FAIL")
            << "\n";
  return worst < 1e-10 * static_cast<double>(shape.k) ? 0 : 1;
}
