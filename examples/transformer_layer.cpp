// Transformer layer GEMMs: the workload class the paper's introduction
// motivates ("Transformer architectures ... are almost entirely limited by
// the performance of large matrix products").
//
// Walks the matrix products of one decoder layer at a given batch of token
// positions and hidden size, runs each on the simulated A100 under both the
// data-parallel baseline and the Stream-K library, and executes a scaled-
// down version on the CPU path to verify numerics end to end -- with the
// layer's bias + GELU fused into the GEMM epilogue the way transformer
// serving kernels do, instead of a second pass over the activations.  The
// attention-projection GEMMs at small batch are exactly the strong-scaling
// shapes where Stream-K shines.
//
//   $ ./transformer_layer [tokens] [hidden]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bencher/table.hpp"
#include "cpu/gemm.hpp"
#include "cpu/reference.hpp"
#include "ensemble/library.hpp"
#include "epilogue/epilogue.hpp"

namespace {

using namespace streamk;

struct LayerGemm {
  const char* name;
  core::GemmShape shape;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;

  std::int64_t tokens = 256;    // decode-time microbatch of positions
  std::int64_t hidden = 4096;   // model width
  if (argc >= 2) tokens = std::atoll(argv[1]);
  if (argc >= 3) hidden = std::atoll(argv[2]);
  const std::int64_t ffn = 4 * hidden;

  const LayerGemm gemms[] = {
      {"QKV projection", {tokens, 3 * hidden, hidden}},
      {"attention output", {tokens, hidden, hidden}},
      {"FFN up", {tokens, ffn, hidden}},
      {"FFN down", {tokens, hidden, ffn}},
  };

  std::cout << "Decoder layer GEMMs at " << tokens << " tokens, hidden "
            << hidden << " (FP16->32 on the simulated locked A100)\n\n";

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const ensemble::EvaluationSuite suite =
      ensemble::EvaluationSuite::make(a100, gpu::Precision::kFp16F32);

  bencher::TextTable table({"GEMM", "shape", "tiles", "schedule chosen",
                            "data-parallel", "stream-k", "speedup"});
  double layer_dp = 0.0, layer_sk = 0.0;
  for (const LayerGemm& g : gemms) {
    const auto dp = suite.data_parallel->run(g.shape);
    const auto sk = suite.stream_k->run(g.shape);
    layer_dp += dp.estimate.seconds;
    layer_sk += sk.estimate.seconds;
    const core::WorkMapping mapping(g.shape,
                                    gpu::BlockShape::paper_fp16());
    table.row({g.name, g.shape.to_string(), std::to_string(mapping.tiles()),
               std::string(core::kind_name(sk.kind)),
               bencher::fmt_seconds(dp.estimate.seconds),
               bencher::fmt_seconds(sk.estimate.seconds),
               bencher::fmt_ratio(dp.estimate.seconds /
                                  sk.estimate.seconds)});
  }
  std::cout << table.render() << "whole layer: "
            << bencher::fmt_seconds(layer_dp) << " -> "
            << bencher::fmt_seconds(layer_sk) << "  ("
            << bencher::fmt_ratio(layer_dp / layer_sk) << ")\n";

  // Scaled-down functional check of the same shapes on the CPU executor,
  // with the layer's per-output-feature bias and GELU fused into the
  // epilogue (one pass over the activations, applied once per element at
  // tile-store / post-fixup time).
  std::cout << "\nnumerical verification (scaled 1/16, FP16 inputs, FP32 "
               "accumulate, fused bias+GELU epilogue):\n";
  for (const LayerGemm& g : gemms) {
    const core::GemmShape small{std::max<std::int64_t>(1, g.shape.m / 16),
                                std::max<std::int64_t>(1, g.shape.n / 16),
                                std::max<std::int64_t>(1, g.shape.k / 16)};
    cpu::Matrix<util::Half> a(small.m, small.k);
    cpu::Matrix<util::Half> b(small.k, small.n);
    util::Pcg32 rng(small.m * 7 + small.n);
    cpu::fill_random(a, rng, -0.25, 0.25);
    cpu::fill_random(b, rng, -0.25, 0.25);
    std::vector<double> bias(static_cast<std::size_t>(small.n));
    for (double& v : bias) v = rng.uniform(-0.5, 0.5);

    cpu::Matrix<float> c(small.m, small.n);
    cpu::GemmOptions options;
    options.workers = 2;
    options.epilogue.ops = {epilogue::EpilogueOp::bias_col(),
                            epilogue::EpilogueOp::gelu()};
    options.epilogue.bias_col = bias;
    const cpu::GemmReport report = cpu::gemm(a, b, c, options);

    cpu::Matrix<float> expected(small.m, small.n);
    cpu::naive_gemm<util::Half, float, float>(a, b, expected);
    double worst = 0.0;
    for (std::int64_t i = 0; i < small.m; ++i) {
      for (std::int64_t j = 0; j < small.n; ++j) {
        // Independent bias + tanh-approximation GELU on the reference.
        const double x =
            static_cast<double>(expected.at(i, j)) +
            bias[static_cast<std::size_t>(j)];
        const double want =
            0.5 * x *
            (1.0 +
             std::tanh(0.7978845608028654 * (x + 0.044715 * x * x * x)));
        worst = std::max(worst,
                         std::abs(static_cast<double>(c.at(i, j)) - want));
      }
    }
    const bool ok = worst < 1e-4 * static_cast<double>(small.k);
    std::cout << "  " << g.name << " " << small.to_string() << " via "
              << report.schedule_name << ": max |delta| = " << worst
              << (ok ? "  OK" : "  FAIL") << "\n";
    if (!ok) return 1;
  }
  return 0;
}
