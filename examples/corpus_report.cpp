// Corpus report: regenerate the paper's 32,824-problem evaluation corpus
// (Figure 4), print its shape statistics, and dump it to CSV.
//
//   $ ./corpus_report [count] [out.csv]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bencher/table.hpp"
#include "corpus/corpus.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace streamk;

  std::size_t count = 4096;  // default: a fast subset with full-span stats
  if (argc >= 2) count = static_cast<std::size_t>(std::atoll(argv[1]));
  const std::string csv = argc >= 3 ? argv[2] : "corpus.csv";

  const corpus::Corpus corpus = corpus::Corpus::paper(count);
  std::cout << "corpus: " << corpus.size() << " problems, log-sampled from "
            << "[128, 8192]^3 (paper Figure 4 uses "
            << corpus::kPaperCorpusSize << ")\n";

  std::vector<double> m, n, k, intensity_fp64, intensity_fp16;
  for (const auto& s : corpus.shapes()) {
    m.push_back(static_cast<double>(s.m));
    n.push_back(static_cast<double>(s.n));
    k.push_back(static_cast<double>(s.k));
    intensity_fp64.push_back(s.arithmetic_intensity(gpu::Precision::kFp64));
    intensity_fp16.push_back(
        s.arithmetic_intensity(gpu::Precision::kFp16F32));
  }

  bencher::TextTable table({"series", "min", "median", "mean", "max"});
  auto row = [&](const char* name, const std::vector<double>& v) {
    const util::Summary s = util::Summary::of(v);
    table.row({name, bencher::fmt_num(s.min, 0),
               bencher::fmt_num(s.median, 0), bencher::fmt_num(s.mean, 0),
               bencher::fmt_num(s.max, 0)});
  };
  row("m", m);
  row("n", n);
  row("k", k);
  row("intensity fp64 (ops/B)", intensity_fp64);
  row("intensity fp16->32 (ops/B)", intensity_fp16);
  std::cout << table.render();

  std::cout << "volume span: "
            << bencher::fmt_num(corpus.volume_orders_of_magnitude(), 2)
            << " orders of magnitude\n"
            << "compute-bound: "
            << corpus.compute_bound(gpu::Precision::kFp64).size()
            << " problems (fp64 > 150 ops/B), "
            << corpus.compute_bound(gpu::Precision::kFp16F32).size()
            << " problems (fp16->32 > 400 ops/B)\n";

  corpus.write_csv(csv);
  std::cout << "written: " << csv << "\n";
  return 0;
}
