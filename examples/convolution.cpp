// Convolution via implicit GEMM: the paper's motivating computer-vision
// workload on the Stream-K machinery.
//
// Runs ResNet-style layers through the simulated A100 under data-parallel
// and Stream-K schedules (batch-1 inference tails are classic quantization
// victims), then executes a scaled-down layer on the CPU path and verifies
// it against the direct 7-loop convolution.
//
//   $ ./convolution

#include <iostream>

#include "bencher/table.hpp"
#include "conv/implicit_gemm.hpp"
#include "model/grid_selector.hpp"
#include "sim/sim_gemm.hpp"

int main() {
  using namespace streamk;

  struct Layer {
    const char* name;
    conv::ConvShape conv;
  };
  auto make = [](std::int64_t n, std::int64_t hw, std::int64_t c,
                 std::int64_t k, std::int64_t f, std::int64_t stride,
                 std::int64_t pad) {
    conv::ConvShape s;
    s.batch = n;
    s.height = hw;
    s.width = hw;
    s.in_channels = c;
    s.out_channels = k;
    s.filter_h = f;
    s.filter_w = f;
    s.stride = stride;
    s.pad = pad;
    return s;
  };
  const Layer layers[] = {
      {"conv3x3 56x56x64 (early)", make(1, 56, 64, 64, 3, 1, 1)},
      {"conv3x3 14x14x256", make(1, 14, 256, 256, 3, 1, 1)},
      {"conv3x3 7x7x512 (tail)", make(1, 7, 512, 512, 3, 1, 1)},
      {"conv1x1 7x7x512->2048", make(1, 7, 512, 2048, 1, 1, 0)},
  };

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const auto precision = gpu::Precision::kFp16F32;
  const gpu::BlockShape block = gpu::BlockShape::paper_fp16();
  const model::CostModel model =
      model::CostModel::calibrated(a100, block, precision);

  std::cout << "ResNet-style layers as implicit GEMM on the simulated A100 "
               "(FP16->32, blocking "
            << block.to_string() << ")\n\n";
  bencher::TextTable table({"layer", "implicit GEMM", "tiles",
                            "data-parallel", "stream-k plan", "speedup"});
  for (const Layer& layer : layers) {
    const core::GemmShape g = layer.conv.gemm_shape();
    const core::WorkMapping mapping(g, block);

    core::DecompositionSpec dp;
    dp.kind = core::DecompositionKind::kDataParallel;
    const sim::KernelEstimate dp_est =
        sim::estimate_kernel(dp, mapping, model, a100);

    const core::DecompositionSpec planned = model::plan(model, mapping, a100);
    const sim::KernelEstimate sk_est =
        sim::estimate_kernel(planned, mapping, model, a100);

    table.row({layer.name, g.to_string(), std::to_string(mapping.tiles()),
               bencher::fmt_seconds(dp_est.seconds),
               bencher::fmt_seconds(sk_est.seconds) + " [" +
                   std::string(core::kind_name(planned.kind)) + "]",
               bencher::fmt_ratio(dp_est.seconds / sk_est.seconds)});
  }
  std::cout << table.render();

  // Functional verification on a small layer.
  std::cout << "\nCPU verification (direct conv vs implicit-GEMM Stream-K):\n";
  conv::ConvShape small = make(2, 12, 16, 24, 3, 1, 1);
  conv::Tensor4<float> input(small.batch, small.height, small.width,
                             small.in_channels);
  conv::Tensor4<float> filter(small.out_channels, small.filter_h,
                              small.filter_w, small.in_channels);
  util::Pcg32 rng(42);
  conv::fill_random_int(input, rng, -2, 2);
  conv::fill_random_int(filter, rng, -2, 2);

  conv::Tensor4<float> expected(small.batch, small.out_h(), small.out_w(),
                                small.out_channels);
  conv::direct_conv<float, float, float>(small, input, filter, expected);

  conv::Tensor4<float> out(small.batch, small.out_h(), small.out_w(),
                           small.out_channels);
  const cpu::GemmReport report = conv::conv_forward<float, float, float>(
      small, input, filter, out,
      {.schedule = cpu::Schedule::kStreamK, .block = {16, 16, 8},
       .grid = 6, .workers = 2});

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    if (out.data()[i] != expected.data()[i]) ++mismatches;
  }
  std::cout << "  " << small.to_string() << " via " << report.schedule_name
            << " (" << report.spills << " spills): " << mismatches
            << " mismatches -> " << (mismatches == 0 ? "OK" : "FAIL") << "\n";
  return mismatches == 0 ? 0 : 1;
}
