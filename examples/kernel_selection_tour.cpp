// Kernel-selection tour: why ensembles struggle and a single Stream-K
// kernel doesn't (Sections 1-2 and 6 of the paper).
//
// Walks a handful of problem shapes through all four libraries -- the
// single-tile data-parallel kernel, the rule-based cuBLAS-like ensemble,
// the idealized oracle, and Stream-K -- showing which kernel each selects
// and what it costs on the simulated A100.
//
//   $ ./kernel_selection_tour

#include <iostream>

#include "bencher/table.hpp"
#include "ensemble/heuristics.hpp"
#include "ensemble/library.hpp"

int main() {
  using namespace streamk;

  const gpu::GpuSpec a100 = gpu::GpuSpec::a100_locked();
  const auto precision = gpu::Precision::kFp16F32;
  const ensemble::EvaluationSuite suite =
      ensemble::EvaluationSuite::make(a100, precision);

  struct Tour {
    const char* story;
    core::GemmShape shape;
  };
  const Tour tour[] = {
      {"large square: everyone is happy", {4096, 4096, 4096}},
      {"quantization cliff: 109 tiles on 108 SMs", {13952, 128, 4096}},
      {"strong scaling: one tile, deep k", {128, 128, 8192}},
      {"ragged: padding penalizes big tiles", {1100, 300, 1000}},
      {"small and memory-bound", {256, 256, 160}},
      {"wide and shallow", {256, 8192, 384}},
  };

  for (const Tour& t : tour) {
    std::cout << "\n=== " << t.story << ": " << t.shape.to_string()
              << " (intensity "
              << bencher::fmt_num(t.shape.arithmetic_intensity(precision), 0)
              << " ops/B) ===\n";
    bencher::TextTable table(
        {"library", "kernel selected", "time", "utilization"});

    const auto dp = suite.data_parallel->run(t.shape);
    const auto cb = suite.cublas_like->run(t.shape);
    const auto oc = suite.oracle->run(t.shape);
    const auto sk = suite.stream_k->run(t.shape);
    table.row({suite.data_parallel->name(), dp.kernel_name,
               bencher::fmt_seconds(dp.estimate.seconds),
               bencher::fmt_pct(dp.estimate.utilization)});
    table.row({suite.cublas_like->name(), cb.kernel_name,
               bencher::fmt_seconds(cb.estimate.seconds),
               bencher::fmt_pct(cb.estimate.utilization)});
    table.row({suite.oracle->name(), oc.kernel_name,
               bencher::fmt_seconds(oc.estimate.seconds),
               bencher::fmt_pct(oc.estimate.utilization)});
    table.row({suite.stream_k->name(), sk.kernel_name + " g=" +
                   std::to_string(sk.estimate.grid),
               bencher::fmt_seconds(sk.estimate.seconds),
               bencher::fmt_pct(sk.estimate.utilization)});
    std::cout << table.render();
  }

  std::cout << "\nThe ensembles carry " << 4
            << " precompiled tile variants plus split factors and a "
               "selection rule;\nStream-K ships one kernel per precision "
               "and dynamically picks only its grid size.\n";
  return 0;
}
