// Schedule explorer: visualize how a GEMM decomposes under every strategy.
//
// For a problem shape (and optional SM count / blocking factors), prints the
// simulated per-SM Gantt chart, makespan, quantization efficiency, and
// fixup statistics of each decomposition the library implements --
// the interactive version of the paper's Figures 1-3.
//
//   $ ./schedule_explorer [m n k] [sms] [blk_m blk_n blk_k]

#include <cstdlib>
#include <iostream>

#include "core/data_parallel.hpp"
#include "core/fixed_split.hpp"
#include "core/hybrid.hpp"
#include "core/stream_k.hpp"
#include "model/grid_selector.hpp"
#include "sim/schedule_render.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace streamk;

void show(const core::Decomposition& decomposition,
          const model::CostModel& model, const gpu::GpuSpec& gpu) {
  sim::SimOptions options;
  options.record_trace = true;
  options.occupancy_override = 1;
  const sim::SimResult r =
      sim::simulate(decomposition, model, gpu, options);
  std::cout << "\n### " << decomposition.name() << " (" << r.grid
            << " CTAs)\n"
            << "makespan " << r.makespan * 1e6 << " us | efficiency "
            << r.occupancy_efficiency * 100.0 << "% | spills " << r.spills
            << " | wait " << r.wait_time * 1e6 << " us\n"
            << sim::render_schedule(r.timeline,
                                    {.width = 80, .show_legend = false});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamk;

  core::GemmShape shape{384, 384, 128};
  gpu::GpuSpec gpu = gpu::GpuSpec::hypothetical4();
  gpu::BlockShape block{128, 128, 4};
  if (argc >= 4) {
    shape = {std::atoll(argv[1]), std::atoll(argv[2]), std::atoll(argv[3])};
  }
  if (argc >= 5) {
    const double scale = std::atof(argv[4]) / 4.0;
    gpu.sm_count = std::atoll(argv[4]);
    gpu.peak_fp16f32_tflops *= scale;
    gpu.peak_fp64_tflops *= scale;
    gpu.dram_gbytes_per_s *= scale;
  }
  if (argc >= 8) {
    block = {std::atoll(argv[5]), std::atoll(argv[6]), std::atoll(argv[7])};
  }

  const core::WorkMapping mapping(shape, block);
  std::cout << "GEMM " << shape.to_string() << ", blocking "
            << block.to_string() << ", " << gpu.sm_count << " SMs\n"
            << "tiles: " << mapping.tiles() << " (" << mapping.tiles_m()
            << "x" << mapping.tiles_n() << "), iterations/tile: "
            << mapping.iters_per_tile() << ", total iterations: "
            << mapping.total_iters() << "\n"
            << "legend: 0-9A-Za-z MAC by CTA, '=' setup, 's' spill, "
               "'-' wait, 'r' reduce, '.' idle\n";

  // Visible-but-modest overheads so fixup phases show up in the charts.
  const model::CostModel model(
      model::CostParams{0.5e-6, 1e-6, 1e-6, 1e-6}, block,
      gpu::Precision::kFp16F32);

  show(core::DataParallel(mapping), model, gpu);
  show(core::FixedSplit(mapping, 2), model, gpu);
  show(core::StreamKBasic(mapping, gpu.sm_count), model, gpu);
  show(core::Hybrid(mapping, core::DecompositionKind::kHybridOneTile,
                    gpu.sm_count),
       model, gpu);
  show(core::Hybrid(mapping, core::DecompositionKind::kHybridTwoTile,
                    gpu.sm_count),
       model, gpu);

  const model::GridChoice choice = model::select_grid(model, mapping, gpu);
  std::cout << "\nanalytical model (Appendix A.1): best basic Stream-K grid"
            << " = " << choice.grid << " CTAs\n";
  show(core::StreamKBasic(mapping, choice.grid), model, gpu);
  return 0;
}
